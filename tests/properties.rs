//! Workspace-level property tests: random walks through the full stack.

use forecache::array::{DenseArray, Schema};
use forecache::core::engine::PhaseSource;
use forecache::core::Phase;
use forecache::core::{
    AbRecommender, AllocationStrategy, EngineConfig, LatencyProfile, Middleware,
    MomentumRecommender, PredictionEngine, SbConfig, SbRecommender,
};
use forecache::sim::replay::{replay_trace, AccuracyReport, ModelPredictor};
use forecache::sim::trace::{Trace, TraceStep};
use forecache::tiles::{Geometry, Move, PyramidBuilder, PyramidConfig, TileId, MOVES};
use proptest::prelude::*;
use std::sync::Arc;

/// A pyramid over a deterministic 64x64 texture, shared by all cases.
fn pyramid() -> Arc<forecache::tiles::Pyramid> {
    let schema = Schema::grid2d("P", 64, 64, &["v"]).unwrap();
    let data: Vec<f64> = (0..64 * 64)
        .map(|i| ((i as f64 * 0.37).sin().abs() + (i % 64) as f64 / 64.0) / 2.0)
        .collect();
    let base = DenseArray::from_vec(schema, data).unwrap();
    // Paper-calibrated backend latency so hit < miss ordering holds.
    let mut cfg = PyramidConfig::simple(3, 16, &["v"]);
    cfg.latency = forecache::array::LatencyModel::scidb_like();
    Arc::new(PyramidBuilder::new().build(&base, &cfg).unwrap())
}

/// Generates a random legal walk through a geometry as a labeled trace.
fn random_walk(g: Geometry, moves: Vec<u8>) -> Trace {
    let mut pos = TileId::ROOT;
    let mut steps = vec![TraceStep {
        tile: pos,
        mv: None,
        phase: Phase::Foraging,
    }];
    for m in moves {
        let mv = MOVES[m as usize % MOVES.len()];
        if let Some(next) = g.apply(pos, mv) {
            pos = next;
            steps.push(TraceStep {
                tile: pos,
                mv: Some(mv),
                phase: Phase::Navigation,
            });
        }
    }
    Trace {
        user: 0,
        task: 0,
        steps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The middleware serves every legal random walk: correct tiles,
    /// sane latencies, stats adding up.
    #[test]
    fn middleware_survives_random_walks(moves in proptest::collection::vec(0u8..9, 1..40)) {
        let pyramid = pyramid();
        let g = pyramid.geometry();
        let trace = random_walk(g, moves);
        let refs: Vec<Vec<u16>> = vec![vec![Move::PanRight.index() as u16; 6]];
        let trefs: Vec<&[u16]> = refs.iter().map(|t| t.as_slice()).collect();
        let engine = PredictionEngine::new(
            g,
            AbRecommender::train(trefs, 2),
            SbRecommender::new(SbConfig::all_equal()),
            PhaseSource::Heuristic,
            EngineConfig { strategy: AllocationStrategy::Updated, ..Default::default() },
        );
        let mut mw = Middleware::new(engine, pyramid, LatencyProfile::paper(), 3, 4);
        for s in &trace.steps {
            let r = mw.request(s.tile, s.mv).expect("walk stays in bounds");
            prop_assert_eq!(r.tile.id, s.tile);
            prop_assert!(r.latency >= LatencyProfile::paper().hit);
            prop_assert!(r.latency <= std::time::Duration::from_millis(1100));
        }
        let st = mw.stats();
        prop_assert_eq!(st.requests, trace.steps.len());
        prop_assert!(st.hits <= st.requests);
        prop_assert_eq!(st.per_phase.iter().sum::<usize>(), st.requests);
    }

    /// Accuracy is monotone non-decreasing in k for a fixed model/trace
    /// (a bigger prefetch budget can only help).
    #[test]
    fn accuracy_is_monotone_in_k(moves in proptest::collection::vec(0u8..9, 4..50)) {
        let pyramid = pyramid();
        let trace = random_walk(pyramid.geometry(), moves);
        let mut last = 0.0f64;
        for k in 1..=9 {
            let mut p = ModelPredictor::new(Box::new(MomentumRecommender), pyramid.clone());
            let outcomes = replay_trace(&mut p, &trace, k);
            let acc = AccuracyReport::from_outcomes(&outcomes).overall;
            prop_assert!(acc >= last - 1e-12, "k={k}: {acc} < {last}");
            last = acc;
        }
        prop_assert!((last - 1.0).abs() < 1e-12, "k=9 is complete coverage");
    }

    /// Geometry round-trip: any legal move followed by its inverse (when
    /// one exists) returns to the starting tile.
    #[test]
    fn moves_have_inverses(level in 0u8..3, y in 0u32..4, x in 0u32..4, m in 0usize..9) {
        let g = Geometry::new(3, 64, 64, 16, 16);
        let from = TileId::new(level, y, x);
        prop_assume!(g.contains(from));
        let mv = MOVES[m];
        if let Some(to) = g.apply(from, mv) {
            let back = match mv {
                Move::PanUp => Some(Move::PanDown),
                Move::PanDown => Some(Move::PanUp),
                Move::PanLeft => Some(Move::PanRight),
                Move::PanRight => Some(Move::PanLeft),
                Move::ZoomIn(_) => Some(Move::ZoomOut),
                Move::ZoomOut => None, // zoom-out loses quadrant information
            };
            if let Some(b) = back {
                prop_assert_eq!(g.apply(to, b), Some(from));
            }
        }
    }
}
