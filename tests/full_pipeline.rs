//! Cross-crate integration: terrain → Query 1 → pyramid → signatures →
//! study → prediction engines → replay harness.

use forecache::core::engine::PhaseSource;
use forecache::core::{
    AbRecommender, AllocationStrategy, EngineConfig, MomentumRecommender, PhaseClassifier,
    PredictionEngine, SbConfig, SbRecommender,
};
use forecache::ml::leave_one_group_out;
use forecache::sim::dataset::{DatasetConfig, StudyDataset};
use forecache::sim::replay::{
    loocv, replay_trace, AccuracyReport, EnginePhaseMode, EnginePredictor, ModelPredictor,
};
use forecache::sim::study::{Study, StudyConfig};
use forecache::sim::trace;
use std::sync::{Arc, OnceLock};

/// Dataset + study are expensive to build; share one instance across the
/// whole test binary.
fn shared() -> &'static (StudyDataset, Study) {
    static SHARED: OnceLock<(StudyDataset, Study)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let st = Study::generate(&ds, &StudyConfig { num_users: 5 });
        (ds, st)
    })
}

fn dataset() -> &'static StudyDataset {
    &shared().0
}

fn study(_ds: &StudyDataset) -> &'static Study {
    &shared().1
}

#[test]
fn traces_roundtrip_through_the_codec() {
    let ds = dataset();
    let st = study(ds);
    let text = trace::encode(&st.traces);
    let back = trace::decode(&text).expect("codec roundtrip");
    assert_eq!(back, st.traces);
}

#[test]
fn every_model_is_perfect_at_k9() {
    // §5.2.2: at k = 9 the correct tile is guaranteed to be prefetched.
    let ds = dataset();
    let st = study(ds);
    let mut p = ModelPredictor::new(Box::new(MomentumRecommender), ds.pyramid.clone());
    let mut outcomes = Vec::new();
    for t in &st.traces {
        outcomes.extend(replay_trace(&mut p, t, 9));
    }
    let r = AccuracyReport::from_outcomes(&outcomes);
    assert!(
        (r.overall - 1.0).abs() < 1e-12,
        "k=9 accuracy {}",
        r.overall
    );
}

#[test]
fn trained_ab_beats_momentum_at_k1() {
    let ds = dataset();
    let st = study(ds);
    let pyramid = ds.pyramid.clone();

    let momentum = loocv(&st.traces, 1, |_| {
        Box::new(ModelPredictor::new(
            Box::new(MomentumRecommender),
            pyramid.clone(),
        ))
    });
    let ab = loocv(&st.traces, 1, |train| {
        let seqs: Vec<Vec<u16>> = train.iter().map(|t| t.move_sequence()).collect();
        let refs: Vec<&[u16]> = seqs.iter().map(|s| s.as_slice()).collect();
        Box::new(ModelPredictor::new(
            Box::new(AbRecommender::train(refs, 3)),
            pyramid.clone(),
        ))
    });
    assert!(
        ab.overall >= momentum.overall,
        "AB {} should not lose to Momentum {}",
        ab.overall,
        momentum.overall
    );
}

#[test]
fn hybrid_engine_replays_with_classifier() {
    let ds = dataset();
    let st = study(ds);
    let pyramid = ds.pyramid.clone();
    let pd = st.phase_dataset();

    let report = loocv(&st.traces, 5, |train| {
        let train_users: std::collections::HashSet<usize> = train.iter().map(|t| t.user).collect();
        let seqs: Vec<Vec<u16>> = train.iter().map(|t| t.move_sequence()).collect();
        let refs: Vec<&[u16]> = seqs.iter().map(|s| s.as_slice()).collect();
        let ab = AbRecommender::train(refs, 3);
        let mut fx = Vec::new();
        let mut fy = Vec::new();
        for i in 0..pd.len() {
            if train_users.contains(&pd.users[i]) {
                fx.push(pd.features[i].clone());
                fy.push(pd.labels[i]);
            }
        }
        let clf = PhaseClassifier::train_on_features(&fx, &fy);
        let engine = PredictionEngine::new(
            pyramid.geometry(),
            ab,
            SbRecommender::new(SbConfig::all_equal()),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        );
        Box::new(EnginePredictor::new(
            engine,
            pyramid.clone(),
            EnginePhaseMode::Classifier(Box::new(clf)),
            "hybrid",
        ))
    });
    assert!(
        report.overall > 0.4,
        "hybrid accuracy at k=5 too low: {}",
        report.overall
    );
    assert_eq!(report.counts.iter().sum::<usize>(), report.total);
}

#[test]
fn phase_classifier_generalizes_across_users() {
    let ds = dataset();
    let st = study(ds);
    let pd = st.phase_dataset();
    let folds = leave_one_group_out(&pd.users);
    assert_eq!(folds.len(), 5);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (train_idx, test_idx) in folds {
        let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| pd.features[i].clone()).collect();
        let ty: Vec<usize> = train_idx.iter().map(|&i| pd.labels[i]).collect();
        let clf = PhaseClassifier::train_on_features(&tx, &ty);
        for &i in &test_idx {
            if clf.predict_features(&pd.features[i]) == pd.labels[i] {
                correct += 1;
            }
            total += 1;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.6, "cross-user phase accuracy {acc}");
}

#[test]
fn simulated_clock_accumulates_backend_time() {
    // Build a one-off dataset with a real (non-free) latency model.
    let mut cfg = DatasetConfig::tiny();
    cfg.terrain.size = 64;
    cfg.levels = 2;
    cfg.latency = forecache::array::LatencyModel::scidb_like();
    let ds = StudyDataset::build(cfg);
    let pyramid: Arc<_> = ds.pyramid.clone();
    let clock = pyramid.store().clock().clone();
    assert_eq!(clock.now(), std::time::Duration::ZERO);
    pyramid
        .store()
        .fetch_backend(forecache::tiles::TileId::ROOT)
        .expect("root exists");
    assert!(clock.now() > std::time::Duration::from_millis(900));
}
