//! # ForeCache — dynamic prefetching of data tiles for interactive visualization
//!
//! A from-scratch Rust reproduction of *Battle, Chang, Stonebraker:
//! "Dynamic Prefetching of Data Tiles for Interactive Visualization"*
//! (SIGMOD 2016). ForeCache is a middleware layer between a lightweight
//! visualization client and an array DBMS that **prefetches data tiles**
//! ahead of the user with a two-level prediction engine: an SVM phase
//! classifier on top, and Action-Based (Markov) plus Signature-Based
//! (visual similarity) recommenders below.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`mod@array`] — embedded array-DBMS substrate (dense arrays, regrid
//!   aggregation, join/apply UDFs, simulated storage latency);
//! * [`tiles`] — zoom-level pyramids, data tiles, the nine-move
//!   navigation model, tile store;
//! * [`ngram`] — Kneser–Ney smoothed n-gram models (AB substrate);
//! * [`ml`] — SMO-trained SVM, k-means, evaluation utilities;
//! * [`vision`] — SIFT-lite keypoints/descriptors and visual words;
//! * [`core`] — the prediction engine, recommenders, baselines, cache
//!   manager, and middleware;
//! * [`sim`] — synthetic MODIS-like data, behavioural users, and the
//!   replay harness reproducing the paper's evaluation;
//! * [`server`] — the client-server architecture over TCP.
//!
//! ## Quickstart
//!
//! ```
//! use forecache::array::{DenseArray, Schema};
//! use forecache::core::{
//!     AbRecommender, AllocationStrategy, EngineConfig, LatencyProfile, Middleware,
//!     PredictionEngine, SbConfig, SbRecommender,
//! };
//! use forecache::core::engine::PhaseSource;
//! use forecache::core::signature::{attach_signatures, SignatureConfig};
//! use forecache::tiles::{Move, PyramidBuilder, PyramidConfig, TileId};
//! use std::sync::Arc;
//!
//! // 1. A small dataset and its tile pyramid.
//! let schema = Schema::grid2d("DEMO", 64, 64, &["v"]).unwrap();
//! let data: Vec<f64> = (0..64 * 64).map(|i| ((i % 64) as f64 / 64.0)).collect();
//! let base = DenseArray::from_vec(schema, data).unwrap();
//! let pyramid = Arc::new(
//!     PyramidBuilder::new()
//!         .build(&base, &PyramidConfig::simple(3, 16, &["v"]))
//!         .unwrap(),
//! );
//! let mut sig = SignatureConfig::ndsi("v");
//! sig.domain = (0.0, 1.0);
//! attach_signatures(&pyramid, &sig);
//!
//! // 2. A prediction engine (AB Markov model + SB signatures).
//! let traces: Vec<Vec<u16>> = vec![vec![Move::PanRight.index() as u16; 8]];
//! let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
//! let engine = PredictionEngine::new(
//!     pyramid.geometry(),
//!     AbRecommender::train(refs, 3),
//!     SbRecommender::new(SbConfig::all_equal()),
//!     PhaseSource::Heuristic,
//!     EngineConfig { strategy: AllocationStrategy::Updated, ..Default::default() },
//! );
//!
//! // 3. Serve requests through the middleware.
//! let mut mw = Middleware::new(engine, pyramid, LatencyProfile::paper(), 4, 5);
//! let first = mw.request(TileId::ROOT, None).unwrap();
//! assert!(!first.cache_hit); // cold cache
//! assert!(!first.prefetched.is_empty()); // but the engine is already fetching ahead
//! ```

pub use fc_array as array;
pub use fc_core as core;
pub use fc_ml as ml;
pub use fc_ngram as ngram;
pub use fc_server as server;
pub use fc_sim as sim;
pub use fc_tiles as tiles;
pub use fc_vision as vision;
