//! Time-series browsing: the paper's heart-rate monitoring scenario
//! (Fig. 2c) on a 1-D dataset lifted into the tile model.
//!
//! ```sh
//! cargo run --example timeseries_monitoring --release
//! ```

use forecache::array::{AggFn, DenseArray, IoMode, LatencyModel, Schema};
use forecache::core::engine::PhaseSource;
use forecache::core::signature::{attach_signatures, SignatureConfig};
use forecache::core::{
    AbRecommender, AllocationStrategy, EngineConfig, LatencyProfile, Middleware, PredictionEngine,
    SbConfig, SbRecommender,
};
use forecache::tiles::{lift_1d, AttrAgg, Move, PyramidBuilder, PyramidConfig, Quadrant, TileId};
use std::sync::Arc;

fn main() {
    // 1. A day of 1 Hz heart-rate samples with exercise bouts and an
    //    arrhythmia-like spike burst.
    let n = 4096usize;
    let schema = Schema::new("HR", [("t".to_string(), n)], ["bpm".to_string()]).expect("schema");
    let samples: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64;
            let circadian = 62.0 + 6.0 * (t / n as f64 * std::f64::consts::TAU).sin();
            let exercise = if (1200..1500).contains(&i) { 55.0 } else { 0.0 };
            let spikes = if (3000..3030).contains(&i) && i % 3 == 0 {
                40.0
            } else {
                0.0
            };
            circadian + exercise + spikes + ((i * 2654435761) % 7) as f64 - 3.0
        })
        .collect();
    let hr = DenseArray::from_vec(schema, samples).expect("heart-rate series");

    // 2. Lift to 2-D and build a 5-level pyramid of 1×256 tiles; the
    //    max-aggregation keeps spikes visible at coarse zoom levels.
    let lifted = lift_1d(&hr).expect("1-D lift");
    let cfg = PyramidConfig {
        levels: 5,
        tile_h: 1,
        tile_w: 256,
        aggs: vec![AttrAgg::new("bpm", AggFn::Max)],
        latency: LatencyModel::scidb_like(),
        io_mode: IoMode::Simulated,
    };
    let pyramid = Arc::new(PyramidBuilder::new().build(&lifted, &cfg).expect("pyramid"));
    let mut sig_cfg = SignatureConfig::ndsi("bpm");
    sig_cfg.domain = (40.0, 180.0);
    attach_signatures(&pyramid, &sig_cfg);
    let g = pyramid.geometry();
    println!(
        "heart-rate pyramid: {} levels, deepest grid {:?}",
        g.levels,
        g.tiles_at(g.levels - 1)
    );

    // 3. Engine trained on the archetypal time-series gesture: pan right
    //    repeatedly, zoom into anomalies.
    let right = Move::PanRight.index() as u16;
    let zin = Move::ZoomIn(Quadrant::Ne).index() as u16;
    let zout = Move::ZoomOut.index() as u16;
    let traces: Vec<Vec<u16>> = vec![
        vec![right; 12],
        vec![right, right, zin, zin, right, zout, right, right],
    ];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    let engine = PredictionEngine::new(
        g,
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::all_equal()),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    );
    let mut mw = Middleware::new(engine, pyramid, LatencyProfile::paper(), 4, 4);

    // 4. An analyst scrolls the day at mid-zoom, then drills into the
    //    spike burst near t = 3000 (tile x = 2 at level 2 covers
    //    2048..3072 with window 4 → raw 8192; scaled: level 2 tile x
    //    covers 1024 raw samples).
    println!("\nscrolling at level 2, then drilling into the anomaly…");
    let mut walk: Vec<(TileId, Option<Move>)> = vec![(TileId::new(2, 0, 0), None)];
    for x in 1..=2 {
        walk.push((TileId::new(2, 0, x), Some(Move::PanRight)));
    }
    // The spike burst is at raw t≈3000 → level-3 tile x = 5 → level-4 x = 11.
    walk.push((TileId::new(3, 0, 5), Some(Move::ZoomIn(Quadrant::Ne))));
    walk.push((TileId::new(4, 0, 11), Some(Move::ZoomIn(Quadrant::Ne))));
    walk.push((TileId::new(4, 0, 10), Some(Move::PanLeft)));

    for (tile, mv) in walk {
        match mw.request(tile, mv) {
            Some(r) => {
                let peak = r
                    .tile
                    .present_values("bpm")
                    .expect("bpm attr")
                    .into_iter()
                    .fold(f64::MIN, f64::max);
                println!(
                    "  {:<10} {:>7.1}ms {:>5} peak {:>5.0} bpm",
                    tile.to_string(),
                    r.latency.as_secs_f64() * 1e3,
                    if r.cache_hit { "HIT" } else { "miss" },
                    peak
                );
            }
            None => println!("  {tile} does not exist"),
        }
    }
    let stats = mw.stats();
    println!(
        "\n{} requests, {:.0}% hits, avg {:.1} ms",
        stats.requests,
        stats.hit_rate() * 100.0,
        stats.avg_latency().as_secs_f64() * 1e3
    );
}
