//! Satellite-imagery exploration: the paper's full scenario end-to-end.
//!
//! Generates synthetic MODIS-like terrain, computes the NDSI through the
//! Query-1 pipeline, builds the tile pyramid with signatures, trains the
//! two-level prediction engine on simulated study users, and replays a
//! held-out user's snow-hunting session through the middleware —
//! reporting the latency the user would experience.
//!
//! ```sh
//! cargo run --example satellite_exploration --release
//! ```

use forecache::core::engine::PhaseSource;
use forecache::core::{
    AbRecommender, AllocationStrategy, EngineConfig, LatencyProfile, Middleware, PhaseClassifier,
    PredictionEngine, SbConfig, SbRecommender,
};
use forecache::sim::dataset::{DatasetConfig, StudyDataset};
use forecache::sim::study::{Study, StudyConfig};
use forecache::sim::terrain::TerrainConfig;

fn main() {
    // A mid-size dataset: 512² cells, five zoom levels, 64-cell tiles.
    println!(
        "building synthetic MODIS NDSI dataset (terrain -> Query 1 -> pyramid -> signatures)…"
    );
    let ds = StudyDataset::build(DatasetConfig {
        terrain: TerrainConfig {
            size: 512,
            ..TerrainConfig::default()
        },
        levels: 5,
        tile: 32,
        ..DatasetConfig::default()
    });
    let g = ds.pyramid.geometry();
    println!(
        "  {} zoom levels, {} tiles, deepest grid {:?}",
        g.levels,
        ds.pyramid.store().backend_len(),
        g.tiles_at(g.levels - 1)
    );

    // Simulate the user study and hold user 0 out for the live session.
    println!("simulating 8 study users × 3 tasks…");
    let study = Study::generate(&ds, &StudyConfig { num_users: 8 });
    println!(
        "  {} traces, {} total requests",
        study.traces.len(),
        study.total_requests()
    );

    let train: Vec<&forecache::sim::trace::Trace> =
        study.traces.iter().filter(|t| t.user != 0).collect();
    let move_traces: Vec<Vec<u16>> = train.iter().map(|t| t.move_sequence()).collect();
    let move_refs: Vec<&[u16]> = move_traces.iter().map(|t| t.as_slice()).collect();

    // Phase classifier trained on the other users' labeled requests.
    let pd = study.phase_dataset();
    let mut feats = Vec::new();
    let mut labels = Vec::new();
    for i in 0..pd.len() {
        if pd.users[i] != 0 {
            feats.push(pd.features[i].clone());
            labels.push(pd.labels[i]);
        }
    }
    let classifier = PhaseClassifier::train_on_features(&feats, &labels);

    let engine = PredictionEngine::new(
        g,
        AbRecommender::train(move_refs, 3),
        SbRecommender::new(SbConfig::all_equal()),
        PhaseSource::Classifier(Box::new(classifier)),
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    );

    // Replay user 0's task-1 session through the live middleware (k=5).
    let session = study
        .traces
        .iter()
        .find(|t| t.user == 0 && t.task == 0)
        .expect("user 0, task 1 exists");
    println!(
        "\nreplaying held-out user 0, task 1 ({} requests) with k = 5…",
        session.len()
    );
    let mut mw = Middleware::new(engine, ds.pyramid.clone(), LatencyProfile::paper(), 4, 5);
    let mut slow_requests = 0usize;
    for step in &session.steps {
        let r = mw.request(step.tile, step.mv).expect("tile exists");
        if r.latency.as_millis() > 500 {
            slow_requests += 1;
        }
    }
    let stats = mw.stats();
    println!(
        "  hit rate {:.0}%  avg latency {:.1} ms  (> 500 ms on {}/{} requests)",
        stats.hit_rate() * 100.0,
        stats.avg_latency().as_secs_f64() * 1e3,
        slow_requests,
        stats.requests
    );
    println!(
        "  phase mix: Foraging {}  Navigation {}  Sensemaking {}",
        stats.per_phase[0], stats.per_phase[1], stats.per_phase[2]
    );
    println!(
        "  no-prefetch baseline would average {:.0} ms per request",
        LatencyProfile::paper().miss.as_secs_f64() * 1e3
    );
}
