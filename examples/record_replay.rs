//! Record & replay: persist study traces to disk, load them back, and
//! evaluate models offline — the workflow the paper's own evaluation
//! used ("we ran our models in parallel while stepping through tile
//! request logs", §5.2.2).
//!
//! ```sh
//! cargo run --example record_replay --release
//! ```

use forecache::core::MomentumRecommender;
use forecache::sim::dataset::{DatasetConfig, StudyDataset};
use forecache::sim::replay::{loocv, ModelPredictor};
use forecache::sim::study::{Study, StudyConfig};
use forecache::sim::terrain::TerrainConfig;
use forecache::sim::trace;

fn main() {
    // 1. Record: simulate a small study and write the request logs.
    let ds = StudyDataset::build(DatasetConfig {
        terrain: TerrainConfig {
            size: 256,
            ..TerrainConfig::default()
        },
        levels: 4,
        tile: 32,
        ..DatasetConfig::default()
    });
    let study = Study::generate(&ds, &StudyConfig { num_users: 6 });
    let dir = std::env::temp_dir().join("forecache_traces");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("study.trace");
    trace::save_to(&path, &study.traces).expect("write traces");
    println!(
        "recorded {} traces ({} requests) to {}",
        study.traces.len(),
        study.total_requests(),
        path.display()
    );

    // 2. Replay: load the logs back and evaluate a model offline.
    let loaded = trace::load_from(&path).expect("read traces");
    assert_eq!(loaded, study.traces);
    println!("loaded traces match the recorded session logs");

    println!("\nMomentum accuracy by prefetch budget (leave-one-user-out):");
    println!("{:>3} {:>10}", "k", "accuracy");
    for k in [1, 2, 4, 8] {
        let r = loocv(&loaded, k, |_| {
            Box::new(ModelPredictor::new(
                Box::new(MomentumRecommender),
                ds.pyramid.clone(),
            ))
        });
        println!("{k:>3} {:>9.1}%", r.overall * 100.0);
    }
    println!(
        "\n(request logs are plain text — `head {}`)",
        path.display()
    );
}
