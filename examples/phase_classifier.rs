//! Train and inspect the top-level phase classifier (§4.2.2, §5.4.1):
//! leave-one-user-out cross-validated accuracy and the confusion matrix
//! over Foraging / Navigation / Sensemaking.
//!
//! ```sh
//! cargo run --example phase_classifier --release
//! ```

use forecache::core::{Phase, PhaseClassifier};
use forecache::ml::{leave_one_group_out, ConfusionMatrix};
use forecache::sim::dataset::{DatasetConfig, StudyDataset};
use forecache::sim::study::{Study, StudyConfig};
use forecache::sim::terrain::TerrainConfig;

fn main() {
    println!("building dataset and simulating the study…");
    let ds = StudyDataset::build(DatasetConfig {
        terrain: TerrainConfig {
            size: 256,
            ..TerrainConfig::default()
        },
        levels: 4,
        tile: 32,
        ..DatasetConfig::default()
    });
    let study = Study::generate(&ds, &StudyConfig { num_users: 10 });
    let pd = study.phase_dataset();
    println!(
        "  {} labeled requests; phase mix F/N/S = {:.2}/{:.2}/{:.2}",
        pd.len(),
        pd.label_distribution()[0],
        pd.label_distribution()[1],
        pd.label_distribution()[2]
    );

    println!("\nleave-one-user-out cross-validation…");
    let folds = leave_one_group_out(&pd.users);
    let mut cm = ConfusionMatrix::new(3);
    let mut per_user = Vec::new();
    for (train_idx, test_idx) in folds {
        let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| pd.features[i].clone()).collect();
        let train_y: Vec<usize> = train_idx.iter().map(|&i| pd.labels[i]).collect();
        let clf = PhaseClassifier::train_on_features(&train_x, &train_y);
        let mut fold_cm = ConfusionMatrix::new(3);
        for &i in &test_idx {
            let pred = clf.predict_features(&pd.features[i]);
            fold_cm.add(pd.labels[i], pred);
        }
        per_user.push(fold_cm.accuracy());
        cm.merge(&fold_cm);
    }

    println!("\nconfusion matrix (rows = truth, cols = predicted):");
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "", "Foraging", "Navigation", "Sensemaking"
    );
    for truth in Phase::ALL {
        print!("{:>14}", truth.name());
        for pred in Phase::ALL {
            print!(" {:>10}", cm.get(truth.index(), pred.index()));
        }
        println!();
    }
    println!("\nper-class recall:");
    for p in Phase::ALL {
        println!("  {:<12} {:.3}", p.name(), cm.recall(p.index()));
    }
    let best = per_user.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\noverall accuracy {:.1}% (paper: 82%); best user {:.1}% (paper: \"90% or higher\" for some users)",
        cm.accuracy() * 100.0,
        best * 100.0
    );
}
