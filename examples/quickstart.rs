//! Quickstart: build a tiny dataset, run a ForeCache middleware session,
//! and watch prefetching turn ~1 s misses into ~20 ms hits.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use forecache::array::{DenseArray, LatencyModel, Schema};
use forecache::core::engine::PhaseSource;
use forecache::core::signature::{attach_signatures, SignatureConfig};
use forecache::core::{
    AbRecommender, AllocationStrategy, EngineConfig, LatencyProfile, Middleware, PredictionEngine,
    SbConfig, SbRecommender,
};
use forecache::tiles::{Move, PyramidBuilder, PyramidConfig, Quadrant, TileId};
use std::sync::Arc;

fn main() {
    // 1. A 128x128 gradient dataset, tiled into a 3-level pyramid with a
    //    SciDB-like ~1 s backend fetch cost.
    let schema = Schema::grid2d("DEMO", 128, 128, &["v"]).expect("schema");
    let data: Vec<f64> = (0..128 * 128)
        .map(|i| {
            let (y, x) = (i / 128, i % 128);
            ((x as f64 / 16.0).sin() * (y as f64 / 16.0).cos() + 1.0) / 2.0
        })
        .collect();
    let base = DenseArray::from_vec(schema, data).expect("base array");
    let mut cfg = PyramidConfig::simple(3, 32, &["v"]);
    cfg.latency = LatencyModel::scidb_like();
    let pyramid = Arc::new(PyramidBuilder::new().build(&base, &cfg).expect("pyramid"));
    let mut sig_cfg = SignatureConfig::ndsi("v");
    sig_cfg.domain = (0.0, 1.0);
    attach_signatures(&pyramid, &sig_cfg);
    println!(
        "pyramid: {} levels, {} tiles",
        pyramid.geometry().levels,
        pyramid.store().backend_len()
    );

    // 2. A prediction engine: the AB Markov model trained on pan-heavy
    //    traces, plus the SB signature model.
    let right = Move::PanRight.index() as u16;
    let down = Move::PanDown.index() as u16;
    let traces: Vec<Vec<u16>> = vec![
        vec![right; 10],
        vec![right, right, right, down, right, right, right],
    ];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    let engine = PredictionEngine::new(
        pyramid.geometry(),
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::all_equal()),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    );

    // 3. A browsing session: zoom to the detailed level, then pan right.
    let mut mw = Middleware::new(engine, pyramid, LatencyProfile::paper(), 4, 5);
    let path = [
        (TileId::new(0, 0, 0), None),
        (TileId::new(1, 0, 0), Some(Move::ZoomIn(Quadrant::Nw))),
        (TileId::new(2, 0, 0), Some(Move::ZoomIn(Quadrant::Nw))),
        (TileId::new(2, 0, 1), Some(Move::PanRight)),
        (TileId::new(2, 0, 2), Some(Move::PanRight)),
        (TileId::new(2, 0, 3), Some(Move::PanRight)),
        (TileId::new(2, 1, 3), Some(Move::PanDown)),
    ];
    println!(
        "\n{:<12} {:>10} {:>6} {:<12} prefetched",
        "tile", "latency", "hit", "phase"
    );
    for (tile, mv) in path {
        let r = mw.request(tile, mv).expect("tile exists");
        println!(
            "{:<12} {:>8.1}ms {:>6} {:<12} {}",
            tile.to_string(),
            r.latency.as_secs_f64() * 1e3,
            if r.cache_hit { "HIT" } else { "miss" },
            r.phase.to_string(),
            r.prefetched
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    let stats = mw.stats();
    println!(
        "\n{} requests, {:.0}% hit rate, avg latency {:.1} ms",
        stats.requests,
        stats.hit_rate() * 100.0,
        stats.avg_latency().as_secs_f64() * 1e3
    );
    println!(
        "without prefetching every request would cost ~{:.0} ms",
        LatencyProfile::paper().miss.as_secs_f64() * 1e3
    );
}
