//! Multi-user client/server demo: a ForeCache TCP server sharing one
//! tile pyramid across several concurrent browsing sessions (§3, §5.5:
//! "many users can actively navigate the data freely and in parallel")
//! — running the multi-user serving core: a lock-striped shared tile
//! cache (communal prefetches, fairly repartitioned budgets) plus
//! cross-session predict batching.
//!
//! ```sh
//! cargo run --example multiuser_server --release
//! ```

use forecache::core::engine::PhaseSource;
use forecache::core::{
    AbRecommender, AllocationStrategy, EngineConfig, PredictionEngine, SbConfig, SbRecommender,
};
use forecache::server::{Client, EngineFactory, MultiUserServing, Server, ServerConfig};
use forecache::sim::dataset::{DatasetConfig, StudyDataset};
use forecache::sim::terrain::TerrainConfig;
use forecache::tiles::{Move, Quadrant, TileId};
use std::sync::Arc;

fn main() {
    println!("building shared NDSI dataset…");
    let ds = StudyDataset::build(DatasetConfig {
        terrain: TerrainConfig {
            size: 256,
            ..TerrainConfig::default()
        },
        levels: 4,
        tile: 32,
        ..DatasetConfig::default()
    });
    let pyramid = ds.pyramid.clone();

    let engine_pyramid = pyramid.clone();
    let factory: EngineFactory = Arc::new(move || {
        let right = Move::PanRight.index() as u16;
        let zin = Move::ZoomIn(Quadrant::Nw).index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![right; 8], vec![zin, zin, zin, right, right]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            engine_pyramid.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::all_equal()),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    });

    let config = ServerConfig {
        // The multi-user serving core: sessions share a lock-striped
        // tile cache and coalesce concurrent predictions.
        multi_user: Some(MultiUserServing::default()),
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", pyramid, factory, config).expect("server binds");
    let addr = server.addr();
    println!("server listening on {addr} (multi-user: shared cache + batched predicts)");

    // Three users explore different corners of the dataset concurrently.
    let walks: Vec<Vec<(TileId, Option<Move>)>> = vec![
        vec![
            (TileId::ROOT, None),
            (TileId::new(1, 0, 0), Some(Move::ZoomIn(Quadrant::Nw))),
            (TileId::new(1, 0, 1), Some(Move::PanRight)),
            (TileId::new(1, 1, 1), Some(Move::PanDown)),
        ],
        vec![
            (TileId::ROOT, None),
            (TileId::new(1, 1, 1), Some(Move::ZoomIn(Quadrant::Se))),
            (TileId::new(2, 2, 2), Some(Move::ZoomIn(Quadrant::Nw))),
            (TileId::new(2, 2, 3), Some(Move::PanRight)),
            (TileId::new(2, 2, 2), Some(Move::PanLeft)),
        ],
        vec![
            (TileId::ROOT, None),
            (TileId::new(1, 1, 0), Some(Move::ZoomIn(Quadrant::Sw))),
            (TileId::new(2, 2, 0), Some(Move::ZoomIn(Quadrant::Nw))),
            (TileId::new(2, 3, 0), Some(Move::PanDown)),
        ],
    ];

    let handles: Vec<_> = walks
        .into_iter()
        .enumerate()
        .map(|(uid, walk)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, 5).expect("connect");
                for (tile, mv) in walk {
                    let a = client.request_tile(tile, mv).expect("tile");
                    println!(
                        "user {uid}: {:<9} {:>7.1}ms {}",
                        tile.to_string(),
                        a.latency.as_secs_f64() * 1e3,
                        if a.cache_hit { "HIT" } else { "miss" }
                    );
                }
                let stats = client.stats().expect("stats");
                client.bye().expect("bye");
                (uid, stats)
            })
        })
        .collect();

    println!("\nper-session summaries:");
    for h in handles {
        let (uid, stats) = h.join().expect("client thread");
        println!(
            "  user {uid}: {} requests, {} hits, avg {:.1} ms",
            stats.requests,
            stats.hits,
            stats.avg_latency.as_secs_f64() * 1e3
        );
    }
    if let Some(shared) = server.shared_cache_stats() {
        println!(
            "shared cache: {} hits / {} misses, {} cross-session hits, {} evictions",
            shared.hits, shared.misses, shared.cross_session_hits, shared.evictions
        );
    }
    if let Some(sched) = server.scheduler_stats() {
        println!(
            "predict scheduler: {} jobs in {} batches (widest {})",
            sched.jobs, sched.batches, sched.largest_batch
        );
    }
    server.shutdown();
    println!("server stopped");
}
