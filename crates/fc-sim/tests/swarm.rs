//! Socket-level swarm runs against the reactor: the wire-path
//! equivalent of the in-process chaos harness, asserting the PR-7
//! robustness invariants hold when every session rides the event loop.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, FaultPlan, FaultRates, FaultWindow,
    PredictionEngine, RetryPolicy, SbConfig, SbRecommender,
};
use fc_server::{EngineFactory, FaultSetup, MultiUserServing, Server, ServerConfig, SessionLimits};
use fc_sim::dataset::{DatasetConfig, StudyDataset};
use fc_sim::swarm::{run_swarm, SwarmConfig};
use fc_tiles::Move;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn factory(ds: &StudyDataset) -> EngineFactory {
    let engine_pyramid = ds.pyramid.clone();
    Arc::new(move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            engine_pyramid.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::AbOnly,
                ..EngineConfig::default()
            },
        )
    })
}

fn wait_drained(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_sessions() != 0 {
        assert!(
            Instant::now() < deadline,
            "sessions failed to drain: {} still active",
            server.active_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn swarm_completes_a_clean_run_on_the_reactor() {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let mut server = Server::bind(
        "127.0.0.1:0",
        ds.pyramid.clone(),
        factory(&ds),
        ServerConfig {
            reactor: true,
            multi_user: Some(MultiUserServing::default()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let cfg = SwarmConfig {
        sessions: 32,
        requests_per_session: 8,
        pace: Duration::from_millis(5),
        ..SwarmConfig::default()
    };
    let r = run_swarm(server.addr(), &cfg);
    assert_eq!(r.requests, 32 * 8, "every scripted request answered");
    assert_eq!(r.errors, 0, "a clean run has no error replies");
    assert_eq!(
        r.served_requests, r.requests,
        "server-side accounting matches the wire"
    );
    assert!(
        r.prefetch_used <= r.prefetch_issued,
        "used {} > issued {}",
        r.prefetch_used,
        r.prefetch_issued
    );
    assert!(r.latency_quantile(0.5) <= r.latency_quantile(0.99));
    wait_drained(&server);
    server.shutdown();
}

/// The socket-level chaos run: transient backend faults mid-window,
/// bounded write queues, liveness timeouts — all at once, through the
/// reactor. The PR-7 invariants must survive the substrate change: no
/// panic escapes (the server keeps serving afterwards), accounting
/// balances (every attempt is answered exactly once, failures and
/// all), and session teardown reclaims every slot.
#[test]
fn chaos_swarm_through_the_reactor_preserves_invariants() {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let plan = FaultPlan::windowed(
        23,
        FaultWindow {
            from: 2,
            until: 6,
            rates: FaultRates {
                transient_per_mille: 400,
                transient_first_attempts: 2,
                ..FaultRates::default()
            },
        },
    );
    let mut server = Server::bind(
        "127.0.0.1:0",
        ds.pyramid.clone(),
        factory(&ds),
        ServerConfig {
            reactor: true,
            multi_user: Some(MultiUserServing::default()),
            faults: Some(FaultSetup {
                plan: Arc::new(plan),
                retry: RetryPolicy::default(),
            }),
            limits: SessionLimits {
                max_write_queue: 64,
                read_timeout: Some(Duration::from_secs(5)),
                write_timeout: Some(Duration::from_secs(5)),
                ..SessionLimits::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let cfg = SwarmConfig {
        sessions: 24,
        requests_per_session: 12,
        pace: Duration::from_millis(5),
        ..SwarmConfig::default()
    };
    let r = run_swarm(server.addr(), &cfg);
    // Accounting balances: every attempt answered exactly once —
    // served replies and structured failures partition the walk.
    assert_eq!(r.requests, 24 * 12);
    assert_eq!(
        r.served_requests + r.errors,
        r.requests,
        "served ({}) + failed ({}) must cover every attempt",
        r.served_requests,
        r.errors
    );
    assert!(
        r.prefetch_used <= r.prefetch_issued,
        "used {} > issued {}",
        r.prefetch_used,
        r.prefetch_issued
    );
    wait_drained(&server);
    // No panic escaped the per-session containment: the reactor is
    // still serving fresh sessions.
    let mut probe = fc_server::Client::connect(server.addr(), 2).expect("reactor still alive");
    probe
        .request_tile(fc_tiles::TileId::ROOT, None)
        .expect("still serving");
    probe.bye().expect("bye");
    server.shutdown();
}
