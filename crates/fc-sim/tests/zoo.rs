//! Workload-zoo suite: every zoo workload replays bit-identically
//! from its seed through a full middleware session with the burst
//! scheduler active; the zoom-dive drives all three analysis-phase
//! buckets with balanced accounting; and the flash-crowd runs under a
//! backend brownout with the burst scheduler on, holding every chaos
//! invariant. Run with `cargo test -p fc-sim --test zoo`.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, BurstConfig, EngineConfig, FaultPlan, LatencyProfile,
    Middleware, PredictionEngine, RetryPolicy, SbConfig, SbRecommender, TrafficPhase,
};
use fc_sim::multiuser::{CacheImpl, MultiUserConfig};
use fc_sim::zoo::{self, replay_workload, Workload, ZOO_NAMES};
use fc_sim::{assert_invariants, run_chaos, ChaosConfig};
use fc_tiles::{Geometry, Move, Pyramid, PyramidBuilder, PyramidConfig};
use std::sync::Arc;

fn pyramid() -> Arc<Pyramid> {
    let schema = fc_array::Schema::grid2d("G", 128, 128, &["v"]).unwrap();
    let data: Vec<f64> = (0..128 * 128).map(|i| (i % 128) as f64 / 128.0).collect();
    let base = fc_array::DenseArray::from_vec(schema, data).unwrap();
    let mut cfg = PyramidConfig::simple(3, 32, &["v"]);
    cfg.latency = fc_array::LatencyModel::scidb_like();
    let p = PyramidBuilder::new().build(&base, &cfg).unwrap();
    for id in p.geometry().all_tiles() {
        let t = p.store().fetch_offline(id).unwrap();
        p.store().put_meta(
            id,
            SignatureKind::Hist1D.meta_name(),
            fc_core::signature::hist_signature(&t, "v", (0.0, 1.0), 8),
        );
    }
    p.store().reset_io_stats();
    Arc::new(p)
}

fn engine(g: Geometry) -> PredictionEngine {
    let r = Move::PanRight.index() as u16;
    let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    PredictionEngine::new(
        g,
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    )
}

fn session(p: &Arc<Pyramid>, burst: Option<BurstConfig>) -> Middleware {
    let mut mw = Middleware::new(
        engine(p.geometry()),
        p.clone(),
        LatencyProfile::paper(),
        4,
        4,
    );
    mw.set_burst(burst);
    mw
}

/// Acceptance criterion: every zoo workload — generator *and* full
/// middleware replay with the scheduler active — is bit-identical
/// from its seed. Two independent sessions over two independently
/// generated copies must produce the same response fingerprint.
#[test]
fn zoo_replays_bit_identically_from_seed() {
    let p = pyramid();
    let g = p.geometry();
    for name in ZOO_NAMES {
        let a = zoo::build(name, g, 96, 2024, 0).unwrap();
        let b = zoo::build(name, g, 96, 2024, 0).unwrap();
        assert_eq!(a, b, "{name}: generator must be pure in its seed");
        let ra = replay_workload(&mut session(&p, Some(BurstConfig::default())), &a);
        let rb = replay_workload(&mut session(&p, Some(BurstConfig::default())), &b);
        assert!(ra.served > 0, "{name}: nothing served");
        assert_eq!(
            ra.fingerprint, rb.fingerprint,
            "{name}: replay must be bit-identical from seed"
        );
        assert_eq!(ra.stats, rb.stats, "{name}: stats must match");
    }
}

/// The scheduler-off replay is deterministic too (the A/B baseline
/// leg of `exp_multiuser` depends on it).
#[test]
fn zoo_replays_bit_identically_with_scheduler_off() {
    let p = pyramid();
    let w = zoo::bursty_pan_sprint(p.geometry(), 96, 7, 0);
    let ra = replay_workload(&mut session(&p, None), &w);
    let rb = replay_workload(&mut session(&p, None), &w);
    assert_eq!(ra, rb);
    assert_eq!(ra.stats.per_traffic, [0, 0, 0], "burst off tracks nothing");
}

/// Zoo-backed regression for the analysis-phase accounting: the
/// zoom-dive drives Foraging (coarse pans), Navigation (zooms), and
/// Sensemaking (deep pans) in one session, and the per-phase counts
/// must balance against total requests — as must the traffic-phase
/// counts, which the same replay drives through all three buckets.
#[test]
fn zoom_dive_fills_and_balances_every_phase_bucket() {
    let p = pyramid();
    let w = zoo::zoom_dive(p.geometry(), 200, 5, 0);
    let mut mw = session(&p, Some(BurstConfig::default()));
    let out = replay_workload(&mut mw, &w);
    let s = out.stats;
    assert_eq!(s.requests, out.served);
    assert_eq!(
        s.per_phase.iter().sum::<usize>(),
        s.requests,
        "every request lands in exactly one analysis phase: {s:?}"
    );
    assert!(
        s.per_phase.iter().all(|&n| n > 0),
        "zoom-dive must drive Foraging, Navigation, and Sensemaking: {:?}",
        s.per_phase
    );
    assert_eq!(
        s.per_traffic.iter().sum::<usize>(),
        s.requests,
        "every request lands in exactly one traffic phase: {s:?}"
    );
    assert!(
        s.per_traffic.iter().all(|&n| n > 0),
        "zoom-dive must drive burst, dwell, and idle: {:?}",
        s.per_traffic
    );
}

/// The middleware's classifier recovers each workload's declared
/// traffic structure through a real replay (not just the pure-gap
/// check in the zoo's unit tests): the served per-traffic counts
/// match the declared occupancy of the steps that were served.
#[test]
fn middleware_recovers_declared_structure_on_replay() {
    let p = pyramid();
    for w in zoo::zoo(p.geometry(), 120, 31) {
        let mut mw = session(&p, Some(BurstConfig::default()));
        let out = replay_workload(&mut mw, &w);
        // All zoo tiles exist in the test pyramid, so declared
        // occupancy and served counts are directly comparable.
        assert_eq!(out.served, w.len(), "{}: unservable tiles in zoo", w.name);
        assert_eq!(
            out.stats.per_traffic,
            w.declared_occupancy(),
            "{}: middleware must recover the declared phase structure",
            w.name
        );
    }
}

/// The A/B pyramid: large enough (256²/16-cell tiles → 341 tiles)
/// that a 64-tile shared cache actually churns.
fn ab_pyramid() -> Arc<Pyramid> {
    let schema = fc_array::Schema::grid2d("AB", 256, 256, &["v"]).unwrap();
    let data: Vec<f64> = (0..256 * 256).map(|i| (i % 256) as f64 / 256.0).collect();
    let base = fc_array::DenseArray::from_vec(schema, data).unwrap();
    let mut pcfg = PyramidConfig::simple(4, 16, &["v"]);
    pcfg.latency = fc_array::LatencyModel::scidb_like();
    let p = PyramidBuilder::new().build(&base, &pcfg).unwrap();
    for id in p.geometry().all_tiles() {
        let t = p.store().fetch_offline(id).unwrap();
        p.store().put_meta(
            id,
            SignatureKind::Hist1D.meta_name(),
            fc_core::signature::hist_signature(&t, "v", (0.0, 1.0), 8),
        );
    }
    p.store().reset_io_stats();
    Arc::new(p)
}

/// A per-step model with no momentum signal for horizontal runs: its
/// AB corpus is vertical survey traces — the realistic cross-task
/// mismatch the burst scheduler exists for.
fn cross_task_engine(g: Geometry) -> PredictionEngine {
    let d = Move::PanDown.index() as u16;
    let traces: Vec<Vec<u16>> = vec![vec![d; 10]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    PredictionEngine::new(
        g,
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    )
}

/// The multi-session A/B harness is deterministic (single-threaded
/// lockstep interleave), and the acceptance A/B holds: for the
/// bursty-pan-sprint and revisit-loop workloads, turning the burst
/// scheduler on must improve BOTH the hit rate and the
/// useful-prefetch ratio over the uniform per-request baseline.
#[test]
fn scheduler_ab_wins_on_sprint_and_revisit_workloads() {
    // A/B regime, two deliberate choices:
    //  - the pyramid must dwarf the shared cache, or nothing ever
    //    evicts and both legs trivially hit. 256²/16-cell tiles →
    //    341 tiles vs a 64-tile cache shared by 4 sessions;
    //  - the engine's trained corpus is cross-task (vertical survey
    //    runs), so the per-step models carry no momentum signal for
    //    these horizontal sprints — the realistic mismatch the burst
    //    scheduler exists for. The uniform baseline spends 4 fetches
    //    per request on model candidates that churn the communal LRU,
    //    while the scheduler stays reactive mid-burst (holding the
    //    previous plan) and stages the actual run continuation during
    //    dwell via geometric extrapolation, promoting and pinning the
    //    retrace set an anchored pause predicts.
    let p = ab_pyramid();
    let g = p.geometry();
    for name in ["bursty-pan-sprint", "revisit-loop"] {
        let workloads = zoo::crowd(name, g, 256, 4, 77);
        let mk = |burst| fc_sim::zoo::ZooAbConfig {
            cache_capacity: 64,
            shards: 4,
            // A 4-tile uniform budget: wide enough to matter, narrow
            // enough that the per-step models must actually choose —
            // with no momentum signal they spend it on same-column
            // lookalikes while the sprint runs horizontally.
            k: 4,
            burst,
            ..Default::default()
        };
        let off = fc_sim::zoo::run_zoo_shared(&p, || cross_task_engine(g), &workloads, &mk(None));
        let off2 = fc_sim::zoo::run_zoo_shared(&p, || cross_task_engine(g), &workloads, &mk(None));
        assert_eq!(off, off2, "{name}: A/B legs must be deterministic");
        let on = fc_sim::zoo::run_zoo_shared(
            &p,
            || cross_task_engine(g),
            &workloads,
            &mk(Some(BurstConfig::default())),
        );
        assert_eq!(off.requests, on.requests, "{name}: same served work");
        assert!(
            on.hit_rate > off.hit_rate,
            "{name}: hit rate must improve: off {:.3} vs on {:.3}",
            off.hit_rate,
            on.hit_rate
        );
        assert!(
            on.prefetch_efficiency > off.prefetch_efficiency,
            "{name}: useful-prefetch ratio must improve: off {:.3} vs on {:.3}",
            off.prefetch_efficiency,
            on.prefetch_efficiency
        );
        assert_eq!(
            on.per_traffic.iter().sum::<usize>(),
            on.requests,
            "{name}: traffic accounting balances"
        );
    }
}

/// The scheduler's sweep blind spot is closed: on pause-free sweep
/// traffic (spiral, serpentine grid) the default config — burst
/// momentum plus the auto sweep fallback — recovers to within noise
/// of scheduler-off, while the legacy counter-cyclical config (both
/// refinements disabled) demonstrates the blind spot is real. The
/// sprint/revisit wins surviving the same defaults is asserted by
/// `scheduler_ab_wins_on_sprint_and_revisit_workloads` above.
#[test]
fn auto_mode_recovers_sweeps_to_off_parity() {
    let p = ab_pyramid();
    let g = p.geometry();
    for name in ["spiral-sweep", "grid-sweep"] {
        let workloads = zoo::crowd(name, g, 256, 4, 77);
        let mk = |burst| fc_sim::zoo::ZooAbConfig {
            cache_capacity: 64,
            shards: 4,
            k: 4,
            burst,
            ..Default::default()
        };
        let off = fc_sim::zoo::run_zoo_shared(&p, || cross_task_engine(g), &workloads, &mk(None));
        let on = fc_sim::zoo::run_zoo_shared(
            &p,
            || cross_task_engine(g),
            &workloads,
            &mk(Some(BurstConfig::default())),
        );
        let legacy = fc_sim::zoo::run_zoo_shared(
            &p,
            || cross_task_engine(g),
            &workloads,
            &mk(Some(BurstConfig {
                momentum: false,
                auto_window: 0,
                ..BurstConfig::default()
            })),
        );
        // The blind spot: reactive-only bursts with no quiet windows
        // collapse the hit rate (measured: spiral 0.82→0.16, grid
        // 0.93→0.16 at this shape).
        assert!(
            legacy.hit_rate < off.hit_rate - 0.3,
            "{name}: expected the legacy scheduler to collapse on sweeps \
             (the blind spot this test guards): off {:.3} vs legacy {:.3}",
            off.hit_rate,
            legacy.hit_rate
        );
        // The recovery: defaults hold both metrics to off-parity
        // (within noise — spiral actually beats off on both).
        assert!(
            on.hit_rate >= off.hit_rate - 0.02,
            "{name}: sweep must recover to off-parity hit rate: off {:.3} vs on {:.3}",
            off.hit_rate,
            on.hit_rate
        );
        assert!(
            on.prefetch_efficiency >= off.prefetch_efficiency - 0.02,
            "{name}: sweep must recover to off-parity efficiency: off {:.3} vs on {:.3}",
            off.prefetch_efficiency,
            on.prefetch_efficiency
        );
    }
}

/// Chaos cross-coverage: the flash-crowd arrival replayed under a
/// backend brownout with the burst scheduler ACTIVE. Every fault
/// invariant from the chaos harness must hold with counter-cyclical
/// budgets in play, and the traffic accounting must balance across
/// the degradation ladder (clean, degraded, and failed requests).
#[test]
fn flash_crowd_brownout_with_burst_scheduler_holds_invariants() {
    let p = pyramid();
    let g = p.geometry();
    let crowd: Vec<Workload> = zoo::crowd("flash-crowd", g, 48, 4, 1337);
    let traces = crowd.iter().map(|w| w.trace.clone()).collect::<Vec<_>>();
    let think = crowd.iter().map(|w| w.think.clone()).collect::<Vec<_>>();
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 4,
            steps_per_session: 48,
            cache_capacity: 32,
            cache: CacheImpl::Sharded { shards: 4 },
            ..MultiUserConfig::default()
        },
        plan: Arc::new(FaultPlan::brownout(21, 10, 28)),
        retry: RetryPolicy::default(),
        fault_window: (10, 28),
        burst: Some(BurstConfig::default()),
        think,
    };
    let r = run_chaos(&p, move || engine(g), &traces, &cfg);
    assert_invariants(&r);
    assert!(r.burst_active);
    assert_eq!(r.attempts, 4 * 48);
    assert!(
        r.per_traffic[TrafficPhase::Burst.index()] > 0,
        "the storm must register as burst traffic: {:?}",
        r.per_traffic
    );
    assert!(
        r.per_traffic[TrafficPhase::Dwell.index()] > 0,
        "the approach must register as dwell traffic: {:?}",
        r.per_traffic
    );
}
