//! Chaos suite: named fault schedules replayed over the multi-user
//! serving stack, checked against the harness invariants (no escaped
//! panics, bounded cache, balanced accounting, recovery after the
//! fault window). Run with `cargo test -p fc-sim chaos`.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, FaultPlan, PredictionEngine, RetryPolicy,
    SbConfig, SbRecommender,
};
use fc_sim::multiuser::{hotspot_workload, synthetic_workload, CacheImpl, MultiUserConfig};
use fc_sim::{assert_invariants, run_chaos, ChaosConfig};
use fc_tiles::{Geometry, Move, Pyramid, PyramidBuilder, PyramidConfig, TileId};
use std::sync::Arc;

fn pyramid() -> Arc<Pyramid> {
    let schema = fc_array::Schema::grid2d("G", 128, 128, &["v"]).unwrap();
    let data: Vec<f64> = (0..128 * 128).map(|i| (i % 128) as f64 / 128.0).collect();
    let base = fc_array::DenseArray::from_vec(schema, data).unwrap();
    let p = PyramidBuilder::new()
        .build(&base, &PyramidConfig::simple(3, 32, &["v"]))
        .unwrap();
    for id in p.geometry().all_tiles() {
        let v = f64::from(id.x % 3) / 3.0;
        p.store()
            .put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
    }
    Arc::new(p)
}

fn factory(g: Geometry) -> impl Fn() -> PredictionEngine + Sync {
    move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            g,
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    }
}

#[test]
fn chaos_quiet_plan_is_faultless() {
    let p = pyramid();
    let g = p.geometry();
    let traces = synthetic_workload(g, 2, 24, 6);
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 2,
            steps_per_session: 24,
            cache_capacity: 32,
            ..MultiUserConfig::default()
        },
        plan: Arc::new(FaultPlan::quiet(1)),
        retry: RetryPolicy::default(),
        fault_window: (0, u64::MAX),
        burst: None,
        think: Vec::new(),
    };
    let r = run_chaos(&p, factory(g), &traces, &cfg);
    assert_invariants(&r);
    assert_eq!(r.attempts, 2 * 24);
    assert_eq!(r.served, r.attempts, "a quiet plan serves everything");
    assert_eq!(r.degraded, 0);
    assert_eq!(r.failures, 0);
    assert_eq!(r.retries, 0);
}

/// Backend brownout: flaky mid-run window, quiet before and after.
/// The ladder must absorb the window (retries, degraded replies, or
/// clean failures — never a panic or a wedged session) and the
/// sessions must come back to clean cache-assisted serving afterward.
#[test]
fn chaos_backend_brownout_recovers() {
    let p = pyramid();
    let g = p.geometry();
    let traces = synthetic_workload(g, 4, 40, 6);
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 4,
            steps_per_session: 40,
            cache_capacity: 32,
            ..MultiUserConfig::default()
        },
        plan: Arc::new(FaultPlan::brownout(7, 8, 20)),
        retry: RetryPolicy::default(),
        fault_window: (8, 20),
        burst: None,
        think: Vec::new(),
    };
    let r = run_chaos(&p, factory(g), &traces, &cfg);
    assert_invariants(&r);
    assert_eq!(r.attempts, 4 * 40, "every session drained its steps");
    // Outside the window the plan is quiet: clean serving only.
    assert_eq!(r.before.failures + r.before.degraded, 0, "{:?}", r.before);
    assert_eq!(r.after.failures + r.after.degraded, 0, "{:?}", r.after);
    // Inside it, every backend fetch trips the retry ladder at least
    // once (brownout's first attempt always fails).
    assert!(r.during.attempts > 0);
    assert!(r.retries > 0, "the window must exercise retries: {r:?}");
    // Recovery: once the backend heals, the sessions serve (and hit)
    // again rather than staying degraded.
    assert!(r.after.hits > 0, "hit rate must recover: {:?}", r.after);
}

/// Flash crowd + error burst: sessions converge on shared attractors
/// while the backend sheds most fetches outright. The shared cache and
/// the degradation ladder must contain the burst.
#[test]
fn chaos_flash_crowd_error_burst_is_contained() {
    let p = pyramid();
    let g = p.geometry();
    let traces = hotspot_workload(g, 6, 48, 2);
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 6,
            steps_per_session: 48,
            // Tight budget: the flash crowd cannot simply cache its
            // way around the burst.
            cache_capacity: 8,
            cache: CacheImpl::Sharded { shards: 4 },
            ..MultiUserConfig::default()
        },
        plan: Arc::new(FaultPlan::error_burst(11, 10, 26)),
        retry: RetryPolicy::default(),
        fault_window: (10, 26),
        burst: None,
        think: Vec::new(),
    };
    let r = run_chaos(&p, factory(g), &traces, &cfg);
    assert_invariants(&r);
    assert_eq!(r.attempts, 6 * 48);
    // The burst must actually bite…
    assert!(
        r.during.failures + r.during.degraded > 0,
        "the burst must surface in the ladder: {:?}",
        r.during
    );
    // …while staying inside the window,
    assert_eq!(r.before.failures + r.before.degraded, 0, "{:?}", r.before);
    assert_eq!(r.after.failures + r.after.degraded, 0, "{:?}", r.after);
    // and the coalescing scheduler keeps draining under it.
    let sched = r.scheduler.expect("batching on");
    assert!(sched.jobs > 0);
}

/// Degraded backend: a windowless low-grade fault floor. Slow-client
/// pressure comes from latency spikes charged to the shared clock; the
/// run must stay almost entirely served.
#[test]
fn chaos_degraded_backend_stays_mostly_served() {
    let p = pyramid();
    let g = p.geometry();
    let traces = synthetic_workload(g, 4, 32, 5);
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 4,
            steps_per_session: 32,
            cache_capacity: 32,
            ..MultiUserConfig::default()
        },
        plan: Arc::new(FaultPlan::degraded_backend(3)),
        retry: RetryPolicy::default(),
        fault_window: (0, u64::MAX),
        burst: None,
        think: Vec::new(),
    };
    let r = run_chaos(&p, factory(g), &traces, &cfg);
    assert_invariants(&r);
    assert_eq!(r.attempts, 4 * 32);
    // Everything lands in the (unbounded) window bucket.
    assert_eq!(r.before.attempts, 0);
    assert_eq!(r.after.attempts, 0);
    assert_eq!(r.during.attempts, r.attempts);
    // A 10% transient floor under a 3-attempt retry budget should
    // almost never exhaust: the vast majority of attempts serve.
    assert!(
        r.served * 10 >= r.attempts * 9,
        "background flakiness must not dominate: {r:?}"
    );
}

/// One session, batching off: the whole replay — fault decisions,
/// retries, degraded replies, cache contents — is a pure function of
/// the (plan, trace) pair and replays bit-identically.
#[test]
fn chaos_single_session_replay_is_deterministic() {
    let p = pyramid();
    let g = p.geometry();
    let traces = synthetic_workload(g, 1, 36, 5);
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 1,
            steps_per_session: 36,
            cache_capacity: 16,
            batch_predicts: false,
            ..MultiUserConfig::default()
        },
        plan: Arc::new(FaultPlan::brownout(23, 6, 18)),
        retry: RetryPolicy::default(),
        fault_window: (6, 18),
        burst: None,
        think: Vec::new(),
    };
    let a = run_chaos(&p, factory(g), &traces, &cfg);
    let b = run_chaos(&pyramid(), factory(g), &traces, &cfg);
    assert_invariants(&a);
    assert_eq!(a.before, b.before);
    assert_eq!(a.during, b.during);
    assert_eq!(a.after, b.after);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.max_resident, b.max_resident);
    assert_eq!(
        (a.served, a.degraded, a.failures),
        (b.served, b.degraded, b.failures)
    );
}

/// The deepest corner tile is reachable only through faulted fetches
/// once the window opens, but its ancestors stay resident from the
/// warm-up — the ladder must keep answering (degraded) rather than
/// failing, and the payloads must come from the ancestor chain.
#[test]
fn chaos_window_serves_ancestors_not_errors_when_resident() {
    let p = pyramid();
    let g = p.geometry();
    // A two-phase trace: warm the root path, then hammer one deep tile.
    let deep = TileId::new(g.levels - 1, 3, 3);
    let mut steps = vec![fc_sim::trace::TraceStep {
        tile: TileId::ROOT,
        mv: None,
        phase: fc_core::Phase::Foraging,
    }];
    for _ in 0..11 {
        steps.push(fc_sim::trace::TraceStep {
            tile: deep,
            mv: None,
            phase: fc_core::Phase::Foraging,
        });
    }
    let trace = fc_sim::Trace {
        user: 0,
        task: 0,
        steps,
    };
    let cfg = ChaosConfig {
        base: MultiUserConfig {
            sessions: 1,
            steps_per_session: 12,
            cache_capacity: 16,
            batch_predicts: false,
            k: 0,
            ..MultiUserConfig::default()
        },
        // Request 0 (the root warm-up) is clean; every fetch after it
        // fails until the retry budget exhausts.
        plan: Arc::new(FaultPlan::windowed(
            5,
            fc_core::FaultWindow {
                from: 1,
                until: u64::MAX,
                rates: fc_core::FaultRates {
                    transient_per_mille: 1000,
                    transient_first_attempts: u32::MAX,
                    ..fc_core::FaultRates::default()
                },
            },
        )),
        retry: RetryPolicy::default(),
        fault_window: (1, u64::MAX),
        burst: None,
        think: Vec::new(),
    };
    let r = run_chaos(&p, factory(g), &[trace], &cfg);
    assert_invariants(&r);
    assert_eq!(r.attempts, 12);
    assert_eq!(r.before.served, 1, "the warm-up request is clean");
    // Every deep attempt has the root resident in the private history
    // cache: the ladder answers degraded instead of failing.
    assert_eq!(r.failures, 0, "nothing should fail outright: {r:?}");
    assert_eq!(r.during.degraded, 11, "deep attempts degrade: {r:?}");
}
