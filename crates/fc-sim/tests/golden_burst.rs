//! Golden pin: with `BurstConfig: None` the middleware is bit-identical
//! to the pre-burst-scheduler code.
//!
//! The fingerprints below were captured by replaying a recorded
//! multiuser trace through the middleware *before* the burst-aware
//! prefetch scheduler existed. The same replay must keep producing the
//! same fold — over every response (tile id, latency, hit flag, phase,
//! prefetched list, pair-cache delta), the final stats, and the final
//! cache contents — in both private and shared mode, at every SIMD
//! dispatch level (CI runs the suite once per level; prediction is
//! golden-tested bit-identical across levels, so one pin serves all).

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, LatencyProfile, Middleware, MultiUserCache,
    PredictionEngine, SbConfig, SbRecommender, SharedSessionHandle, SharedTileCache,
};
use fc_sim::multiuser::synthetic_workload;
use fc_sim::trace::Trace;
use fc_tiles::{Move, Pyramid, PyramidBuilder, PyramidConfig};
use std::sync::Arc;

/// FNV-1a 64-bit fold; stable across platforms and runs.
struct Fold(u64);

impl Fold {
    fn new() -> Self {
        Fold(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn tile(&mut self, t: fc_tiles::TileId) {
        self.u64(u64::from(t.level));
        self.u64(u64::from(t.y));
        self.u64(u64::from(t.x));
    }
}

fn pyramid() -> Arc<Pyramid> {
    use fc_array::{DenseArray, Schema};
    let schema = Schema::grid2d("G", 128, 128, &["v"]).unwrap();
    let data: Vec<f64> = (0..128 * 128).map(|i| (i % 128) as f64 / 128.0).collect();
    let base = DenseArray::from_vec(schema, data).unwrap();
    let mut cfg = PyramidConfig::simple(3, 32, &["v"]);
    cfg.latency = fc_array::LatencyModel::scidb_like();
    let p = PyramidBuilder::new().build(&base, &cfg).unwrap();
    for id in p.geometry().all_tiles() {
        let t = p.store().fetch_offline(id).unwrap();
        p.store().put_meta(
            id,
            SignatureKind::Hist1D.meta_name(),
            fc_core::signature::hist_signature(&t, "v", (0.0, 1.0), 8),
        );
    }
    p.store().reset_io_stats();
    Arc::new(p)
}

fn engine(p: &Arc<Pyramid>) -> PredictionEngine {
    let r = Move::PanRight.index() as u16;
    let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    PredictionEngine::new(
        p.geometry(),
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    )
}

/// Replays `trace` through `mw`, folding every observable of every
/// response plus the final stats into the fingerprint.
fn replay(mw: &mut Middleware, trace: &Trace, fold: &mut Fold) {
    for (j, step) in trace.steps.iter().enumerate() {
        let mv = if j == 0 { None } else { step.mv };
        let Some(resp) = mw.request(step.tile, mv) else {
            continue;
        };
        fold.tile(resp.tile.id);
        fold.u64(u64::try_from(resp.latency.as_nanos()).unwrap());
        fold.u64(u64::from(resp.cache_hit));
        fold.usize(resp.phase.index());
        fold.usize(resp.prefetched.len());
        for t in &resp.prefetched {
            fold.tile(*t);
        }
        fold.u64(resp.pair_cache.hits);
        fold.u64(resp.pair_cache.misses);
        fold.u64(u64::from(resp.degraded));
    }
    let s = mw.stats();
    fold.usize(s.requests);
    fold.usize(s.hits);
    fold.u64(u64::try_from(s.total_latency.as_nanos()).unwrap());
    for c in s.per_phase {
        fold.usize(c);
    }
    fold.usize(s.degraded);
    fold.usize(s.fetch_failures);
    let cs = mw.cache_stats();
    fold.usize(cs.hits);
    fold.usize(cs.misses);
}

/// Private (single-user) middleware replay, plus the simulated clock.
#[test]
fn burst_config_none_is_bit_identical_private() {
    let p = pyramid();
    let traces = synthetic_workload(p.geometry(), 2, 96, 6);
    let mut fold = Fold::new();
    for trace in &traces {
        let mut mw = Middleware::new(engine(&p), p.clone(), LatencyProfile::paper(), 4, 4);
        replay(&mut mw, trace, &mut fold);
    }
    fold.u64(u64::try_from(p.store().clock().now().as_nanos()).unwrap());
    assert_eq!(
        fold.0, GOLDEN_PRIVATE,
        "private-mode replay diverged from the pre-burst-scheduler middleware"
    );
}

/// Shared-mode replay: two sessions interleaved deterministically on
/// one thread, folding the final communal cache contents as well.
#[test]
fn burst_config_none_is_bit_identical_shared() {
    let p = pyramid();
    let traces = synthetic_workload(p.geometry(), 2, 96, 6);
    let cache: Arc<dyn MultiUserCache> = Arc::new(SharedTileCache::with_shards(256, 4));
    let mut sessions: Vec<Middleware> = traces
        .iter()
        .map(|_| {
            let handle = SharedSessionHandle::open(cache.clone(), None);
            Middleware::new_shared(engine(&p), p.clone(), LatencyProfile::paper(), 4, 4, handle)
        })
        .collect();
    let mut fold = Fold::new();
    let steps = traces[0].steps.len();
    for j in 0..steps {
        for (mw, trace) in sessions.iter_mut().zip(&traces) {
            let step = &trace.steps[j];
            let mv = if j == 0 { None } else { step.mv };
            let Some(resp) = mw.request(step.tile, mv) else {
                continue;
            };
            fold.tile(resp.tile.id);
            fold.u64(u64::try_from(resp.latency.as_nanos()).unwrap());
            fold.u64(u64::from(resp.cache_hit));
            fold.usize(resp.prefetched.len());
            for t in &resp.prefetched {
                fold.tile(*t);
            }
        }
    }
    for mw in &sessions {
        let s = mw.stats();
        fold.usize(s.requests);
        fold.usize(s.hits);
        fold.u64(u64::try_from(s.total_latency.as_nanos()).unwrap());
    }
    // Final communal cache contents, in the cache's own (deterministic)
    // popularity order.
    for (t, n) in cache.popular(usize::MAX) {
        fold.tile(t);
        fold.u64(n);
    }
    let st = cache.stats();
    fold.usize(st.hits);
    fold.usize(st.misses);
    fold.usize(st.cross_session_hits);
    fold.u64(u64::try_from(p.store().clock().now().as_nanos()).unwrap());
    assert_eq!(
        fold.0, GOLDEN_SHARED,
        "shared-mode replay diverged from the pre-burst-scheduler middleware"
    );
}

/// Captured from the tree at the commit *before* the burst scheduler
/// landed (PR 7 head), replaying the workload above.
const GOLDEN_PRIVATE: u64 = 8_000_549_341_828_953_720;
const GOLDEN_SHARED: u64 = 4_225_050_109_384_278_978;
