//! Automatic signature selection (paper §6.2).
//!
//! "We plan to build a general-purpose signature toolbox … and plan to
//! extend ForeCache to learn what signatures work best for a given
//! dataset automatically." This module implements that future-work item:
//! each signature is evaluated standalone on training traces, and the
//! per-signature accuracies become its weight in the combined SB
//! recommender (normalized, floored at a small ε so no signature is
//! silenced outright).

use crate::replay::{replay_trace, AccuracyReport, ModelPredictor};
use crate::trace::Trace;
use fc_core::signature::{SignatureKind, SIGNATURE_KINDS};
use fc_core::{SbConfig, SbRecommender};
use fc_tiles::Pyramid;
use std::sync::Arc;

/// Result of the weight-learning pass.
#[derive(Debug, Clone)]
pub struct LearnedWeights {
    /// `(signature, standalone accuracy, learned weight)` per kind.
    pub per_signature: Vec<(SignatureKind, f64, f64)>,
    /// The resulting SB configuration.
    pub config: SbConfig,
}

/// Learns signature weights from training traces at budget `k`.
///
/// Weights are standalone accuracies normalized to sum 1, floored at
/// 0.05 — a simple, monotone scheme: a signature that predicts this
/// dataset's transitions better gets proportionally more influence in
/// Algorithm 3's weighted ℓ2 combination.
pub fn learn_weights(pyramid: Arc<Pyramid>, train: &[&Trace], k: usize) -> LearnedWeights {
    let mut per_signature = Vec::with_capacity(SIGNATURE_KINDS.len());
    for kind in SIGNATURE_KINDS {
        let mut predictor = ModelPredictor::new(
            Box::new(SbRecommender::new(SbConfig::single(kind))),
            pyramid.clone(),
        );
        let mut outcomes = Vec::new();
        for t in train {
            outcomes.extend(replay_trace(&mut predictor, t, k));
        }
        let acc = AccuracyReport::from_outcomes(&outcomes).overall;
        per_signature.push((kind, acc, 0.0));
    }
    let total: f64 = per_signature.iter().map(|(_, a, _)| a.max(0.05)).sum();
    for (_, a, w) in per_signature.iter_mut() {
        *w = a.max(0.05) / total;
    }
    let config = SbConfig {
        weights: per_signature
            .iter()
            .map(|&(kind, _, w)| (kind, w))
            .collect(),
        ..SbConfig::all_equal()
    };
    LearnedWeights {
        per_signature,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, StudyDataset};
    use crate::study::{Study, StudyConfig};

    #[test]
    fn learned_weights_are_normalized_and_monotone() {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let study = Study::generate(&ds, &StudyConfig { num_users: 3 });
        let train: Vec<&Trace> = study.traces.iter().collect();
        let learned = learn_weights(ds.pyramid.clone(), &train, 3);

        assert_eq!(learned.per_signature.len(), 4);
        let sum: f64 = learned.per_signature.iter().map(|(_, _, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to 1: {sum}");
        // Monotone: better accuracy → weight at least as large.
        for a in &learned.per_signature {
            for b in &learned.per_signature {
                if a.1 > b.1 + 1e-12 {
                    assert!(a.2 >= b.2, "{:?} vs {:?}", a, b);
                }
            }
        }
        assert_eq!(learned.config.weights.len(), 4);
    }

    #[test]
    fn learned_config_is_usable() {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let study = Study::generate(&ds, &StudyConfig { num_users: 3 });
        let train: Vec<&Trace> = study.traces.iter().take(6).collect();
        let learned = learn_weights(ds.pyramid.clone(), &train, 2);
        // The learned config drives a working recommender.
        let mut predictor = ModelPredictor::new(
            Box::new(SbRecommender::new(learned.config)),
            ds.pyramid.clone(),
        );
        let outcomes = replay_trace(&mut predictor, &study.traces[6], 3);
        assert_eq!(outcomes.len(), study.traces[6].len() - 1);
    }
}
