//! The deterministic workload zoo: named, seeded exploration traces
//! with **declared traffic structure**, built for evaluating the
//! burst-aware prefetch scheduler ([`fc_core::BurstConfig`]).
//!
//! Each [`Workload`] carries three parallel tracks per step: the tile
//! request itself (a [`Trace`] the multi-user harness can replay), a
//! **think time** charged to the session timeline before the request
//! (`Middleware::note_idle`), and the **declared traffic phase** the
//! generator intended. The think times are drawn from bands strictly
//! inside the default classifier's hysteresis thresholds — burst steps
//! think 20–180 ms (≤ `burst_enter`), dwell steps 1–8 s (between
//! `burst_exit` and `idle_exit`), idle gaps 35–60 s (≥ `idle_enter`) —
//! so a default-config [`fc_core::BurstTracker`] must recover the
//! declared sequence exactly from step 1 on (step 0 has no gap and
//! stays in the tracker's initial phase). The zoo tests assert this.
//!
//! Every generator is a pure function of `(geometry, steps, seed,
//! session)` driven by a splitmix64 stream: same inputs, bit-identical
//! workload, every time. The `session` salt lets the multi-user
//! harness hand each concurrent analyst its own variant while
//! generators keep any *shared* structure (the flash-crowd target) on
//! the base seed.

use crate::trace::{Trace, TraceStep};
use fc_core::engine::heuristic_phase;
use fc_core::{BurstConfig, BurstTracker, Middleware, MiddlewareStats, Request, TrafficPhase};
use fc_tiles::{Geometry, Move, Quadrant, TileId};
use std::time::Duration;

/// The zoo roster, in registry order.
pub const ZOO_NAMES: [&str; 6] = [
    "bursty-pan-sprint",
    "zoom-dive",
    "spiral-sweep",
    "grid-sweep",
    "revisit-loop",
    "flash-crowd",
];

/// Think-time band for burst-paced steps (strictly ≤ the default
/// `burst_enter` of 200 ms).
const BURST_THINK_MS: (u64, u64) = (20, 180);
/// Think-time band for dwell-paced steps (strictly between the default
/// `burst_exit` 500 ms and `idle_exit` 10 s).
const DWELL_THINK_MS: (u64, u64) = (1_000, 8_000);
/// Think-time band for idle gaps (strictly ≥ the default `idle_enter`
/// of 30 s).
const IDLE_THINK_MS: (u64, u64) = (35_000, 60_000);

/// One zoo entry: a replayable trace plus its think schedule and the
/// traffic structure the generator declared while emitting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Registry name (one of [`ZOO_NAMES`]).
    pub name: &'static str,
    /// Seed the generator ran on (before session salting).
    pub seed: u64,
    /// Session index this variant was built for (0 = canonical).
    pub session: usize,
    /// The tile-request trace (ground-truth analysis-phase labels on
    /// each step, like the study traces).
    pub trace: Trace,
    /// Think time charged to the session timeline *before* each step;
    /// `think[0]` is zero (the first request has no preceding gap).
    pub think: Vec<Duration>,
    /// The traffic phase the generator intended for each step;
    /// `declared[0]` is always [`TrafficPhase::Burst`] (the tracker's
    /// initial state — a single request carries no gap evidence).
    pub declared: Vec<TrafficPhase>,
}

impl Workload {
    /// Steps in the workload.
    pub fn len(&self) -> usize {
        self.trace.steps.len()
    }

    /// Whether the workload has no steps.
    pub fn is_empty(&self) -> bool {
        self.trace.steps.is_empty()
    }

    /// Seconds of declared traffic per phase (burst/dwell/idle
    /// occupancy by *time*, not step count) — what the generator
    /// promises, for comparison against the middleware's `per_traffic`
    /// step counts.
    pub fn declared_occupancy(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for p in &self.declared {
            counts[p.index()] += 1;
        }
        counts
    }

    /// The phase sequence a tracker with config `cfg` recovers from
    /// this workload's think schedule — the exact gap sequence the
    /// middleware's session timeline produces on replay (request
    /// latency cancels out of consecutive gap measurements; only the
    /// explicit think time remains).
    pub fn classify(&self, cfg: BurstConfig) -> Vec<TrafficPhase> {
        let mut t = BurstTracker::new(cfg);
        (0..self.len())
            .map(|i| t.observe((i > 0).then(|| self.think[i])))
            .collect()
    }
}

/// splitmix64 — the zoo's house PRNG: tiny, seedable, and identical
/// on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic generator stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }
}

/// Trace-under-construction: keeps the three tracks in lockstep and
/// refuses illegal moves so generators can probe directions freely.
struct Builder {
    g: Geometry,
    cur: TileId,
    steps: Vec<TraceStep>,
    think: Vec<Duration>,
    declared: Vec<TrafficPhase>,
}

impl Builder {
    fn start(g: Geometry, origin: TileId) -> Self {
        assert!(g.contains(origin), "origin {origin} outside geometry");
        let phase = heuristic_phase(g, &Request::initial(origin));
        Self {
            g,
            cur: origin,
            steps: vec![TraceStep {
                tile: origin,
                mv: None,
                phase,
            }],
            think: vec![Duration::ZERO],
            declared: vec![TrafficPhase::Burst],
        }
    }

    fn len(&self) -> usize {
        self.steps.len()
    }

    /// Think time for a `pace`-classified step.
    fn think_for(pace: TrafficPhase, rng: &mut Rng) -> Duration {
        let (lo, hi) = match pace {
            TrafficPhase::Burst => BURST_THINK_MS,
            TrafficPhase::Dwell => DWELL_THINK_MS,
            TrafficPhase::Idle => IDLE_THINK_MS,
        };
        Duration::from_millis(rng.range(lo, hi))
    }

    /// Pushes one step if `mv` is legal from the current tile; returns
    /// whether it advanced.
    fn push(&mut self, mv: Move, pace: TrafficPhase, rng: &mut Rng) -> bool {
        let Some(next) = self.g.apply(self.cur, mv) else {
            return false;
        };
        if !self.g.contains(next) {
            return false;
        }
        self.cur = next;
        let phase = heuristic_phase(self.g, &Request::new(next, Some(mv)));
        self.steps.push(TraceStep {
            tile: next,
            mv: Some(mv),
            phase,
        });
        self.think.push(Self::think_for(pace, rng));
        self.declared.push(pace);
        true
    }

    /// Pushes `mv`, falling back to the first legal move in `alts` —
    /// generators at a dataset edge turn instead of stalling.
    fn push_or(&mut self, mv: Move, alts: &[Move], pace: TrafficPhase, rng: &mut Rng) {
        if self.push(mv, pace, rng) {
            return;
        }
        for &alt in alts {
            if self.push(alt, pace, rng) {
                return;
            }
        }
        panic!("no legal move from {} among {mv:?} / {alts:?}", self.cur);
    }

    fn finish(self, name: &'static str, seed: u64, session: usize, user: usize) -> Workload {
        debug_assert_eq!(self.steps.len(), self.think.len());
        debug_assert_eq!(self.steps.len(), self.declared.len());
        Workload {
            name,
            seed,
            session,
            trace: Trace {
                user,
                task: 0,
                steps: self.steps,
            },
            think: self.think,
            declared: self.declared,
        }
    }
}

/// Per-session salt: session 0 keeps the base seed so the canonical
/// variant is exactly `build(name, g, steps, seed, 0)`.
fn session_seed(seed: u64, session: usize) -> u64 {
    if session == 0 {
        seed
    } else {
        let mut s = seed ^ (session as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        splitmix64(&mut s)
    }
}

/// Out-and-back pan sprints: a burst of rapid pans one way along a
/// row, a dwell pause (deep prefetch window), then the sprint *back*
/// over the same tiles — the workload where burst-aware residency
/// pays: tiles fetched on the way out are re-requested on the return.
pub fn bursty_pan_sprint(g: Geometry, steps: usize, seed: u64, session: usize) -> Workload {
    let mut rng = Rng::new(session_seed(seed, session) ^ 0xb0b1);
    let level = g.levels - 1;
    let (rows, cols) = g.tiles_at(level);
    let y = rng.range(0, u64::from(rows) - 1) as u32;
    let origin = TileId::new(level, y, rng.range(0, u64::from(cols) / 4) as u32);
    let mut b = Builder::start(g, origin);
    let mut outward = true;
    while b.len() < steps {
        let sprint = rng.range_usize(4, 9).min(steps - b.len());
        let (fwd, back) = if outward {
            (Move::PanRight, Move::PanLeft)
        } else {
            (Move::PanLeft, Move::PanRight)
        };
        for _ in 0..sprint {
            if b.len() >= steps {
                break;
            }
            b.push_or(
                fwd,
                &[back, Move::PanDown, Move::PanUp],
                TrafficPhase::Burst,
                &mut rng,
            );
        }
        // Dwell at the turn-around point: 1–2 slow steps while the
        // scheduler's deep run covers the return leg.
        for _ in 0..rng.range_usize(1, 2) {
            if b.len() >= steps {
                break;
            }
            b.push_or(
                back,
                &[fwd, Move::PanDown, Move::PanUp],
                TrafficPhase::Dwell,
                &mut rng,
            );
        }
        outward = !outward;
    }
    b.finish("bursty-pan-sprint", seed, session, session)
}

/// Zoom dives: dwell-paced context panning at a coarse level
/// (Foraging), a Navigation zoom descent to the deepest level, a
/// burst of detail pans there (Sensemaking), then the climb back out
/// — with an idle think-break every third dive. Drives all three
/// analysis phases *and* all three traffic phases.
pub fn zoom_dive(g: Geometry, steps: usize, seed: u64, session: usize) -> Workload {
    let mut rng = Rng::new(session_seed(seed, session) ^ 0xd1fe);
    assert!(g.levels >= 2, "zoom-dive needs at least two levels");
    let top = g.levels.saturating_sub(2).min(1);
    let (rows, cols) = g.tiles_at(top);
    let origin = TileId::new(
        top,
        rng.range(0, u64::from(rows) - 1) as u32,
        rng.range(0, u64::from(cols) - 1) as u32,
    );
    let mut b = Builder::start(g, origin);
    let mut dive = 0usize;
    while b.len() < steps {
        // Coarse-level survey: slow pans hunting the next region.
        for _ in 0..rng.range_usize(1, 3) {
            if b.len() >= steps {
                break;
            }
            let mv = if rng.range(0, 1) == 0 {
                Move::PanRight
            } else {
                Move::PanDown
            };
            b.push_or(
                mv,
                &[Move::PanLeft, Move::PanUp],
                TrafficPhase::Dwell,
                &mut rng,
            );
        }
        // Descend to the deepest level (Navigation), dwell-paced —
        // the user is reading each level on the way down.
        while b.cur.level + 1 < g.levels && b.len() < steps {
            let q = Quadrant::ALL[rng.range_usize(0, 3)];
            b.push_or(
                Move::ZoomIn(q),
                &[
                    Move::ZoomIn(Quadrant::ALL[0]),
                    Move::ZoomIn(Quadrant::ALL[1]),
                    Move::ZoomIn(Quadrant::ALL[2]),
                    Move::ZoomIn(Quadrant::ALL[3]),
                ],
                TrafficPhase::Dwell,
                &mut rng,
            );
        }
        // Detail burst at depth (Sensemaking pans).
        for _ in 0..rng.range_usize(3, 7) {
            if b.len() >= steps {
                break;
            }
            let mv = if rng.range(0, 1) == 0 {
                Move::PanRight
            } else {
                Move::PanLeft
            };
            b.push_or(
                mv,
                &[Move::PanDown, Move::PanUp],
                TrafficPhase::Burst,
                &mut rng,
            );
        }
        // Climb back out (Navigation); idle break every third dive.
        dive += 1;
        let mut first_out = true;
        while b.cur.level > top && b.len() < steps {
            let pace = if first_out && dive.is_multiple_of(3) {
                TrafficPhase::Idle
            } else {
                TrafficPhase::Dwell
            };
            first_out = false;
            b.push_or(Move::ZoomOut, &[], pace, &mut rng);
        }
    }
    b.finish("zoom-dive", seed, session, session)
}

/// An expanding square spiral at the deepest level: burst-paced legs
/// with a dwell step at each corner (legs grow 1, 1, 2, 2, 3, 3, …).
/// The spiral revisits no tile, so it stresses the *prediction* side:
/// only direction-following prefetch helps.
pub fn spiral_sweep(g: Geometry, steps: usize, seed: u64, session: usize) -> Workload {
    let mut rng = Rng::new(session_seed(seed, session) ^ 0x59a1);
    let level = g.levels - 1;
    let (rows, cols) = g.tiles_at(level);
    let origin = TileId::new(level, rows / 2, cols / 2);
    let mut b = Builder::start(g, origin);
    let legs = [Move::PanRight, Move::PanDown, Move::PanLeft, Move::PanUp];
    let mut leg = 0usize;
    let mut len = 1usize;
    while b.len() < steps {
        let mv = legs[leg % 4];
        for i in 0..len {
            if b.len() >= steps {
                break;
            }
            // The corner step of each leg is the dwell beat.
            let pace = if i + 1 == len {
                TrafficPhase::Dwell
            } else {
                TrafficPhase::Burst
            };
            b.push_or(
                mv,
                &[legs[(leg + 1) % 4], legs[(leg + 3) % 4]],
                pace,
                &mut rng,
            );
        }
        leg += 1;
        if leg.is_multiple_of(2) {
            len += 1;
        }
    }
    b.finish("spiral-sweep", seed, session, session)
}

/// A serpentine full-row scan at the deepest level: burst across each
/// row, dwell on the row-turn (the paper's Foraging sweep, paced the
/// way real scans are — fast inside a row, a pause at each edge).
pub fn grid_sweep(g: Geometry, steps: usize, seed: u64, session: usize) -> Workload {
    let mut rng = Rng::new(session_seed(seed, session) ^ 0x6e1d);
    let level = g.levels - 1;
    let (rows, _) = g.tiles_at(level);
    let origin = TileId::new(level, rng.range(0, u64::from(rows) - 1) as u32, 0);
    let mut b = Builder::start(g, origin);
    let mut rightward = true;
    while b.len() < steps {
        let fwd = if rightward {
            Move::PanRight
        } else {
            Move::PanLeft
        };
        if !b.push(fwd, TrafficPhase::Burst, &mut rng) {
            // Row edge: dwell turn onto the next row (wrapping to the
            // top once the bottom row is swept).
            if !b.push(Move::PanDown, TrafficPhase::Dwell, &mut rng) {
                let restart = TileId::new(level, 0, b.cur.x);
                let phase = heuristic_phase(g, &Request::initial(restart));
                b.cur = restart;
                b.steps.push(TraceStep {
                    tile: restart,
                    mv: None,
                    phase,
                });
                b.think
                    .push(Builder::think_for(TrafficPhase::Dwell, &mut rng));
                b.declared.push(TrafficPhase::Dwell);
            }
            rightward = !rightward;
        }
    }
    b.finish("grid-sweep", seed, session, session)
}

/// Laps around a small rectangular circuit: burst laps, a dwell pause
/// at the anchor corner each lap, an idle break every few laps. The
/// canonical revisit workload — every tile comes back around, so
/// prefetched residency (not prediction novelty) decides the hit
/// rate.
pub fn revisit_loop(g: Geometry, steps: usize, seed: u64, session: usize) -> Workload {
    let mut rng = Rng::new(session_seed(seed, session) ^ 0x4e57);
    let level = g.levels - 1;
    let (rows, cols) = g.tiles_at(level);
    let w = rng.range(2, u64::from(cols.min(4)) - 1) as u32;
    let h = rng.range(1, u64::from(rows.min(3)) - 1) as u32;
    let y0 = rng.range(0, u64::from(rows - h) - 1) as u32;
    let x0 = rng.range(0, u64::from(cols - w) - 1) as u32;
    let mut b = Builder::start(g, TileId::new(level, y0, x0));
    let mut lap = 0usize;
    let idle_every = rng.range_usize(3, 5);
    'outer: while b.len() < steps {
        lap += 1;
        // One circuit: right w, down h, left w, up h.
        for (mv, n) in [
            (Move::PanRight, w),
            (Move::PanDown, h),
            (Move::PanLeft, w),
            (Move::PanUp, h),
        ] {
            for _ in 0..n {
                if b.len() >= steps {
                    break 'outer;
                }
                b.push_or(mv, &[], TrafficPhase::Burst, &mut rng);
            }
        }
        // Anchor pause: dwell (or a full idle break every few laps)
        // on an out-and-back shuffle that restores the lap origin
        // exactly (drift would walk the circuit off the grid).
        if b.len() >= steps {
            break;
        }
        let pace = if lap.is_multiple_of(idle_every) {
            TrafficPhase::Idle
        } else {
            TrafficPhase::Dwell
        };
        let (out_mv, back_mv) = if g.apply(b.cur, Move::PanRight).is_some() {
            (Move::PanRight, Move::PanLeft)
        } else {
            (Move::PanLeft, Move::PanRight)
        };
        b.push_or(out_mv, &[], pace, &mut rng);
        if b.len() >= steps {
            break;
        }
        b.push_or(back_mv, &[], TrafficPhase::Dwell, &mut rng);
    }
    b.finish("revisit-loop", seed, session, session)
}

/// Flash crowd: every session converges on one *shared* target tile
/// (drawn from the base seed, not the session salt), idles until the
/// "event", then storms a tight loop around it in burst pace. The
/// multi-user stressor: disjoint approach paths, then maximal overlap
/// under the heaviest request rate.
pub fn flash_crowd(g: Geometry, steps: usize, seed: u64, session: usize) -> Workload {
    // Shared structure from the base seed — all sessions, one target.
    let mut shared = Rng::new(seed ^ 0xf1a5);
    let level = g.levels - 1;
    let (rows, cols) = g.tiles_at(level);
    assert!(
        rows >= 3 && cols >= 3,
        "flash-crowd needs an interior at the deepest level"
    );
    let target = TileId::new(
        level,
        1 + shared.range(0, u64::from(rows) - 3) as u32,
        1 + shared.range(0, u64::from(cols) - 3) as u32,
    );
    let mut rng = Rng::new(session_seed(seed, session) ^ 0xc40d);
    let origin = TileId::new(
        level,
        rng.range(0, u64::from(rows) - 1) as u32,
        rng.range(0, u64::from(cols) - 1) as u32,
    );
    let mut b = Builder::start(g, origin);
    // Approach: dwell-paced Manhattan walk toward the target
    // (horizontal first) — each session arrives from its own side.
    while b.cur != target && b.len() < steps {
        let mv = if b.cur.x != target.x {
            if b.cur.x < target.x {
                Move::PanRight
            } else {
                Move::PanLeft
            }
        } else if b.cur.y < target.y {
            Move::PanDown
        } else {
            Move::PanUp
        };
        b.push_or(mv, &[], TrafficPhase::Dwell, &mut rng);
    }
    // The crowd waits for the event (one idle gap), then storms the
    // target in complete orbits — each orbit returns to the target
    // exactly, so the loop never walks off the grid.
    let storm = [Move::PanRight, Move::PanDown, Move::PanLeft, Move::PanUp];
    let mut first = true;
    while b.len() < steps {
        for (k, mv) in storm.into_iter().enumerate() {
            if b.len() >= steps {
                break;
            }
            let pace = if first && k == 0 {
                TrafficPhase::Idle
            } else {
                TrafficPhase::Burst
            };
            b.push_or(mv, &[], pace, &mut rng);
        }
        first = false;
    }
    b.finish("flash-crowd", seed, session, session)
}

/// Builds the named workload; `None` for names outside [`ZOO_NAMES`].
pub fn build(name: &str, g: Geometry, steps: usize, seed: u64, session: usize) -> Option<Workload> {
    assert!(steps > 0, "a workload needs at least one step");
    Some(match name {
        "bursty-pan-sprint" => bursty_pan_sprint(g, steps, seed, session),
        "zoom-dive" => zoom_dive(g, steps, seed, session),
        "spiral-sweep" => spiral_sweep(g, steps, seed, session),
        "grid-sweep" => grid_sweep(g, steps, seed, session),
        "revisit-loop" => revisit_loop(g, steps, seed, session),
        "flash-crowd" => flash_crowd(g, steps, seed, session),
        _ => return None,
    })
}

/// The full zoo at the canonical session (0), one workload per name,
/// each on a per-name salt of `seed`.
pub fn zoo(g: Geometry, steps: usize, seed: u64) -> Vec<Workload> {
    ZOO_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| build(name, g, steps, seed ^ ((i as u64) << 32), 0).expect("roster name"))
        .collect()
}

/// `sessions` concurrent variants of one named workload (session `i`
/// gets salt `i`; shared structure stays on the base seed).
pub fn crowd(name: &str, g: Geometry, steps: usize, sessions: usize, seed: u64) -> Vec<Workload> {
    (0..sessions)
        .map(|s| build(name, g, steps, seed, s).expect("known workload name"))
        .collect()
}

/// Outcome of replaying one workload through a middleware session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZooOutcome {
    /// Requests actually served (tiles outside the pyramid are
    /// skipped, matching the multi-user harness).
    pub served: usize,
    /// Cache hits among them.
    pub hits: usize,
    /// FNV-1a fingerprint over every response's observable surface
    /// (tile, latency, hit flag, traffic phase, prefetch list) — two
    /// replays are bit-identical iff these match.
    pub fingerprint: u64,
    /// Middleware counters after the replay.
    pub stats: MiddlewareStats,
}

/// Replays `w` through `mw`, charging each step's think time to the
/// session timeline before issuing the request — exactly the gap
/// structure the burst classifier sees in production.
pub fn replay_workload(mw: &mut Middleware, w: &Workload) -> ZooOutcome {
    let mut served = 0usize;
    let mut hits = 0usize;
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            fp ^= u64::from(byte);
            fp = fp.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (i, step) in w.trace.steps.iter().enumerate() {
        mw.note_idle(w.think[i]);
        let mv = if i == 0 { None } else { step.mv };
        let Some(resp) = mw.request(step.tile, mv) else {
            continue;
        };
        served += 1;
        hits += usize::from(resp.cache_hit);
        fold(u64::from(step.tile.level));
        fold(u64::from(step.tile.y));
        fold(u64::from(step.tile.x));
        fold(u64::try_from(resp.latency.as_nanos()).unwrap_or(u64::MAX));
        fold(u64::from(resp.cache_hit));
        fold(resp.traffic.map_or(u64::MAX, |t| t.index() as u64));
        fold(resp.prefetched.len() as u64);
        for t in &resp.prefetched {
            fold(u64::from(t.level));
            fold(u64::from(t.y));
            fold(u64::from(t.x));
        }
    }
    ZooOutcome {
        served,
        hits,
        fingerprint: fp,
        stats: mw.stats(),
    }
}

/// Shape of one deterministic multi-session zoo replay (the
/// scheduler on/off A/B substrate `exp_multiuser` runs per workload).
#[derive(Debug, Clone, Copy)]
pub struct ZooAbConfig {
    /// Shared-cache capacity in tiles — keep it *tight* relative to
    /// `sessions × k`: the A/B's effect is residency under churn.
    pub cache_capacity: usize,
    /// Shared-cache shard count.
    pub shards: usize,
    /// Private last-n history cache per session.
    pub history_cache: usize,
    /// Per-session prefetch budget k.
    pub k: usize,
    /// Latency profile for hit/miss accounting.
    pub profile: fc_core::LatencyProfile,
    /// Burst-aware scheduling (`None` = the uniform baseline leg).
    pub burst: Option<BurstConfig>,
}

impl Default for ZooAbConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 64,
            shards: 4,
            history_cache: 4,
            k: 8,
            profile: fc_core::LatencyProfile::paper(),
            burst: None,
        }
    }
}

/// Aggregate outcome of a multi-session zoo replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZooReport {
    /// Sessions replayed.
    pub sessions: usize,
    /// Requests served across sessions.
    pub requests: usize,
    /// Cache hits among them.
    pub hits: usize,
    /// Hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Speculative tiles fetched across sessions.
    pub prefetch_issued: usize,
    /// Speculative tiles later served as cache hits.
    pub prefetch_used: usize,
    /// Useful-prefetch ratio in `[0, 1]` (0 when nothing issued).
    pub prefetch_efficiency: f64,
    /// Served requests per traffic phase; all zero with burst off.
    pub per_traffic: [usize; 3],
    /// FNV-1a fold of every session's per-response surface, in
    /// deterministic interleave order.
    pub fingerprint: u64,
}

/// Replays `workloads` as concurrent sessions over one shared tile
/// cache, **deterministically**: sessions advance in lockstep
/// round-robin on a single thread (session 0 step 0, session 1 step
/// 0, …, session 0 step 1, …), each charging its own think time to
/// its own session timeline. Same pyramid + workloads + config ⇒
/// bit-identical report — the property the A/B legs need so their
/// delta measures the scheduler, not thread interleaving.
pub fn run_zoo_shared<F>(
    pyramid: &std::sync::Arc<fc_tiles::Pyramid>,
    engine_factory: F,
    workloads: &[Workload],
    cfg: &ZooAbConfig,
) -> ZooReport
where
    F: Fn() -> fc_core::PredictionEngine,
{
    use fc_core::{MultiUserCache, SharedSessionHandle, SharedTileCache};
    assert!(!workloads.is_empty(), "need at least one workload");
    let cache: std::sync::Arc<dyn MultiUserCache> = std::sync::Arc::new(
        SharedTileCache::with_shards(cfg.cache_capacity, cfg.shards.max(1)),
    );
    let mut sessions: Vec<Middleware> = workloads
        .iter()
        .map(|_| {
            let mut mw = Middleware::new_shared(
                engine_factory(),
                pyramid.clone(),
                cfg.profile,
                cfg.history_cache,
                cfg.k,
                SharedSessionHandle::open(cache.clone(), None),
            );
            mw.set_burst(cfg.burst);
            mw
        })
        .collect();

    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            fp ^= u64::from(byte);
            fp = fp.wrapping_mul(0x100_0000_01b3);
        }
    };
    let longest = workloads.iter().map(Workload::len).max().unwrap_or(0);
    let mut requests = 0usize;
    let mut hits = 0usize;
    for step in 0..longest {
        for (mw, w) in sessions.iter_mut().zip(workloads) {
            let Some(t) = w.trace.steps.get(step) else {
                continue;
            };
            mw.note_idle(w.think[step]);
            let mv = if step == 0 { None } else { t.mv };
            let Some(resp) = mw.request(t.tile, mv) else {
                continue;
            };
            requests += 1;
            hits += usize::from(resp.cache_hit);
            fold(u64::from(t.tile.level));
            fold(u64::from(t.tile.y));
            fold(u64::from(t.tile.x));
            fold(u64::from(resp.cache_hit));
            fold(resp.traffic.map_or(u64::MAX, |p| p.index() as u64));
            fold(resp.prefetched.len() as u64);
        }
    }

    let mut prefetch_issued = 0usize;
    let mut prefetch_used = 0usize;
    let mut per_traffic = [0usize; 3];
    for mw in &sessions {
        let s = mw.stats();
        prefetch_issued += s.prefetch_issued;
        prefetch_used += s.prefetch_used;
        for (sum, n) in per_traffic.iter_mut().zip(s.per_traffic) {
            *sum += n;
        }
    }
    ZooReport {
        sessions: sessions.len(),
        requests,
        hits,
        hit_rate: if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        },
        prefetch_issued,
        prefetch_used,
        prefetch_efficiency: if prefetch_issued == 0 {
            0.0
        } else {
            prefetch_used as f64 / prefetch_issued as f64
        },
        per_traffic,
        fingerprint: fp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> Geometry {
        Geometry::new(3, 128, 128, 16, 16)
    }

    #[test]
    fn roster_builds_and_tracks_stay_in_lockstep() {
        for w in zoo(geometry(), 96, 7) {
            assert_eq!(w.len(), 96, "{}", w.name);
            assert_eq!(w.think.len(), w.len(), "{}", w.name);
            assert_eq!(w.declared.len(), w.len(), "{}", w.name);
            assert_eq!(w.think[0], Duration::ZERO, "{}", w.name);
            assert_eq!(w.declared[0], TrafficPhase::Burst, "{}", w.name);
            for s in &w.trace.steps {
                assert!(geometry().contains(s.tile), "{}: {}", w.name, s.tile);
            }
        }
    }

    #[test]
    fn generators_are_bit_identical_from_seed() {
        let g = geometry();
        for name in ZOO_NAMES {
            let a = build(name, g, 128, 42, 3).unwrap();
            let b = build(name, g, 128, 42, 3).unwrap();
            assert_eq!(a, b, "{name} must replay bit-identically from seed");
            let c = build(name, g, 128, 43, 3).unwrap();
            assert_ne!(
                (&a.trace.steps, &a.think),
                (&c.trace.steps, &c.think),
                "{name} must actually use its seed"
            );
        }
    }

    #[test]
    fn default_classifier_recovers_declared_structure() {
        for w in zoo(geometry(), 160, 11) {
            let got = w.classify(BurstConfig::default());
            let agree = got.iter().zip(&w.declared).filter(|(a, b)| a == b).count();
            // Think bands sit strictly inside the hysteresis bands, so
            // recovery is exact — any slack here is a generator bug.
            assert_eq!(
                agree,
                w.len(),
                "{}: classifier recovered {agree}/{} declared phases",
                w.name,
                w.len()
            );
        }
    }

    #[test]
    fn flash_crowd_sessions_share_one_target_but_not_paths() {
        let g = geometry();
        let crowd = crowd("flash-crowd", g, 96, 4, 99);
        // The storm loops all orbit the same tiles: the most-visited
        // tile of every session's tail must coincide.
        let hot = |w: &Workload| -> TileId {
            let mut counts = std::collections::HashMap::new();
            for s in &w.trace.steps[w.len() / 2..] {
                *counts.entry(s.tile).or_insert(0usize) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(t, n)| (n, t.y, t.x))
                .unwrap()
                .0
        };
        let anchor = hot(&crowd[0]);
        for w in &crowd[1..] {
            assert_eq!(hot(w), anchor, "session {} storms elsewhere", w.session);
        }
        assert_ne!(
            crowd[0].trace.steps[0].tile, crowd[1].trace.steps[0].tile,
            "sessions should approach from different origins"
        );
    }

    #[test]
    fn zoom_dive_declares_all_traffic_phases() {
        let w = zoom_dive(geometry(), 200, 5, 0);
        let occ = w.declared_occupancy();
        assert!(
            occ.iter().all(|&n| n > 0),
            "zoom-dive must exercise burst, dwell, and idle: {occ:?}"
        );
    }
}
