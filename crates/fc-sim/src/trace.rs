//! Trace types and a line-oriented codec.
//!
//! "A separate request log was recorded for each user and task.
//! Therefore, by the end of the study we had 54 user traces, each
//! consisting of sequential tile requests." Each request carries its
//! ground-truth phase label (the paper hand-labeled theirs, §5.4.1).

use fc_core::Phase;
use fc_tiles::{Move, TileId};
use std::fmt::Write as _;

/// One labeled request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// The requested tile.
    pub tile: TileId,
    /// The move that produced it (`None` for the first request).
    pub mv: Option<Move>,
    /// Ground-truth analysis phase of this request.
    pub phase: Phase,
}

/// One user-task session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// User index (0..17 in the study).
    pub user: usize,
    /// Task index (0..2).
    pub task: usize,
    /// Sequential requests.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// The move-id sequence of the trace (n-gram training input;
    /// Algorithm 2's `GETMOVESEQUENCE`).
    pub fn move_sequence(&self) -> Vec<u16> {
        self.steps
            .iter()
            .filter_map(|s| s.mv.map(|m| m.index() as u16))
            .collect()
    }

    /// The visited tile sequence (Hotspot training input).
    pub fn tile_sequence(&self) -> Vec<TileId> {
        self.steps.iter().map(|s| s.tile).collect()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Serializes traces to a line-oriented text format:
/// `user task level y x move phase` per request, `#`-comments allowed.
pub fn encode(traces: &[Trace]) -> String {
    let mut out = String::new();
    out.push_str("# forecache trace v1: user task level y x move phase\n");
    for t in traces {
        for s in &t.steps {
            let mv = s.mv.map_or("start", |m| m.name());
            writeln!(
                out,
                "{} {} {} {} {} {} {}",
                t.user,
                t.task,
                s.tile.level,
                s.tile.y,
                s.tile.x,
                mv,
                s.phase.index()
            )
            .expect("write to string");
        }
    }
    out
}

/// Parses the [`encode`] format. Consecutive lines with the same
/// `(user, task)` form one trace.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn decode(text: &str) -> Result<Vec<Trace>, String> {
    let mut traces: Vec<Trace> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(format!("line {}: expected 7 fields", lineno + 1));
        }
        let parse_u = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: bad {what}: {s}", lineno + 1))
        };
        let user = parse_u(fields[0], "user")? as usize;
        let task = parse_u(fields[1], "task")? as usize;
        let level = parse_u(fields[2], "level")? as u8;
        let y = parse_u(fields[3], "y")? as u32;
        let x = parse_u(fields[4], "x")? as u32;
        let mv = if fields[5] == "start" {
            None
        } else {
            Some(
                Move::from_name(fields[5])
                    .ok_or_else(|| format!("line {}: bad move: {}", lineno + 1, fields[5]))?,
            )
        };
        let phase_idx = parse_u(fields[6], "phase")? as usize;
        if phase_idx > 2 {
            return Err(format!("line {}: bad phase id {phase_idx}", lineno + 1));
        }
        let step = TraceStep {
            tile: TileId::new(level, y, x),
            mv,
            phase: Phase::from_index(phase_idx),
        };
        match traces.last_mut() {
            Some(t) if t.user == user && t.task == task => t.steps.push(step),
            _ => traces.push(Trace {
                user,
                task,
                steps: vec![step],
            }),
        }
    }
    Ok(traces)
}

/// Writes traces to a file in the [`encode`] format.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_to(path: &std::path::Path, traces: &[Trace]) -> std::io::Result<()> {
    std::fs::write(path, encode(traces))
}

/// Loads traces from a file written by [`save_to`].
///
/// # Errors
/// I/O errors, or `InvalidData` for malformed content.
pub fn load_from(path: &std::path::Path) -> std::io::Result<Vec<Trace>> {
    let text = std::fs::read_to_string(path)?;
    decode(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::Quadrant;

    fn sample() -> Vec<Trace> {
        vec![
            Trace {
                user: 0,
                task: 1,
                steps: vec![
                    TraceStep {
                        tile: TileId::new(0, 0, 0),
                        mv: None,
                        phase: Phase::Foraging,
                    },
                    TraceStep {
                        tile: TileId::new(1, 1, 1),
                        mv: Some(Move::ZoomIn(Quadrant::Se)),
                        phase: Phase::Navigation,
                    },
                    TraceStep {
                        tile: TileId::new(1, 1, 0),
                        mv: Some(Move::PanLeft),
                        phase: Phase::Sensemaking,
                    },
                ],
            },
            Trace {
                user: 3,
                task: 0,
                steps: vec![TraceStep {
                    tile: TileId::new(2, 3, 3),
                    mv: Some(Move::ZoomOut),
                    phase: Phase::Foraging,
                }],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let traces = sample();
        let text = encode(&traces);
        let back = decode(&text).unwrap();
        assert_eq!(back, traces);
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(decode("1 2 3").is_err());
        assert!(decode("0 0 0 0 0 sideways 0").is_err());
        assert!(decode("0 0 0 0 0 start 9").is_err());
        assert!(decode("a 0 0 0 0 start 0").is_err());
    }

    #[test]
    fn decode_skips_comments_and_blanks() {
        let text = "# header\n\n0 0 0 0 0 start 0\n";
        let traces = decode(text).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let traces = sample();
        let dir = std::env::temp_dir().join("fc_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        save_to(&path, &traces).unwrap();
        assert_eq!(load_from(&path).unwrap(), traces);
        std::fs::write(&path, "garbage line").unwrap();
        assert!(load_from(&path).is_err());
    }

    #[test]
    fn helper_sequences() {
        let t = &sample()[0];
        assert_eq!(t.move_sequence().len(), 2);
        assert_eq!(t.tile_sequence().len(), 3);
        assert!(!t.is_empty());
    }
}
