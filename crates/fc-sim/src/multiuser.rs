//! Multi-user replay: K concurrent simulated analysts over one shared
//! dataset.
//!
//! The paper's evaluation replays one analyst at a time (§5.2.2); the
//! ROADMAP's north star is a backend shared by many. This driver closes
//! the gap: it runs `sessions` OS threads, each a full
//! [`Middleware`] session (engine + private history cache) over one
//! shared pyramid, joined through a [`MultiUserCache`] (the lock-striped
//! [`fc_core::SharedTileCache`] or the retained
//! [`fc_core::SingleMutexTileCache`] reference) and, optionally, the
//! cross-session [`PredictScheduler`]. Sessions replay *different*
//! traces (mixed pan runs and zoom cadences at distinct rows — mixed
//! ROI workloads), so the shared cache sees both disjoint working sets
//! and communal hotspots.
//!
//! The report aggregates what `exp_multiuser` publishes: wall-clock
//! request throughput, p50/p99 per-request predict latency (including
//! any batch rendezvous), hit rates, shared-cache statistics, and
//! scheduler statistics.

use crate::trace::{Trace, TraceStep};
use fc_core::{
    BatchConfig, DatasetRegistry, HotspotBlend, HotspotConfig, LatencyProfile, Middleware,
    MultiUserCache, Phase, PredictScheduler, PredictionEngine, RegistryConfig, SchedulerStats,
    SharedCacheStats, SharedSessionHandle, SharedTileCache, SingleMutexTileCache,
};
use fc_tiles::{Geometry, Move, Pyramid, Quadrant, TileId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which shared-cache implementation the sessions meet in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheImpl {
    /// The retained pre-sharding reference: one global mutex.
    SingleMutex,
    /// The lock-striped cache; `shards` 0 picks the default striping.
    Sharded {
        /// Shard count (power of two, 0 = default).
        shards: usize,
    },
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct MultiUserConfig {
    /// Concurrent sessions (threads).
    pub sessions: usize,
    /// Requests each session replays (its trace repeats as needed).
    pub steps_per_session: usize,
    /// Shared-cache capacity in tiles.
    pub cache_capacity: usize,
    /// Shared-cache implementation under test.
    pub cache: CacheImpl,
    /// Whether concurrent predicts coalesce through a
    /// [`PredictScheduler`].
    pub batch_predicts: bool,
    /// Scheduler fan-in window (ignored unless `batch_predicts`).
    pub batch_window: Duration,
    /// Per-session prefetch budget k.
    pub k: usize,
    /// Private last-n history cache per session.
    pub history_cache: usize,
    /// Latency profile for hit/miss accounting.
    pub profile: LatencyProfile,
}

impl Default for MultiUserConfig {
    fn default() -> Self {
        Self {
            sessions: 8,
            steps_per_session: 64,
            cache_capacity: 1024,
            cache: CacheImpl::Sharded { shards: 0 },
            batch_predicts: true,
            batch_window: Duration::ZERO,
            k: 4,
            history_cache: 4,
            profile: LatencyProfile::paper(),
        }
    }
}

/// Aggregate outcome of one multi-user run.
#[derive(Debug, Clone)]
pub struct MultiUserReport {
    /// Sessions run.
    pub sessions: usize,
    /// Total requests served across sessions.
    pub requests: usize,
    /// Wall-clock time of the concurrent phase.
    pub wall: Duration,
    /// Aggregate served requests (= predicts) per second.
    pub throughput_rps: f64,
    /// Median per-request predict latency.
    pub predict_p50: Duration,
    /// 99th-percentile per-request predict latency.
    pub predict_p99: Duration,
    /// Session-visible cache-hit rate (private + shared combined).
    pub hit_rate: f64,
    /// Shared-cache counters.
    pub shared: SharedCacheStats,
    /// Scheduler counters when batching was on.
    pub scheduler: Option<SchedulerStats>,
}

/// Builds the shared cache named by `cfg`.
pub fn build_cache(cfg: &MultiUserConfig) -> Arc<dyn MultiUserCache> {
    match cfg.cache {
        CacheImpl::SingleMutex => Arc::new(SingleMutexTileCache::new(cfg.cache_capacity)),
        CacheImpl::Sharded { shards: 0 } => Arc::new(SharedTileCache::new(cfg.cache_capacity)),
        CacheImpl::Sharded { shards } => {
            Arc::new(SharedTileCache::with_shards(cfg.cache_capacity, shards))
        }
    }
}

/// Runs `cfg.sessions` concurrent analysts. Session `i` replays
/// `traces[i % traces.len()]`, cycling it until `steps_per_session`
/// requests have been served. `engine_factory` builds each session's
/// private prediction engine (as in `fc-server`).
pub fn run_multi_user<F>(
    pyramid: &Arc<Pyramid>,
    engine_factory: F,
    traces: &[Trace],
    cfg: &MultiUserConfig,
) -> MultiUserReport
where
    F: Fn() -> PredictionEngine + Sync,
{
    assert!(cfg.sessions > 0, "need at least one session");
    assert!(!traces.is_empty(), "need at least one trace");
    let cache = build_cache(cfg);
    let scheduler = cfg.batch_predicts.then(|| {
        Arc::new(PredictScheduler::new(
            engine_factory().sb_model().clone(),
            pyramid.clone(),
            BatchConfig {
                window: cfg.batch_window,
                ..BatchConfig::default()
            },
        ))
    });

    struct SessionOutcome {
        requests: usize,
        hits: usize,
        predict_ns: Vec<u64>,
    }

    let start = Instant::now();
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|i| {
                let trace = &traces[i % traces.len()];
                let cache = cache.clone();
                let scheduler = scheduler.clone();
                let engine = engine_factory();
                let pyramid = pyramid.clone();
                scope.spawn(move || {
                    let handle = SharedSessionHandle::open(cache, scheduler);
                    let mut mw = Middleware::new_shared(
                        engine,
                        pyramid,
                        cfg.profile,
                        cfg.history_cache,
                        cfg.k,
                        handle,
                    );
                    let mut out = SessionOutcome {
                        requests: 0,
                        hits: 0,
                        predict_ns: Vec::with_capacity(cfg.steps_per_session),
                    };
                    'replay: loop {
                        let before = out.requests;
                        for (j, step) in trace.steps.iter().enumerate() {
                            if out.requests >= cfg.steps_per_session {
                                break 'replay;
                            }
                            // A repeat of the trace starts a fresh
                            // navigation arc: no move on its first step.
                            let mv = if j == 0 { None } else { step.mv };
                            let Some(resp) = mw.request(step.tile, mv) else {
                                continue;
                            };
                            out.requests += 1;
                            if resp.cache_hit {
                                out.hits += 1;
                            }
                            out.predict_ns.push(
                                u64::try_from(resp.predict_time.as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        // A full pass that served nothing (empty trace,
                        // or every tile unservable) can never progress:
                        // report what we have instead of spinning.
                        if out.requests == before {
                            break;
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });
    let wall = start.elapsed();

    let requests: usize = outcomes.iter().map(|o| o.requests).sum();
    let hits: usize = outcomes.iter().map(|o| o.hits).sum();
    let mut all_ns: Vec<u64> = outcomes.into_iter().flat_map(|o| o.predict_ns).collect();
    all_ns.sort_unstable();
    let pct = |p: f64| -> Duration {
        if all_ns.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((all_ns.len() as f64 - 1.0) * p).round() as usize;
        Duration::from_nanos(all_ns[idx.min(all_ns.len() - 1)])
    };

    MultiUserReport {
        sessions: cfg.sessions,
        requests,
        wall,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            requests as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        predict_p50: pct(0.50),
        predict_p99: pct(0.99),
        hit_rate: if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        },
        shared: cache.stats(),
        scheduler: scheduler.map(|s| s.stats()),
    }
}

/// Builds `sessions` deterministic scripted traces over `geometry`:
/// each session serpentines along its own deepest-level row (panning
/// right, then left after hitting an edge), descending a row at each
/// turn, with a zoom-out/zoom-in excursion every `zoom_every` steps
/// (offset per session). Distinct rows give disjoint working sets;
/// the shared zoom ancestors give communal hotspots; the per-session
/// zoom cadence mixes the ROI workloads.
pub fn synthetic_workload(
    geometry: Geometry,
    sessions: usize,
    steps: usize,
    zoom_every: usize,
) -> Vec<Trace> {
    let level = geometry.levels - 1;
    let (rows, cols) = geometry.tiles_at(level);
    let mut traces = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let mut y = (s as u32 * 7 + 1) % rows;
        let mut x = (s as u32 * 3) % cols;
        let mut dir_right = (s % 2) == 0;
        let mut steps_out = Vec::with_capacity(steps);
        let mut cur = TileId::new(level, y, x);
        steps_out.push(TraceStep {
            tile: cur,
            mv: None,
            phase: Phase::Foraging,
        });
        let cadence = zoom_every.max(2) + s % 3;
        let mut i = 1usize;
        while steps_out.len() < steps {
            if i.is_multiple_of(cadence) && cur.level > 0 {
                // Zoom out to the parent, then back into the same
                // quadrant — a §5.2.2 "verify context" excursion.
                let parent = cur.parent().expect("level > 0");
                steps_out.push(TraceStep {
                    tile: parent,
                    mv: Some(Move::ZoomOut),
                    phase: Phase::Navigation,
                });
                if steps_out.len() >= steps {
                    break;
                }
                let q = Quadrant::ALL
                    .into_iter()
                    .find(|q| q.dy() == cur.y % 2 && q.dx() == cur.x % 2)
                    .expect("quadrant");
                steps_out.push(TraceStep {
                    tile: cur,
                    mv: Some(Move::ZoomIn(q)),
                    phase: Phase::Navigation,
                });
            } else {
                // Serpentine pan.
                if dir_right && x + 1 < cols {
                    x += 1;
                    cur = TileId::new(level, y, x);
                    steps_out.push(TraceStep {
                        tile: cur,
                        mv: Some(Move::PanRight),
                        phase: Phase::Foraging,
                    });
                } else if !dir_right && x > 0 {
                    x -= 1;
                    cur = TileId::new(level, y, x);
                    steps_out.push(TraceStep {
                        tile: cur,
                        mv: Some(Move::PanLeft),
                        phase: Phase::Foraging,
                    });
                } else {
                    dir_right = !dir_right;
                    y = (y + 1) % rows;
                    cur = TileId::new(level, y, x);
                    steps_out.push(TraceStep {
                        tile: cur,
                        mv: Some(Move::PanDown),
                        phase: Phase::Sensemaking,
                    });
                }
            }
            i += 1;
        }
        traces.push(Trace {
            user: s,
            task: s % 3,
            steps: steps_out,
        });
    }
    traces
}

/// Builds `sessions` deterministic traces that converge on a shared
/// set of `attractors` deepest-level tiles — the workload the
/// cross-session hotspot model is built for. Each session walks
/// Manhattan-style toward its current attractor (horizontal first,
/// then vertical), dwells there for a four-step loop, then heads for
/// the next attractor (rotated per session so approaches differ).
/// Momentum-style prediction misses the *turns* of these walks; a
/// popularity prior pulls the prefetch toward the attractor every
/// session keeps revisiting.
pub fn hotspot_workload(
    geometry: Geometry,
    sessions: usize,
    steps: usize,
    attractors: usize,
) -> Vec<Trace> {
    assert!(attractors > 0, "need at least one attractor");
    let level = geometry.levels - 1;
    let (rows, cols) = geometry.tiles_at(level);
    assert!(
        rows >= 3 && cols >= 3,
        "hotspot workload needs an interior at the deepest level"
    );
    // Interior attractor tiles, deterministically spread.
    let targets: Vec<TileId> = (0..attractors)
        .map(|a| {
            let y = 1 + ((a as u32 * 5 + 1) % (rows - 2));
            let x = 1 + ((a as u32 * 7 + 2) % (cols - 2));
            TileId::new(level, y, x)
        })
        .collect();
    let dwell = [Move::PanRight, Move::PanLeft, Move::PanDown, Move::PanUp];
    let mut traces = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let mut cur = TileId::new(level, (s as u32 * 3) % rows, (s as u32 * 11) % cols);
        let mut steps_out = vec![TraceStep {
            tile: cur,
            mv: None,
            phase: Phase::Foraging,
        }];
        let mut next_target = s; // rotated start: approaches differ
        let mut dwell_i = 0usize;
        let mut target = targets[next_target % targets.len()];
        while steps_out.len() < steps {
            let mv = if cur == target && dwell_i < dwell.len() {
                // Dwell loop around the attractor (interior, so every
                // move is legal); ends back on the attractor.
                let pair = dwell[dwell_i];
                dwell_i += 1;
                pair
            } else if cur == target {
                // Dwell done: head for the next attractor.
                dwell_i = 0;
                next_target += 1;
                target = targets[next_target % targets.len()];
                continue;
            } else if cur.x != target.x {
                if cur.x < target.x {
                    Move::PanRight
                } else {
                    Move::PanLeft
                }
            } else if cur.y < target.y {
                Move::PanDown
            } else {
                Move::PanUp
            };
            cur = geometry.apply(cur, mv).expect("legal move");
            steps_out.push(TraceStep {
                tile: cur,
                mv: Some(mv),
                phase: Phase::Foraging,
            });
        }
        traces.push(Trace {
            user: s,
            task: 0,
            steps: steps_out,
        });
    }
    traces
}

/// Configuration of the multi-dataset, hotspot-model scenario.
#[derive(Debug, Clone)]
pub struct MultiDatasetConfig {
    /// Concurrent sessions (threads) per dataset.
    pub sessions_per_dataset: usize,
    /// Requests each session replays.
    pub steps_per_session: usize,
    /// Global tile budget, partitioned exactly across the dataset
    /// namespaces by the [`DatasetRegistry`].
    pub global_budget: usize,
    /// Shards per namespace cache (0 = default striping).
    pub shards: usize,
    /// The A/B knob: whether sessions carry their namespace's
    /// cross-session hotspot model and blend its prior.
    pub hotspots: bool,
    /// Model cadence (used when `hotspots` is on).
    pub hotspot_cfg: HotspotConfig,
    /// Engine-side blend (applied to every session's engine when
    /// `hotspots` is on).
    pub blend: HotspotBlend,
    /// Per-session prefetch budget k.
    pub k: usize,
    /// Private last-n history cache per session.
    pub history_cache: usize,
    /// Latency profile for hit/miss accounting.
    pub profile: LatencyProfile,
}

impl Default for MultiDatasetConfig {
    fn default() -> Self {
        Self {
            sessions_per_dataset: 4,
            steps_per_session: 96,
            global_budget: 1024,
            shards: 0,
            hotspots: false,
            hotspot_cfg: HotspotConfig::default(),
            blend: HotspotBlend {
                radius: 6,
                phases: [true, true, true],
            },
            k: 4,
            history_cache: 4,
            profile: LatencyProfile::paper(),
        }
    }
}

/// Per-namespace outcome of a multi-dataset run.
#[derive(Debug, Clone)]
pub struct NamespaceReport {
    /// Dataset name.
    pub dataset: String,
    /// The namespace's capacity slice of the global budget.
    pub capacity: usize,
    /// Requests served by this dataset's sessions.
    pub requests: usize,
    /// Session-visible hit rate (private + shared combined).
    pub hit_rate: f64,
    /// Shared-cache counters of the namespace.
    pub shared: SharedCacheStats,
    /// Hotspot-model epoch at the end of the run (0 = model off or
    /// never refreshed).
    pub hotspot_epoch: u64,
}

/// Aggregate outcome of one multi-dataset run.
#[derive(Debug, Clone)]
pub struct MultiDatasetReport {
    /// Wall-clock time of the concurrent phase.
    pub wall: Duration,
    /// Total requests across all namespaces.
    pub requests: usize,
    /// Aggregate served requests per second.
    pub throughput_rps: f64,
    /// One report per dataset, in input order.
    pub namespaces: Vec<NamespaceReport>,
}

/// Runs `cfg.sessions_per_dataset` concurrent analysts on **each** of
/// `datasets` — one [`DatasetRegistry`] namespace per dataset under
/// one global budget, with the cross-session hotspot model on or off
/// (`cfg.hotspots`). Session `i` of a dataset replays
/// `traces[i % traces.len()]` from that dataset's trace set, cycling
/// until `steps_per_session` requests have been served.
pub fn run_multi_dataset<F>(
    datasets: &[(String, Arc<Pyramid>, Vec<Trace>)],
    engine_factory: F,
    cfg: &MultiDatasetConfig,
) -> MultiDatasetReport
where
    F: Fn(&Arc<Pyramid>) -> PredictionEngine + Sync,
{
    assert!(!datasets.is_empty(), "need at least one dataset");
    assert!(cfg.sessions_per_dataset > 0, "need at least one session");
    let registry = DatasetRegistry::new(RegistryConfig {
        budget: cfg.global_budget,
        shards: cfg.shards,
        hotspots: cfg.hotspot_cfg,
    });
    let namespaces: Vec<_> = datasets
        .iter()
        .map(|(name, _, traces)| {
            assert!(!traces.is_empty(), "dataset {name} needs traces");
            registry.attach(name)
        })
        .collect();

    struct SessionOutcome {
        dataset: usize,
        requests: usize,
        hits: usize,
    }

    let start = Instant::now();
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (di, (_, pyramid, traces)) in datasets.iter().enumerate() {
            let ns = &namespaces[di];
            for si in 0..cfg.sessions_per_dataset {
                let trace = &traces[si % traces.len()];
                let pyramid = pyramid.clone();
                let ns = ns.clone();
                let engine_factory = &engine_factory;
                handles.push(scope.spawn(move || {
                    let mut engine = engine_factory(&pyramid);
                    if cfg.hotspots {
                        engine.set_hotspot_blend(Some(cfg.blend));
                    }
                    let cache: Arc<dyn MultiUserCache> = ns.cache().clone();
                    let mut handle = SharedSessionHandle::open(cache, None);
                    if cfg.hotspots {
                        handle = handle.with_hotspots(ns.hotspots().clone());
                    }
                    let mut mw = Middleware::new_shared(
                        engine,
                        pyramid,
                        cfg.profile,
                        cfg.history_cache,
                        cfg.k,
                        handle,
                    );
                    let mut out = SessionOutcome {
                        dataset: di,
                        requests: 0,
                        hits: 0,
                    };
                    'replay: loop {
                        let before = out.requests;
                        for (j, step) in trace.steps.iter().enumerate() {
                            if out.requests >= cfg.steps_per_session {
                                break 'replay;
                            }
                            let mv = if j == 0 { None } else { step.mv };
                            let Some(resp) = mw.request(step.tile, mv) else {
                                continue;
                            };
                            out.requests += 1;
                            if resp.cache_hit {
                                out.hits += 1;
                            }
                        }
                        // A pass that served nothing can never
                        // progress (empty trace or unservable tiles):
                        // report what we have instead of spinning.
                        if out.requests == before {
                            break;
                        }
                    }
                    out
                }));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });
    let wall = start.elapsed();

    let namespaces: Vec<NamespaceReport> = datasets
        .iter()
        .enumerate()
        .map(|(di, (name, _, _))| {
            let requests: usize = outcomes
                .iter()
                .filter(|o| o.dataset == di)
                .map(|o| o.requests)
                .sum();
            let hits: usize = outcomes
                .iter()
                .filter(|o| o.dataset == di)
                .map(|o| o.hits)
                .sum();
            let ns = registry.get(name).expect("attached");
            NamespaceReport {
                dataset: name.clone(),
                capacity: ns.cache().capacity(),
                requests,
                hit_rate: if requests == 0 {
                    0.0
                } else {
                    hits as f64 / requests as f64
                },
                shared: ns.cache().stats(),
                hotspot_epoch: ns.hotspots().epoch(),
            }
        })
        .collect();
    let requests: usize = namespaces.iter().map(|n| n.requests).sum();

    MultiDatasetReport {
        wall,
        requests,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            requests as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        namespaces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};
    use fc_core::engine::PhaseSource;
    use fc_core::signature::SignatureKind;
    use fc_core::{AbRecommender, AllocationStrategy, EngineConfig, SbConfig, SbRecommender};
    use fc_tiles::{PyramidBuilder, PyramidConfig};

    fn pyramid() -> Arc<Pyramid> {
        let schema = Schema::grid2d("G", 128, 128, &["v"]).unwrap();
        let data: Vec<f64> = (0..128 * 128).map(|i| (i % 128) as f64 / 128.0).collect();
        let base = DenseArray::from_vec(schema, data).unwrap();
        let p = PyramidBuilder::new()
            .build(&base, &PyramidConfig::simple(3, 32, &["v"]))
            .unwrap();
        for id in p.geometry().all_tiles() {
            let v = f64::from(id.x % 3) / 3.0;
            p.store()
                .put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
        }
        Arc::new(p)
    }

    fn factory(g: Geometry) -> impl Fn() -> PredictionEngine + Sync {
        move || {
            let r = Move::PanRight.index() as u16;
            let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
            let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
            PredictionEngine::new(
                g,
                AbRecommender::train(refs, 3),
                SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
                PhaseSource::Heuristic,
                EngineConfig {
                    strategy: AllocationStrategy::Updated,
                    ..EngineConfig::default()
                },
            )
        }
    }

    #[test]
    fn synthetic_workload_is_deterministic_and_well_formed() {
        let p = pyramid();
        let g = p.geometry();
        let a = synthetic_workload(g, 4, 40, 8);
        let b = synthetic_workload(g, 4, 40, 8);
        assert_eq!(a, b, "deterministic");
        assert_eq!(a.len(), 4);
        for t in &a {
            assert_eq!(t.steps.len(), 40);
            assert!(t.steps[0].mv.is_none());
            for s in &t.steps {
                assert!(g.contains(s.tile), "in-geometry: {:?}", s.tile);
            }
            // Mixed workload: both pans and zooms appear.
            assert!(t
                .steps
                .iter()
                .any(|s| matches!(s.mv, Some(m) if m.is_pan())));
            assert!(t.steps.iter().any(|s| matches!(s.mv, Some(Move::ZoomOut))));
        }
        // Sessions differ (mixed ROI workloads).
        assert_ne!(a[0].steps, a[1].steps);
    }

    #[test]
    fn concurrent_run_accounts_every_request() {
        let p = pyramid();
        let g = p.geometry();
        let traces = synthetic_workload(g, 4, 30, 6);
        for cache in [CacheImpl::SingleMutex, CacheImpl::Sharded { shards: 4 }] {
            let cfg = MultiUserConfig {
                sessions: 4,
                steps_per_session: 30,
                cache_capacity: 16,
                cache,
                batch_predicts: true,
                k: 3,
                ..MultiUserConfig::default()
            };
            let r = run_multi_user(&p, factory(g), &traces, &cfg);
            assert_eq!(r.requests, 4 * 30, "{cache:?}");
            assert!(r.throughput_rps > 0.0);
            assert!(r.predict_p50 <= r.predict_p99);
            assert!((0.0..=1.0).contains(&r.hit_rate));
            // Stats balance: every shared-cache probe is a hit or miss.
            let s = r.shared;
            assert!(s.hits + s.misses > 0);
            assert!(s.cross_session_hits <= s.hits);
            let sched = r.scheduler.expect("batching on");
            assert_eq!(sched.jobs, 4 * 30, "one predict per request");
            assert!(sched.batches >= 1 && sched.batches <= sched.jobs);
        }
    }

    #[test]
    fn hotspot_workload_converges_on_shared_attractors() {
        let p = pyramid();
        let g = p.geometry();
        let a = hotspot_workload(g, 4, 60, 2);
        let b = hotspot_workload(g, 4, 60, 2);
        assert_eq!(a, b, "deterministic");
        assert_eq!(a.len(), 4);
        // Every session visits every attractor (the communal hotspots).
        let level = g.levels - 1;
        let (rows, cols) = g.tiles_at(level);
        let targets: Vec<TileId> = (0..2)
            .map(|i| {
                TileId::new(
                    level,
                    1 + ((i * 5 + 1) % (rows - 2)),
                    1 + ((i * 7 + 2) % (cols - 2)),
                )
            })
            .collect();
        for t in &a {
            assert_eq!(t.steps.len(), 60);
            assert!(t.steps[0].mv.is_none());
            for s in &t.steps {
                assert!(g.contains(s.tile), "in-geometry: {:?}", s.tile);
            }
            for target in &targets {
                assert!(
                    t.steps.iter().any(|s| s.tile == *target),
                    "user {} never reached attractor {target}",
                    t.user
                );
            }
        }
        // Approaches differ across sessions.
        assert_ne!(a[0].steps, a[1].steps);
    }

    #[test]
    fn multi_dataset_run_partitions_budget_and_reports_per_namespace() {
        let p1 = pyramid();
        let p2 = pyramid();
        let g = p1.geometry();
        let traces = hotspot_workload(g, 2, 40, 2);
        let datasets = vec![
            ("west".to_string(), p1.clone(), traces.clone()),
            ("east".to_string(), p2, traces),
        ];
        for hotspots in [false, true] {
            let cfg = MultiDatasetConfig {
                sessions_per_dataset: 2,
                steps_per_session: 40,
                global_budget: 64,
                shards: 1,
                hotspots,
                hotspot_cfg: HotspotConfig {
                    top_n: 4,
                    refresh_every: 8,
                },
                ..MultiDatasetConfig::default()
            };
            let r = run_multi_dataset(&datasets, |p| factory(p.geometry())(), &cfg);
            assert_eq!(r.requests, 2 * 2 * 40, "hotspots={hotspots}");
            assert_eq!(r.namespaces.len(), 2);
            let caps: usize = r.namespaces.iter().map(|n| n.capacity).sum();
            assert_eq!(caps, 64, "namespace capacities sum to the budget");
            for n in &r.namespaces {
                assert_eq!(n.requests, 2 * 40);
                assert!((0.0..=1.0).contains(&n.hit_rate));
                assert!(n.shared.hits + n.shared.misses > 0);
                if hotspots {
                    assert!(n.hotspot_epoch > 0, "model must have refreshed: {n:?}");
                } else {
                    assert_eq!(n.hotspot_epoch, 0, "model off ⇒ no epochs");
                }
            }
        }
    }

    #[test]
    fn sessions_close_after_the_run() {
        let p = pyramid();
        let g = p.geometry();
        let traces = synthetic_workload(g, 2, 10, 5);
        let cfg = MultiUserConfig {
            sessions: 2,
            steps_per_session: 10,
            cache_capacity: 8,
            batch_predicts: false,
            ..MultiUserConfig::default()
        };
        let cache = build_cache(&cfg);
        // run_multi_user builds its own cache; emulate one session here
        // to check the handle lifecycle directly.
        {
            let h = SharedSessionHandle::open(cache.clone(), None);
            assert_eq!(cache.session_count(), 1);
            drop(h);
        }
        assert_eq!(cache.session_count(), 0);
        let r = run_multi_user(&p, factory(g), &traces, &cfg);
        assert!(r.scheduler.is_none());
        assert_eq!(r.requests, 20);
    }
}
