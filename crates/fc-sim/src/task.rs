//! Study task specifications (§5.3.3).
//!
//! "Participants completed the same search task over three different
//! regions … For each region, participants were asked to identify four
//! data tiles that met specific visual requirements."

use fc_tiles::TileId;

/// A rectangular tile region at one zoom level (half-open bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Zoom level the rectangle lives on.
    pub level: u8,
    /// First tile row.
    pub y0: u32,
    /// One past the last tile row.
    pub y1: u32,
    /// First tile column.
    pub x0: u32,
    /// One past the last tile column.
    pub x1: u32,
}

impl TileRect {
    /// Whether the rectangle contains `id` (projected to the rect's
    /// level when levels differ).
    pub fn contains(&self, id: TileId) -> bool {
        let p = id.project_to(self.level);
        p.y >= self.y0 && p.y < self.y1 && p.x >= self.x0 && p.x < self.x1
    }

    /// Whether the tile's full coverage area intersects the rectangle
    /// (unlike [`TileRect::contains`], which tests only the projected
    /// origin corner for coarser tiles).
    pub fn overlaps(&self, id: TileId) -> bool {
        if id.level <= self.level {
            let shift = u32::from(self.level - id.level);
            let y0 = id.y << shift;
            let y1 = (id.y + 1) << shift;
            let x0 = id.x << shift;
            let x1 = (id.x + 1) << shift;
            y0 < self.y1 && self.y0 < y1 && x0 < self.x1 && self.x0 < x1
        } else {
            self.contains(id)
        }
    }

    /// Iterates the tile ids inside the rectangle.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        let level = self.level;
        (self.y0..self.y1)
            .flat_map(move |y| (self.x0..self.x1).map(move |x| TileId::new(level, y, x)))
    }

    /// Number of tiles inside.
    pub fn len(&self) -> usize {
        ((self.y1 - self.y0) as usize) * ((self.x1 - self.x0) as usize)
    }

    /// Whether the rectangle is degenerate.
    pub fn is_empty(&self) -> bool {
        self.y1 <= self.y0 || self.x1 <= self.x0
    }

    /// Center tile of the rectangle.
    pub fn center(&self) -> TileId {
        TileId::new(
            self.level,
            (self.y0 + self.y1.saturating_sub(1)) / 2,
            (self.x0 + self.x1.saturating_sub(1)) / 2,
        )
    }
}

/// One search task: find `tiles_needed` tiles at `target_level` inside
/// `region` whose NDSI satisfies `threshold`.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Task index (0-based; the paper numbers them 1–3).
    pub id: usize,
    /// Human-readable description.
    pub name: String,
    /// Search region at the target level.
    pub region: TileRect,
    /// Zoom level the answer tiles must be on.
    pub target_level: u8,
    /// NDSI threshold a tile must reach (on `attr`).
    pub threshold: f64,
    /// Attribute the threshold applies to.
    pub attr: String,
    /// Number of qualifying tiles to collect (four in the study).
    pub tiles_needed: usize,
    /// Minimum Manhattan separation between collected tiles (users pick
    /// visually distinct findings; wide ranges force more travel).
    pub min_separation: u32,
}

impl TaskSpec {
    /// The paper's three tasks mapped onto the synthetic terrain's three
    /// ridge systems, for a pyramid with `levels` zoom levels. Region
    /// rectangles are expressed at the target level (one below the
    /// deepest, matching "zoom level 6 [of 9]" ≈ ⅔ depth in the paper).
    ///
    /// Task thresholds and region sizes mirror the difficulty ordering
    /// the paper reports (task 1 longest, task 3 shortest: 35/25/17
    /// average requests).
    pub fn study_tasks(levels: u8) -> Vec<TaskSpec> {
        assert!(levels >= 3, "study tasks need at least 3 levels");
        let target = levels - 1; // deepest level, like "raw data" answers
        let (rows, cols) = (1u32 << target, 1u32 << target); // quadtree tiles
                                                             // Fractions of the unit square covering each ridge system
                                                             // (see `terrain::study_ridges`), padded.
        let frac = |lo: f64, hi: f64, n: u32| -> (u32, u32) {
            let a = (lo * n as f64).floor() as u32;
            let b = ((hi * n as f64).ceil() as u32).clamp(a + 1, n);
            (a, b)
        };
        // Separation between collected tiles scales with resolution so
        // the *geographic* spread users cover is constant across pyramid
        // depths (tiles get smaller as levels deepen).
        let sep_strong = (rows / 10).max(2);
        let sep_weak = (rows / 16).max(1);
        let (w_y, w_x) = (frac(0.05, 0.65, rows), frac(0.02, 0.35, cols));
        let (a_y, a_x) = (frac(0.08, 0.42, rows), frac(0.52, 0.98, cols));
        let (s_y, s_x) = (frac(0.52, 0.98, rows), frac(0.28, 0.58, cols));
        vec![
            TaskSpec {
                id: 0,
                name: "western range (Rockies analogue), highest NDSI".into(),
                region: TileRect {
                    level: target,
                    y0: w_y.0,
                    y1: w_y.1,
                    x0: w_x.0,
                    x1: w_x.1,
                },
                target_level: target,
                threshold: 0.38,
                attr: "ndsi_avg".into(),
                tiles_needed: 4,
                min_separation: sep_strong,
            },
            TaskSpec {
                id: 1,
                name: "north-eastern range (Alps analogue), NDSI ≥ 0.5".into(),
                region: TileRect {
                    level: target,
                    y0: a_y.0,
                    y1: a_y.1,
                    x0: a_x.0,
                    x1: a_x.1,
                },
                target_level: target,
                threshold: 0.26,
                attr: "ndsi_avg".into(),
                tiles_needed: 4,
                min_separation: sep_weak,
            },
            TaskSpec {
                id: 2,
                name: "southern range (Andes analogue), NDSI > 0.25".into(),
                region: TileRect {
                    level: target,
                    y0: s_y.0,
                    y1: s_y.1,
                    x0: s_x.0,
                    x1: s_x.1,
                },
                target_level: target,
                threshold: 0.22,
                attr: "ndsi_avg".into(),
                tiles_needed: 4,
                min_separation: sep_weak,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_and_projects() {
        let r = TileRect {
            level: 3,
            y0: 2,
            y1: 4,
            x0: 0,
            x1: 2,
        };
        assert!(r.contains(TileId::new(3, 2, 1)));
        assert!(!r.contains(TileId::new(3, 4, 0)));
        // Deeper tile projects up into the rect.
        assert!(r.contains(TileId::new(4, 5, 2)));
        // Coarser tile projects down: level-2 tile (1, 0) covers level-3
        // rows 2..4, cols 0..2 — inside.
        assert!(r.contains(TileId::new(2, 1, 0)));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.center(), TileId::new(3, 2, 0));
    }

    #[test]
    fn rect_tiles_enumerates_all() {
        let r = TileRect {
            level: 2,
            y0: 1,
            y1: 3,
            x0: 2,
            x1: 4,
        };
        let tiles: Vec<TileId> = r.tiles().collect();
        assert_eq!(tiles.len(), r.len());
        assert!(tiles.iter().all(|&t| r.contains(t)));
    }

    #[test]
    fn study_tasks_cover_distinct_regions() {
        let tasks = TaskSpec::study_tasks(4);
        assert_eq!(tasks.len(), 3);
        for t in &tasks {
            assert_eq!(t.target_level, 3);
            assert!(!t.region.is_empty());
            assert_eq!(t.tiles_needed, 4);
        }
        // Regions must not fully overlap: centers differ.
        let centers: Vec<TileId> = tasks.iter().map(|t| t.region.center()).collect();
        assert_ne!(centers[0], centers[1]);
        assert_ne!(centers[1], centers[2]);
    }

    #[test]
    fn study_tasks_scale_with_levels() {
        for levels in 3..=7u8 {
            let tasks = TaskSpec::study_tasks(levels);
            let n = 1u32 << (levels - 1);
            for t in &tasks {
                assert!(t.region.y1 <= n);
                assert!(t.region.x1 <= n);
            }
        }
    }
}
