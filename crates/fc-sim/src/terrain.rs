//! Synthetic MODIS-like terrain and the NDSI band pipeline.
//!
//! The generator produces an elevation field (fractal value noise plus
//! three ridge systems), derives snow cover from elevation and latitude,
//! synthesizes VIS and SWIR reflectance bands, and computes the NDSI
//! through the same `join` + `apply` UDF query the paper runs in SciDB
//! (Query 1):
//!
//! ```text
//! store(apply(join(SVIS, SSWIR), ndsi, ndsi_func(...)), NDSI);
//! ```
//!
//! Snowy mountain ranges appear as spatially coherent clusters of
//! high-NDSI cells — the ROIs the paper's users hunt for.

use fc_array::{Database, DenseArray, Query, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Terrain generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TerrainConfig {
    /// Square raw-array side length in cells.
    pub size: usize,
    /// RNG seed (terrain is fully deterministic under it).
    pub seed: u64,
    /// Elevation above which snow is likely (in `[0, 1]`).
    pub snowline: f64,
}

impl Default for TerrainConfig {
    fn default() -> Self {
        Self {
            size: 512,
            seed: 0x7E44A1,
            snowline: 0.55,
        }
    }
}

/// A ridge segment: mountains form along the line `(x0,y0)→(x1,y1)` in
/// unit coordinates.
#[derive(Debug, Clone, Copy)]
pub struct Ridge {
    /// Segment start (unit coords).
    pub a: (f64, f64),
    /// Segment end (unit coords).
    pub b: (f64, f64),
    /// Peak elevation contribution.
    pub amp: f64,
    /// Gaussian half-width of the range (unit coords).
    pub width: f64,
}

/// The three study ranges: west (Rockies analogue, task 1), north-east
/// (Alps analogue, task 2), and south (Andes analogue, task 3). Unit
/// coordinates: x → longitude (east), y → latitude (south).
pub fn study_ridges() -> [Ridge; 3] {
    [
        Ridge {
            a: (0.12, 0.15),
            b: (0.22, 0.55),
            amp: 0.75,
            width: 0.085,
        },
        Ridge {
            a: (0.62, 0.18),
            b: (0.88, 0.30),
            amp: 0.62,
            width: 0.055,
        },
        Ridge {
            a: (0.38, 0.62),
            b: (0.46, 0.93),
            amp: 0.68,
            width: 0.06,
        },
    ]
}

/// All fields produced by the generator.
#[derive(Debug)]
pub struct Terrain {
    /// Elevation in `[0, 1]`.
    pub elevation: DenseArray,
    /// Visible-light reflectance band (`SVIS`).
    pub vis: DenseArray,
    /// Short-wave-infrared reflectance band (`SSWIR`).
    pub swir: DenseArray,
    /// Land/sea mask (1 = land).
    pub mask: DenseArray,
}

/// Hash-based lattice noise: deterministic pseudo-random value in
/// `[0, 1)` for integer lattice coordinates.
fn lattice(seed: u64, xi: i64, yi: i64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(xi as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(yi as u64)
        .wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 27;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Smoothstep-interpolated value noise at `(x, y)` (unit frequency).
fn value_noise(seed: u64, x: f64, y: f64) -> f64 {
    let (x0, y0) = (x.floor(), y.floor());
    let (fx, fy) = (x - x0, y - y0);
    let sx = fx * fx * (3.0 - 2.0 * fx);
    let sy = fy * fy * (3.0 - 2.0 * fy);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice(seed, xi, yi);
    let v10 = lattice(seed, xi + 1, yi);
    let v01 = lattice(seed, xi, yi + 1);
    let v11 = lattice(seed, xi + 1, yi + 1);
    let top = v00 + (v10 - v00) * sx;
    let bot = v01 + (v11 - v01) * sx;
    top + (bot - top) * sy
}

/// Fractal Brownian motion: octaves of value noise, persistence 0.5.
pub fn fbm(seed: u64, x: f64, y: f64, octaves: u32) -> f64 {
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut total = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        total += amp * value_noise(seed.wrapping_add(o as u64), x * freq, y * freq);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    total / norm
}

/// Distance from point `p` to segment `ab`, all in unit coordinates.
fn dist_to_segment(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 <= f64::EPSILON {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Generates the terrain fields.
pub fn generate(cfg: &TerrainConfig) -> Terrain {
    let n = cfg.size;
    let ridges = study_ridges();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let band_noise_seed: u64 = rng.gen();

    let schema = |name: &str, attr: &str| {
        Schema::new(
            name,
            [("y".to_string(), n), ("x".to_string(), n)],
            [attr.to_string()],
        )
        .expect("valid terrain schema")
    };

    let mut elevation = vec![0.0f64; n * n];
    let mut vis = vec![0.0f64; n * n];
    let mut swir = vec![0.0f64; n * n];
    let mut mask = vec![0.0f64; n * n];

    for yi in 0..n {
        for xi in 0..n {
            let u = xi as f64 / n as f64;
            let v = yi as f64 / n as f64;
            // Base continent: low rolling noise.
            let base = 0.30 * fbm(cfg.seed, u * 6.0, v * 6.0, 5);
            // Ridge systems.
            let mut ridge_elev = 0.0f64;
            for r in &ridges {
                let d = dist_to_segment((u, v), r.a, r.b);
                let bump = r.amp * (-d * d / (r.width * r.width)).exp();
                // Craggy modulation so ranges contain distinct peaks.
                let crag = 0.55 + 0.9 * fbm(cfg.seed ^ 0xC4A6, u * 28.0, v * 28.0, 5);
                ridge_elev += bump * crag;
            }
            let elev = (base + ridge_elev).clamp(0.0, 1.0);

            // Snow: above the snowline, colder (higher probability) with
            // altitude; smooth sigmoid edge.
            let snow = 1.0 / (1.0 + (-(elev - cfg.snowline) * 18.0).exp());

            // Band synthesis. Snow is bright in VIS, dark in SWIR
            // (that contrast is what the NDSI detects).
            let noise_v = 0.13 * (fbm(band_noise_seed, u * 56.0, v * 56.0, 4) - 0.5);
            let noise_s = 0.13 * (fbm(band_noise_seed ^ 0x51, u * 56.0, v * 56.0, 4) - 0.5);
            let visr = (0.16 + 0.64 * snow + 0.08 * elev + noise_v).clamp(0.01, 1.0);
            let swirr = (0.44 - 0.34 * snow + 0.05 * (1.0 - elev) + noise_s).clamp(0.01, 1.0);

            let idx = yi * n + xi;
            elevation[idx] = elev;
            vis[idx] = visr;
            swir[idx] = swirr;
            // Ocean where the continent base is very low near the border.
            let border = (u.min(v).min(1.0 - u).min(1.0 - v) * 12.0).min(1.0);
            mask[idx] = if elev * border > 0.02 { 1.0 } else { 0.0 };
        }
    }

    Terrain {
        elevation: DenseArray::from_vec(schema("ELEV", "elevation"), elevation)
            .expect("elevation field"),
        vis: DenseArray::from_vec(schema("SVIS", "reflectance"), vis).expect("vis band"),
        swir: DenseArray::from_vec(schema("SSWIR", "reflectance"), swir).expect("swir band"),
        mask: DenseArray::from_vec(schema("MASK", "land"), mask).expect("mask field"),
    }
}

/// Runs the paper's Query 1 against a fresh [`Database`]: loads the
/// bands, joins them on dimensions, applies the NDSI UDF, and stores the
/// result as `NDSI` with the four study attributes (max/min/avg NDSI and
/// the land/sea mask — §5.1.1).
///
/// Returns the database and the NDSI array.
pub fn build_ndsi_database(cfg: &TerrainConfig) -> (Database, std::sync::Arc<DenseArray>) {
    let terrain = generate(cfg);
    let db = Database::new();
    db.store("SVIS", terrain.vis);
    db.store("SSWIR", terrain.swir);
    db.store("MASK", terrain.mask);

    // Query 1: NDSI = (VIS − SWIR) / (VIS + SWIR), as a UDF over the join.
    let ndsi = Query::scan("SVIS")
        .join(Query::scan("SSWIR"))
        .apply("ndsi", |c| {
            let v = c.attr(0); // SVIS.reflectance
            let s = c.attr(1); // SSWIR.reflectance
            (v - s) / (v + s)
        })
        .execute(&db)
        .expect("Query 1 executes");

    // Flatten to the study schema: max/min/avg NDSI + land mask. The raw
    // level carries identical max/min/avg (one week flattened, §5.1.1);
    // they diverge at coarser zoom levels through per-attribute regrid.
    let mask = db.scan("MASK").expect("mask stored");
    let n = ndsi.shape();
    let schema = Schema::new(
        "NDSI",
        [("y".to_string(), n[0]), ("x".to_string(), n[1])],
        [
            "ndsi_max".to_string(),
            "ndsi_min".to_string(),
            "ndsi_avg".to_string(),
            "land".to_string(),
        ],
    )
    .expect("NDSI study schema");
    let mut out = DenseArray::empty(schema);
    let ai = ndsi.schema().attr_index("ndsi").expect("ndsi attr");
    let mask_vals = mask.attr_values("land").expect("land attr").to_vec();
    for c in ndsi.cells() {
        let v = c.attr(ai);
        let m = mask_vals[c.index()];
        out.fill_cell(c.index(), &[v, v, v, m]).expect("same shape");
    }
    let arr = db.store("NDSI", out);
    (db, arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TerrainConfig {
        TerrainConfig {
            size: 64,
            seed: 42,
            snowline: 0.55,
        }
    }

    #[test]
    fn terrain_is_deterministic() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.elevation, b.elevation);
        assert_eq!(a.vis, b.vis);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_cfg());
        let b = generate(&TerrainConfig {
            seed: 43,
            ..small_cfg()
        });
        assert_ne!(a.elevation, b.elevation);
    }

    #[test]
    fn elevation_and_bands_in_range() {
        let t = generate(&small_cfg());
        for arr in [&t.elevation, &t.vis, &t.swir] {
            for c in arr.cells() {
                let v = c.attr(0);
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn ridges_create_high_ground() {
        let t = generate(&TerrainConfig {
            size: 128,
            ..small_cfg()
        });
        // Sample on the west ridge vs in the flat east-south.
        let on_ridge = t
            .elevation
            .get(
                "elevation",
                &[(0.35 * 128.0) as usize, (0.17 * 128.0) as usize],
            )
            .unwrap()
            .unwrap();
        let off_ridge = t
            .elevation
            .get(
                "elevation",
                &[(0.85 * 128.0) as usize, (0.65 * 128.0) as usize],
            )
            .unwrap()
            .unwrap();
        assert!(
            on_ridge > off_ridge + 0.2,
            "ridge {on_ridge} vs plain {off_ridge}"
        );
    }

    #[test]
    fn ndsi_pipeline_produces_snowy_mountains() {
        let (db, ndsi) = build_ndsi_database(&TerrainConfig {
            size: 128,
            ..small_cfg()
        });
        assert!(db.scan("NDSI").is_ok());
        // NDSI in [-1, 1]; snowy ridge cells positive, plains negative.
        let mut ridge_vals = Vec::new();
        let mut plain_vals = Vec::new();
        for c in ndsi.cells() {
            let coords = c.coords();
            let (v, u) = (coords[0] as f64 / 128.0, coords[1] as f64 / 128.0);
            let val = c.attr(ndsi.schema().attr_index("ndsi_avg").unwrap());
            assert!((-1.0..=1.0).contains(&val));
            if dist_to_segment((u, v), (0.12, 0.15), (0.22, 0.55)) < 0.03 {
                ridge_vals.push(val);
            } else if u > 0.6 && v > 0.6 {
                plain_vals.push(val);
            }
        }
        let ridge_avg: f64 = ridge_vals.iter().sum::<f64>() / ridge_vals.len() as f64;
        let plain_avg: f64 = plain_vals.iter().sum::<f64>() / plain_vals.len() as f64;
        assert!(
            ridge_avg > 0.2 && plain_avg < 0.0,
            "ridge {ridge_avg} plains {plain_avg}"
        );
    }

    #[test]
    fn fbm_is_smooth_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.13;
            let v = fbm(7, x, x * 0.7, 5);
            assert!((0.0..=1.0).contains(&v));
            let v2 = fbm(7, x + 1e-4, x * 0.7, 5);
            assert!((v - v2).abs() < 0.01, "smoothness at {x}");
        }
    }
}
