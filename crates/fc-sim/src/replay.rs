//! The accuracy / latency replay harness (§5.2.2).
//!
//! "To compute this, we ran our models in parallel while stepping through
//! tile request logs, one request at a time. For each requested tile, we
//! collected a ranked list of predictions from each of our recommendation
//! models, and recorded whether the next tile to be requested was located
//! within the list." Varying `k` simulates the middleware cache's space
//! allocation; prediction accuracy equals tile-cache hit rate, and
//! latency follows from the hit/miss profile (§5.5).

use crate::trace::Trace;
use fc_core::{
    LatencyProfile, Phase, PhaseClassifier, PredictionContext, PredictionEngine, Recommender,
    Request, RoiTracker, SessionHistory,
};
use fc_tiles::{Pyramid, TileId};
use std::sync::Arc;
use std::time::Duration;

/// A model under evaluation: observes requests, predicts the next tile.
pub trait Predictor {
    /// Display name for experiment output.
    fn name(&self) -> String;
    /// Clears per-session state (between traces).
    fn reset(&mut self);
    /// Observes the current request (with its ground-truth phase, which
    /// implementations may ignore) and returns up to `k` predictions for
    /// the **next** request.
    fn step(&mut self, req: Request, phase_truth: Phase, k: usize) -> Vec<TileId>;
}

/// Wraps a bottom-level [`Recommender`] (AB, SB, Momentum, Hotspot) as a
/// predictor: maintains history and ROI, ranks the candidate set, trims
/// to `k`.
pub struct ModelPredictor {
    model: Box<dyn Recommender>,
    pyramid: Arc<Pyramid>,
    history: SessionHistory,
    roi: RoiTracker,
    distance: usize,
}

impl ModelPredictor {
    /// Creates a predictor around `model`.
    pub fn new(model: Box<dyn Recommender>, pyramid: Arc<Pyramid>) -> Self {
        Self {
            model,
            pyramid,
            history: SessionHistory::new(12),
            roi: RoiTracker::new(),
            distance: 1,
        }
    }
}

impl Predictor for ModelPredictor {
    fn name(&self) -> String {
        self.model.name().to_string()
    }

    fn reset(&mut self) {
        self.history.clear();
        self.roi.reset();
    }

    fn step(&mut self, req: Request, _phase: Phase, k: usize) -> Vec<TileId> {
        self.history.push(req);
        self.roi.update(&req);
        let geometry = self.pyramid.geometry();
        let candidates = geometry.candidates(req.tile, self.distance);
        let ctx = PredictionContext {
            request: req,
            history: &self.history,
            candidates: &candidates,
            geometry,
            store: self.pyramid.store(),
            roi: self.roi.roi(),
        };
        let mut ranked = self.model.rank(&ctx);
        ranked.truncate(k);
        ranked
    }
}

/// How the two-level engine learns the phase during replay.
pub enum EnginePhaseMode {
    /// Use the engine's own classifier / heuristic (the deployed path).
    Inferred,
    /// Use the hand-labeled ground-truth phase (the §5.4.2 level-isolated
    /// evaluation).
    Oracle,
    /// Use an explicitly supplied classifier trained on the fold.
    Classifier(Box<PhaseClassifier>),
}

/// Wraps the full two-level [`PredictionEngine`].
pub struct EnginePredictor {
    engine: PredictionEngine,
    pyramid: Arc<Pyramid>,
    mode: EnginePhaseMode,
    label: String,
    prev: Option<Request>,
}

impl EnginePredictor {
    /// Creates an engine predictor.
    pub fn new(
        engine: PredictionEngine,
        pyramid: Arc<Pyramid>,
        mode: EnginePhaseMode,
        label: impl Into<String>,
    ) -> Self {
        Self {
            engine,
            pyramid,
            mode,
            label: label.into(),
            prev: None,
        }
    }
}

impl Predictor for EnginePredictor {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn reset(&mut self) {
        self.engine.reset_session();
        self.prev = None;
    }

    fn step(&mut self, req: Request, phase_truth: Phase, k: usize) -> Vec<TileId> {
        self.engine.observe(req);
        let store = self.pyramid.store();
        let out = match &self.mode {
            EnginePhaseMode::Inferred => self.engine.predict(store, k),
            EnginePhaseMode::Oracle => self.engine.predict_with_phase(store, phase_truth, k),
            EnginePhaseMode::Classifier(c) => {
                let phase = c.predict(&req, self.prev.as_ref());
                self.engine.predict_with_phase(store, phase, k)
            }
        };
        self.prev = Some(req);
        out
    }
}

/// One replay step's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Whether the next requested tile was in the prediction list.
    pub hit: bool,
    /// Ground-truth phase of the *next* request (the one predicted).
    pub phase: Phase,
}

/// Replays one trace, returning an outcome per predicted transition.
pub fn replay_trace(p: &mut dyn Predictor, trace: &Trace, k: usize) -> Vec<ReplayOutcome> {
    p.reset();
    let mut outcomes = Vec::with_capacity(trace.len().saturating_sub(1));
    for pair in trace.steps.windows(2) {
        let cur = pair[0];
        let next = pair[1];
        let preds = p.step(Request::new(cur.tile, cur.mv), cur.phase, k);
        debug_assert!(preds.len() <= k);
        outcomes.push(ReplayOutcome {
            hit: preds.contains(&next.tile),
            phase: next.phase,
        });
    }
    outcomes
}

/// Aggregated prediction accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Overall accuracy (fraction of transitions predicted).
    pub overall: f64,
    /// Accuracy per phase, indexed by [`Phase::index`]; NaN-free (0 when
    /// a phase never occurs).
    pub per_phase: [f64; 3],
    /// Transitions per phase.
    pub counts: [usize; 3],
    /// Total transitions evaluated.
    pub total: usize,
}

impl AccuracyReport {
    /// Builds a report from outcomes.
    pub fn from_outcomes(outcomes: &[ReplayOutcome]) -> Self {
        let mut hits = [0usize; 3];
        let mut counts = [0usize; 3];
        for o in outcomes {
            counts[o.phase.index()] += 1;
            if o.hit {
                hits[o.phase.index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let total_hits: usize = hits.iter().sum();
        let per_phase = std::array::from_fn(|i| {
            if counts[i] == 0 {
                0.0
            } else {
                hits[i] as f64 / counts[i] as f64
            }
        });
        Self {
            overall: if total == 0 {
                0.0
            } else {
                total_hits as f64 / total as f64
            },
            per_phase,
            counts,
            total,
        }
    }

    /// Averages several reports (the paper averages across users).
    pub fn average(reports: &[AccuracyReport]) -> Self {
        if reports.is_empty() {
            return Self {
                overall: 0.0,
                per_phase: [0.0; 3],
                counts: [0; 3],
                total: 0,
            };
        }
        let n = reports.len() as f64;
        let mut out = Self {
            overall: reports.iter().map(|r| r.overall).sum::<f64>() / n,
            per_phase: [0.0; 3],
            counts: [0; 3],
            total: reports.iter().map(|r| r.total).sum(),
        };
        for i in 0..3 {
            // Average only over users who visited the phase.
            let with: Vec<f64> = reports
                .iter()
                .filter(|r| r.counts[i] > 0)
                .map(|r| r.per_phase[i])
                .collect();
            out.per_phase[i] = if with.is_empty() {
                0.0
            } else {
                with.iter().sum::<f64>() / with.len() as f64
            };
            out.counts[i] = reports.iter().map(|r| r.counts[i]).sum();
        }
        out
    }

    /// Expected average response time under a latency profile
    /// (accuracy = cache hit rate, §5.5).
    pub fn avg_latency(&self, profile: LatencyProfile) -> Duration {
        profile.expected_response(self.overall)
    }
}

/// Leave-one-user-out cross-validation (§5.4): for each user, builds a
/// predictor from the other users' traces via `factory`, replays the
/// held-out user's traces, and averages the per-user reports.
pub fn loocv<F>(traces: &[Trace], k: usize, mut factory: F) -> AccuracyReport
where
    F: FnMut(&[&Trace]) -> Box<dyn Predictor>,
{
    let mut users: Vec<usize> = traces.iter().map(|t| t.user).collect();
    users.sort_unstable();
    users.dedup();
    let mut reports = Vec::with_capacity(users.len());
    for &u in &users {
        let train: Vec<&Trace> = traces.iter().filter(|t| t.user != u).collect();
        let test: Vec<&Trace> = traces.iter().filter(|t| t.user == u).collect();
        let mut predictor = factory(&train);
        let mut outcomes = Vec::new();
        for t in test {
            outcomes.extend(replay_trace(predictor.as_mut(), t, k));
        }
        reports.push(AccuracyReport::from_outcomes(&outcomes));
    }
    AccuracyReport::average(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, StudyDataset};
    use crate::study::{Study, StudyConfig};
    use fc_core::MomentumRecommender;

    fn setup() -> (StudyDataset, Study) {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let study = Study::generate(&ds, &StudyConfig { num_users: 3 });
        (ds, study)
    }

    #[test]
    fn replay_produces_one_outcome_per_transition() {
        let (ds, study) = setup();
        let mut p = ModelPredictor::new(Box::new(MomentumRecommender), ds.pyramid.clone());
        let trace = &study.traces[0];
        let outcomes = replay_trace(&mut p, trace, 3);
        assert_eq!(outcomes.len(), trace.len() - 1);
    }

    #[test]
    fn momentum_accuracy_grows_with_k() {
        let (ds, study) = setup();
        let mut prev = 0.0;
        for k in [1, 3, 5, 9] {
            let mut outcomes = Vec::new();
            let mut p = ModelPredictor::new(Box::new(MomentumRecommender), ds.pyramid.clone());
            for t in &study.traces {
                outcomes.extend(replay_trace(&mut p, t, k));
            }
            let r = AccuracyReport::from_outcomes(&outcomes);
            assert!(
                r.overall >= prev - 1e-9,
                "accuracy should not decrease with k: {} -> {} at k={k}",
                prev,
                r.overall
            );
            prev = r.overall;
        }
        // k=9 covers every legal move: guaranteed prefetch (§5.2.2).
        assert!((prev - 1.0).abs() < 1e-9, "k=9 must be perfect, got {prev}");
    }

    #[test]
    fn report_aggregation_and_latency() {
        let outcomes = vec![
            ReplayOutcome {
                hit: true,
                phase: Phase::Foraging,
            },
            ReplayOutcome {
                hit: false,
                phase: Phase::Foraging,
            },
            ReplayOutcome {
                hit: true,
                phase: Phase::Navigation,
            },
        ];
        let r = AccuracyReport::from_outcomes(&outcomes);
        assert!((r.overall - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.per_phase[0] - 0.5).abs() < 1e-12);
        assert_eq!(r.per_phase[1], 1.0);
        assert_eq!(r.per_phase[2], 0.0);
        assert_eq!(r.counts, [2, 1, 0]);

        let avg = AccuracyReport::average(&[r, r]);
        assert!((avg.overall - r.overall).abs() < 1e-12);
        assert_eq!(avg.total, 6);

        let lat = r.avg_latency(LatencyProfile::paper());
        assert!(lat > LatencyProfile::paper().hit);
        assert!(lat < LatencyProfile::paper().miss);
    }

    #[test]
    fn loocv_trains_without_the_held_out_user() {
        let (ds, study) = setup();
        let mut seen_train_sizes = Vec::new();
        let r = loocv(&study.traces, 3, |train| {
            seen_train_sizes.push(train.len());
            let users: Vec<usize> = train.iter().map(|t| t.user).collect();
            // The factory must never see all users at once.
            let mut u = users.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), 2);
            Box::new(ModelPredictor::new(
                Box::new(MomentumRecommender),
                ds.pyramid.clone(),
            ))
        });
        assert_eq!(seen_train_sizes.len(), 3);
        assert!(r.overall > 0.0 && r.overall <= 1.0);
    }
}
