//! The behavioural user agent.
//!
//! The agent explores the tile pyramid exactly as the paper's analysis
//! model describes its study participants (§4.2.1, §5.3.5):
//!
//! * **Foraging** — scan coarse zoom levels with pans (plus occasional
//!   one-level "peek" zooms) looking for snowy quadrants inside the task
//!   region;
//! * **Navigation** — zoom down a greedy quadrant path to the target
//!   level, and zoom back up when a neighbourhood is exhausted;
//! * **Sensemaking** — pan across neighbouring tiles at the target
//!   level, collecting tiles that satisfy the task predicate, with
//!   occasional zoom-out/zoom-in sibling comparisons.
//!
//! Every emitted request carries its ground-truth phase label. Phase
//! labels follow the paper's semantics: transit zooms are Navigation,
//! while peek/compare zooms keep the phase they serve (Foraging /
//! Sensemaking) — this is what keeps the Table-1 move flags from being
//! perfectly separable, as in the hand-labeled study data.

use crate::dataset::StudyDataset;
use crate::task::TaskSpec;
use crate::trace::{Trace, TraceStep};
use fc_core::Phase;
use fc_tiles::{Move, Quadrant, TileId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Per-user behavioural parameters (the 18 study users differ in these).
#[derive(Debug, Clone, Copy)]
pub struct UserParams {
    /// RNG seed.
    pub seed: u64,
    /// Probability of a non-greedy pan while foraging.
    pub exploration: f64,
    /// Probability of picking the second-best quadrant when descending.
    pub error_rate: f64,
    /// Zoom level used for foraging scans.
    pub coarse_level: u8,
    /// Probability of a one-level peek (zoom-in + zoom-out) in Foraging.
    pub forage_peek: f64,
    /// Probability of a sibling comparison (zoom-out + zoom-in) in
    /// Sensemaking.
    pub sense_peek: f64,
    /// Pans tolerated in Sensemaking without finding a qualifying tile
    /// before giving up on the neighbourhood.
    pub patience: usize,
    /// Coarse tiles the user examines since the last dive before they
    /// commit to zooming in (scanning behaviour of the Foraging phase).
    pub min_forage_scan: usize,
    /// Hard cap on requests per session.
    pub max_steps: usize,
}

impl UserParams {
    /// Deterministic parameters for study user `i` (0..17), spanning the
    /// behaviour groups visible in the paper's Fig. 8c–e.
    pub fn study_user(i: usize) -> Self {
        let group = i % 3;
        Self {
            seed: 0xA11CE ^ ((i as u64) << 8),
            exploration: 0.05 + 0.05 * group as f64 + 0.01 * (i / 3) as f64,
            error_rate: 0.04 + 0.03 * group as f64,
            coarse_level: 1 + (i % 2) as u8,
            forage_peek: match group {
                0 => 0.10,
                1 => 0.20,
                _ => 0.05,
            },
            sense_peek: match group {
                0 => 0.15,
                1 => 0.05,
                _ => 0.25,
            },
            patience: 2 + group,
            min_forage_scan: 3 + group + (i % 2),
            max_steps: 160,
        }
    }
}

/// Agent state machine phases (internal; maps to emitted labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AgentState {
    Forage,
    NavDown,
    Sense,
    NavUp,
}

/// Runs one simulated session and returns the labeled trace.
pub fn run_session(
    dataset: &StudyDataset,
    task: &TaskSpec,
    params: &UserParams,
    user: usize,
) -> Trace {
    let geometry = dataset.pyramid.geometry();
    let coarse = params
        .coarse_level
        .min(geometry.levels.saturating_sub(2))
        .max(1);
    let mut agent = Agent {
        dataset,
        task,
        p: *params,
        rng: StdRng::seed_from_u64(params.seed ^ ((task.id as u64) << 32)),
        geometry,
        coarse,
        pos: TileId::ROOT,
        steps: Vec::new(),
        collected: HashSet::new(),
        visited_deep: HashSet::new(),
        visited_coarse: HashSet::new(),
        pans_since_find: 0,
        scanned_since_dive: 0,
    };
    agent.run();
    Trace {
        user,
        task: task.id,
        steps: agent.steps,
    }
}

struct Agent<'a> {
    dataset: &'a StudyDataset,
    task: &'a TaskSpec,
    p: UserParams,
    rng: StdRng,
    geometry: fc_tiles::Geometry,
    /// Foraging level, clamped to the pyramid depth.
    coarse: u8,
    pos: TileId,
    steps: Vec<TraceStep>,
    collected: HashSet<TileId>,
    visited_deep: HashSet<TileId>,
    visited_coarse: HashSet<TileId>,
    pans_since_find: usize,
    scanned_since_dive: usize,
}

impl Agent<'_> {
    fn run(&mut self) {
        // Session opens at the root overview.
        self.emit(self.pos, None, Phase::Foraging);
        let mut state = AgentState::NavDown; // descend to the coarse level first
        while self.steps.len() < self.p.max_steps && self.collected.len() < self.task.tiles_needed {
            state = match state {
                AgentState::Forage => self.forage(),
                AgentState::NavDown => self.nav_down(),
                AgentState::Sense => self.sense(),
                AgentState::NavUp => self.nav_up(),
            };
        }
    }

    fn emit(&mut self, tile: TileId, mv: Option<Move>, phase: Phase) {
        self.pos = tile;
        self.steps.push(TraceStep { tile, mv, phase });
        if tile.level == self.task.target_level {
            self.visited_deep.insert(tile);
        }
        if tile.level == self.coarse {
            self.visited_coarse.insert(tile);
        }
    }

    fn do_move(&mut self, mv: Move, phase: Phase) -> bool {
        match self.geometry.apply(self.pos, mv) {
            Some(next) => {
                self.emit(next, Some(mv), phase);
                true
            }
            None => false,
        }
    }

    /// Fraction of a tile's cells meeting the task threshold (what the
    /// user "sees" as snow coverage), with personal estimation noise.
    fn snow_score(&mut self, id: TileId) -> f64 {
        let base = self
            .dataset
            .tile_fraction_above(id, &self.task.attr, self.task.threshold)
            .unwrap_or(0.0);
        (base + self.rng.gen_range(-0.02..0.02)).max(0.0)
    }

    /// Histogram similarity between two tiles in [0, 1], from the same
    /// shared metadata the SB recommender reads.
    fn visual_similarity(&self, a: TileId, b: TileId) -> f64 {
        let store = self.dataset.pyramid.store();
        match (store.meta_vec(a, "sig_hist"), store.meta_vec(b, "sig_hist")) {
            (Some(x), Some(y)) => {
                let d = fc_core::sb::chi_squared(&x, &y);
                (1.0 - d).clamp(0.0, 1.0)
            }
            _ => 0.5,
        }
    }

    fn qualifies(&self, id: TileId) -> bool {
        // A tile "counts" only when snow clearly dominates it; this keeps
        // users hunting across several neighbourhoods, matching the
        // paper's session lengths (35/25/17 requests on average).
        self.dataset
            .tile_fraction_above(id, &self.task.attr, self.task.threshold)
            .is_some_and(|f| f >= 0.55)
    }

    /// The best zoom-in quadrant of the current tile, restricted to
    /// children overlapping the task region; `None` if every child is
    /// barren or off-region.
    fn best_quadrant(&mut self) -> Option<(Quadrant, f64)> {
        let mut scored: Vec<(Quadrant, f64)> = Quadrant::ALL
            .into_iter()
            .filter_map(|q| {
                let child = self.geometry.apply(self.pos, Move::ZoomIn(q))?;
                if !self.task.region.overlaps(child) {
                    return None;
                }
                // Prefer unexplored ground at the target level.
                let penalty = if child.level == self.task.target_level
                    && self.visited_deep.contains(&child)
                {
                    0.5
                } else {
                    0.0
                };
                Some((q, self.snow_score(child) - penalty))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        // Occasional suboptimal choice (human error).
        if scored.len() >= 2 && self.rng.gen_bool(self.p.error_rate) {
            return Some(scored[1]);
        }
        scored.first().copied()
    }

    /// Foraging: scan the coarse level for a promising quadrant.
    fn forage(&mut self) -> AgentState {
        debug_assert_eq!(self.pos.level, self.coarse);
        self.scanned_since_dive += 1;
        // Occasional peek: zoom in one level and back out, still foraging.
        if self.rng.gen_bool(self.p.forage_peek) && self.pos.level + 1 < self.geometry.levels {
            if let Some((q, _)) = self.best_quadrant() {
                if self.do_move(Move::ZoomIn(q), Phase::Foraging) {
                    self.do_move(Move::ZoomOut, Phase::Foraging);
                }
                return AgentState::Forage;
            }
        }
        // Commit to a descent when the current tile looks promising and
        // the user has scanned enough of the neighbourhood to be
        // confident it is the best lead.
        if self.task.region.overlaps(self.pos) && self.scanned_since_dive >= self.p.min_forage_scan
        {
            if let Some((_, score)) = self.best_quadrant() {
                if score > 0.08 {
                    self.scanned_since_dive = 0;
                    return AgentState::NavDown;
                }
            }
        }
        // Otherwise pan: toward the region if outside, else to the best
        // unvisited coarse tile; occasionally a random exploration pan.
        let legal_pans: Vec<Move> = self
            .geometry
            .legal_moves(self.pos)
            .into_iter()
            .filter(|m| m.is_pan())
            .collect();
        if legal_pans.is_empty() {
            return AgentState::NavDown; // degenerate geometry: just dive
        }
        let mv = if self.rng.gen_bool(self.p.exploration) {
            legal_pans[self.rng.gen_range(0..legal_pans.len())]
        } else if !self.task.region.overlaps(self.pos) {
            self.pan_toward_region(&legal_pans)
        } else {
            self.pan_to_best_coarse(&legal_pans)
        };
        self.do_move(mv, Phase::Foraging);
        AgentState::Forage
    }

    fn pan_toward_region(&mut self, legal: &[Move]) -> Move {
        let center = self.task.region.center().project_to(self.pos.level);
        let dy = i64::from(center.y) - i64::from(self.pos.y);
        let dx = i64::from(center.x) - i64::from(self.pos.x);
        let prefer = if dy.abs() >= dx.abs() {
            if dy > 0 {
                Move::PanDown
            } else {
                Move::PanUp
            }
        } else if dx > 0 {
            Move::PanRight
        } else {
            Move::PanLeft
        };
        if legal.contains(&prefer) {
            prefer
        } else {
            legal[self.rng.gen_range(0..legal.len())]
        }
    }

    fn pan_to_best_coarse(&mut self, legal: &[Move]) -> Move {
        let scored: Vec<(Move, f64)> = legal
            .iter()
            .map(|&m| {
                let next = self.geometry.apply(self.pos, m).expect("legal move");
                let visited_penalty = if self.visited_coarse.contains(&next) {
                    0.3
                } else {
                    0.0
                };
                let region_bonus = if self.task.region.overlaps(next) {
                    0.2
                } else {
                    0.0
                };
                (m, self.snow_score(next) + region_bonus - visited_penalty)
            })
            .collect();
        scored
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(m, _)| m)
            .expect("legal is nonempty")
    }

    /// Navigation down: greedy quadrant descent to the target level.
    fn nav_down(&mut self) -> AgentState {
        if self.pos.level >= self.task.target_level {
            return AgentState::Sense;
        }
        match self.best_quadrant() {
            Some((q, score)) if score > 0.01 || self.pos.level < self.coarse => {
                if self.do_move(Move::ZoomIn(q), Phase::Navigation) {
                    AgentState::NavDown
                } else {
                    AgentState::NavUp
                }
            }
            // Any legal zoom-in when still descending to coarse level.
            _ if self.pos.level < self.coarse => {
                let q = Quadrant::ALL[self.rng.gen_range(0..4)];
                if self.do_move(Move::ZoomIn(q), Phase::Navigation) {
                    AgentState::NavDown
                } else {
                    AgentState::NavUp
                }
            }
            // Barren path: back out.
            _ => AgentState::NavUp,
        }
    }

    /// Sensemaking: test the current tile, pan across neighbours.
    fn sense(&mut self) -> AgentState {
        let far_enough = self
            .collected
            .iter()
            .all(|c| c.manhattan(&self.pos) >= self.task.min_separation);
        if self.qualifies(self.pos) && far_enough && !self.collected.contains(&self.pos) {
            self.collected.insert(self.pos);
            self.pans_since_find = 0;
            if self.collected.len() >= self.task.tiles_needed {
                return AgentState::Sense; // loop terminates in run()
            }
        }
        // Occasional sibling comparison: zoom out and back into a
        // different quadrant — Sensemaking-labeled zooms.
        if self.rng.gen_bool(self.p.sense_peek) && self.pos.level > 0 {
            let came_from = self.pos;
            if self.do_move(Move::ZoomOut, Phase::Sensemaking) {
                let mut options: Vec<Quadrant> = Quadrant::ALL
                    .into_iter()
                    .filter(|&q| {
                        self.geometry
                            .apply(self.pos, Move::ZoomIn(q))
                            .is_some_and(|t| t != came_from && self.task.region.overlaps(t))
                    })
                    .collect();
                if options.is_empty() {
                    options = vec![Quadrant::Nw];
                }
                let q = options[self.rng.gen_range(0..options.len())];
                self.do_move(Move::ZoomIn(q), Phase::Sensemaking);
                return AgentState::Sense;
            }
        }
        // Pan to the most promising unvisited neighbour in the region.
        let pans: Vec<(Move, TileId)> = self
            .geometry
            .legal_moves(self.pos)
            .into_iter()
            .filter(|m| m.is_pan())
            .filter_map(|m| self.geometry.apply(self.pos, m).map(|t| (m, t)))
            .filter(|(_, t)| self.task.region.overlaps(*t))
            .collect();
        let unvisited: Vec<(Move, TileId)> = pans
            .iter()
            .copied()
            .filter(|(_, t)| !self.visited_deep.contains(t))
            .collect();
        // The user hunts for tiles that *look like* what they have found:
        // blend snow coverage with visual similarity to the current tile
        // (the same histogram signal the SB recommender exploits), and
        // pick stochastically between the top two leads.
        let mut scored: Vec<(Move, TileId, f64)> = unvisited
            .into_iter()
            .map(|(m, t)| {
                let sim = self.visual_similarity(self.pos, t);
                let snow = self.snow_score(t);
                (m, t, 0.55 * snow + 0.45 * sim)
            })
            .collect();
        scored.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
        if scored.len() >= 2 && self.rng.gen_bool(0.35) {
            scored.swap(0, 1);
        }
        let best = scored.first().copied();
        match best {
            Some((m, _, score))
                if (score > 0.005 || self.pans_since_find < 2)
                    && self.pans_since_find <= self.p.patience =>
            {
                self.pans_since_find += 1;
                self.do_move(m, Phase::Sensemaking);
                AgentState::Sense
            }
            _ => {
                self.pans_since_find = 0;
                AgentState::NavUp
            }
        }
    }

    /// Navigation up: zoom back out to the coarse level.
    fn nav_up(&mut self) -> AgentState {
        if self.pos.level <= self.coarse {
            return AgentState::Forage;
        }
        if self.do_move(Move::ZoomOut, Phase::Navigation) {
            AgentState::NavUp
        } else {
            AgentState::Forage
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, StudyDataset};

    fn tiny() -> StudyDataset {
        StudyDataset::build(DatasetConfig::tiny())
    }

    #[test]
    fn session_is_deterministic_and_legal() {
        let ds = tiny();
        let tasks = TaskSpec::study_tasks(ds.pyramid.geometry().levels);
        let p = UserParams::study_user(0);
        let a = run_session(&ds, &tasks[0], &p, 0);
        let b = run_session(&ds, &tasks[0], &p, 0);
        assert_eq!(a, b, "same seed → same trace");
        assert!(!a.is_empty());
        // Every transition is a legal single move.
        let g = ds.pyramid.geometry();
        for w in a.steps.windows(2) {
            let mv = w[1].mv.expect("non-initial steps carry moves");
            assert_eq!(
                g.apply(w[0].tile, mv),
                Some(w[1].tile),
                "step {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        assert!(a.steps[0].mv.is_none());
    }

    #[test]
    fn different_users_behave_differently() {
        let ds = tiny();
        let tasks = TaskSpec::study_tasks(ds.pyramid.geometry().levels);
        let a = run_session(&ds, &tasks[0], &UserParams::study_user(0), 0);
        let b = run_session(&ds, &tasks[0], &UserParams::study_user(1), 1);
        assert_ne!(a.steps, b.steps);
    }

    #[test]
    fn sessions_visit_all_three_phases() {
        let ds = tiny();
        let tasks = TaskSpec::study_tasks(ds.pyramid.geometry().levels);
        let mut seen = [false; 3];
        for u in 0..4 {
            let t = run_session(&ds, &tasks[0], &UserParams::study_user(u), u);
            for s in &t.steps {
                seen[s.phase.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "phases seen: {seen:?}");
    }

    #[test]
    fn sessions_reach_the_target_level_and_terminate() {
        let ds = tiny();
        let tasks = TaskSpec::study_tasks(ds.pyramid.geometry().levels);
        for (ti, task) in tasks.iter().enumerate() {
            let t = run_session(&ds, task, &UserParams::study_user(2), 2);
            // Peek gestures emit two moves, so a session may overshoot
            // the cap by one request.
            assert!(t.len() <= UserParams::study_user(2).max_steps + 2);
            assert!(
                t.steps.iter().any(|s| s.tile.level == task.target_level),
                "task {ti} never reached target level"
            );
        }
    }
}
