//! The swarm driver: hundreds-to-thousands of concurrent simulated
//! sessions against a live ForeCache server, over real sockets, from
//! **one** driver thread.
//!
//! The multi-user replay harness ([`crate::multiuser`]) measures the
//! serving core in-process; this driver measures the *wire path* — the
//! reactor (or the threaded server) behind real TCP, real framing,
//! real readiness. It is the load generator for the `exp_multiuser`
//! reactor section: does tail latency stay flat when the session count
//! multiplies by 16?
//!
//! Design choices that make thousands of sessions honest on one box:
//!
//! * **one thread, nonblocking sockets, the same [`fc_server::epoll`]
//!   shim the reactor uses** — a thread per simulated client would
//!   perturb the very scheduler the measurement runs on, and a
//!   `poll(2)` table would make the *driver* the O(sessions)
//!   bottleneck the reactor just eliminated;
//! * **paced, open-loop requests**: each session fires on its own
//!   cadence ([`SwarmConfig::pace`]) from a deterministic serpentine
//!   walk, with per-session start stagger so the fleet never phase-
//!   locks into synchronized request storms;
//! * **latency is measured enqueue→reply** per request, so a driver-
//!   side backlog counts against the tail instead of hiding in it.
//!
//! Unsolicited [`ServerMsg::Push`] frames are counted (and their tiles
//! remembered per session) but never replied to — exactly a thin
//! client's behaviour.

use fc_server::epoll::{Epoll, EpollEvent, EPOLLIN, EPOLLOUT};
use fc_server::{ClientMsg, ServerMsg};
use fc_tiles::{Move, TileId};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

/// Swarm shape and cadence.
#[derive(Debug, Clone, Copy)]
pub struct SwarmConfig {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Tile requests per session (after the Hello).
    pub requests_per_session: usize,
    /// Prefetch budget each Hello requests (0 = server default).
    pub k: u32,
    /// Per-session request cadence — the simulated think time between
    /// a reply and the next request's due time.
    pub pace: Duration,
    /// Per-session start offset: session `i` begins at `i × stagger`,
    /// spreading the fleet across the pace window.
    pub stagger: Duration,
    /// Walk randomization seed (start rows/cols).
    pub seed: u64,
    /// Hard wall-clock budget for the whole run; a stall past it
    /// panics (a hung swarm must fail loudly, not wedge a benchmark).
    pub deadline: Duration,
    /// When non-zero, every n-th session (index divisible by n) is a
    /// **burst explorer**: it paces at [`explorer_pace`], walks
    /// [`explorer_requests`] steps, and moves in pseudo-random
    /// directions instead of the serpentine sweep — rapid,
    /// unpredictable navigation that a trained model cannot
    /// anticipate, and the traffic a phase-aware push scheduler is
    /// meant to steer around. 0 (default) disables.
    ///
    /// [`explorer_pace`]: SwarmConfig::explorer_pace
    /// [`explorer_requests`]: SwarmConfig::explorer_requests
    pub explorer_every: usize,
    /// Explorer think time between requests.
    pub explorer_pace: Duration,
    /// Explorer walk length (0 = [`SwarmConfig::requests_per_session`]).
    pub explorer_requests: usize,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        Self {
            sessions: 64,
            requests_per_session: 16,
            k: 2,
            pace: Duration::from_millis(40),
            stagger: Duration::from_micros(500),
            seed: 7,
            deadline: Duration::from_secs(120),
            explorer_every: 0,
            explorer_pace: Duration::from_millis(5),
            explorer_requests: 0,
        }
    }
}

/// What the swarm observed.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Sessions that completed their walk.
    pub sessions: usize,
    /// Tile requests answered (success or structured error).
    pub requests: u64,
    /// Error replies among them.
    pub errors: u64,
    /// Unsolicited push frames received across the fleet.
    pub pushes: u64,
    /// Pushed tiles the session itself requested afterwards — the
    /// client-side view of push usefulness.
    pub pushes_used: u64,
    /// Server-reported totals summed over the fleet's final stats.
    pub served_requests: u64,
    /// Server-reported cache hits.
    pub served_hits: u64,
    /// Server-reported speculative fetches issued.
    pub prefetch_issued: u64,
    /// Server-reported speculative fetches later used.
    pub prefetch_used: u64,
    /// Enqueue→reply request latencies, sorted ascending.
    pub latencies: Vec<Duration>,
}

impl SwarmReport {
    /// The `q`-quantile (0.0–1.0) of request latency.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[idx.min(self.latencies.len() - 1)]
    }

    /// Fleet-wide hit rate as the server accounted it.
    pub fn hit_rate(&self) -> f64 {
        if self.served_requests == 0 {
            0.0
        } else {
            self.served_hits as f64 / self.served_requests as f64
        }
    }
}

/// Where a session is in its scripted life.
#[derive(Debug, PartialEq, Eq)]
enum Phase {
    /// Between requests, waiting for the next due time.
    Think,
    /// A RequestTile is in flight.
    AwaitTile,
    /// The final GetStats is in flight.
    AwaitStats,
    /// Bye sent; the session is finished.
    Done,
}

/// One simulated analyst.
struct Sim {
    stream: TcpStream,
    phase: Phase,
    /// Serpentine walk state at the deepest level.
    row: u32,
    col: u32,
    rightward: bool,
    first: bool,
    steps_left: usize,
    /// This session's think time (explorers pace faster).
    pace: Duration,
    /// Burst explorer: random-direction walk instead of serpentine.
    explorer: bool,
    /// Private walk-randomization state (explorers only).
    rng: u64,
    next_due: Instant,
    sent_at: Instant,
    rbuf: Vec<u8>,
    wq: VecDeque<Vec<u8>>,
    wpos: usize,
    /// Tiles pushed to this session, for client-side use accounting.
    pushed_tiles: Vec<TileId>,
    /// Whether the epoll registration currently includes `EPOLLOUT`.
    write_interest: bool,
    /// Still on the epoll interest list (finished sessions drop off
    /// once their queue drains, so a closing server can't busy-wake
    /// the driver with their EOF).
    registered: bool,
}

/// Re-syncs one session's epoll registration with its state: write
/// interest tracks "queue non-empty", and a finished session with a
/// drained queue leaves the interest list entirely.
fn sync_interest(ep: &Epoll, s: &mut Sim, token: u64) {
    if !s.registered {
        return;
    }
    if s.phase == Phase::Done && s.wq.is_empty() {
        ep.delete(s.stream.as_raw_fd()).expect("epoll delete");
        s.registered = false;
        return;
    }
    let want = !s.wq.is_empty();
    if want != s.write_interest {
        let events = if want { EPOLLIN | EPOLLOUT } else { EPOLLIN };
        ep.modify(s.stream.as_raw_fd(), events, token)
            .expect("epoll modify");
        s.write_interest = want;
    }
}

/// A tiny deterministic generator (SplitMix64) — enough to scatter
/// start positions without dragging a full RNG into the hot loop.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the swarm against `addr` (a bound ForeCache server serving a
/// dataset whose deepest level is `deepest_tiles` = (rows, cols) at
/// level `deepest`). Returns when every session finished its walk.
///
/// # Panics
/// On connection/handshake failures and when
/// [`SwarmConfig::deadline`] elapses with sessions still unfinished —
/// a swarm that cannot finish is a failed measurement, not a report.
pub fn run_swarm(addr: SocketAddr, cfg: &SwarmConfig) -> SwarmReport {
    let start = Instant::now();
    let mut rng = cfg.seed;
    let mut sims: Vec<Sim> = Vec::with_capacity(cfg.sessions);
    let mut deepest = 0u8;
    let mut grid = (1u32, 1u32);
    // Connect and handshake each session up front (blocking, cheap on
    // localhost), then flip to nonblocking for the paced phase.
    for i in 0..cfg.sessions {
        let mut stream = TcpStream::connect(addr).expect("swarm connect");
        stream.set_nodelay(true).expect("nodelay");
        // `encode` returns the already-framed bytes (length prefix
        // included) — write them verbatim.
        let hello = ClientMsg::Hello {
            prefetch_k: cfg.k,
            dataset: String::new(),
        }
        .encode();
        stream.write_all(&hello).expect("hello frame");
        let reply = read_one_blocking(&mut stream).expect("welcome frame");
        match reply {
            ServerMsg::Welcome {
                levels,
                deepest_tiles,
            } => {
                deepest = levels - 1;
                grid = deepest_tiles;
            }
            other => panic!("session {i}: unexpected Hello reply: {other:?}"),
        }
        stream.set_nonblocking(true).expect("nonblocking");
        let row = (mix(&mut rng) % u64::from(grid.0)) as u32;
        let col = (mix(&mut rng) % u64::from(grid.1)) as u32;
        let explorer = cfg.explorer_every > 0 && i % cfg.explorer_every == 0;
        sims.push(Sim {
            stream,
            phase: Phase::Think,
            row,
            col,
            rightward: mix(&mut rng).is_multiple_of(2),
            first: true,
            steps_left: if explorer && cfg.explorer_requests > 0 {
                cfg.explorer_requests
            } else {
                cfg.requests_per_session
            },
            pace: if explorer {
                cfg.explorer_pace
            } else {
                cfg.pace
            },
            explorer,
            rng: mix(&mut rng),
            next_due: start + cfg.stagger * (i as u32),
            sent_at: start,
            rbuf: Vec::new(),
            wq: VecDeque::new(),
            wpos: 0,
            pushed_tiles: Vec::new(),
            write_interest: false,
            registered: false,
        });
    }
    // Rebase the pacing origin to the end of the connect phase: the
    // serial handshakes above can outlast the first stagger offsets,
    // and sessions born overdue would fire as one convoy on the first
    // pass — and stay phase-locked, because a batch of replies shares
    // one arrival instant and therefore one next_due.
    let t0 = Instant::now();
    for (i, s) in sims.iter_mut().enumerate() {
        s.next_due = t0 + cfg.stagger * (i as u32);
    }

    let mut report = SwarmReport {
        sessions: cfg.sessions,
        requests: 0,
        errors: 0,
        pushes: 0,
        pushes_used: 0,
        served_requests: 0,
        served_hits: 0,
        prefetch_issued: 0,
        prefetch_used: 0,
        latencies: Vec::with_capacity(cfg.sessions * cfg.requests_per_session),
    };
    let mut scratch = vec![0u8; 64 * 1024];
    let ep = Epoll::new().expect("epoll instance");
    for (i, s) in sims.iter_mut().enumerate() {
        ep.add(s.stream.as_raw_fd(), EPOLLIN, i as u64)
            .expect("epoll add");
        s.registered = true;
    }
    let mut events = vec![EpollEvent::zeroed(); cfg.sessions.clamp(64, 1024)];
    let mut done = 0usize;

    while done < sims.len() {
        assert!(
            start.elapsed() < cfg.deadline,
            "swarm deadline exceeded with {} of {} sessions unfinished",
            sims.len() - done,
            sims.len()
        );
        let now = Instant::now();
        // Fire due requests.
        for (i, s) in sims.iter_mut().enumerate() {
            if s.phase == Phase::Think && now >= s.next_due {
                let (tile, mv) = next_step(s, deepest, grid);
                s.wq.push_back(ClientMsg::RequestTile { tile, mv }.encode().to_vec());
                s.sent_at = now;
                s.phase = Phase::AwaitTile;
                flush(s);
                sync_interest(&ep, s, i as u64);
            }
        }
        let timeout = next_wakeup(&sims, now);
        let n = ep.wait(&mut events, Some(timeout)).expect("epoll wait");
        let now = Instant::now();
        for ev in events.iter().take(n) {
            let idx = ev.token() as usize;
            let s = &mut sims[idx];
            if !s.registered {
                continue;
            }
            if ev.writable() {
                flush(s);
            }
            if ev.readable() && s.phase != Phase::Done {
                drain_reads(s, &mut scratch, now, &mut report, &mut done);
            }
            sync_interest(&ep, s, ev.token());
        }
    }
    report.latencies.sort_unstable();
    report
}

/// The per-session poll timeout: sleep until the soonest due request
/// (bounded so push frames and stragglers are still picked up).
fn next_wakeup(sims: &[Sim], now: Instant) -> Duration {
    let mut t = Duration::from_millis(50);
    for s in sims {
        if s.phase == Phase::Think {
            let until = s.next_due.saturating_duration_since(now);
            if until < t {
                t = until;
            }
        }
    }
    t.max(Duration::from_millis(1))
}

/// Advances the walk one step and returns the request: a serpentine
/// sweep for ordinary sessions, a pseudo-random pan for explorers.
fn next_step(s: &mut Sim, deepest: u8, grid: (u32, u32)) -> (TileId, Option<Move>) {
    if s.first {
        s.first = false;
        return (TileId::new(deepest, s.row, s.col), None);
    }
    let (rows, cols) = grid;
    if s.explorer {
        let mv = match mix(&mut s.rng) % 4 {
            0 if s.col + 1 < cols => {
                s.col += 1;
                Move::PanRight
            }
            1 if s.col > 0 => {
                s.col -= 1;
                Move::PanLeft
            }
            2 if s.row + 1 < rows => {
                s.row += 1;
                Move::PanDown
            }
            3 if s.row > 0 => {
                s.row -= 1;
                Move::PanUp
            }
            // Edge clamp: wrap downward, the always-legal direction.
            _ => {
                s.row = (s.row + 1) % rows;
                Move::PanDown
            }
        };
        return (TileId::new(deepest, s.row, s.col), Some(mv));
    }
    let mv = if s.rightward {
        if s.col + 1 < cols {
            s.col += 1;
            Move::PanRight
        } else {
            s.rightward = false;
            s.row = (s.row + 1) % rows;
            Move::PanDown
        }
    } else if s.col > 0 {
        s.col -= 1;
        Move::PanLeft
    } else {
        s.rightward = true;
        s.row = (s.row + 1) % rows;
        Move::PanDown
    };
    (TileId::new(deepest, s.row, s.col), Some(mv))
}

/// Nonblocking read + frame parse; dispatches every complete message.
fn drain_reads(
    s: &mut Sim,
    scratch: &mut [u8],
    now: Instant,
    report: &mut SwarmReport,
    done: &mut usize,
) {
    loop {
        match s.stream.read(scratch) {
            Ok(0) => panic!("server closed a swarm session mid-walk"),
            Ok(n) => {
                s.rbuf.extend_from_slice(&scratch[..n]);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("swarm read error: {e}"),
        }
    }
    let mut consumed = 0;
    while s.phase != Phase::Done {
        let rest = &s.rbuf[consumed..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() < 4 + len {
            break;
        }
        let body = bytes::Bytes::from(rest[4..4 + len].to_vec());
        consumed += 4 + len;
        let msg = ServerMsg::decode(body).expect("well-formed server frame");
        dispatch(s, msg, now, report, done);
    }
    s.rbuf.drain(..consumed);
}

/// Applies one server message to the session's script.
fn dispatch(s: &mut Sim, msg: ServerMsg, now: Instant, report: &mut SwarmReport, done: &mut usize) {
    match msg {
        ServerMsg::Push { payload } => {
            report.pushes += 1;
            s.pushed_tiles.push(payload.tile);
        }
        ServerMsg::Tile { payload, .. } if s.phase == Phase::AwaitTile => {
            report.requests += 1;
            report.latencies.push(now - s.sent_at);
            if s.pushed_tiles.contains(&payload.tile) {
                report.pushes_used += 1;
            }
            advance(s, now);
        }
        ServerMsg::Error { .. } if s.phase == Phase::AwaitTile => {
            report.requests += 1;
            report.errors += 1;
            report.latencies.push(now - s.sent_at);
            advance(s, now);
        }
        ServerMsg::Stats {
            requests,
            hits,
            prefetch_issued,
            prefetch_used,
            ..
        } if s.phase == Phase::AwaitStats => {
            report.served_requests += requests;
            report.served_hits += hits;
            report.prefetch_issued += prefetch_issued;
            report.prefetch_used += prefetch_used;
            s.wq.push_back(ClientMsg::Bye.encode().to_vec());
            flush(s);
            s.phase = Phase::Done;
            *done += 1;
        }
        other => panic!("unexpected message in phase {:?}: {other:?}", s.phase),
    }
}

/// Books a finished request and schedules (or finishes) the walk.
fn advance(s: &mut Sim, now: Instant) {
    s.steps_left -= 1;
    if s.steps_left == 0 {
        s.wq.push_back(ClientMsg::GetStats.encode().to_vec());
        flush(s);
        s.phase = Phase::AwaitStats;
    } else {
        // Advance the due time from the previous due, not the reply
        // instant: replies that happen to batch in one wakeup would
        // otherwise share a `now` and march in lock-step forever. A
        // session that fell a full period behind re-bases to `now`
        // instead of burst-firing the backlog.
        s.next_due += s.pace;
        if s.next_due < now {
            s.next_due = now + s.pace;
        }
        s.phase = Phase::Think;
    }
}

/// Writes as much queued output as the socket accepts.
fn flush(s: &mut Sim) {
    while let Some(front) = s.wq.front() {
        match s.stream.write(&front[s.wpos..]) {
            Ok(0) => panic!("swarm write returned 0"),
            Ok(n) => {
                s.wpos += n;
                if s.wpos == front.len() {
                    s.wq.pop_front();
                    s.wpos = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("swarm write error: {e}"),
        }
    }
}

/// Blocking read of one frame (handshake only; the socket is still in
/// blocking mode).
fn read_one_blocking(stream: &mut TcpStream) -> io::Result<ServerMsg> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    ServerMsg::decode(bytes::Bytes::from(body)).map_err(io::Error::other)
}
