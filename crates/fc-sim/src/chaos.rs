//! Chaos harness: multi-user replay under a deterministic fault
//! schedule, with invariant checks over the whole serving stack.
//!
//! [`run_chaos`] is [`crate::multiuser::run_multi_user`] with a
//! [`FaultPlan`] attached to every session's middleware. Each session
//! replays its trace through the *fallible* fetch path
//! ([`Middleware::try_request`]), so a scheduled backend brownout or
//! error burst produces the full degradation ladder: retried fetches,
//! degraded ancestor replies, and clean [`fc_core::FetchError`]s. The
//! report buckets every attempt into before/during/after the fault
//! window (by the per-session request index the plan itself keys on),
//! which is what lets a test assert "the hit rate recovers once the
//! fault clears" instead of eyeballing aggregate counters.
//!
//! [`assert_invariants`] checks the properties every schedule must
//! preserve, no matter how hostile:
//!
//! - **no panic escapes a session** — each session body runs under
//!   `catch_unwind`; an unwound session is counted, never propagated;
//! - **the shared cache never exceeds capacity** — resident count is
//!   sampled after every request and the high-water mark reported;
//! - **accounting balances** — every serviceable attempt is served
//!   (possibly degraded) or failed, and every attempt lands in exactly
//!   one phase bucket;
//! - **the run drains** — `run_chaos` returning at all means no
//!   scheduler follower wedged waiting on a dead leader (the
//!   follower-timeout rescue is the backstop; its trips are reported
//!   in [`fc_core::SchedulerStats::rescues`]).

use crate::multiuser::{build_cache, MultiUserConfig};
use crate::trace::Trace;
use fc_core::{
    BatchConfig, BurstConfig, FaultPlan, Middleware, PredictScheduler, PredictionEngine,
    RetryPolicy, SchedulerStats, SharedCacheStats, SharedSessionHandle,
};
use fc_tiles::Pyramid;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A chaos scenario: the multi-user workload shape plus the fault
/// schedule every session runs under.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Workload shape (sessions, steps, cache, batching, k, …).
    pub base: MultiUserConfig,
    /// The fault schedule, shared by all sessions; decisions stay
    /// deterministic because the plan keys on each session's own
    /// request index.
    pub plan: Arc<FaultPlan>,
    /// Retry/backoff/deadline budget for faulted fetches.
    pub retry: RetryPolicy,
    /// `[from, until)` request-index window the schedule's faults
    /// cover, used to bucket the report's phase statistics. Use
    /// `(0, u64::MAX)` for an unwindowed (always-on) schedule.
    pub fault_window: (u64, u64),
    /// Burst-aware prefetch scheduling, applied to every session's
    /// middleware (`None` keeps the uniform per-request budget — the
    /// bit-identical default).
    pub burst: Option<BurstConfig>,
    /// Per-trace think-time schedules, parallel to `traces`: session
    /// `i` charges `think[i % think.len()][j]` to its timeline before
    /// step `j` of each pass (the gap stream the burst classifier
    /// sees). Empty = no think time, back-to-back replay.
    pub think: Vec<Vec<std::time::Duration>>,
}

/// Outcome counters for one phase (before/during/after the window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Serviceable requests attempted.
    pub attempts: usize,
    /// Replies produced (clean or degraded).
    pub served: usize,
    /// Cache hits among the served.
    pub hits: usize,
    /// Degraded (ancestor-fallback) replies among the served.
    pub degraded: usize,
    /// Attempts that failed outright (no resident ancestor).
    pub failures: usize,
}

impl PhaseStats {
    /// Hit rate over served replies; zero when nothing was served.
    pub fn hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.hits as f64 / self.served as f64
        }
    }

    fn absorb(&mut self, o: &PhaseStats) {
        self.attempts += o.attempts;
        self.served += o.served;
        self.hits += o.hits;
        self.degraded += o.degraded;
        self.failures += o.failures;
    }
}

/// Aggregate outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Sessions run.
    pub sessions: usize,
    /// Serviceable attempts across sessions (the sum of the
    /// per-session fault request indices).
    pub attempts: usize,
    /// Replies produced (clean + degraded).
    pub served: usize,
    /// Degraded replies among them.
    pub degraded: usize,
    /// Outright failures.
    pub failures: usize,
    /// Backend retries spent on primary fetches.
    pub retries: u64,
    /// Sessions whose body panicked (must be zero — see
    /// [`assert_invariants`]).
    pub panics: usize,
    /// Attempts before the fault window opened.
    pub before: PhaseStats,
    /// Attempts inside the window.
    pub during: PhaseStats,
    /// Attempts after the window closed.
    pub after: PhaseStats,
    /// Shared-cache capacity the run was configured with.
    pub cache_capacity: usize,
    /// High-water mark of resident tiles, sampled after every request.
    pub max_resident: usize,
    /// Shared-cache counters.
    pub shared: SharedCacheStats,
    /// Scheduler counters when batching was on (`rescues` counts
    /// follower-timeout self-rescues).
    pub scheduler: Option<SchedulerStats>,
    /// Median user-visible latency over served replies (includes
    /// spike charges and retry backoff on the simulated clock).
    pub latency_p50: std::time::Duration,
    /// 99th-percentile user-visible latency over served replies.
    pub latency_p99: std::time::Duration,
    /// Served requests per traffic phase (burst/dwell/idle), summed
    /// over sessions; all zero unless burst scheduling was on.
    pub per_traffic: [usize; 3],
    /// Speculative tiles fetched across sessions.
    pub prefetch_issued: usize,
    /// Speculative tiles later served as cache hits.
    pub prefetch_used: usize,
    /// Whether burst-aware scheduling was active for this run.
    pub burst_active: bool,
}

/// Runs `cfg.base.sessions` concurrent analysts under `cfg.plan`.
/// Session `i` replays `traces[i % traces.len()]`, cycling it until
/// `steps_per_session` serviceable requests have been *attempted*
/// (attempts, not replies — a failed fetch still advances the fault
/// window, exactly as it advances the plan's request index).
pub fn run_chaos<F>(
    pyramid: &Arc<Pyramid>,
    engine_factory: F,
    traces: &[Trace],
    cfg: &ChaosConfig,
) -> ChaosReport
where
    F: Fn() -> PredictionEngine + Sync,
{
    assert!(cfg.base.sessions > 0, "need at least one session");
    assert!(!traces.is_empty(), "need at least one trace");
    let cache = build_cache(&cfg.base);
    let scheduler = cfg.base.batch_predicts.then(|| {
        Arc::new(PredictScheduler::new(
            engine_factory().sb_model().clone(),
            pyramid.clone(),
            BatchConfig {
                window: cfg.base.batch_window,
                ..BatchConfig::default()
            },
        ))
    });

    #[derive(Default)]
    struct SessionOutcome {
        before: PhaseStats,
        during: PhaseStats,
        after: PhaseStats,
        retries: u64,
        max_resident: usize,
        panicked: bool,
        latency_ns: Vec<u64>,
        per_traffic: [usize; 3],
        prefetch_issued: usize,
        prefetch_used: usize,
    }

    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.base.sessions)
            .map(|i| {
                let trace = &traces[i % traces.len()];
                let cache = cache.clone();
                let scheduler = scheduler.clone();
                let engine = engine_factory();
                let pyramid = pyramid.clone();
                scope.spawn(move || {
                    let mut out = SessionOutcome::default();
                    // The session body must never unwind past this
                    // frame: a panic is an invariant violation to
                    // *report*, not to propagate into the scope (which
                    // would abort the whole harness).
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let handle = SharedSessionHandle::open(cache.clone(), scheduler);
                        let mut mw = Middleware::new_shared(
                            engine,
                            pyramid,
                            cfg.base.profile,
                            cfg.base.history_cache,
                            cfg.base.k,
                            handle,
                        );
                        mw.set_faults(cfg.plan.clone(), cfg.retry);
                        mw.set_burst(cfg.burst);
                        let think = (!cfg.think.is_empty())
                            .then(|| cfg.think[i % cfg.think.len()].as_slice());
                        let mut out = SessionOutcome::default();
                        let (from, until) = cfg.fault_window;
                        'replay: loop {
                            let before = mw.fault_request_index();
                            for (j, step) in trace.steps.iter().enumerate() {
                                let idx = mw.fault_request_index();
                                if idx >= cfg.base.steps_per_session as u64 {
                                    break 'replay;
                                }
                                let mv = if j == 0 { None } else { step.mv };
                                if let Some(d) = think.and_then(|t| t.get(j)) {
                                    mw.note_idle(*d);
                                }
                                let result = mw.try_request(step.tile, mv);
                                let bucket = if idx < from {
                                    &mut out.before
                                } else if idx < until {
                                    &mut out.during
                                } else {
                                    &mut out.after
                                };
                                match result {
                                    // Unservable tile: no attempt, no
                                    // index tick — nothing to book.
                                    Ok(None) => continue,
                                    Ok(Some(resp)) => {
                                        bucket.attempts += 1;
                                        bucket.served += 1;
                                        bucket.hits += usize::from(resp.cache_hit);
                                        bucket.degraded += usize::from(resp.degraded);
                                        out.retries += u64::from(resp.fetch_retries);
                                        out.latency_ns.push(
                                            u64::try_from(resp.latency.as_nanos())
                                                .unwrap_or(u64::MAX),
                                        );
                                    }
                                    Err(_) => {
                                        bucket.attempts += 1;
                                        bucket.failures += 1;
                                    }
                                }
                                out.max_resident = out.max_resident.max(cache.len());
                            }
                            // A full pass that attempted nothing can
                            // never progress: stop instead of spinning.
                            if mw.fault_request_index() == before {
                                break;
                            }
                        }
                        let st = mw.stats();
                        out.per_traffic = st.per_traffic;
                        out.prefetch_issued = st.prefetch_issued;
                        out.prefetch_used = st.prefetch_used;
                        out
                    }));
                    match body {
                        Ok(done) => out = done,
                        Err(_) => out.panicked = true,
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });

    let mut before = PhaseStats::default();
    let mut during = PhaseStats::default();
    let mut after = PhaseStats::default();
    let mut retries = 0u64;
    let mut max_resident = 0usize;
    let mut panics = 0usize;
    let mut per_traffic = [0usize; 3];
    let mut prefetch_issued = 0usize;
    let mut prefetch_used = 0usize;
    let mut all_ns: Vec<u64> = Vec::new();
    for o in &outcomes {
        before.absorb(&o.before);
        during.absorb(&o.during);
        after.absorb(&o.after);
        retries += o.retries;
        max_resident = max_resident.max(o.max_resident);
        panics += usize::from(o.panicked);
        for (sum, n) in per_traffic.iter_mut().zip(o.per_traffic) {
            *sum += n;
        }
        prefetch_issued += o.prefetch_issued;
        prefetch_used += o.prefetch_used;
        all_ns.extend_from_slice(&o.latency_ns);
    }
    all_ns.sort_unstable();
    let pct = |p: f64| -> std::time::Duration {
        if all_ns.is_empty() {
            return std::time::Duration::ZERO;
        }
        let idx = ((all_ns.len() as f64 - 1.0) * p).round() as usize;
        std::time::Duration::from_nanos(all_ns[idx.min(all_ns.len() - 1)])
    };
    let (latency_p50, latency_p99) = (pct(0.50), pct(0.99));

    ChaosReport {
        sessions: cfg.base.sessions,
        attempts: before.attempts + during.attempts + after.attempts,
        served: before.served + during.served + after.served,
        degraded: before.degraded + during.degraded + after.degraded,
        failures: before.failures + during.failures + after.failures,
        retries,
        panics,
        before,
        during,
        after,
        cache_capacity: cfg.base.cache_capacity,
        max_resident,
        shared: cache.stats(),
        scheduler: scheduler.map(|s| s.stats()),
        latency_p50,
        latency_p99,
        per_traffic,
        prefetch_issued,
        prefetch_used,
        burst_active: cfg.burst.is_some(),
    }
}

/// Asserts the schedule-independent invariants of a chaos run. Panics
/// (with the offending counters) when one is violated.
pub fn assert_invariants(r: &ChaosReport) {
    assert_eq!(r.panics, 0, "a panic escaped a session body: {r:?}");
    assert!(
        r.max_resident <= r.cache_capacity,
        "shared cache exceeded capacity: {} resident > {} capacity",
        r.max_resident,
        r.cache_capacity
    );
    assert_eq!(
        r.served + r.failures,
        r.attempts,
        "every attempt is served or failed: {r:?}"
    );
    assert!(
        r.degraded <= r.served,
        "degraded replies are a subset of served: {r:?}"
    );
    for (name, p) in [
        ("before", &r.before),
        ("during", &r.during),
        ("after", &r.after),
    ] {
        assert_eq!(
            p.served + p.failures,
            p.attempts,
            "{name} bucket balances: {p:?}"
        );
        assert!(p.hits <= p.served, "{name}: hits within served: {p:?}");
        assert!(
            p.degraded <= p.served,
            "{name}: degraded within served: {p:?}"
        );
    }
    assert!(
        r.prefetch_used <= r.prefetch_issued,
        "a prefetch cannot be used more often than issued: {r:?}"
    );
    if r.burst_active {
        assert_eq!(
            r.per_traffic.iter().sum::<usize>(),
            r.served,
            "every served request lands in exactly one traffic phase: {r:?}"
        );
    } else {
        assert_eq!(
            r.per_traffic,
            [0, 0, 0],
            "traffic buckets must stay empty with burst scheduling off: {r:?}"
        );
    }
    if let Some(s) = &r.scheduler {
        assert!(
            s.jobs >= s.batches,
            "scheduler batches cannot outnumber jobs: {s:?}"
        );
    }
}
