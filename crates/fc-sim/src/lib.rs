//! # fc-sim — synthetic study: data, users, and the replay harness
//!
//! The paper evaluates ForeCache with a user study: 18 domain scientists
//! exploring NASA MODIS snow-cover (NDSI) data, three search tasks each,
//! yielding 54 traces (§5). Neither the MODIS archive nor the study
//! traces ship with the paper, so this crate builds faithful synthetic
//! equivalents:
//!
//! * [`terrain`] — fractal terrain with three continent-scale mountain
//!   ranges (stand-ins for the Rockies, Alps, and Andes); VIS/SWIR
//!   reflectance bands derived from elevation and snow cover, pushed
//!   through the paper's Query-1 `join`+`apply` NDSI pipeline in
//!   `fc-array`;
//! * [`dataset`] — the tiled study dataset: NDSI pyramid + signatures;
//! * [`user`] — a stochastic behavioural agent that explores the pyramid
//!   according to the paper's own three-phase analysis model, emitting
//!   ground-truth-labeled traces;
//! * [`study`] — 18 parameterized users × 3 tasks = 54 traces;
//! * [`trace`] — trace types and a line-oriented (de)serializer;
//! * [`replay`] — the accuracy/latency harness of §5.2.2: step through a
//!   trace, collect each model's top-k predictions, count a hit when the
//!   next requested tile is in the list; leave-one-user-out
//!   cross-validation as in §5.4;
//! * [`multiuser`] — the multi-user replay driver: K concurrent
//!   simulated analysts (threads) over one shared pyramid, joined
//!   through the shared tile cache and optional cross-session predict
//!   scheduler, reporting aggregate throughput and predict-latency
//!   percentiles (the `exp_multiuser` substrate);
//! * [`swarm`] — the socket-level fleet driver: hundreds-to-thousands
//!   of paced, nonblocking client sessions from one thread against a
//!   live `fc-server` (threaded or reactor), measuring wire-path
//!   request latency and observing server pushes.

#![warn(missing_docs)]

pub mod auto_weights;
pub mod chaos;
pub mod dataset;
pub mod multiuser;
pub mod replay;
pub mod study;
pub mod swarm;
pub mod task;
pub mod terrain;
pub mod trace;
pub mod user;
pub mod zoo;

pub use auto_weights::{learn_weights, LearnedWeights};
pub use chaos::{assert_invariants, run_chaos, ChaosConfig, ChaosReport, PhaseStats};
pub use dataset::{DatasetConfig, StudyDataset};
pub use multiuser::{
    run_multi_user, synthetic_workload, CacheImpl, MultiUserConfig, MultiUserReport,
};
pub use replay::{AccuracyReport, Predictor, ReplayOutcome};
pub use study::{Study, StudyConfig};
pub use swarm::{run_swarm, SwarmConfig, SwarmReport};
pub use task::TaskSpec;
pub use terrain::TerrainConfig;
pub use trace::{Trace, TraceStep};
pub use user::UserParams;
pub use zoo::{replay_workload, Workload, ZooOutcome, ZOO_NAMES};
