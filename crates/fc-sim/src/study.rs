//! The synthetic user study: 18 users × 3 tasks = 54 traces (§5.3).

use crate::dataset::StudyDataset;
use crate::task::TaskSpec;
use crate::trace::Trace;
use crate::user::{run_session, UserParams};
use fc_core::{phase_features, Request};
use fc_tiles::nav::MoveClass;

/// Study composition parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Number of simulated participants (18 in the paper).
    pub num_users: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self { num_users: 18 }
    }
}

/// A generated study: the traces plus their task specs.
#[derive(Debug)]
pub struct Study {
    /// All traces, ordered by (user, task).
    pub traces: Vec<Trace>,
    /// The three task specifications.
    pub tasks: Vec<TaskSpec>,
}

impl Study {
    /// Runs every (user, task) session.
    pub fn generate(dataset: &StudyDataset, cfg: &StudyConfig) -> Self {
        let tasks = TaskSpec::study_tasks(dataset.pyramid.geometry().levels);
        let mut traces = Vec::with_capacity(cfg.num_users * tasks.len());
        for user in 0..cfg.num_users {
            let params = UserParams::study_user(user);
            for task in &tasks {
                traces.push(run_session(dataset, task, &params, user));
            }
        }
        Self { traces, tasks }
    }

    /// Traces of one user.
    pub fn user_traces(&self, user: usize) -> Vec<&Trace> {
        self.traces.iter().filter(|t| t.user == user).collect()
    }

    /// Traces of one task.
    pub fn task_traces(&self, task: usize) -> Vec<&Trace> {
        self.traces.iter().filter(|t| t.task == task).collect()
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        self.traces
            .iter()
            .map(|t| t.user)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Total requests across all traces (the paper's study had 1390).
    pub fn total_requests(&self) -> usize {
        self.traces.iter().map(|t| t.len()).sum()
    }

    /// The labeled phase-classification dataset: one `(features, label,
    /// user)` row per request (the §5.4.1 training data).
    pub fn phase_dataset(&self) -> PhaseDataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut users = Vec::new();
        for t in &self.traces {
            let mut prev: Option<Request> = None;
            for s in &t.steps {
                let req = Request::new(s.tile, s.mv);
                features.push(phase_features(&req, prev.as_ref()).to_vec());
                labels.push(s.phase.index());
                users.push(t.user);
                prev = Some(req);
            }
        }
        PhaseDataset {
            features,
            labels,
            users,
        }
    }

    /// Move-class distribution per task, averaged across users
    /// (Fig. 8a): rows are tasks, columns `(pan, zoom_in, zoom_out)`
    /// fractions.
    pub fn move_distribution_per_task(&self) -> Vec<[f64; 3]> {
        let ntasks = self.tasks.len();
        let mut out = vec![[0.0f64; 3]; ntasks];
        for (ti, row) in out.iter_mut().enumerate() {
            let traces = self.task_traces(ti);
            let mut counts = [0usize; 3];
            for t in &traces {
                for s in &t.steps {
                    if let Some(m) = s.mv {
                        match m.class() {
                            MoveClass::Pan => counts[0] += 1,
                            MoveClass::ZoomIn => counts[1] += 1,
                            MoveClass::ZoomOut => counts[2] += 1,
                        }
                    }
                }
            }
            let total: usize = counts.iter().sum();
            if total > 0 {
                for (o, c) in row.iter_mut().zip(counts) {
                    *o = c as f64 / total as f64;
                }
            }
        }
        out
    }

    /// Phase distribution per task (Fig. 8b): rows are tasks, columns
    /// indexed by [`fc_core::Phase::index`].
    pub fn phase_distribution_per_task(&self) -> Vec<[f64; 3]> {
        let ntasks = self.tasks.len();
        let mut out = vec![[0.0f64; 3]; ntasks];
        for (ti, row) in out.iter_mut().enumerate() {
            let traces = self.task_traces(ti);
            let mut counts = [0usize; 3];
            for t in &traces {
                for s in &t.steps {
                    counts[s.phase.index()] += 1;
                }
            }
            let total: usize = counts.iter().sum();
            if total > 0 {
                for (o, c) in row.iter_mut().zip(counts) {
                    *o = c as f64 / total as f64;
                }
            }
        }
        out
    }

    /// Per-user move-class distribution for one task (Fig. 8c–e).
    pub fn per_user_move_distribution(&self, task: usize) -> Vec<(usize, [f64; 3])> {
        let mut out = Vec::new();
        for t in self.task_traces(task) {
            let mut counts = [0usize; 3];
            for s in &t.steps {
                if let Some(m) = s.mv {
                    match m.class() {
                        MoveClass::Pan => counts[0] += 1,
                        MoveClass::ZoomIn => counts[1] += 1,
                        MoveClass::ZoomOut => counts[2] += 1,
                    }
                }
            }
            let total: usize = counts.iter().sum::<usize>().max(1);
            out.push((
                t.user,
                [
                    counts[0] as f64 / total as f64,
                    counts[1] as f64 / total as f64,
                    counts[2] as f64 / total as f64,
                ],
            ));
        }
        out
    }
}

/// The labeled phase-classification dataset (§5.4.1).
#[derive(Debug, Clone)]
pub struct PhaseDataset {
    /// Table-1 feature vectors, one per request.
    pub features: Vec<Vec<f64>>,
    /// Phase class ids aligned with `features`.
    pub labels: Vec<usize>,
    /// User ids aligned with `features` (for leave-one-user-out CV).
    pub users: Vec<usize>,
}

impl PhaseDataset {
    /// Distribution of labels as fractions, indexed by [`fc_core::Phase::index`].
    pub fn label_distribution(&self) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for &l in &self.labels {
            counts[l] += 1;
        }
        let total = self.labels.len().max(1);
        [
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
        ]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, StudyDataset};

    fn small_study() -> (StudyDataset, Study) {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let study = Study::generate(&ds, &StudyConfig { num_users: 4 });
        (ds, study)
    }

    #[test]
    fn generates_users_times_tasks_traces() {
        let (_ds, study) = small_study();
        assert_eq!(study.traces.len(), 4 * 3);
        assert_eq!(study.num_users(), 4);
        assert_eq!(study.user_traces(1).len(), 3);
        assert_eq!(study.task_traces(2).len(), 4);
        assert!(study.total_requests() > 40);
    }

    #[test]
    fn phase_dataset_aligned() {
        let (_ds, study) = small_study();
        let pd = study.phase_dataset();
        assert_eq!(pd.len(), study.total_requests());
        assert_eq!(pd.labels.len(), pd.len());
        assert_eq!(pd.users.len(), pd.len());
        let dist = pd.label_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            dist.iter().all(|&d| d > 0.0),
            "all phases present: {dist:?}"
        );
    }

    #[test]
    fn distributions_are_normalized() {
        let (_ds, study) = small_study();
        for row in study.move_distribution_per_task() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9 || s == 0.0);
        }
        for row in study.phase_distribution_per_task() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        let per_user = study.per_user_move_distribution(0);
        assert_eq!(per_user.len(), 4);
    }
}
