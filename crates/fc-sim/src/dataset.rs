//! The tiled study dataset: NDSI pyramid + signatures.

use crate::terrain::{build_ndsi_database, TerrainConfig};
use fc_array::{AggFn, Database, IoMode, LatencyModel};
use fc_core::signature::{attach_signatures, SignatureConfig};
use fc_tiles::{AttrAgg, Pyramid, PyramidBuilder, PyramidConfig, TileId};
use fc_vision::Vocabulary;
use std::sync::Arc;

/// Dataset construction parameters.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Terrain generation parameters.
    pub terrain: TerrainConfig,
    /// Number of zoom levels (the paper's NDSI dataset had nine; the
    /// default here is six to keep experiment turnaround minutes, with
    /// the same quadtree structure).
    pub levels: u8,
    /// Square tile side in cells.
    pub tile: usize,
    /// Backend latency model (SciDB-like by default).
    pub latency: LatencyModel,
    /// Signature pipeline configuration.
    pub signatures: SignatureConfig,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            terrain: TerrainConfig::default(),
            levels: 4,
            tile: 64,
            latency: LatencyModel::scidb_like(),
            signatures: SignatureConfig::ndsi("ndsi_avg"),
        }
    }
}

impl DatasetConfig {
    /// The full-size study configuration used by the experiment binaries:
    /// 1024² raw cells, 64-cell tiles, six zoom levels (1365 tiles).
    pub fn study() -> Self {
        Self {
            terrain: TerrainConfig {
                size: 1024,
                ..TerrainConfig::default()
            },
            levels: 6,
            tile: 64,
            ..Self::default()
        }
    }

    /// A small configuration for unit tests: 128² cells, 32-cell tiles,
    /// three levels (21 tiles).
    pub fn tiny() -> Self {
        Self {
            terrain: TerrainConfig {
                size: 128,
                ..TerrainConfig::default()
            },
            levels: 3,
            tile: 32,
            latency: LatencyModel::free(),
            ..Self::default()
        }
    }
}

/// The built study dataset.
pub struct StudyDataset {
    /// The tiled NDSI pyramid with signatures attached.
    pub pyramid: Arc<Pyramid>,
    /// The array catalog holding `SVIS`, `SSWIR`, `MASK`, `NDSI`, and the
    /// per-level materialized views.
    pub db: Database,
    /// Trained SIFT vocabulary (for attaching signatures to new tiles).
    pub sift_vocab: Arc<Vocabulary>,
    /// Trained denseSIFT vocabulary.
    pub dense_vocab: Arc<Vocabulary>,
    /// The configuration it was built with.
    pub config: DatasetConfig,
}

impl StudyDataset {
    /// Builds the full dataset: terrain → bands → Query 1 NDSI →
    /// per-attribute aggregated pyramid → signatures.
    pub fn build(config: DatasetConfig) -> Self {
        let (db, ndsi) = build_ndsi_database(&config.terrain);
        let pyr_cfg = PyramidConfig {
            levels: config.levels,
            tile_h: config.tile,
            tile_w: config.tile,
            aggs: vec![
                AttrAgg::new("ndsi_max", AggFn::Max),
                AttrAgg::new("ndsi_min", AggFn::Min),
                AttrAgg::new("ndsi_avg", AggFn::Avg),
                AttrAgg::new("land", AggFn::Avg),
            ],
            latency: config.latency,
            io_mode: IoMode::Simulated,
        };
        let pyramid = Arc::new(
            PyramidBuilder::new()
                .build(&ndsi, &pyr_cfg)
                .expect("pyramid builds from NDSI array"),
        );
        let (sift_vocab, dense_vocab) = attach_signatures(&pyramid, &config.signatures);
        pyramid.store().reset_io_stats();
        pyramid.store().clock().reset();
        Self {
            pyramid,
            db,
            sift_vocab,
            dense_vocab,
            config,
        }
    }

    /// Mean value of `attr` over a tile, read from the offline path
    /// (what a user "sees" when they look at the rendered tile).
    pub fn tile_mean(&self, id: TileId, attr: &str) -> Option<f64> {
        let t = self.pyramid.store().fetch_offline(id)?;
        let vals = t.present_values(attr).ok()?;
        Some(fc_ml::mean(&vals))
    }

    /// Maximum value of `attr` over a tile.
    pub fn tile_max(&self, id: TileId, attr: &str) -> Option<f64> {
        let t = self.pyramid.store().fetch_offline(id)?;
        let vals = t.present_values(attr).ok()?;
        vals.into_iter().reduce(f64::max)
    }

    /// Fraction of a tile's cells with `attr ≥ threshold`.
    pub fn tile_fraction_above(&self, id: TileId, attr: &str, threshold: f64) -> Option<f64> {
        let t = self.pyramid.store().fetch_offline(id)?;
        let vals = t.present_values(attr).ok()?;
        if vals.is_empty() {
            return Some(0.0);
        }
        Some(vals.iter().filter(|&&v| v >= threshold).count() as f64 / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_builds_with_signatures() {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let g = ds.pyramid.geometry();
        assert_eq!(g.levels, 3);
        assert_eq!(g.tiles_at(2), (4, 4));
        assert_eq!(ds.pyramid.store().backend_len(), 1 + 4 + 16);
        // Signatures exist on every tile.
        for id in g.all_tiles() {
            let meta = ds.pyramid.store().meta(id).unwrap();
            assert!(meta.get("sig_hist").is_some());
            assert!(meta.get("sig_sift").is_some());
        }
        // Materialized views registered through Query 1.
        assert!(ds.db.scan("NDSI").is_ok());
        assert!(ds.db.scan("SVIS").is_ok());
        // Clock reset: building charged nothing to the session.
        assert_eq!(ds.pyramid.store().io_stats().reads, 0);
    }

    #[test]
    fn tile_stats_reflect_snowy_ridges() {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let g = ds.pyramid.geometry();
        let deepest = g.levels - 1;
        // Find the max-mean tile at the deepest level; it should have a
        // clearly positive NDSI (a snowy ridge tile).
        let (rows, cols) = g.tiles_at(deepest);
        let mut best = f64::MIN;
        for y in 0..rows {
            for x in 0..cols {
                let m = ds
                    .tile_mean(TileId::new(deepest, y, x), "ndsi_avg")
                    .unwrap();
                best = best.max(m);
            }
        }
        assert!(best > 0.1, "snowiest tile mean {best}");
        let f = ds
            .tile_fraction_above(TileId::new(deepest, 0, 0), "ndsi_avg", -2.0)
            .unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn attr_aggregation_diverges_at_coarse_levels() {
        let ds = StudyDataset::build(DatasetConfig::tiny());
        let root = ds.pyramid.store().fetch_offline(TileId::ROOT).unwrap();
        let max_vals = root.present_values("ndsi_max").unwrap();
        let min_vals = root.present_values("ndsi_min").unwrap();
        let avg_vals = root.present_values("ndsi_avg").unwrap();
        let any_diverged = max_vals
            .iter()
            .zip(&min_vals)
            .zip(&avg_vals)
            .any(|((mx, mn), av)| mx > av && av > mn);
        assert!(any_diverged, "max/avg/min should separate after regrid");
    }
}
