//! Golden SIMD-dispatch suite: every SB entry point must produce
//! **bit-identical** distances at every available dispatch level.
//!
//! The fc-simd kernels (χ² accumulation, max scan, penalty fold,
//! normalize/combine) promise exact IEEE semantics per lane — no FMA
//! contraction, no reassociation beyond the documented 4-way split
//! that the scalar fallback replays verbatim. This suite pins that
//! contract where it matters: [`SbRecommender`]s pinned to each
//! [`SimdLevel`] the host offers are run over the same stores and
//! compared bit-for-bit against the `Scalar` pin *and* the locked
//! reference path [`SbRecommender::distances`], across
//!
//! * all four indexed entry points (plain, pair-cached, batched,
//!   batched-cached), hit and miss cache states;
//! * nsig 1, 2 and 4 configurations, with and without the Manhattan /
//!   physical-distance terms;
//! * degenerate shapes: empty candidates, empty ROI, single pairs,
//!   odd-sized sets;
//! * hostile metadata: NaN and ±inf bins, odd vector widths, tiles
//!   with no signatures at all (NaN rows are compared by bit pattern —
//!   the sorting helpers are deliberately avoided here);
//! * random pan/zoom walks (proptest) with long-lived per-level pair
//!   caches.

use fc_array::{IoMode, LatencyModel, SimClock};
use fc_core::paircache::PairCache;
use fc_core::sb::{PredictScratch, SbBatchJob, SbConfig, SbRecommender};
use fc_core::signature::{SignatureKind, SIGNATURE_KINDS};
use fc_core::SimdLevel;
use fc_tiles::{Geometry, TileId, TileStore};
use proptest::prelude::*;

/// Deterministic non-negative value stream (xorshift64*).
fn sig_values(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        })
        .collect()
}

/// Odd per-kind widths on purpose: 1-, 3-, 7- and 17-wide vectors leave
/// lane remainders at every SIMD width.
fn kind_dim(kind: SignatureKind) -> usize {
    match kind {
        SignatureKind::NormalDist => 1,
        SignatureKind::Hist1D => 3,
        SignatureKind::Sift => 7,
        SignatureKind::DenseSift => 17,
    }
}

/// A store over `g` with synthetic signatures. Every 7th tile is left
/// bare (missing-metadata pairs). With `hostile`, bins are sprinkled
/// with NaN and ±inf so the max scan, χ² and combine kernels all see
/// specials in arbitrary lanes.
fn synthetic_store(g: Geometry, salt: u64, hostile: bool) -> TileStore {
    let s = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
    for (i, id) in g.all_tiles().enumerate() {
        if i % 7 == 6 {
            continue;
        }
        for (k, kind) in SIGNATURE_KINDS.iter().enumerate() {
            let seed = salt
                ^ (u64::from(id.level) << 40)
                ^ (u64::from(id.y) << 20)
                ^ u64::from(id.x)
                ^ ((k as u64) << 56);
            let mut v = sig_values(seed, kind_dim(*kind));
            if hostile {
                for (j, x) in v.iter_mut().enumerate() {
                    match (i * 31 + k * 7 + j) % 23 {
                        0 => *x = f64::NAN,
                        7 => *x = f64::INFINITY,
                        14 => *x = f64::NEG_INFINITY,
                        _ => {}
                    }
                }
            }
            s.put_meta(id, kind.meta_name(), v);
        }
    }
    s
}

/// A 3-level geometry whose raw extent does not divide the tile size
/// (odd tile grids at every level).
fn odd_geometry() -> Geometry {
    Geometry::new(3, 100, 92, 24, 24)
}

/// The configurations under test: nsig 4, 2 and 1, plus the ablation
/// with both distance terms off.
fn configs() -> Vec<SbConfig> {
    vec![
        SbConfig::all_equal(),
        SbConfig {
            weights: vec![
                (SignatureKind::Hist1D, 0.75),
                (SignatureKind::DenseSift, 0.25),
            ],
            ..SbConfig::all_equal()
        },
        SbConfig::single(SignatureKind::Sift),
        SbConfig {
            manhattan_penalty: false,
            physical_distance: false,
            ..SbConfig::all_equal()
        },
    ]
}

/// Candidate/ROI shape matrix: degenerate first, then odd-sized sets
/// crossing levels and missing-metadata tiles.
fn shape_cases(g: Geometry) -> Vec<(Vec<TileId>, Vec<TileId>)> {
    let at = |level: u8, y: u32, x: u32| {
        let (rows, cols) = g.tiles_at(level);
        TileId::new(level, y.min(rows - 1), x.min(cols - 1))
    };
    let level2: Vec<TileId> = g.all_tiles().filter(|t| t.level == 2).collect();
    vec![
        (vec![], vec![at(1, 0, 0)]),
        (vec![at(2, 0, 0)], vec![]),
        (vec![], vec![]),
        (vec![at(2, 1, 1)], vec![at(2, 1, 1)]),
        (level2.iter().copied().take(5).collect(), vec![at(1, 1, 1)]),
        (
            level2.iter().copied().take(9).collect(),
            vec![at(2, 0, 3), at(1, 1, 0), at(0, 0, 0)],
        ),
        (
            // Everything at the deepest level against a 7-tile ROI —
            // includes bare tiles on both sides.
            level2.clone(),
            level2.iter().copied().step_by(3).take(7).collect(),
        ),
    ]
}

/// Asserts `got` matches `want` pairwise with bit-exact distances.
fn assert_bits(ctx: &str, want: &[(TileId, f64)], got: &[(TileId, f64)]) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    for (w, g) in want.iter().zip(got) {
        assert_eq!(w.0, g.0, "{ctx}: candidate order");
        assert_eq!(
            w.1.to_bits(),
            g.1.to_bits(),
            "{ctx}: distance bits for {} ({} vs {})",
            w.0,
            w.1,
            g.1
        );
    }
}

/// Runs every entry point of `sb` on one (candidates, roi) case and
/// checks them against the scalar pin and the reference path.
#[allow(clippy::too_many_arguments)]
fn check_case(
    ctx: &str,
    sb: &SbRecommender,
    scalar: &SbRecommender,
    store: &TileStore,
    index: &fc_tiles::SignatureIndex,
    candidates: &[TileId],
    roi: &[TileId],
    cache: &mut PairCache,
) {
    let mut scratch = PredictScratch::default();
    let mut want = Vec::new();
    scalar.distances_indexed_into(index, candidates, roi, &mut scratch, &mut want);

    // The locked reference path is scalar by construction; the frozen
    // index at *any* level must reproduce it bit-for-bit.
    let reference = scalar.distances(store, candidates, roi);
    assert_bits(&format!("{ctx}/reference-vs-scalar"), &reference, &want);

    let mut got = Vec::new();
    sb.distances_indexed_into(index, candidates, roi, &mut scratch, &mut got);
    assert_bits(&format!("{ctx}/indexed"), &want, &got);

    // Cached: first call exercises the miss frontier, second the pure
    // hit path; both must match the uncached scalar result.
    for lap in ["miss", "hit"] {
        sb.distances_indexed_cached_into(index, candidates, roi, cache, &mut scratch, &mut got);
        assert_bits(&format!("{ctx}/cached-{lap}"), &want, &got);
    }

    // Batched: the case twice plus a shrunk sibling job; job 0 must be
    // bit-identical to the standalone call.
    let sibling_c: Vec<TileId> = candidates.iter().copied().step_by(2).collect();
    let jobs = [
        SbBatchJob { candidates, roi },
        SbBatchJob {
            candidates: &sibling_c,
            roi,
        },
    ];
    let mut outs = Vec::new();
    sb.distances_batched_into(index, &jobs, &mut scratch, &mut outs);
    assert_bits(&format!("{ctx}/batched"), &want, &outs[0]);
    sb.distances_batched_cached_into(index, &jobs, cache, &mut scratch, &mut outs);
    assert_bits(&format!("{ctx}/batched-cached"), &want, &outs[0]);
}

/// The main grid: {clean, hostile} stores × configs × available levels
/// × shape cases, every entry point, bit-exact.
#[test]
fn sb_entry_points_bit_identical_at_every_level() {
    let g = odd_geometry();
    for (hostile, salt) in [(false, 0x5eed_0001u64), (true, 0x5eed_0002)] {
        let store = synthetic_store(g, salt, hostile);
        let index = store.signature_index().expect("synthetic signatures");
        for (ci, cfg) in configs().into_iter().enumerate() {
            let scalar = SbRecommender::with_simd_level(cfg.clone(), SimdLevel::Scalar);
            for level in fc_simd::available_levels() {
                let sb = SbRecommender::with_simd_level(cfg.clone(), level);
                assert_eq!(sb.simd_level(), level);
                let mut cache = PairCache::for_index(&index);
                for (si, (candidates, roi)) in shape_cases(g).iter().enumerate() {
                    let ctx = format!(
                        "hostile={hostile} cfg#{ci} level={} shape#{si}",
                        level.name()
                    );
                    check_case(
                        &ctx, &sb, &scalar, &store, &index, candidates, roi, &mut cache,
                    );
                }
            }
        }
    }
}

/// `with_simd_level` clamps requests the host cannot serve, so a
/// recommender never dispatches above what is actually available.
#[test]
fn requested_levels_are_clamped_to_host_support() {
    let best = *fc_simd::available_levels().last().expect("scalar exists");
    for want in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
        let sb = SbRecommender::with_simd_level(SbConfig::all_equal(), want);
        assert!(sb.simd_level() <= best, "never above host support");
        assert!(sb.simd_level() <= want, "never above the request");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pan/zoom walks over a hostile store: at every step the
    /// cached path at each available level must be bit-identical to
    /// the scalar pin, with one long-lived cache per level carrying
    /// hit/miss state across the whole walk.
    #[test]
    fn random_walks_stay_bit_identical(
        salt in any::<u64>(),
        steps in proptest::collection::vec((0usize..6, 0u8..3), 1..14),
    ) {
        let g = odd_geometry();
        let store = synthetic_store(g, salt, true);
        let index = store.signature_index().expect("synthetic signatures");
        let cfg = SbConfig::all_equal();
        let scalar = SbRecommender::with_simd_level(cfg.clone(), SimdLevel::Scalar);
        let levels = fc_simd::available_levels();
        let sbs: Vec<SbRecommender> = levels
            .iter()
            .map(|&l| SbRecommender::with_simd_level(cfg.clone(), l))
            .collect();
        let mut caches: Vec<PairCache> =
            levels.iter().map(|_| PairCache::for_index(&index)).collect();
        let mut scratch = PredictScratch::default();
        let (mut want, mut got) = (Vec::new(), Vec::new());

        let mut anchor = TileId::new(2, 0, 0);
        for (mv, roi_code) in steps {
            let (rows, cols) = g.tiles_at(anchor.level);
            anchor = match mv {
                0 => TileId::new(anchor.level, anchor.y, (anchor.x + 1).min(cols - 1)),
                1 => TileId::new(anchor.level, anchor.y, anchor.x.saturating_sub(1)),
                2 => TileId::new(anchor.level, (anchor.y + 1).min(rows - 1), anchor.x),
                3 => TileId::new(anchor.level, anchor.y.saturating_sub(1), anchor.x),
                4 if anchor.level + 1 < g.levels => {
                    TileId::new(anchor.level + 1, anchor.y * 2, anchor.x * 2)
                }
                _ if anchor.level > 0 => {
                    TileId::new(anchor.level - 1, anchor.y / 2, anchor.x / 2)
                }
                _ => anchor,
            };
            let candidates = g.candidates(anchor, 1);
            let roi: Vec<TileId> = match roi_code {
                0 => vec![],
                1 => vec![anchor],
                _ => g.candidates(anchor, 2).into_iter().step_by(4).collect(),
            };
            scalar.distances_indexed_into(&index, &candidates, &roi, &mut scratch, &mut want);
            for (i, sb) in sbs.iter().enumerate() {
                sb.distances_indexed_cached_into(
                    &index, &candidates, &roi, &mut caches[i], &mut scratch, &mut got,
                );
                prop_assert_eq!(want.len(), got.len());
                for (w, o) in want.iter().zip(&got) {
                    prop_assert_eq!(w.0, o.0);
                    prop_assert_eq!(
                        w.1.to_bits(), o.1.to_bits(),
                        "level {} at {}", levels[i].name(), anchor
                    );
                }
            }
        }
    }
}
