//! Property test for the χ² pair cache: replay random pan/zoom
//! sequences — with metadata-epoch bumps mid-sequence and periodic
//! cross-session batched jobs — against one long-lived cache, and
//! assert that every result is bit-identical to the locked reference
//! path [`SbRecommender::distances`] in `Exact` mode, and within the
//! documented [`CHI2_RECIPROCAL_EPSILON`] in `Reciprocal` mode.

use fc_array::{IoMode, LatencyModel, SimClock};
use fc_core::paircache::PairCache;
use fc_core::sb::{
    Chi2Kernel, PredictScratch, SbBatchJob, SbConfig, SbRecommender, CHI2_RECIPROCAL_EPSILON,
};
use fc_core::signature::{SignatureKind, SIGNATURE_KINDS};
use fc_tiles::{Geometry, TileId, TileStore};
use proptest::prelude::*;

/// Small deterministic value stream (xorshift64*), non-negative like
/// real histogram signatures.
fn sig_values(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        })
        .collect()
}

/// Per-kind signature widths — mixed on purpose (NormalDist is 2-wide).
fn kind_dim(kind: SignatureKind) -> usize {
    match kind {
        SignatureKind::NormalDist => 2,
        _ => 8,
    }
}

/// A 4-level store with synthetic signatures on *most* tiles (every
/// 11th tile is left bare, so "missing metadata" pairs stay covered).
fn synthetic_store(g: Geometry, salt: u64) -> TileStore {
    let s = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
    for (i, id) in g.all_tiles().enumerate() {
        if i % 11 == 10 {
            continue;
        }
        for (k, kind) in SIGNATURE_KINDS.iter().enumerate() {
            let seed = salt
                ^ (u64::from(id.level) << 40)
                ^ (u64::from(id.y) << 20)
                ^ u64::from(id.x)
                ^ ((k as u64) << 56);
            s.put_meta(id, kind.meta_name(), sig_values(seed, kind_dim(*kind)));
        }
    }
    s
}

/// Applies one walk step to an anchor, clamped to the geometry.
fn step_anchor(g: Geometry, t: TileId, code: usize) -> TileId {
    let (rows, cols) = g.tiles_at(t.level);
    match code {
        0 => TileId::new(t.level, t.y, (t.x + 1).min(cols - 1)),
        1 => TileId::new(t.level, t.y, t.x.saturating_sub(1)),
        2 => TileId::new(t.level, (t.y + 1).min(rows - 1), t.x),
        3 => TileId::new(t.level, t.y.saturating_sub(1), t.x),
        // Zoom in (deeper level, child coordinates) / zoom out.
        4 if t.level + 1 < g.levels => TileId::new(t.level + 1, t.y * 2, t.x * 2),
        _ if t.level > 0 => TileId::new(t.level - 1, t.y / 2, t.x / 2),
        _ => t,
    }
}

/// The reference set for a step: varies between empty-ish (the anchor
/// itself), a same-level block, and a cross-level mix.
fn roi_for(g: Geometry, t: TileId, code: u8) -> Vec<TileId> {
    match code {
        0 => vec![t],
        1 => {
            let (rows, cols) = g.tiles_at(t.level);
            vec![
                t,
                TileId::new(t.level, t.y, (t.x + 1).min(cols - 1)),
                TileId::new(t.level, (t.y + 1).min(rows - 1), t.x),
            ]
        }
        2 => vec![TileId::new(t.level.saturating_sub(1), t.y / 2, t.x / 2), t],
        // Includes an out-of-geometry tile: must rank as missing
        // everywhere, cached or not.
        _ => vec![t, TileId::new(7, 0, 0)],
    }
}

fn assert_bits(reference: &[(TileId, f64)], got: &[(TileId, f64)], what: &str) {
    assert_eq!(reference.len(), got.len(), "{what}");
    for (r, g) in reference.iter().zip(got) {
        assert_eq!(r.0, g.0, "{what}");
        assert_eq!(
            r.1.to_bits(),
            g.1.to_bits(),
            "{what}: {:?} {} vs {}",
            r.0,
            r.1,
            g.1
        );
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// Exact mode: every step of a random pan/zoom replay — including
    /// epoch bumps and cross-session batches — is bit-identical to the
    /// reference path.
    #[test]
    fn random_walk_exact_is_bit_identical(
        steps in proptest::collection::vec((0usize..6, 0u8..4), 1..20),
        salt in any::<u64>(),
    ) {
        let g = Geometry::new(4, 128, 128, 16, 16);
        let store = synthetic_store(g, salt);
        let sb = SbRecommender::new(SbConfig::all_equal());
        let mut cache = PairCache::new(1 << 12);
        let mut scratch = PredictScratch::default();
        let mut out = Vec::new();
        let mut outs = Vec::new();
        let mut anchor = TileId::new(2, 1, 1);
        for (i, &(mv, roi_code)) in steps.iter().enumerate() {
            anchor = step_anchor(g, anchor, mv);
            // Mid-sequence epoch bump: rewrite one tile's histogram,
            // forcing an index rebuild the cache must track.
            if i % 5 == 4 {
                let vals = sig_values(salt ^ (i as u64) << 32, 8);
                store.put_meta(anchor, SignatureKind::Hist1D.meta_name(), vals);
            }
            let index = store.signature_index().expect("synthetic metadata");
            let cands = g.candidates(anchor, 1);
            let roi = roi_for(g, anchor, roi_code);
            if i % 7 == 3 {
                // Cross-session batch: this session plus a shifted one
                // share the fill and the cache.
                let other = step_anchor(g, anchor, (mv + 1) % 4);
                let cands2 = g.candidates(other, 1);
                let roi2 = roi_for(g, other, (roi_code + 1) % 4);
                let jobs = [
                    SbBatchJob { candidates: &cands, roi: &roi },
                    SbBatchJob { candidates: &cands2, roi: &roi2 },
                ];
                sb.distances_batched_cached_into(&index, &jobs, &mut cache, &mut scratch, &mut outs);
                for (j, job) in jobs.iter().enumerate() {
                    let reference = sb.distances(&store, job.candidates, job.roi);
                    assert_bits(&reference, &outs[j], &format!("step {i} job {j}"));
                }
            } else {
                let reference = sb.distances(&store, &cands, &roi);
                sb.distances_indexed_cached_into(
                    &index, &cands, &roi, &mut cache, &mut scratch, &mut out,
                );
                assert_bits(&reference, &out, &format!("step {i}"));
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.hits + stats.misses > 0, "walk exercised the cache");
    }

    /// Reciprocal mode: the same replay stays within the documented
    /// epsilon of the exact reference — for the uncached reciprocal
    /// fill and for the cached fill (reciprocal misses + fused
    /// reassociated combine) alike.
    #[test]
    fn random_walk_reciprocal_is_epsilon_bounded(
        steps in proptest::collection::vec((0usize..6, 0u8..4), 1..12),
        salt in any::<u64>(),
    ) {
        let g = Geometry::new(4, 128, 128, 16, 16);
        let store = synthetic_store(g, salt);
        let exact = SbRecommender::new(SbConfig::all_equal());
        let relaxed = SbRecommender::new(SbConfig {
            kernel: Chi2Kernel::Reciprocal,
            ..SbConfig::all_equal()
        });
        let mut cache = PairCache::new(1 << 12);
        let mut scratch = PredictScratch::default();
        let (mut plain, mut cached) = (Vec::new(), Vec::new());
        let mut anchor = TileId::new(2, 1, 1);
        for (i, &(mv, roi_code)) in steps.iter().enumerate() {
            anchor = step_anchor(g, anchor, mv);
            let index = store.signature_index().expect("synthetic metadata");
            let cands = g.candidates(anchor, 1);
            let roi = roi_for(g, anchor, roi_code);
            let reference = exact.distances(&store, &cands, &roi);
            relaxed.distances_indexed_into(&index, &cands, &roi, &mut scratch, &mut plain);
            relaxed.distances_indexed_cached_into(
                &index, &cands, &roi, &mut cache, &mut scratch, &mut cached,
            );
            for (which, got) in [("uncached", &plain), ("cached", &cached)] {
                for (r, g2) in reference.iter().zip(got) {
                    prop_assert_eq!(r.0, g2.0);
                    let tol = CHI2_RECIPROCAL_EPSILON * r.1.abs().max(1.0);
                    prop_assert!(
                        (r.1 - g2.1).abs() <= tol,
                        "step {} {}: {:?} exact {} vs reciprocal {}",
                        i, which, r.0, r.1, g2.1
                    );
                }
            }
        }
    }
}
