//! Golden regression tests for cross-session predict batching: a batch
//! of several sessions' jobs must be **bit-identical**, job by job, to
//! running each job alone — through the raw distance API, across the
//! ≥512-candidate parallel threshold, and end-to-end through the
//! [`PredictScheduler`] under real thread fan-in.

use fc_array::{DenseArray, Schema};
use fc_core::batch::{BatchConfig, PredictScheduler};
use fc_core::engine::PhaseSource;
use fc_core::sb::{PredictScratch, SbBatchJob, SbConfig, SbRecommender};
use fc_core::signature::{attach_signatures, SignatureConfig};
use fc_core::{AbRecommender, AllocationStrategy, EngineConfig, PredictionEngine, Request};
use fc_tiles::{Move, Pyramid, PyramidBuilder, PyramidConfig, TileId};
use std::sync::Arc;

/// A deterministic pyramid with all four signatures attached (the same
/// construction as `golden_sb.rs`).
fn seeded_pyramid() -> Arc<Pyramid> {
    let side = 128;
    let schema = Schema::grid2d("G", side, side, &["v"]).unwrap();
    let data: Vec<f64> = (0..side * side)
        .map(|i| {
            let y = (i / side) as f64;
            let x = (i % side) as f64;
            ((x * 0.17).sin() * (y * 0.11).cos()).abs() * 0.8 + (x + y) / (4.0 * side as f64)
        })
        .collect();
    let base = DenseArray::from_vec(schema, data).unwrap();
    let pyramid = Arc::new(
        PyramidBuilder::new()
            .build(&base, &PyramidConfig::simple(3, 32, &["v"]))
            .unwrap(),
    );
    let mut cfg = SignatureConfig::ndsi("v");
    cfg.domain = (0.0, 1.0);
    attach_signatures(&pyramid, &cfg);
    pyramid
}

fn assert_bit_identical(a: &[(TileId, f64)], b: &[(TileId, f64)], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.0, y.0, "{label}: candidate order");
        assert_eq!(
            x.1.to_bits(),
            y.1.to_bits(),
            "{label}: distance bits for {:?} ({} vs {})",
            x.0,
            x.1,
            y.1
        );
    }
}

#[test]
fn batched_jobs_are_bit_identical_to_solo_runs() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let g = pyramid.geometry();
    let index = store.signature_index().expect("signatures attached");
    let sb = SbRecommender::new(SbConfig::all_equal());

    // Heterogeneous jobs: different candidate sets, different ROI
    // sizes (including the current-tile fallback shape and an
    // out-of-geometry candidate that ranks as "missing").
    let job_specs: Vec<(Vec<TileId>, Vec<TileId>)> = vec![
        (
            g.candidates(TileId::new(2, 2, 2), 1),
            vec![TileId::new(2, 1, 1), TileId::new(2, 3, 3)],
        ),
        (
            g.candidates(TileId::new(1, 0, 1), 1),
            vec![TileId::new(1, 1, 1)],
        ),
        (
            g.candidates(TileId::new(2, 0, 0), 2),
            vec![
                TileId::new(2, 0, 1),
                TileId::new(2, 1, 0),
                TileId::new(1, 0, 0),
                TileId::new(2, 3, 1),
            ],
        ),
        // Degenerate: single candidate, single reference.
        (vec![TileId::new(2, 3, 0)], vec![TileId::new(2, 0, 3)]),
    ];
    let jobs: Vec<SbBatchJob<'_>> = job_specs
        .iter()
        .map(|(c, r)| SbBatchJob {
            candidates: c,
            roi: r,
        })
        .collect();

    let mut batch_scratch = PredictScratch::default();
    let mut outs = Vec::new();
    sb.distances_batched_into(&index, &jobs, &mut batch_scratch, &mut outs);
    assert_eq!(outs.len(), jobs.len());

    let mut solo_scratch = PredictScratch::default();
    for (j, (c, r)) in job_specs.iter().enumerate() {
        let mut solo = Vec::new();
        sb.distances_indexed_into(&index, c, r, &mut solo_scratch, &mut solo);
        assert_bit_identical(&outs[j], &solo, &format!("job {j}"));
        // And transitively to the locked reference path.
        let reference = sb.distances(store, c, r);
        assert_bit_identical(&outs[j], &reference, &format!("job {j} vs reference"));
    }

    // Re-running the same batch with warm scratch changes nothing.
    let mut outs2 = Vec::new();
    sb.distances_batched_into(&index, &jobs, &mut batch_scratch, &mut outs2);
    for (j, (a, b)) in outs.iter().zip(&outs2).enumerate() {
        assert_bit_identical(a, b, &format!("warm rerun job {j}"));
    }
}

#[test]
fn batches_past_the_parallel_threshold_stay_bit_identical() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let g = pyramid.geometry();
    let index = store.signature_index().expect("signatures attached");
    let sb = SbRecommender::new(SbConfig::all_equal());

    // 40 jobs × 16 candidates = 640 total candidates — beyond the
    // ≥512 fan-out threshold, so this exercises the parallel fill on
    // multi-core hosts (and its sequential twin elsewhere). Either
    // way the results must be bit-identical to solo runs.
    let all: Vec<TileId> = g.all_tiles().filter(|t| t.level == 2).collect();
    let job_specs: Vec<(Vec<TileId>, Vec<TileId>)> = (0..40)
        .map(|j| {
            let c: Vec<TileId> = all.iter().cycle().skip(j * 3).take(16).copied().collect();
            let r = vec![all[(j * 5) % all.len()], all[(j * 9 + 2) % all.len()]];
            (c, r)
        })
        .collect();
    let jobs: Vec<SbBatchJob<'_>> = job_specs
        .iter()
        .map(|(c, r)| SbBatchJob {
            candidates: c,
            roi: r,
        })
        .collect();
    assert!(jobs.iter().map(|j| j.candidates.len()).sum::<usize>() >= 512);

    let mut batch_scratch = PredictScratch::default();
    let mut outs = Vec::new();
    sb.distances_batched_into(&index, &jobs, &mut batch_scratch, &mut outs);
    let mut solo_scratch = PredictScratch::default();
    for (j, (c, r)) in job_specs.iter().enumerate() {
        let mut solo = Vec::new();
        sb.distances_indexed_into(&index, c, r, &mut solo_scratch, &mut solo);
        assert_bit_identical(&outs[j], &solo, &format!("wide batch job {j}"));
    }
}

fn engine(g: fc_tiles::Geometry) -> PredictionEngine {
    let r = Move::PanRight.index() as u16;
    let traces: Vec<Vec<u16>> = vec![vec![r; 12]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    PredictionEngine::new(
        g,
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::all_equal()),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::Updated,
            ..EngineConfig::default()
        },
    )
}

#[test]
fn scheduler_predictions_match_unbatched_engine_exactly() {
    let pyramid = seeded_pyramid();
    let g = pyramid.geometry();
    let scheduler = PredictScheduler::new(
        SbRecommender::new(SbConfig::all_equal()),
        pyramid.clone(),
        BatchConfig::default(),
    );
    scheduler.register();

    // Twin engines observe the same walk; one predicts through the
    // scheduler, the other locally. Every prediction list must match.
    let mut batched = engine(g);
    let mut local = engine(g);
    let walk = [
        (TileId::new(2, 1, 0), None),
        (TileId::new(2, 1, 1), Some(Move::PanRight)),
        (TileId::new(2, 1, 2), Some(Move::PanRight)),
        (TileId::new(1, 0, 1), Some(Move::ZoomOut)),
        (
            TileId::new(2, 1, 2),
            Some(Move::ZoomIn(fc_tiles::Quadrant::Sw)),
        ),
        (TileId::new(2, 2, 2), Some(Move::PanDown)),
    ];
    for (i, &(t, mv)) in walk.iter().enumerate() {
        batched.observe(Request::new(t, mv));
        local.observe(Request::new(t, mv));
        for k in [1, 4, 9] {
            let a = batched.predict_batched(&scheduler, pyramid.store(), k);
            let b = local.predict(pyramid.store(), k);
            assert_eq!(a, b, "step {i}, k={k}");
        }
    }
    scheduler.unregister();
}

#[test]
fn concurrent_scheduler_fan_in_matches_solo_predictions() {
    let pyramid = seeded_pyramid();
    let g = pyramid.geometry();
    let scheduler = Arc::new(PredictScheduler::new(
        SbRecommender::new(SbConfig::all_equal()),
        pyramid.clone(),
        BatchConfig {
            // A real fan-in window so this test exercises leader waits
            // and multi-job ticks, not just width-1 group commit.
            window: std::time::Duration::from_millis(5),
            ..BatchConfig::default()
        },
    ));
    const N: usize = 6;
    for _ in 0..N {
        scheduler.register();
    }
    let results: Vec<(usize, Vec<TileId>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let scheduler = scheduler.clone();
                let pyramid = pyramid.clone();
                scope.spawn(move || {
                    let mut e = engine(g);
                    let start = TileId::new(2, (i % 4) as u32, (i % 3) as u32);
                    e.observe(Request::initial(start));
                    e.observe(Request::new(
                        g.apply(start, Move::PanRight).unwrap_or(start),
                        Some(Move::PanRight),
                    ));
                    (i, e.predict_batched(&scheduler, pyramid.store(), 6))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, got) in results {
        let mut e = engine(g);
        let start = TileId::new(2, (i % 4) as u32, (i % 3) as u32);
        e.observe(Request::initial(start));
        e.observe(Request::new(
            g.apply(start, Move::PanRight).unwrap_or(start),
            Some(Move::PanRight),
        ));
        let solo = e.predict(pyramid.store(), 6);
        assert_eq!(got, solo, "session {i}");
    }
    let stats = scheduler.stats();
    assert_eq!(stats.jobs, N as u64);
    assert!(stats.largest_batch >= 2, "fan-in window should coalesce");
}
