//! Property tests for the burst/dwell/idle traffic classifier
//! ([`fc_core::BurstTracker`]): determinism, Schmitt-trigger
//! hysteresis (transitions only ever fire on *outer* threshold
//! crossings, so gaps inside a guard band can never flap the phase),
//! and convergence under steady traffic.

use fc_core::{BurstConfig, BurstTracker, TrafficPhase};
use proptest::prelude::*;
use std::time::Duration;

/// Builds an ordered config from four arbitrary millisecond values
/// (sorted, so `BurstTracker::new` never panics).
fn config_from(raw: (u64, u64, u64, u64)) -> BurstConfig {
    let mut ms = [raw.0, raw.1, raw.2, raw.3];
    ms.sort_unstable();
    BurstConfig {
        burst_enter: Duration::from_millis(ms[0]),
        burst_exit: Duration::from_millis(ms[1]),
        idle_exit: Duration::from_millis(ms[2]),
        idle_enter: Duration::from_millis(ms[3]),
        ..BurstConfig::default()
    }
}

/// Replays a gap sequence, returning the classified phase per step.
fn classify(cfg: BurstConfig, gaps: &[Option<u64>]) -> Vec<TrafficPhase> {
    let mut t = BurstTracker::new(cfg);
    gaps.iter()
        .map(|g| t.observe(g.map(Duration::from_millis)))
        .collect()
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    /// Same trace, same config ⇒ same phase sequence, every time.
    /// The classifier is a pure function of its gap inputs — nothing
    /// about wall clocks or shared state leaks in.
    #[test]
    fn classification_is_deterministic(
        raw in (1u64..60_000, 1u64..60_000, 1u64..60_000, 1u64..60_000),
        raw_gaps in proptest::collection::vec(0u64..126_000, 1..200),
    ) {
        // Values past the classifiable range stand in for `None`
        // (first-request gaps) — the shim has no `option::of`.
        let gaps: Vec<Option<u64>> = raw_gaps
            .iter()
            .map(|&g| (g < 120_000).then_some(g))
            .collect();
        let cfg = config_from(raw);
        let a = classify(cfg, &gaps);
        let b = classify(cfg, &gaps);
        prop_assert_eq!(a, b);
    }

    /// Schmitt hysteresis: a phase transition only fires when the gap
    /// crosses the *outer* threshold of the band — entering Burst
    /// needs `gap ≤ burst_enter`, leaving it needs `gap > burst_exit`,
    /// entering Idle needs `gap ≥ idle_enter`, leaving it needs
    /// `gap < idle_exit`. A gap strictly inside either guard band
    /// therefore can never flap the phase back and forth.
    #[test]
    fn transitions_only_on_outer_threshold_crossings(
        raw in (1u64..60_000, 1u64..60_000, 1u64..60_000, 1u64..60_000),
        gaps in proptest::collection::vec(0u64..120_000, 1..300),
    ) {
        let cfg = config_from(raw);
        let mut t = BurstTracker::new(cfg);
        let mut prev = t.phase();
        for &ms in &gaps {
            let gap = Duration::from_millis(ms);
            let next = t.observe(Some(gap));
            if next != prev {
                match (prev, next) {
                    (_, TrafficPhase::Burst) => {
                        prop_assert!(gap <= cfg.burst_enter,
                            "entered Burst on {gap:?} > {:?}", cfg.burst_enter);
                    }
                    (TrafficPhase::Burst, _) => {
                        prop_assert!(gap > cfg.burst_exit,
                            "left Burst on {gap:?} <= {:?}", cfg.burst_exit);
                    }
                    _ => {}
                }
                match (prev, next) {
                    (_, TrafficPhase::Idle) => {
                        prop_assert!(gap >= cfg.idle_enter,
                            "entered Idle on {gap:?} < {:?}", cfg.idle_enter);
                    }
                    (TrafficPhase::Idle, _) => {
                        prop_assert!(gap < cfg.idle_exit,
                            "left Idle on {gap:?} >= {:?}", cfg.idle_exit);
                    }
                    _ => {}
                }
            }
            prev = next;
        }
    }

    /// Steady traffic converges: a constant gap can change the phase
    /// at most once, after which the classifier holds it forever (the
    /// formal "no flapping within the guard interval" guarantee).
    #[test]
    fn constant_gap_settles_after_one_transition(
        raw in (1u64..60_000, 1u64..60_000, 1u64..60_000, 1u64..60_000),
        gap_ms in 0u64..120_000,
        reps in 2usize..50,
    ) {
        let cfg = config_from(raw);
        let mut t = BurstTracker::new(cfg);
        let gap = Some(Duration::from_millis(gap_ms));
        let settled = t.observe(gap);
        for _ in 1..reps {
            prop_assert_eq!(t.observe(gap), settled);
        }
    }

    /// A missing gap (the session's first request) never moves the
    /// phase, whatever state the tracker is in.
    #[test]
    fn none_gap_is_a_no_op(
        raw in (1u64..60_000, 1u64..60_000, 1u64..60_000, 1u64..60_000),
        warmup in proptest::collection::vec(0u64..120_000, 0..50),
    ) {
        let cfg = config_from(raw);
        let mut t = BurstTracker::new(cfg);
        for &ms in &warmup {
            t.observe(Some(Duration::from_millis(ms)));
        }
        let before = t.phase();
        prop_assert_eq!(t.observe(None), before);
        prop_assert_eq!(t.phase(), before);
    }
}
