//! Golden regression test: the frozen-index SB fast path must be
//! indistinguishable from the reference per-pair `meta_vec` path — not
//! just the same ranking, but bit-identical distances — on a real
//! pyramid with all four signatures attached.

use fc_array::{DenseArray, Schema};
use fc_core::engine::PhaseSource;
use fc_core::sb::{PredictScratch, SbConfig, SbRecommender};
use fc_core::signature::{attach_signatures, SignatureConfig, SignatureKind};
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, PredictionContext, PredictionEngine,
    Recommender, Request, SessionHistory,
};
use fc_tiles::{Move, Pyramid, PyramidBuilder, PyramidConfig, TileId};
use std::sync::Arc;

/// A deterministic 128×128 terrain with enough structure that the four
/// signatures disagree between tiles.
fn seeded_pyramid() -> Arc<Pyramid> {
    let side = 128;
    let schema = Schema::grid2d("G", side, side, &["v"]).unwrap();
    let data: Vec<f64> = (0..side * side)
        .map(|i| {
            let y = (i / side) as f64;
            let x = (i % side) as f64;
            ((x * 0.17).sin() * (y * 0.11).cos()).abs() * 0.8 + (x + y) / (4.0 * side as f64)
        })
        .collect();
    let base = DenseArray::from_vec(schema, data).unwrap();
    let pyramid = Arc::new(
        PyramidBuilder::new()
            .build(&base, &PyramidConfig::simple(3, 32, &["v"]))
            .unwrap(),
    );
    let mut cfg = SignatureConfig::ndsi("v");
    cfg.domain = (0.0, 1.0);
    attach_signatures(&pyramid, &cfg);
    pyramid
}

#[test]
fn indexed_path_is_bit_identical_to_meta_vec_path() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let g = pyramid.geometry();
    let index = store.signature_index().expect("signatures attached");
    let mut scratch = PredictScratch::default();

    for cfg in [
        SbConfig::all_equal(),
        SbConfig::single(SignatureKind::Hist1D),
        SbConfig::single(SignatureKind::Sift),
        SbConfig {
            manhattan_penalty: false,
            physical_distance: false,
            ..SbConfig::all_equal()
        },
    ] {
        let sb = SbRecommender::new(cfg);
        let mut cases = 0usize;
        for cur in g.all_tiles() {
            let candidates = g.candidates(cur, 1);
            if candidates.is_empty() {
                continue;
            }
            // ROI variants: the current tile (pre-ROI fallback), a
            // single deep tile, and a multi-tile ROI.
            let rois: [&[TileId]; 3] = [
                &[cur],
                &[TileId::new(2, 1, 1)],
                &[
                    TileId::new(2, 0, 0),
                    TileId::new(2, 2, 3),
                    TileId::new(1, 1, 1),
                ],
            ];
            for roi in rois {
                let reference = sb.distances(store, &candidates, roi);
                let mut fast = Vec::new();
                sb.distances_indexed_into(&index, &candidates, roi, &mut scratch, &mut fast);
                assert_eq!(reference.len(), fast.len());
                for (r, f) in reference.iter().zip(&fast) {
                    assert_eq!(r.0, f.0, "candidate order must match");
                    assert_eq!(
                        r.1.to_bits(),
                        f.1.to_bits(),
                        "distance for {} vs roi {roi:?} differs: {} vs {}",
                        r.0,
                        r.1,
                        f.1
                    );
                }
                cases += 1;
            }
        }
        assert!(cases > 50, "expected broad coverage, got {cases} cases");
    }
}

#[test]
fn indexed_rank_matches_reference_rank() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let g = pyramid.geometry();
    let index = store.signature_index().unwrap();
    let sb = SbRecommender::new(SbConfig::all_equal());
    let mut scratch = PredictScratch::default();

    let mut h = SessionHistory::new(3);
    let cur = Request::new(TileId::new(2, 2, 2), Some(Move::PanRight));
    h.push(Request::new(TileId::new(2, 2, 1), Some(Move::PanRight)));
    h.push(cur);
    for roi in [
        vec![],
        vec![TileId::new(2, 1, 2)],
        vec![TileId::new(2, 1, 2), TileId::new(2, 3, 1)],
    ] {
        let candidates = g.candidates(cur.tile, 2);
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store,
            roi: &roi,
        };
        let reference = sb.rank(&ctx);
        let fast = sb.rank_indexed(&ctx, &index, &mut scratch);
        assert_eq!(reference, fast, "roi {roi:?}");
    }
}

/// The whole engine, fast path against a clone running the reference
/// path (by never freezing an index): identical prefetch decisions over
/// a scripted walk.
#[test]
fn engine_predictions_unchanged_by_index() {
    let pyramid = seeded_pyramid();
    let g = pyramid.geometry();
    let traces: Vec<Vec<u16>> = vec![vec![Move::PanRight.index() as u16; 10]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    let mk_engine = || {
        PredictionEngine::new(
            g,
            AbRecommender::train(refs.clone(), 3),
            SbRecommender::new(SbConfig::all_equal()),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    };
    let mut fast = mk_engine();
    let mut walk = vec![Request::initial(TileId::new(2, 2, 0))];
    for x in 1..=3 {
        walk.push(Request::new(TileId::new(2, 2, x), Some(Move::PanRight)));
    }
    walk.push(Request::new(TileId::new(1, 1, 1), Some(Move::ZoomOut)));

    // Reference rankings computed through the trait path on the same
    // store data.
    let mut reference = mk_engine();
    let mut h = SessionHistory::new(3);
    for (step, req) in walk.iter().enumerate() {
        fast.observe(*req);
        reference.observe(*req);
        h.push(*req);
        let p_fast = fast.predict(pyramid.store(), 5);
        let p_ref = reference_predict(&reference, pyramid.store(), &h, *req, 5, g);
        assert_eq!(p_fast, p_ref, "step {step}");
    }
}

/// Recomputes a prediction through the un-indexed recommender path,
/// mirroring `PredictionEngine::predict_with_phase`'s merge.
fn reference_predict(
    engine: &PredictionEngine,
    store: &fc_tiles::TileStore,
    history: &SessionHistory,
    last: Request,
    k: usize,
    g: fc_tiles::Geometry,
) -> Vec<TileId> {
    use fc_core::alloc::merge_allocated;
    let candidates = g.candidates(last.tile, engine.config().distance);
    let ctx = PredictionContext {
        request: last,
        history,
        candidates: &candidates,
        geometry: g,
        store,
        roi: engine.roi(),
    };
    let traces: Vec<Vec<u16>> = vec![vec![Move::PanRight.index() as u16; 10]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    let ab = AbRecommender::train(refs, 3);
    let sb = SbRecommender::new(SbConfig::all_equal());
    let phase = engine.current_phase();
    let (ab_slots, sb_slots) = engine.config().strategy.allocate(phase, k);
    let ab_list = if ab_slots > 0 || sb_slots > 0 {
        ab.rank(&ctx)
    } else {
        Vec::new()
    };
    let sb_list = sb.rank(&ctx);
    merge_allocated(&ab_list, &sb_list, ab_slots, sb_slots)
}
