//! Golden regression tests for the epoch-stamped χ² pair cache: the
//! cached steady-state path must be indistinguishable from the locked
//! reference path — bit-identical distances, not just the same ranking
//! — across cache **hits**, **misses**, and **epoch invalidations**,
//! on a real pyramid with all four signatures attached. The relaxed
//! [`Chi2Kernel::Reciprocal`] kernel is held to its documented epsilon
//! instead.

use fc_array::{DenseArray, Schema};
use fc_core::paircache::PairCache;
use fc_core::sb::CHI2_RECIPROCAL_EPSILON;
use fc_core::sb::{Chi2Kernel, PredictScratch, SbBatchJob, SbConfig, SbRecommender};
use fc_core::signature::{attach_signatures, SignatureConfig, SignatureKind};
use fc_core::{BatchConfig, PredictScheduler};
use fc_tiles::{Pyramid, PyramidBuilder, PyramidConfig, TileId};
use std::sync::Arc;

/// A deterministic 128×128 terrain with enough structure that the four
/// signatures disagree between tiles (same seed as `golden_sb.rs`).
fn seeded_pyramid() -> Arc<Pyramid> {
    let side = 128;
    let schema = Schema::grid2d("G", side, side, &["v"]).unwrap();
    let data: Vec<f64> = (0..side * side)
        .map(|i| {
            let y = (i / side) as f64;
            let x = (i % side) as f64;
            ((x * 0.17).sin() * (y * 0.11).cos()).abs() * 0.8 + (x + y) / (4.0 * side as f64)
        })
        .collect();
    let base = DenseArray::from_vec(schema, data).unwrap();
    let pyramid = Arc::new(
        PyramidBuilder::new()
            .build(&base, &PyramidConfig::simple(3, 32, &["v"]))
            .unwrap(),
    );
    let mut cfg = SignatureConfig::ndsi("v");
    cfg.domain = (0.0, 1.0);
    attach_signatures(&pyramid, &cfg);
    pyramid
}

fn level2(cols: std::ops::Range<u32>) -> Vec<TileId> {
    (0..4u32)
        .flat_map(|y| cols.clone().map(move |x| TileId::new(2, y, x)))
        .collect()
}

fn assert_bits(reference: &[(TileId, f64)], got: &[(TileId, f64)], what: &str) {
    assert_eq!(reference.len(), got.len(), "{what}: length");
    for (r, g) in reference.iter().zip(got) {
        assert_eq!(r.0, g.0, "{what}: candidate order");
        assert_eq!(
            r.1.to_bits(),
            g.1.to_bits(),
            "{what}: {:?} {} vs {}",
            r.0,
            r.1,
            g.1
        );
    }
}

#[test]
fn cached_path_bit_identical_across_hits_misses_and_epochs() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let sb = SbRecommender::new(SbConfig::all_equal());
    let index = store.signature_index().expect("signatures attached");
    let mut cache = PairCache::for_index(&index);
    let mut scratch = PredictScratch::default();
    let mut out = Vec::new();

    // Cold request: every pair misses; bits must match the reference.
    let cands = level2(0..3);
    let roi = [
        TileId::new(2, 0, 0),
        TileId::new(2, 3, 3),
        TileId::new(1, 1, 1),
    ];
    let reference = sb.distances(store, &cands, &roi);
    sb.distances_indexed_cached_into(&index, &cands, &roi, &mut cache, &mut scratch, &mut out);
    assert_bits(&reference, &out, "cold fill");
    let s0 = cache.stats();
    assert_eq!(s0.hits, 0, "cold cache cannot hit");
    assert_eq!(s0.misses, (cands.len() * roi.len()) as u64);

    // Warm repeat: pure hits, identical bits.
    sb.distances_indexed_cached_into(&index, &cands, &roi, &mut cache, &mut scratch, &mut out);
    assert_bits(&reference, &out, "warm repeat");
    let s1 = cache.stats();
    assert_eq!(s1.misses, s0.misses, "repeat adds no misses");
    assert_eq!(s1.hits, s0.misses, "repeat hits every pair");

    // Pan step: partial overlap — mixed hits and misses, identical bits.
    let panned = level2(1..4);
    let reference_pan = sb.distances(store, &panned, &roi);
    sb.distances_indexed_cached_into(&index, &panned, &roi, &mut cache, &mut scratch, &mut out);
    assert_bits(&reference_pan, &out, "pan step");
    let s2 = cache.stats();
    assert!(s2.hits > s1.hits, "pan overlap must hit");
    assert!(s2.misses > s1.misses, "pan frontier must miss");

    // Epoch bump: rewrite one tile's histogram; the rebuilt index must
    // invalidate the cache (generation stamp) and the next fill must
    // match the *new* reference bit-for-bit.
    store.put_meta(
        TileId::new(2, 0, 0),
        SignatureKind::Hist1D.meta_name(),
        vec![0.5; 16],
    );
    let index2 = store.signature_index().expect("rebuilt");
    let reference_new = sb.distances(store, &cands, &roi);
    sb.distances_indexed_cached_into(&index2, &cands, &roi, &mut cache, &mut scratch, &mut out);
    assert_bits(&reference_new, &out, "post-epoch fill");
    let s3 = cache.stats();
    assert_eq!(s3.invalidations, 1, "index rebuild bumps the generation");
    assert_eq!(
        s3.misses - s2.misses,
        (cands.len() * roi.len()) as u64,
        "everything misses after invalidation"
    );

    // And the generation survives: repeating under the new epoch hits.
    sb.distances_indexed_cached_into(&index2, &cands, &roi, &mut cache, &mut scratch, &mut out);
    assert_bits(&reference_new, &out, "post-epoch repeat");
    assert!(cache.stats().hits > s3.hits);
}

#[test]
fn batched_cached_jobs_match_solo_reference() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let sb = SbRecommender::new(SbConfig::all_equal());
    let index = store.signature_index().unwrap();
    let mut cache = PairCache::for_index(&index);
    let mut scratch = PredictScratch::default();
    let mut outs = Vec::new();

    let c1 = level2(0..2);
    let c2 = level2(1..4);
    let c3 = vec![TileId::new(1, 0, 0), TileId::new(1, 1, 1)];
    let r1 = [TileId::new(2, 1, 1)];
    let r2 = [TileId::new(2, 1, 1), TileId::new(2, 2, 2)];
    let r3 = [TileId::new(1, 0, 1)];
    let jobs = [
        SbBatchJob {
            candidates: &c1,
            roi: &r1,
        },
        SbBatchJob {
            candidates: &c2,
            roi: &r2,
        },
        SbBatchJob {
            candidates: &c3,
            roi: &r3,
        },
    ];
    // Two ticks: the first fills (jobs overlap, so later jobs in the
    // same tick may already hit pairs earlier jobs wrote), the second
    // is all-hit. Both must be bit-identical to the solo reference.
    for tick in 0..2 {
        sb.distances_batched_cached_into(&index, &jobs, &mut cache, &mut scratch, &mut outs);
        for (j, job) in jobs.iter().enumerate() {
            let reference = sb.distances(store, job.candidates, job.roi);
            assert_bits(&reference, &outs[j], &format!("tick {tick} job {j}"));
        }
    }
    assert!(cache.stats().hits > 0);
}

#[test]
fn scheduler_shares_pairs_across_sessions() {
    let pyramid = seeded_pyramid();
    let sched = PredictScheduler::new(
        SbRecommender::new(SbConfig::all_equal()),
        pyramid.clone(),
        BatchConfig::default(),
    );
    sched.register();
    let cands = level2(0..4);
    let refs = [TileId::new(2, 2, 2)];
    // "Session A" computes the pairs…
    let a = sched.rank(&cands, &refs);
    let after_a = sched.pair_cache_stats();
    assert_eq!(after_a.hits, 0);
    assert!(after_a.misses > 0);
    // …and "session B" (a later tick over the same neighbourhood)
    // rides them: all hits, same ranking as the solo fast path.
    let b = sched.rank(&cands, &refs);
    let after_b = sched.pair_cache_stats();
    assert_eq!(after_b.misses, after_a.misses);
    assert_eq!(after_b.hits, after_a.misses);
    assert_eq!(a, b);
    // Cross-check against the uncached indexed path.
    let sb = SbRecommender::new(SbConfig::all_equal());
    let ix = pyramid.store().signature_index().unwrap();
    let mut scratch = PredictScratch::default();
    let mut out = Vec::new();
    sb.distances_indexed_into(&ix, &cands, &refs, &mut scratch, &mut out);
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    let solo: Vec<TileId> = out.into_iter().map(|(t, _)| t).collect();
    assert_eq!(a, solo);
    sched.unregister();
}

#[test]
fn reciprocal_kernel_is_epsilon_bounded_and_self_consistent() {
    let pyramid = seeded_pyramid();
    let store = pyramid.store();
    let exact = SbRecommender::new(SbConfig::all_equal());
    let relaxed = SbRecommender::new(SbConfig {
        kernel: Chi2Kernel::Reciprocal,
        ..SbConfig::all_equal()
    });
    let index = store.signature_index().unwrap();
    let mut cache = PairCache::for_index(&index);
    let mut scratch = PredictScratch::default();

    let cands = level2(0..4);
    let roi = [
        TileId::new(2, 0, 0),
        TileId::new(2, 3, 3),
        TileId::new(1, 0, 0),
    ];
    let reference = exact.distances(store, &cands, &roi);

    // Uncached relaxed fill: within the documented epsilon.
    let mut plain = Vec::new();
    relaxed.distances_indexed_into(&index, &cands, &roi, &mut scratch, &mut plain);
    for (r, g) in reference.iter().zip(&plain) {
        let tol = CHI2_RECIPROCAL_EPSILON * r.1.abs().max(1.0);
        assert!(
            (r.1 - g.1).abs() <= tol,
            "{:?}: exact {} vs reciprocal {}",
            r.0,
            r.1,
            g.1
        );
    }

    // Cached relaxed fill (reciprocal misses + fused reassociated
    // combine): within epsilon of the exact reference both cold and
    // warm, and deterministic — the warm pass reproduces the cold
    // pass bit-for-bit (same slot values, same arithmetic).
    let mut cached = Vec::new();
    let mut first_pass = Vec::new();
    for pass in 0..2 {
        relaxed.distances_indexed_cached_into(
            &index,
            &cands,
            &roi,
            &mut cache,
            &mut scratch,
            &mut cached,
        );
        for (r, g) in reference.iter().zip(&cached) {
            let tol = CHI2_RECIPROCAL_EPSILON * r.1.abs().max(1.0);
            assert!(
                (r.1 - g.1).abs() <= tol,
                "pass {pass} {:?}: exact {} vs relaxed-cached {}",
                r.0,
                r.1,
                g.1
            );
        }
        if pass == 0 {
            first_pass = cached.clone();
        } else {
            assert_bits(&first_pass, &cached, "reciprocal warm determinism");
        }
    }

    // Switching the kernel on the same cache invalidates (the kernel
    // is part of the cache's validity domain): the exact fill through
    // the shared cache must be bit-identical to the exact reference.
    let mut exact_cached = Vec::new();
    exact.distances_indexed_cached_into(
        &index,
        &cands,
        &roi,
        &mut cache,
        &mut scratch,
        &mut exact_cached,
    );
    assert_bits(&reference, &exact_cached, "kernel switch");
    assert!(cache.stats().invalidations >= 1);
}
