//! Fault-injection integration tests: the guarded fetch path, the
//! degradation ladder, and the zero-cost-by-default guarantee.

use fc_core::engine::PhaseSource;
use fc_core::signature::{hist_signature, SignatureKind};
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, FaultPlan, FaultRates, FaultWindow,
    FetchError, LatencyProfile, Middleware, PredictionEngine, RetryPolicy, SbConfig, SbRecommender,
};
use fc_tiles::{Move, Pyramid, PyramidBuilder, PyramidConfig, TileId};
use std::sync::Arc;
use std::time::Duration;

fn pyramid() -> Arc<Pyramid> {
    let schema = fc_array::Schema::grid2d("G", 64, 64, &["v"]).unwrap();
    let data: Vec<f64> = (0..64 * 64).map(|i| (i % 64) as f64 / 64.0).collect();
    let base = fc_array::DenseArray::from_vec(schema, data).unwrap();
    let mut cfg = PyramidConfig::simple(3, 16, &["v"]);
    cfg.latency = fc_array::LatencyModel::scidb_like();
    let p = PyramidBuilder::new().build(&base, &cfg).unwrap();
    for id in p.geometry().all_tiles() {
        let t = p.store().fetch_offline(id).unwrap();
        p.store().put_meta(
            id,
            SignatureKind::Hist1D.meta_name(),
            hist_signature(&t, "v", (0.0, 1.0), 8),
        );
    }
    p.store().reset_io_stats();
    Arc::new(p)
}

fn middleware(p: Arc<Pyramid>, k: usize) -> Middleware {
    let r = Move::PanRight.index() as u16;
    let traces: Vec<Vec<u16>> = vec![vec![r; 12]];
    let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
    let engine = PredictionEngine::new(
        p.geometry(),
        AbRecommender::train(refs, 3),
        SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
        PhaseSource::Heuristic,
        EngineConfig {
            strategy: AllocationStrategy::AbOnly,
            ..EngineConfig::default()
        },
    );
    Middleware::new(engine, p, LatencyProfile::paper(), 3, k)
}

/// The trace every comparison test replays: a deepest-level pan run.
fn walk(mw: &mut Middleware, steps: u32) -> Vec<(Duration, bool, bool, Vec<TileId>)> {
    let mut out = Vec::new();
    for x in 0..steps {
        let mv = (x > 0).then_some(Move::PanRight);
        let r = mw
            .try_request(TileId::new(2, 1, x), mv)
            .expect("servable walk")
            .expect("in geometry");
        out.push((r.latency, r.cache_hit, r.degraded, r.prefetched));
    }
    out
}

/// Zero-cost-by-default: no plan, a quiet plan, and an out-of-window
/// plan all produce bit-identical responses and clock readings.
#[test]
fn faults_off_quiet_and_out_of_window_are_bit_identical() {
    let baseline = {
        let p = pyramid();
        let mut mw = middleware(p.clone(), 3);
        let r = walk(&mut mw, 4);
        (r, p.store().clock().now())
    };
    for plan in [
        FaultPlan::quiet(7),
        FaultPlan::brownout(7, 1_000_000, 2_000_000),
    ] {
        let p = pyramid();
        let mut mw = middleware(p.clone(), 3);
        mw.set_faults(Arc::new(plan), RetryPolicy::default());
        let r = walk(&mut mw, 4);
        assert_eq!(r, baseline.0, "responses must match the fault-free run");
        assert_eq!(p.store().clock().now(), baseline.1, "clock must agree");
        assert_eq!(mw.stats().degraded, 0);
        assert_eq!(mw.stats().fetch_failures, 0);
    }
}

/// The same seed replays the same chaos: responses, degraded flags,
/// and the simulated clock all agree between two runs.
#[test]
fn chaos_replay_is_bit_identical() {
    let run = || {
        let p = pyramid();
        let mut mw = middleware(p.clone(), 3);
        mw.set_faults(
            Arc::new(FaultPlan::brownout(1234, 1, 3)),
            RetryPolicy::default(),
        );
        let r = walk(&mut mw, 4);
        (r, p.store().clock().now(), mw.stats())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// Transient errors within the retry budget recover: the reply is
/// normal (not degraded), reports its retries, and the backoff waits
/// land in both the latency and the simulated clock.
#[test]
fn transient_errors_retry_and_recover() {
    let p = pyramid();
    let mut mw = middleware(p.clone(), 0);
    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(400),
        jitter_per_mille: 0,
        deadline: Duration::from_secs(10),
    };
    // First two attempts of every fetch fail; the third succeeds.
    mw.set_faults(
        Arc::new(FaultPlan::new(
            5,
            FaultRates {
                transient_first_attempts: 2,
                ..FaultRates::default()
            },
        )),
        retry,
    );
    let before = p.store().clock().now();
    let r = mw.try_request(TileId::new(2, 1, 0), None).unwrap().unwrap();
    assert!(!r.degraded);
    assert_eq!(r.fetch_retries, 2);
    // Backoffs 10 ms + 20 ms precede the successful backend fetch.
    let backoffs = Duration::from_millis(30);
    assert!(r.latency > backoffs, "{:?}", r.latency);
    assert!(p.store().clock().now() - before >= backoffs + Duration::from_millis(900));
    assert_eq!(mw.stats().requests, 1);
    assert_eq!(mw.stats().degraded, 0);
}

/// When the budget is exhausted and an ancestor is resident, the
/// request degrades: the ancestor tile answers, the reply is flagged,
/// and prefetch is skipped.
#[test]
fn exhausted_fetch_degrades_to_resident_ancestor() {
    let p = pyramid();
    let mut mw = middleware(p.clone(), 2);
    let child = TileId::new(2, 2, 0);
    let parent = child.parent().unwrap();
    // Window starts at request index 1: request 0 (the parent) is
    // clean and lands in the history cache; request 1 (the child)
    // always fails.
    let plan = FaultPlan::windowed(
        99,
        FaultWindow {
            from: 1,
            until: u64::MAX,
            rates: FaultRates {
                transient_per_mille: 1000,
                transient_first_attempts: u32::MAX,
                ..FaultRates::default()
            },
        },
    );
    mw.set_faults(Arc::new(plan), RetryPolicy::default());
    let r0 = mw.try_request(parent, None).unwrap().unwrap();
    assert!(!r0.degraded);
    let r1 = mw
        .try_request(child, Some(Move::ZoomIn(fc_tiles::Quadrant::Nw)))
        .unwrap()
        .unwrap();
    assert!(r1.degraded, "deadline-exhausted fetch must degrade");
    assert_eq!(r1.tile.id, parent, "nearest resident ancestor answers");
    assert!(!r1.cache_hit, "booked as a miss for the requested tile");
    assert!(r1.prefetched.is_empty(), "prefetch skipped on degraded");
    assert!(r1.fetch_retries > 0);
    let s = mw.stats();
    assert_eq!((s.requests, s.degraded, s.fetch_failures), (2, 1, 0));
}

/// With nothing resident to degrade to, the failure surfaces as a
/// clean `FetchError` with no counters moved; the session recovers
/// once the plan is detached.
#[test]
fn failure_without_ancestor_is_a_clean_error() {
    let p = pyramid();
    let mut mw = middleware(p.clone(), 2);
    mw.set_faults(
        Arc::new(FaultPlan::always_failing(3)),
        RetryPolicy::default(),
    );
    let err = mw.try_request(TileId::new(2, 1, 1), None).unwrap_err();
    assert!(
        matches!(err, FetchError::Unavailable { attempts: 4 }),
        "{err:?}"
    );
    let s = mw.stats();
    assert_eq!((s.requests, s.fetch_failures), (0, 1));
    // `request` maps the failure to None for legacy callers.
    assert!(mw.request(TileId::new(2, 1, 1), None).is_none());
    mw.clear_faults();
    assert!(mw
        .try_request(TileId::new(2, 1, 1), None)
        .unwrap()
        .is_some());
}

/// A stuck fetch consumes the whole remaining deadline on the
/// simulated clock before failing.
#[test]
fn stuck_fetch_consumes_the_deadline() {
    let p = pyramid();
    let mut mw = middleware(p.clone(), 0);
    let deadline = Duration::from_millis(500);
    mw.set_faults(
        Arc::new(FaultPlan::new(
            8,
            FaultRates {
                stuck_per_mille: 1000,
                ..FaultRates::default()
            },
        )),
        RetryPolicy {
            deadline,
            ..RetryPolicy::default()
        },
    );
    let before = p.store().clock().now();
    let err = mw.try_request(TileId::new(2, 1, 0), None).unwrap_err();
    assert!(
        matches!(err, FetchError::DeadlineExceeded { .. }),
        "{err:?}"
    );
    assert_eq!(p.store().clock().now() - before, deadline);
}

/// Fault windows are per-session request indices: hit-rate collapses
/// inside the window and recovers after it — the invariant the chaos
/// suite asserts at scale.
#[test]
fn hit_rate_recovers_after_the_fault_window() {
    let p = pyramid();
    let mut mw = middleware(p.clone(), 4);
    // Requests 4..8 fail hard; before and after are clean.
    let plan = FaultPlan::windowed(
        21,
        FaultWindow {
            from: 4,
            until: 8,
            rates: FaultRates {
                transient_per_mille: 1000,
                transient_first_attempts: u32::MAX,
                ..FaultRates::default()
            },
        },
    );
    mw.set_faults(Arc::new(plan), RetryPolicy::default());
    // A 12-step serpentine across level 2's 4x4 tile grid. (served
    // cleanly, cache hit) per step; a pan walk caches no ancestors, so
    // in-window failures surface as errors rather than degraded
    // replies — either way the session survives the window.
    let steps: [(Option<Move>, u32, u32); 12] = [
        (None, 1, 0),
        (Some(Move::PanRight), 1, 1),
        (Some(Move::PanRight), 1, 2),
        (Some(Move::PanRight), 1, 3),
        (Some(Move::PanDown), 2, 3),
        (Some(Move::PanLeft), 2, 2),
        (Some(Move::PanLeft), 2, 1),
        (Some(Move::PanLeft), 2, 0),
        (Some(Move::PanDown), 3, 0),
        (Some(Move::PanRight), 3, 1),
        (Some(Move::PanRight), 3, 2),
        (Some(Move::PanRight), 3, 3),
    ];
    let mut outcomes = Vec::new();
    for (mv, y, x) in steps {
        match mw.try_request(TileId::new(2, y, x), mv) {
            Ok(Some(r)) => outcomes.push((true, r.cache_hit)),
            Ok(None) => panic!("tile ({y},{x}) must exist"),
            Err(_) => outcomes.push((false, false)),
        }
    }
    // Inside the window the backend is unreachable: a request either
    // fails or is answered from cache — never a clean backend miss.
    assert!(
        outcomes[4..8].iter().all(|&(served, hit)| !served || hit),
        "no clean miss inside the window: {outcomes:?}"
    );
    let failures = outcomes[4..8].iter().filter(|&&(s, _)| !s).count();
    assert!(failures >= 2, "the window must bite: {outcomes:?}");
    assert!(
        outcomes[..4].iter().chain(&outcomes[8..]).all(|&(s, _)| s),
        "outside the window every request serves: {outcomes:?}"
    );
    // After the window the prefetcher resumes and hits return.
    let hits_after = outcomes[8..].iter().filter(|&&(_, h)| h).count();
    assert!(hits_after >= 2, "hit rate must recover, got {hits_after}");
    assert_eq!(mw.fault_request_index(), 12);
    assert_eq!(mw.stats().fetch_failures, failures);
}
