//! Concurrency and golden coverage for the lock-striped
//! [`SharedTileCache`].
//!
//! * Golden: a 1-shard striped cache must be **indistinguishable** from
//!   the retained [`SingleMutexTileCache`] reference after every
//!   operation of a deterministic trace (same residency, same
//!   popularity, same eviction count — hence the same victims in the
//!   same order).
//! * Golden: an N-shard cache must behave exactly like N independent
//!   references, each running the hash-partition of the trace that
//!   falls on its shard.
//! * Stress: under multi-threaded install/lookup/retain/open/close
//!   churn, capacity is never exceeded and the atomic stats balance
//!   with per-thread ground truth.
//! * Popularity: `popular()` (resident ranking) and `hot()` (the
//!   eviction-surviving sketch) keep their ordering invariants under
//!   threaded churn, and their *orderings* — not just their sorted
//!   contents — match the single-mutex reference at one shard.

use fc_array::{DenseArray, Schema};
use fc_core::{MultiUserCache, SharedTileCache, SingleMutexTileCache};
use fc_tiles::{Tile, TileId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn tile(id: TileId) -> Arc<Tile> {
    Arc::new(Tile::new(
        id,
        DenseArray::filled(Schema::grid2d("T", 2, 2, &["v"]).unwrap(), 1.0),
    ))
}

/// Deterministic id stream covering several levels and coordinates.
fn tid(i: u64) -> TileId {
    TileId::new(
        2 + (i % 3) as u8,
        ((i * 7) % 13) as u32,
        ((i * 11) % 17) as u32,
    )
}

/// xorshift for deterministic pseudo-random op selection.
fn rng(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Full observable state of a cache: sorted (id, popularity) residency
/// plus counters.
fn snapshot(c: &dyn MultiUserCache) -> (Vec<(TileId, u64)>, fc_core::SharedCacheStats, usize) {
    let mut pop = c.popular(usize::MAX);
    pop.sort();
    (pop, c.stats(), c.len())
}

#[test]
fn one_shard_matches_single_mutex_reference_step_by_step() {
    let capacity = 6;
    let sharded = SharedTileCache::with_shards(capacity, 1);
    let reference = SingleMutexTileCache::new(capacity);
    let caches: [&dyn MultiUserCache; 2] = [&sharded, &reference];

    let mut sessions = Vec::new();
    for _ in 0..3 {
        let (a, b) = (sharded.open_session(), reference.open_session());
        assert_eq!(a, b, "session ids allocate identically");
        sessions.push(a);
    }

    let mut state = 0x5eed_cafe_u64;
    for step in 0..600 {
        let s = sessions[(rng(&mut state) % sessions.len() as u64) as usize];
        match rng(&mut state) % 5 {
            0 | 1 => {
                // Install a small batch (may exceed budget: both must
                // truncate identically).
                let n = 1 + rng(&mut state) % 4;
                let ids: Vec<u64> = (0..n).map(|_| rng(&mut state) % 40).collect();
                let installed: Vec<usize> = caches
                    .iter()
                    .map(|c| c.install(s, ids.iter().map(|&i| tile(tid(i))).collect()))
                    .collect();
                assert_eq!(installed[0], installed[1], "step {step}");
            }
            2 => {
                let id = tid(rng(&mut state) % 40);
                let hit: Vec<bool> = caches.iter().map(|c| c.lookup(s, id).is_some()).collect();
                assert_eq!(hit[0], hit[1], "step {step}");
            }
            3 => {
                let keep: Vec<TileId> = (0..rng(&mut state) % 5)
                    .map(|_| tid(rng(&mut state) % 40))
                    .collect();
                for c in caches {
                    c.retain_for(s, &keep);
                }
            }
            _ => {
                // Session churn: close one, open a replacement.
                for c in caches {
                    c.close_session(s);
                }
                let (a, b) = (sharded.open_session(), reference.open_session());
                assert_eq!(a, b);
                let idx = sessions.iter().position(|&x| x == s).unwrap();
                sessions[idx] = a;
            }
        }
        let (pop_a, stats_a, len_a) = snapshot(&sharded);
        let (pop_b, stats_b, len_b) = snapshot(&reference);
        assert_eq!(pop_a, pop_b, "residency+popularity diverged at step {step}");
        assert_eq!(stats_a, stats_b, "stats diverged at step {step}");
        assert_eq!(len_a, len_b);
        assert_eq!(sharded.session_budget(), reference.session_budget());
        assert!(len_a <= capacity);
        // Golden *ordering* checks (snapshot() sorts by id, hiding
        // rank): the ranked lists themselves must agree, for both the
        // resident ranking and the eviction-surviving sketch.
        assert_eq!(
            sharded.popular(5),
            reference.popular(5),
            "popular() ordering diverged at step {step}"
        );
        assert_eq!(
            sharded.hot(8),
            reference.hot(8),
            "hot() ordering diverged at step {step}"
        );
    }
    // The trace must actually have exercised eviction.
    assert!(sharded.stats().evictions > 0, "trace never evicted");
    // The sketch kept counting through those evictions: every id that
    // ever passed through is still ranked.
    assert!(
        sharded.hot(usize::MAX).len() >= sharded.len(),
        "sketch must remember at least the residents"
    );
}

#[test]
fn n_shards_decompose_into_per_shard_references() {
    let capacity = 16;
    let shards = 4;
    let sharded = SharedTileCache::with_shards(capacity, shards);
    // Mirror the exact partition: base slots + one extra for the first
    // `capacity % shards` shards.
    let (base, extra) = (capacity / shards, capacity % shards);
    let minis: Vec<SingleMutexTileCache> = (0..shards)
        .map(|i| SingleMutexTileCache::new(base + usize::from(i < extra)))
        .collect();

    let s = sharded.open_session();
    let mini_sessions: Vec<_> = minis.iter().map(|m| m.open_session()).collect();

    let mut state = 0xfeed_f00d_u64;
    for step in 0..400 {
        match rng(&mut state) % 4 {
            0 | 1 => {
                // One tile per install keeps every sub-batch within the
                // mini caches' budgets, so truncation never diverges.
                let id = tid(rng(&mut state) % 60);
                let sh = sharded.shard_of(id);
                let a = sharded.install(s, vec![tile(id)]);
                let b = minis[sh].install(mini_sessions[sh], vec![tile(id)]);
                assert_eq!(a, b, "step {step}");
            }
            2 => {
                let id = tid(rng(&mut state) % 60);
                let sh = sharded.shard_of(id);
                let a = sharded.lookup(s, id).is_some();
                let b = minis[sh].lookup(mini_sessions[sh], id).is_some();
                assert_eq!(a, b, "step {step}");
            }
            _ => {
                let keep: Vec<TileId> = (0..rng(&mut state) % 6)
                    .map(|_| tid(rng(&mut state) % 60))
                    .collect();
                sharded.retain_for(s, &keep);
                for (m, &ms) in minis.iter().zip(&mini_sessions) {
                    m.retain_for(ms, &keep);
                }
            }
        }
        // Global state must equal the union of the per-shard references.
        let (pop, stats, len) = snapshot(&sharded);
        let mut ref_pop: Vec<(TileId, u64)> = Vec::new();
        let mut ref_evictions = 0usize;
        let mut ref_len = 0usize;
        for m in &minis {
            ref_pop.extend(m.popular(usize::MAX));
            ref_evictions += m.stats().evictions;
            ref_len += m.len();
        }
        ref_pop.sort();
        assert_eq!(pop, ref_pop, "residency diverged at step {step}");
        assert_eq!(
            stats.evictions, ref_evictions,
            "evictions diverged at step {step}"
        );
        assert_eq!(len, ref_len);
        assert!(len <= capacity, "capacity exceeded at step {step}");
        // The popularity sketch decomposes exactly like residency:
        // the sharded hot() is the rank-merged union of the per-shard
        // references' sketches.
        let mut ref_hot: Vec<(TileId, u64)> =
            minis.iter().flat_map(|m| m.hot(usize::MAX)).collect();
        ref_hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        assert_eq!(
            sharded.hot(usize::MAX),
            ref_hot,
            "sketch diverged at step {step}"
        );
    }
    assert!(sharded.stats().evictions > 0, "trace never evicted");
}

/// Threaded install/evict/lookup churn over the popularity paths:
/// `popular()` and `hot()` stay well-formed mid-churn (they are
/// non-atomic snapshots, but each must still be a descending ranking),
/// the sketch survives eviction, and the most-requested tile tops it.
#[test]
fn popularity_rankings_hold_under_threaded_churn() {
    let capacity = 32;
    let cache = Arc::new(SharedTileCache::with_shards(capacity, 8));
    let threads = 8;
    let steps = 500;
    // Every thread hammers this tile ~every 4th op: it must end up the
    // sketch's undisputed top entry.
    let celebrity = tid(0);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = cache.clone();
            scope.spawn(move || {
                let mut state = 0x9e37_79b9_u64 + t as u64;
                let session = cache.open_session();
                for i in 0..steps {
                    match rng(&mut state) % 4 {
                        0 => {
                            let n = 1 + rng(&mut state) % 4;
                            let tiles: Vec<_> =
                                (0..n).map(|_| tile(tid(rng(&mut state) % 100))).collect();
                            cache.install(session, tiles);
                        }
                        1 | 2 => {
                            let _ = cache.lookup(session, tid(rng(&mut state) % 100));
                        }
                        _ => {
                            let _ = cache.lookup(session, celebrity);
                        }
                    }
                    if i % 16 == 0 {
                        // Mid-churn snapshots must be descending
                        // rankings with the requested truncation.
                        let pop = cache.popular(10);
                        assert!(pop.len() <= 10);
                        for w in pop.windows(2) {
                            assert!(w[0].1 >= w[1].1, "popular unsorted mid-churn: {pop:?}");
                        }
                        let hot = cache.hot(10);
                        assert!(hot.len() <= 10);
                        for w in hot.windows(2) {
                            assert!(w[0].1 >= w[1].1, "hot unsorted mid-churn: {hot:?}");
                        }
                    }
                }
                cache.close_session(session);
            });
        }
    });

    let hot = cache.hot(usize::MAX);
    for w in hot.windows(2) {
        assert!(
            w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
            "hot tie-break must be deterministic: {:?} vs {:?}",
            w[0],
            w[1]
        );
    }
    assert_eq!(hot[0].0, celebrity, "most-requested tile tops the sketch");
    let pop = cache.popular(usize::MAX);
    for w in pop.windows(2) {
        assert!(w[0].1 >= w[1].1, "popular must rank descending");
    }
    assert!(pop.len() <= capacity, "popular ranks residents only");
    // Eviction happened, yet the sketch still ranks far more ids than
    // fit in the cache — the signal `popular()` loses.
    assert!(cache.stats().evictions > 0, "churn never evicted");
    assert!(
        hot.len() > cache.len(),
        "sketch must remember evicted tiles: {} ranked vs {} resident",
        hot.len(),
        cache.len()
    );
}

#[test]
fn concurrent_stress_keeps_capacity_and_stats_balanced() {
    let capacity = 64;
    let cache = Arc::new(SharedTileCache::with_shards(capacity, 8));
    let threads = 8;
    let steps = 400;
    let lookups = Arc::new(AtomicUsize::new(0));
    let installed = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = cache.clone();
            let lookups = lookups.clone();
            let installed = installed.clone();
            scope.spawn(move || {
                let mut state = 0xabcd_0000_u64 + t as u64;
                let mut session = cache.open_session();
                for _ in 0..steps {
                    match rng(&mut state) % 6 {
                        0 | 1 => {
                            let n = 1 + rng(&mut state) % 6;
                            let tiles: Vec<_> =
                                (0..n).map(|_| tile(tid(rng(&mut state) % 200))).collect();
                            installed.fetch_add(cache.install(session, tiles), Ordering::Relaxed);
                        }
                        2 | 3 => {
                            let _ = cache.lookup(session, tid(rng(&mut state) % 200));
                            lookups.fetch_add(1, Ordering::Relaxed);
                        }
                        4 => {
                            let keep: Vec<TileId> = (0..rng(&mut state) % 4)
                                .map(|_| tid(rng(&mut state) % 200))
                                .collect();
                            cache.retain_for(session, &keep);
                        }
                        _ => {
                            cache.close_session(session);
                            session = cache.open_session();
                        }
                    }
                    // The capacity invariant must hold at every moment,
                    // not just at quiescence.
                    assert!(cache.len() <= capacity, "capacity exceeded mid-stress");
                }
                cache.close_session(session);
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed),
        "every lookup is exactly one hit or one miss"
    );
    assert!(stats.cross_session_hits <= stats.hits);
    // No removal path but eviction: what came in and is gone was evicted.
    assert_eq!(
        installed.load(Ordering::Relaxed) - cache.len(),
        stats.evictions,
        "installs - residents == evictions"
    );
    assert_eq!(cache.session_count(), 0, "all sessions closed");
    // Capacity pressure was real.
    assert!(stats.evictions > 0);
    assert_eq!(cache.len(), capacity.min(cache.len()));
}
