//! Utility-scheduled server push: which speculative tile, to which
//! session, *now*?
//!
//! The serving stack's prefetch path fills the **cache**; this module
//! decides what is worth shipping over the **wire** unsolicited. The
//! split matters because the wire budget is the scarcer resource: a
//! push occupies a session's socket and client buffer, so pushing the
//! wrong tile to the wrong session at the wrong time is strictly worse
//! than pushing nothing — the Khameleon insight that server push must
//! be *scheduled* against a utility model rather than streamed
//! greedily.
//!
//! [`PushPlanner`] keeps one bounded candidate queue per session,
//! refilled after each served request from the middleware's ranked
//! prediction list ([`crate::Middleware::take_push_candidates`] — the
//! capture point sits right behind the [`crate::PredictScheduler`]
//! group-commit rendezvous, so candidate ranking inherits the batched
//! predictor's amortized cost and its cross-session coalescing). At
//! drain time the reactor asks for a *plan*: the best
//! `(session, tile)` picks for the sessions whose sockets are
//! writable and whose write queues have headroom.
//!
//! Candidate utility is a product of four deterministic factors:
//!
//! * **likelihood** — `1/(1+rank)` in the refill's ranked list: the
//!   engine's own belief, already blended (AB × SB × hotspot prior);
//! * **staleness** — `2^-age`, age in refill epochs: a candidate from
//!   three requests ago predicts a view the analyst has since moved
//!   past, so its claim on the wire decays geometrically;
//! * **namespace fairness** — `(1+min_pushed)/(1+own_pushed)` across
//!   live sessions: the cheapest-served session's multiplier is 1,
//!   a session that has already absorbed many pushes yields;
//! * **traffic phase** — Burst = 0 (the session's socket belongs to
//!   its own misses; pushing into a burst competes with exactly the
//!   traffic the reactive budget protects), Dwell = 1 (the quiet
//!   window speculation exists for), Idle = 0.25 (a trickle keeps the
//!   working set warm without spending the wire on a user who may be
//!   gone), unclassified = 1.
//!
//! [`PushPolicy::RoundRobin`] is the A/B control: same queues, same
//! budget, but sessions are drained cyclically with no utility model —
//! the baseline the `exp_multiuser` reactor section measures the
//! utility schedule against.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::burst::TrafficPhase;
use fc_tiles::TileId;

/// How the planner picks among candidates at drain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushPolicy {
    /// Utility-ordered: likelihood × staleness × fairness × phase.
    Utility,
    /// Cyclic per-session drain, no utility model (the A/B baseline).
    RoundRobin,
}

/// Planner knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushConfig {
    /// Drain policy.
    pub policy: PushPolicy,
    /// Per-session candidate queue bound; a refill past it drops the
    /// lowest-ranked tail. Bounds planner memory per session.
    pub queue_cap: usize,
}

impl Default for PushConfig {
    fn default() -> Self {
        Self {
            policy: PushPolicy::Utility,
            queue_cap: 16,
        }
    }
}

/// Cumulative push accounting (planner-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushStats {
    /// Tiles handed to the wire by [`PushPlanner::plan`].
    pub pushed: u64,
    /// Pushed tiles the session later requested — push analog of the
    /// prefetch useful ratio.
    pub used: u64,
}

impl PushStats {
    /// Useful-push ratio in `[0, 1]` (0 when nothing was pushed).
    pub fn efficiency(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.used as f64 / self.pushed as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    tile: TileId,
    /// Position in the ranked list of the refill that produced it.
    rank: usize,
    /// The session's refill epoch at that refill.
    epoch: u64,
}

#[derive(Debug, Default)]
struct SessionQueue {
    candidates: VecDeque<Candidate>,
    phase: Option<TrafficPhase>,
    /// Refill epochs seen (the staleness clock).
    epoch: u64,
    /// Pushes absorbed (the fairness denominator).
    pushed: u64,
    /// Pushed but not yet requested — settled by
    /// [`PushPlanner::note_request`].
    outstanding: HashSet<TileId>,
}

/// The per-session candidate queues plus the drain scheduler. All
/// state is deterministic in its inputs: same refills, same plans,
/// same picks — on any host.
#[derive(Debug)]
pub struct PushPlanner {
    cfg: PushConfig,
    sessions: HashMap<u64, SessionQueue>,
    /// Round-robin resume cursor (session id to start after).
    rr_cursor: Option<u64>,
    stats: PushStats,
}

impl PushPlanner {
    /// An empty planner.
    pub fn new(cfg: PushConfig) -> Self {
        Self {
            cfg,
            sessions: HashMap::new(),
            rr_cursor: None,
            stats: PushStats::default(),
        }
    }

    /// Replaces session `sid`'s candidate queue from a fresh ranked
    /// prediction list and advances its staleness epoch. Unpushed
    /// leftovers that the new list does not re-confirm survive with
    /// their old epoch (they age instead of vanishing); everything is
    /// capped at [`PushConfig::queue_cap`], best-first.
    pub fn refill(&mut self, sid: u64, ranked: &[TileId], phase: Option<TrafficPhase>) {
        let q = self.sessions.entry(sid).or_default();
        q.epoch += 1;
        q.phase = phase;
        let mut next: Vec<Candidate> = Vec::with_capacity(self.cfg.queue_cap);
        let mut seen: HashSet<TileId> = HashSet::new();
        for (rank, &tile) in ranked.iter().enumerate() {
            if next.len() >= self.cfg.queue_cap {
                break;
            }
            if seen.insert(tile) && !q.outstanding.contains(&tile) {
                next.push(Candidate {
                    tile,
                    rank,
                    epoch: q.epoch,
                });
            }
        }
        for old in &q.candidates {
            if next.len() >= self.cfg.queue_cap {
                break;
            }
            if seen.insert(old.tile) {
                next.push(*old);
            }
        }
        q.candidates = next.into();
    }

    /// Forgets a departed session entirely (queue, counters,
    /// outstanding pushes).
    pub fn drop_session(&mut self, sid: u64) {
        self.sessions.remove(&sid);
        if self.rr_cursor == Some(sid) {
            self.rr_cursor = None;
        }
    }

    /// Settles a served request against outstanding pushes: returns
    /// `true` (and books a useful push) iff `tile` was pushed to
    /// `sid` strictly before the session asked for it. Also drops the
    /// tile from the session's pending candidates — the request
    /// overtook the push.
    pub fn note_request(&mut self, sid: u64, tile: TileId) -> bool {
        let Some(q) = self.sessions.get_mut(&sid) else {
            return false;
        };
        q.candidates.retain(|c| c.tile != tile);
        let used = q.outstanding.remove(&tile);
        if used {
            self.stats.used += 1;
        }
        used
    }

    /// Picks up to `budget` `(session, tile)` pushes among `writable`
    /// sessions (sockets ready, write queues with headroom), books
    /// them as pushed, and returns them in drain order. `is_resident`
    /// vets each `(session, tile)` candidate at the moment of the pick
    /// (sessions may browse different dataset namespaces) — an evicted
    /// tile has nothing to push and is silently discarded (its slot
    /// goes to the next candidate).
    pub fn plan(
        &mut self,
        budget: usize,
        writable: &[u64],
        mut is_resident: impl FnMut(u64, TileId) -> bool,
    ) -> Vec<(u64, TileId)> {
        match self.cfg.policy {
            PushPolicy::Utility => self.plan_utility(budget, writable, &mut is_resident),
            PushPolicy::RoundRobin => self.plan_round_robin(budget, writable, &mut is_resident),
        }
    }

    fn plan_utility(
        &mut self,
        budget: usize,
        writable: &[u64],
        is_resident: &mut dyn FnMut(u64, TileId) -> bool,
    ) -> Vec<(u64, TileId)> {
        let mut picks = Vec::new();
        // Sessions are re-scored after every pick: each push moves its
        // session's fairness denominator, which is the point — the
        // budget spreads instead of dumping on the single best queue.
        while picks.len() < budget {
            let min_pushed = self.sessions.values().map(|q| q.pushed).min().unwrap_or(0);
            let mut best: Option<(f64, u64)> = None;
            let mut sids: Vec<u64> = writable
                .iter()
                .copied()
                .filter(|sid| self.sessions.contains_key(sid))
                .collect();
            sids.sort_unstable();
            for sid in sids {
                let q = &self.sessions[&sid];
                let Some(front) = q.candidates.front() else {
                    continue;
                };
                let u = utility(front, q, min_pushed);
                if u <= 0.0 {
                    continue;
                }
                // Strict > keeps the tie-break on the smaller session
                // id — deterministic on every host.
                if best.is_none_or(|(bu, _)| u > bu) {
                    best = Some((u, sid));
                }
            }
            let Some((_, sid)) = best else {
                break;
            };
            let q = self.sessions.get_mut(&sid).expect("scored session");
            let cand = q.candidates.pop_front().expect("non-empty queue");
            if !is_resident(sid, cand.tile) {
                // Evicted since refill: discard, re-score.
                continue;
            }
            q.pushed += 1;
            q.outstanding.insert(cand.tile);
            self.stats.pushed += 1;
            picks.push((sid, cand.tile));
        }
        picks
    }

    fn plan_round_robin(
        &mut self,
        budget: usize,
        writable: &[u64],
        is_resident: &mut dyn FnMut(u64, TileId) -> bool,
    ) -> Vec<(u64, TileId)> {
        let mut sids: Vec<u64> = writable
            .iter()
            .copied()
            .filter(|sid| self.sessions.contains_key(sid))
            .collect();
        sids.sort_unstable();
        if sids.is_empty() {
            return Vec::new();
        }
        // Resume after the last session served in the previous tick so
        // the cycle is fair across ticks, not just within one.
        let start = match self.rr_cursor {
            Some(cur) => sids.iter().position(|&s| s > cur).unwrap_or(0),
            None => 0,
        };
        let mut picks = Vec::new();
        let mut idle_rounds = 0;
        let mut i = start;
        while picks.len() < budget && idle_rounds < sids.len() {
            let sid = sids[i % sids.len()];
            i += 1;
            let q = self.sessions.get_mut(&sid).expect("filtered session");
            match q.candidates.pop_front() {
                Some(cand) if is_resident(sid, cand.tile) => {
                    q.pushed += 1;
                    q.outstanding.insert(cand.tile);
                    self.stats.pushed += 1;
                    self.rr_cursor = Some(sid);
                    picks.push((sid, cand.tile));
                    idle_rounds = 0;
                }
                Some(_) => {
                    // Evicted candidate: this session's turn is spent,
                    // but the round is not idle — it consumed a tile.
                    self.rr_cursor = Some(sid);
                    idle_rounds = 0;
                }
                None => idle_rounds += 1,
            }
        }
        picks
    }

    /// Cumulative planner stats.
    pub fn stats(&self) -> PushStats {
        self.stats
    }

    /// Live sessions with at least one queued candidate.
    pub fn pending_sessions(&self) -> usize {
        self.sessions
            .values()
            .filter(|q| !q.candidates.is_empty())
            .count()
    }
}

/// The utility model (module docs): likelihood × staleness × fairness
/// × phase factor.
fn utility(c: &Candidate, q: &SessionQueue, min_pushed: u64) -> f64 {
    let likelihood = 1.0 / (1.0 + c.rank as f64);
    let age = q.epoch.saturating_sub(c.epoch).min(62);
    let staleness = 1.0 / (1u64 << age) as f64;
    let fairness = (1.0 + min_pushed as f64) / (1.0 + q.pushed as f64);
    let phase = match q.phase {
        Some(TrafficPhase::Burst) => 0.0,
        Some(TrafficPhase::Dwell) | None => 1.0,
        Some(TrafficPhase::Idle) => 0.25,
    };
    likelihood * staleness * fairness * phase
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TileId {
        TileId::new(3, 0, n)
    }

    fn planner(policy: PushPolicy) -> PushPlanner {
        PushPlanner::new(PushConfig {
            policy,
            ..PushConfig::default()
        })
    }

    #[test]
    fn utility_prefers_dwell_over_idle_and_skips_burst() {
        let mut p = planner(PushPolicy::Utility);
        p.refill(1, &[tid(1)], Some(TrafficPhase::Burst));
        p.refill(2, &[tid(2)], Some(TrafficPhase::Idle));
        p.refill(3, &[tid(3)], Some(TrafficPhase::Dwell));
        let picks = p.plan(2, &[1, 2, 3], |_, _| true);
        assert_eq!(picks, vec![(3, tid(3)), (2, tid(2))]);
        // The burst session's candidate is never pushed, even with
        // budget to spare.
        let more = p.plan(4, &[1, 2, 3], |_, _| true);
        assert!(more.is_empty(), "burst utility is zero: {more:?}");
    }

    #[test]
    fn staleness_decays_across_refills() {
        let mut p = planner(PushPolicy::Utility);
        // Session 1's candidate survives two refills unconfirmed;
        // session 2's is fresh. Equal rank, equal fairness — the
        // fresh one must win.
        p.refill(1, &[tid(1)], Some(TrafficPhase::Dwell));
        p.refill(1, &[], Some(TrafficPhase::Dwell));
        p.refill(1, &[], Some(TrafficPhase::Dwell));
        p.refill(2, &[tid(2)], Some(TrafficPhase::Dwell));
        let picks = p.plan(1, &[1, 2], |_, _| true);
        assert_eq!(picks, vec![(2, tid(2))]);
    }

    #[test]
    fn fairness_spreads_the_budget_across_sessions() {
        let mut p = planner(PushPolicy::Utility);
        p.refill(1, &[tid(1), tid(2), tid(3)], Some(TrafficPhase::Dwell));
        p.refill(2, &[tid(11), tid(12)], Some(TrafficPhase::Dwell));
        let picks = p.plan(4, &[1, 2], |_, _| true);
        let s1 = picks.iter().filter(|(s, _)| *s == 1).count();
        let s2 = picks.iter().filter(|(s, _)| *s == 2).count();
        assert_eq!(picks.len(), 4);
        assert_eq!(
            (s1, s2),
            (2, 2),
            "fairness must alternate, not drain one queue: {picks:?}"
        );
        // Rank order within each session is preserved.
        assert_eq!(picks[0], (1, tid(1)), "tie at equal utility → lower sid");
        assert!(picks.contains(&(2, tid(11))));
    }

    #[test]
    fn unwritable_sessions_are_never_planned() {
        let mut p = planner(PushPolicy::Utility);
        p.refill(1, &[tid(1)], Some(TrafficPhase::Dwell));
        p.refill(2, &[tid(2)], Some(TrafficPhase::Dwell));
        let picks = p.plan(8, &[2], |_, _| true);
        assert_eq!(picks, vec![(2, tid(2))]);
    }

    #[test]
    fn evicted_candidates_are_discarded_not_pushed() {
        let mut p = planner(PushPolicy::Utility);
        p.refill(1, &[tid(1), tid(2)], Some(TrafficPhase::Dwell));
        let picks = p.plan(2, &[1], |_, t| t != tid(1));
        assert_eq!(picks, vec![(1, tid(2))]);
        assert_eq!(p.stats().pushed, 1, "an evicted tile is not a push");
    }

    #[test]
    fn note_request_settles_used_once() {
        let mut p = planner(PushPolicy::Utility);
        p.refill(1, &[tid(1)], Some(TrafficPhase::Dwell));
        assert_eq!(p.plan(1, &[1], |_, _| true), vec![(1, tid(1))]);
        assert!(p.note_request(1, tid(1)), "pushed before requested");
        assert!(!p.note_request(1, tid(1)), "settled only once");
        assert_eq!(p.stats(), PushStats { pushed: 1, used: 1 });
        // A tile never pushed is not a useful push, and the request
        // drops it from the pending queue (the request overtook it).
        p.refill(1, &[tid(2)], Some(TrafficPhase::Dwell));
        assert!(!p.note_request(1, tid(2)));
        assert!(p.plan(1, &[1], |_, _| true).is_empty());
    }

    #[test]
    fn refill_keeps_unconfirmed_leftovers_and_caps_the_queue() {
        let mut p = PushPlanner::new(PushConfig {
            policy: PushPolicy::Utility,
            queue_cap: 3,
        });
        p.refill(1, &[tid(1), tid(2)], Some(TrafficPhase::Dwell));
        // New list confirms nothing; leftovers age behind it.
        p.refill(1, &[tid(3), tid(4)], Some(TrafficPhase::Dwell));
        let picks = p.plan(4, &[1], |_, _| true);
        assert_eq!(
            picks,
            vec![(1, tid(3)), (1, tid(4)), (1, tid(1))],
            "fresh first, leftover behind, cap at 3"
        );
    }

    #[test]
    fn round_robin_cycles_sessions_across_ticks() {
        let mut p = planner(PushPolicy::RoundRobin);
        p.refill(1, &[tid(1), tid(2)], Some(TrafficPhase::Dwell));
        p.refill(2, &[tid(11), tid(12)], Some(TrafficPhase::Burst));
        p.refill(3, &[tid(21)], Some(TrafficPhase::Idle));
        // The baseline ignores phase entirely — that is the A/B.
        let t1 = p.plan(2, &[1, 2, 3], |_, _| true);
        assert_eq!(t1, vec![(1, tid(1)), (2, tid(11))]);
        let t2 = p.plan(2, &[1, 2, 3], |_, _| true);
        assert_eq!(t2, vec![(3, tid(21)), (1, tid(2))], "cursor resumes");
    }

    #[test]
    fn drop_session_forgets_everything() {
        let mut p = planner(PushPolicy::Utility);
        p.refill(1, &[tid(1)], Some(TrafficPhase::Dwell));
        p.plan(1, &[1], |_, _| true);
        p.drop_session(1);
        assert!(!p.note_request(1, tid(1)));
        assert_eq!(p.pending_sessions(), 0);
        assert_eq!(p.stats().pushed, 1, "history survives, state does not");
    }
}
