//! The Action-Based (AB) recommender (§4.3.2).
//!
//! "our AB recommender … builds an n-th order Markov chain from users'
//! past actions", smoothed with Kneser–Ney. Candidates one move away are
//! scored by the probability of the move that reaches them; candidates
//! further away (d > 1) by the best move-path product.

use crate::recommender::{PredictionContext, Recommender};
use fc_ngram::KneserNey;
use fc_tiles::{Geometry, TileId, MOVES};

/// The AB recommendation model: a Kneser–Ney smoothed move-sequence
/// Markov chain.
#[derive(Debug, Clone)]
pub struct AbRecommender {
    model: KneserNey,
}

impl AbRecommender {
    /// Trains from move-id traces with context length `order` (the paper
    /// settles on `order = 3`, "Markov3").
    pub fn train<'a, I>(traces: I, order: usize) -> Self
    where
        I: IntoIterator<Item = &'a [u16]>,
    {
        Self {
            model: KneserNey::train(traces, order, MOVES.len()),
        }
    }

    /// Wraps an already-trained model.
    pub fn from_model(model: KneserNey) -> Self {
        Self { model }
    }

    /// Context length of the underlying chain.
    pub fn order(&self) -> usize {
        self.model.order()
    }

    /// Probability of each move given the history (exposed for the
    /// Markov-sweep experiment).
    pub fn move_distribution(&self, move_history: &[u16]) -> Vec<f64> {
        self.model.distribution(move_history)
    }

    /// Best move-path probability from `from` to `target` within
    /// `depth` moves, extending `seq` greedily per step.
    fn path_prob(
        &self,
        geometry: Geometry,
        seq: &mut Vec<u16>,
        from: TileId,
        target: TileId,
        depth: usize,
    ) -> f64 {
        if depth == 0 {
            return 0.0;
        }
        let dist = self.model.distribution(seq);
        let mut best = 0.0f64;
        for m in MOVES {
            if let Some(next) = geometry.apply(from, m) {
                let p = dist[m.index()];
                if next == target {
                    best = best.max(p);
                } else if depth > 1 && p > best {
                    seq.push(m.index() as u16);
                    let tail = self.path_prob(geometry, seq, next, target, depth - 1);
                    seq.pop();
                    best = best.max(p * tail);
                }
            }
        }
        best
    }
}

impl Recommender for AbRecommender {
    fn name(&self) -> &str {
        "AB"
    }

    fn rank(&self, ctx: &PredictionContext<'_>) -> Vec<TileId> {
        let mut seq = ctx.history.move_sequence();
        let dist = self.model.distribution(&seq);
        let mut scored: Vec<(TileId, f64)> = ctx
            .candidates
            .iter()
            .map(|&c| {
                // Fast path: single-move candidates (d = 1, the default).
                let score = match ctx.geometry.move_between(ctx.request.tile, c) {
                    Some(m) => dist[m.index()],
                    None => self.path_prob(ctx.geometry, &mut seq, ctx.request.tile, c, 3),
                };
                (c, score)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probabilities")
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(t, _)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Request, SessionHistory};
    use fc_array::{IoMode, LatencyModel, SimClock};
    use fc_tiles::{Move, Quadrant, TileStore};

    fn geometry() -> Geometry {
        Geometry::new(4, 512, 512, 64, 64)
    }

    fn store(g: Geometry) -> TileStore {
        TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new())
    }

    /// Traces where three rights are always followed by a fourth.
    fn right_runs() -> Vec<Vec<u16>> {
        let r = Move::PanRight.index() as u16;
        let d = Move::PanDown.index() as u16;
        let o = Move::ZoomOut.index() as u16;
        vec![
            vec![r, r, r, r, r, r, d, r, r, r, r],
            vec![o, r, r, r, r, r],
        ]
    }

    #[test]
    fn predicts_continued_pan() {
        let traces = right_runs();
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        let ab = AbRecommender::train(refs, 3);
        let g = geometry();
        let s = store(g);

        let mut h = SessionHistory::new(3);
        let tiles = [
            TileId::new(3, 4, 1),
            TileId::new(3, 4, 2),
            TileId::new(3, 4, 3),
        ];
        for t in tiles {
            h.push(Request::new(t, Some(Move::PanRight)));
        }
        let cur = Request::new(tiles[2], Some(Move::PanRight));
        let candidates = g.candidates(cur.tile, 1);
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store: &s,
            roi: &[],
        };
        let ranked = ab.rank(&ctx);
        assert_eq!(ranked.len(), candidates.len());
        assert_eq!(
            ranked[0],
            TileId::new(3, 4, 4),
            "after right,right,right → pan right again"
        );
    }

    #[test]
    fn ranks_all_candidates_no_duplicates() {
        let traces = right_runs();
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        let ab = AbRecommender::train(refs, 3);
        let g = geometry();
        let s = store(g);
        let mut h = SessionHistory::new(3);
        let cur = Request::new(TileId::new(2, 1, 1), Some(Move::ZoomIn(Quadrant::Nw)));
        h.push(cur);
        let candidates = g.candidates(cur.tile, 2);
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store: &s,
            roi: &[],
        };
        let mut ranked = ab.rank(&ctx);
        assert_eq!(ranked.len(), candidates.len());
        ranked.sort();
        ranked.dedup();
        assert_eq!(ranked.len(), candidates.len());
    }

    #[test]
    fn order_is_reported() {
        let traces = right_runs();
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        assert_eq!(AbRecommender::train(refs, 5).order(), 5);
    }

    #[test]
    fn move_distribution_sums_to_one() {
        let traces = right_runs();
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        let ab = AbRecommender::train(refs, 3);
        let d = ab.move_distribution(&[3, 3, 3]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
