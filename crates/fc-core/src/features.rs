//! Table-1 feature extraction for the phase classifier.
//!
//! | feature | information recorded |
//! |---|---|
//! | X position (in tiles) | x of the requested tile |
//! | Y position (in tiles) | y of the requested tile |
//! | Zoom level            | zoom level id |
//! | Pan flag              | 1 if the user panned, else 0 |
//! | Zoom-in flag          | 1 if zoom in, else 0 |
//! | Zoom-out flag         | 1 if zoom out, else 0 |
//!
//! "To construct an input to our SVM classifier, we compute a feature
//! vector using the current request r, and the user's previous request
//! rn ∈ H" (§4.2.2). The previous request is unused by the feature set
//! itself beyond having established `r.mv`, but the extractor accepts it
//! to mirror the paper's interface (and so richer features can be added).

use crate::history::Request;

/// Number of features in the Table-1 vector.
pub const NUM_FEATURES: usize = 6;

/// Human-readable feature names, aligned with the vector layout.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "X position (in tiles)",
    "Y position (in tiles)",
    "Zoom level",
    "Pan flag",
    "Zoom-in flag",
    "Zoom-out flag",
];

/// Extracts the Table-1 feature vector for `(r, prev)`.
pub fn phase_features(r: &Request, _prev: Option<&Request>) -> [f64; NUM_FEATURES] {
    let (pan, zin, zout) = match r.mv {
        Some(m) if m.is_pan() => (1.0, 0.0, 0.0),
        Some(m) if m.is_zoom_in() => (0.0, 1.0, 0.0),
        Some(m) if m.is_zoom_out() => (0.0, 0.0, 1.0),
        _ => (0.0, 0.0, 0.0),
    };
    [
        f64::from(r.tile.x),
        f64::from(r.tile.y),
        f64::from(r.tile.level),
        pan,
        zin,
        zout,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::{Move, Quadrant, TileId};

    #[test]
    fn features_reflect_position_and_move() {
        let r = Request::new(TileId::new(6, 3, 9), Some(Move::PanLeft));
        let f = phase_features(&r, None);
        assert_eq!(f, [9.0, 3.0, 6.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn move_flags_are_one_hot() {
        for (mv, expected) in [
            (Move::PanUp, [1.0, 0.0, 0.0]),
            (Move::ZoomIn(Quadrant::Se), [0.0, 1.0, 0.0]),
            (Move::ZoomOut, [0.0, 0.0, 1.0]),
        ] {
            let r = Request::new(TileId::new(1, 0, 0), Some(mv));
            let f = phase_features(&r, None);
            assert_eq!(&f[3..6], &expected);
        }
    }

    #[test]
    fn initial_request_has_no_flags() {
        let r = Request::initial(TileId::new(0, 0, 0));
        let f = phase_features(&r, None);
        assert_eq!(&f[3..6], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn names_align_with_layout() {
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        assert_eq!(FEATURE_NAMES[2], "Zoom level");
    }
}
