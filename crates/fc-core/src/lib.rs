//! # fc-core — the ForeCache prediction engine and middleware
//!
//! This crate is the paper's primary contribution (§3–§4): a middleware
//! layer in front of the array DBMS that prefetches data tiles ahead of
//! the user with a **two-level prediction engine**.
//!
//! * Top level: an SVM classifier over Table-1 features predicts the
//!   user's current **analysis phase** — Foraging, Navigation, or
//!   Sensemaking ([`phase`], [`features`]).
//! * Bottom level: per-phase **recommendation models** run in parallel —
//!   the Action-Based Markov model ([`ab`]) and the Signature-Based
//!   visual-similarity model ([`sb`], Algorithm 3) — plus the Momentum
//!   and Hotspot baselines from Doshi et al. ([`baselines`]).
//! * The [`engine::PredictionEngine`] combines both levels through a
//!   cache [`alloc::AllocationStrategy`] (§4.4, updated in §5.4.3).
//! * The [`cache::CacheManager`] holds the last *n* requested tiles plus
//!   the per-recommender prefetch allocations; [`middleware::Middleware`]
//!   ties engine + cache + backend store together and accounts latency
//!   on the simulated clock (19.5 ms hit / 984 ms miss by default).
//! * The multi-user serving core extends §6.2 beyond the paper:
//!   [`multiuser`] holds the lock-striped [`multiuser::SharedTileCache`]
//!   (power-of-two shards, per-shard LRU clocks, globally repartitioned
//!   prefetch budgets) next to the retained single-mutex golden
//!   reference, and [`batch`] coalesces concurrent sessions' SB
//!   predictions into one batched sweep per tick, bit-identical to
//!   per-session prediction. A [`multiuser::DatasetRegistry`]
//!   partitions one global tile budget across per-dataset cache
//!   namespaces, and each namespace's eviction-surviving popularity
//!   sketch feeds a [`multiuser::SharedHotspotModel`] — epoch-stamped
//!   communal hotspot snapshots blended into candidate ranking
//!   ([`alloc::boost_toward_hotspots`], opt-in via
//!   [`engine::EngineConfig::hotspot`]).

#![warn(missing_docs)]

pub mod ab;
pub mod alloc;
pub mod baselines;
pub mod batch;
pub mod burst;
pub mod cache;
pub mod engine;
pub mod fault;
pub mod features;
pub mod history;
pub mod latency;
pub mod middleware;
pub mod multiuser;
pub mod paircache;
pub mod phase;
pub mod push;
pub mod recommender;
pub mod roi;
pub mod sb;
pub mod signature;

pub use ab::AbRecommender;
pub use alloc::{boost_toward_hotspots, AllocationStrategy, HotspotBlend};
pub use baselines::{HotspotRecommender, MomentumRecommender};
pub use batch::{BatchConfig, PredictScheduler, SchedulerStats};
pub use burst::{BurstConfig, BurstTracker, TrafficPhase};
pub use cache::{CacheManager, CacheStats};
pub use engine::{EngineConfig, PredictionEngine};
pub use fault::{
    FaultKind, FaultPlan, FaultRates, FaultStats, FaultWindow, FetchError, RetryPolicy,
};
pub use fc_simd::SimdLevel;
pub use features::{phase_features, FEATURE_NAMES, NUM_FEATURES};
pub use history::{Request, SessionHistory};
pub use latency::LatencyProfile;
pub use middleware::{Middleware, MiddlewareStats, Response, SharedSessionHandle};
pub use multiuser::{
    DatasetNamespace, DatasetRegistry, HotspotConfig, HotspotSnapshot, HotspotView, MultiUserCache,
    RegistryConfig, SessionId, SharedCacheStats, SharedHotspotModel, SharedTileCache,
    SingleMutexTileCache,
};
pub use paircache::{PairCache, PairCacheStats};
pub use phase::{Phase, PhaseClassifier};
pub use push::{PushConfig, PushPlanner, PushPolicy, PushStats};
pub use recommender::{PredictionContext, Recommender};
pub use roi::RoiTracker;
pub use sb::{Chi2Kernel, SbConfig, SbRecommender};
pub use signature::{SignatureComputer, SignatureKind, SIGNATURE_KINDS};
