//! The comparison baselines from Doshi et al. \[8\], as described in §5.2.3.
//!
//! * **Momentum** — "assumes that the user's next move will be the same
//!   as her previous move. … the tile matching the user's previous move
//!   is assigned a probability of 0.9, and the eight other candidates are
//!   assigned a probability of 0.0125."
//! * **Hotspot** — "an extension of the Momentum model that adds
//!   awareness of popular tiles. … When a hotspot is nearby, the Hotspot
//!   model assigns a higher ranking to any tiles that bring the user
//!   closer to that hotspot."

use crate::recommender::{PredictionContext, Recommender};
use fc_tiles::{TileId, MOVES};
use std::collections::HashMap;

/// The Momentum baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct MomentumRecommender;

impl MomentumRecommender {
    /// The probability assigned to the repeat-move tile.
    pub const REPEAT_PROB: f64 = 0.9;
    /// The probability assigned to each other candidate.
    pub const OTHER_PROB: f64 = 0.0125;

    /// Scores each candidate under the Momentum distribution.
    pub fn scores(ctx: &PredictionContext<'_>) -> Vec<(TileId, f64)> {
        let repeat_target = ctx
            .request
            .mv
            .and_then(|m| ctx.geometry.apply(ctx.request.tile, m));
        ctx.candidates
            .iter()
            .map(|&c| {
                let p = if Some(c) == repeat_target {
                    Self::REPEAT_PROB
                } else {
                    Self::OTHER_PROB
                };
                (c, p)
            })
            .collect()
    }
}

impl Recommender for MomentumRecommender {
    fn name(&self) -> &str {
        "Momentum"
    }

    fn rank(&self, ctx: &PredictionContext<'_>) -> Vec<TileId> {
        let mut scored = Self::scores(ctx);
        sort_by_score_then_move_order(&mut scored, ctx);
        scored.into_iter().map(|(t, _)| t).collect()
    }
}

/// The Hotspot baseline: Momentum plus popular-tile awareness, trained on
/// trace data ahead of time ("This training process took less than one
/// second to complete").
#[derive(Debug, Clone)]
pub struct HotspotRecommender {
    hotspots: Vec<TileId>,
    /// A hotspot is "nearby" within this projected Manhattan distance.
    radius: u32,
}

impl HotspotRecommender {
    /// Counts tile requests across traces and keeps the `num_hotspots`
    /// most-requested tiles.
    pub fn train(traces: &[Vec<TileId>], num_hotspots: usize, radius: u32) -> Self {
        let mut counts: HashMap<TileId, usize> = HashMap::new();
        for trace in traces {
            for &t in trace {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(TileId, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Self {
            hotspots: ranked
                .into_iter()
                .take(num_hotspots)
                .map(|(t, _)| t)
                .collect(),
            radius,
        }
    }

    /// The trained hotspot tiles, most popular first.
    pub fn hotspots(&self) -> &[TileId] {
        &self.hotspots
    }

    /// The nearest hotspot within the radius of `tile`, if any.
    pub fn nearby_hotspot(&self, tile: TileId) -> Option<TileId> {
        self.hotspots
            .iter()
            .copied()
            .map(|h| (h, tile.manhattan(&h)))
            .filter(|&(_, d)| d <= self.radius)
            .min_by_key(|&(h, d)| (d, h))
            .map(|(h, _)| h)
    }
}

impl Recommender for HotspotRecommender {
    fn name(&self) -> &str {
        "Hotspot"
    }

    fn rank(&self, ctx: &PredictionContext<'_>) -> Vec<TileId> {
        let mut scored = MomentumRecommender::scores(ctx);
        if let Some(hs) = self.nearby_hotspot(ctx.request.tile) {
            let here = ctx.request.tile.manhattan(&hs);
            for (c, p) in scored.iter_mut() {
                let there = c.manhattan(&hs);
                if there < here {
                    // Boost tiles that bring the user closer to the
                    // hotspot above the momentum tile.
                    *p += 1.0;
                } else if there > here {
                    *p *= 0.5;
                }
            }
        }
        sort_by_score_then_move_order(&mut scored, ctx);
        scored.into_iter().map(|(t, _)| t).collect()
    }
}

/// Sorts descending by score; ties broken by the canonical move order
/// (then tile order) so rankings are deterministic.
fn sort_by_score_then_move_order(scored: &mut [(TileId, f64)], ctx: &PredictionContext<'_>) {
    let move_rank = |t: TileId| -> usize {
        MOVES
            .iter()
            .position(|&m| ctx.geometry.apply(ctx.request.tile, m) == Some(t))
            .unwrap_or(MOVES.len())
    };
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| move_rank(a.0).cmp(&move_rank(b.0)))
            .then(a.0.cmp(&b.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Request, SessionHistory};
    use fc_array::{IoMode, LatencyModel, SimClock};
    use fc_tiles::{Geometry, Move, TileStore};

    fn setup() -> (Geometry, TileStore) {
        let g = Geometry::new(4, 512, 512, 64, 64);
        let s = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
        (g, s)
    }

    fn ctx_for<'a>(
        g: Geometry,
        s: &'a TileStore,
        h: &'a SessionHistory,
        cur: Request,
        candidates: &'a [TileId],
    ) -> PredictionContext<'a> {
        PredictionContext {
            request: cur,
            history: h,
            candidates,
            geometry: g,
            store: s,
            roi: &[],
        }
    }

    #[test]
    fn momentum_repeats_previous_move() {
        let (g, s) = setup();
        let mut h = SessionHistory::new(3);
        let cur = Request::new(TileId::new(3, 4, 4), Some(Move::PanDown));
        h.push(cur);
        let candidates = g.candidates(cur.tile, 1);
        let ctx = ctx_for(g, &s, &h, cur, &candidates);
        let ranked = MomentumRecommender.rank(&ctx);
        assert_eq!(ranked[0], TileId::new(3, 5, 4), "pan-down repeats");
        assert_eq!(ranked.len(), candidates.len());
    }

    #[test]
    fn momentum_with_no_previous_move_uses_canonical_order() {
        let (g, s) = setup();
        let mut h = SessionHistory::new(3);
        let cur = Request::initial(TileId::new(3, 4, 4));
        h.push(cur);
        let candidates = g.candidates(cur.tile, 1);
        let ctx = ctx_for(g, &s, &h, cur, &candidates);
        let ranked = MomentumRecommender.rank(&ctx);
        // All equal probabilities → first candidate is the first legal
        // move in canonical order (PanUp).
        assert_eq!(ranked[0], TileId::new(3, 3, 4));
    }

    #[test]
    fn momentum_at_boundary_cannot_repeat() {
        let (g, s) = setup();
        let mut h = SessionHistory::new(3);
        // At the left edge after a PanLeft: the repeat target is invalid.
        let cur = Request::new(TileId::new(3, 4, 0), Some(Move::PanLeft));
        h.push(cur);
        let candidates = g.candidates(cur.tile, 1);
        let ctx = ctx_for(g, &s, &h, cur, &candidates);
        let ranked = MomentumRecommender.rank(&ctx);
        assert_eq!(ranked.len(), candidates.len());
        assert!(!ranked.contains(&TileId::new(3, 4, 0)));
    }

    #[test]
    fn hotspot_training_finds_popular_tiles() {
        let hot = TileId::new(3, 2, 2);
        let traces = vec![
            vec![hot, hot, hot, TileId::new(3, 0, 0)],
            vec![hot, TileId::new(3, 1, 1)],
        ];
        let hs = HotspotRecommender::train(&traces, 2, 3);
        assert_eq!(hs.hotspots()[0], hot);
        assert_eq!(hs.hotspots().len(), 2);
    }

    #[test]
    fn hotspot_pulls_toward_popular_tile() {
        let (g, s) = setup();
        let hot = TileId::new(3, 4, 6);
        let traces = vec![vec![hot; 5]];
        let hs = HotspotRecommender::train(&traces, 1, 4);
        let mut h = SessionHistory::new(3);
        // Previous move was PanDown; Momentum alone would pick (3,5,4).
        let cur = Request::new(TileId::new(3, 4, 4), Some(Move::PanDown));
        h.push(cur);
        let candidates = g.candidates(cur.tile, 1);
        let ctx = ctx_for(g, &s, &h, cur, &candidates);
        let ranked = hs.rank(&ctx);
        assert_eq!(
            ranked[0],
            TileId::new(3, 4, 5),
            "pan-right moves toward the hotspot"
        );
    }

    #[test]
    fn hotspot_defaults_to_momentum_when_far() {
        let (g, s) = setup();
        let hot = TileId::new(3, 0, 7);
        let traces = vec![vec![hot; 5]];
        let hs = HotspotRecommender::train(&traces, 1, 1); // tiny radius
        let mut h = SessionHistory::new(3);
        let cur = Request::new(TileId::new(3, 6, 1), Some(Move::PanDown));
        h.push(cur);
        let candidates = g.candidates(cur.tile, 1);
        let ctx = ctx_for(g, &s, &h, cur, &candidates);
        assert_eq!(hs.nearby_hotspot(cur.tile), None);
        let ranked = hs.rank(&ctx);
        let momentum = MomentumRecommender.rank(&ctx);
        assert_eq!(ranked, momentum);
    }
}
