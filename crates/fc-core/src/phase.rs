//! Analysis phases and the top-level SVM phase classifier (§4.2).
//!
//! "We found that our users alternated between three high-level analysis
//! phases, each representing different user goals: Foraging, Sensemaking,
//! and Navigation."

use crate::features::{phase_features, NUM_FEATURES};
use crate::history::Request;
use fc_ml::{Scaler, SvmClassifier, SvmParams};
use std::fmt;

/// The user's current frame of mind while exploring (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Scanning coarse zoom levels for interesting patterns, forming
    /// hypotheses.
    Foraging,
    /// Zooming between the coarse levels of Foraging and the detailed
    /// levels of Sensemaking.
    Navigation,
    /// Comparing neighbouring tiles at a detailed zoom level to test the
    /// current hypothesis.
    Sensemaking,
}

impl Phase {
    /// All phases in canonical (class-id) order.
    pub const ALL: [Phase; 3] = [Phase::Foraging, Phase::Navigation, Phase::Sensemaking];

    /// Stable class id.
    pub fn index(self) -> usize {
        match self {
            Phase::Foraging => 0,
            Phase::Navigation => 1,
            Phase::Sensemaking => 2,
        }
    }

    /// Inverse of [`Phase::index`].
    ///
    /// # Panics
    /// Panics for ids ≥ 3.
    pub fn from_index(i: usize) -> Phase {
        Self::ALL[i]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Foraging => "Foraging",
            Phase::Navigation => "Navigation",
            Phase::Sensemaking => "Sensemaking",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The top-level classifier: a multi-class SVM with an RBF kernel over the
/// Table-1 feature vector, with min-max scaling fitted on the training
/// fold (the paper used LibSVM; §4.2.2).
#[derive(Debug, Clone)]
pub struct PhaseClassifier {
    scaler: Scaler,
    svm: SvmClassifier,
}

impl PhaseClassifier {
    /// Trains from labeled requests: each sample is a `(current, previous)`
    /// request pair plus its hand-labeled phase.
    ///
    /// # Panics
    /// Panics on empty or single-class training data (propagated from the
    /// SVM trainer).
    pub fn train(samples: &[(Request, Option<Request>)], labels: &[Phase]) -> Self {
        let feats: Vec<Vec<f64>> = samples
            .iter()
            .map(|(r, prev)| phase_features(r, prev.as_ref()).to_vec())
            .collect();
        let label_ids: Vec<usize> = labels.iter().map(|p| p.index()).collect();
        Self::train_on_features(&feats, &label_ids)
    }

    /// Trains directly from feature vectors (used by the Table-1
    /// single-feature ablation).
    ///
    /// # Panics
    /// As [`PhaseClassifier::train`].
    pub fn train_on_features(feats: &[Vec<f64>], label_ids: &[usize]) -> Self {
        let scaler = Scaler::fit(feats);
        let scaled = scaler.transform_all(feats);
        let dim = feats.first().map_or(NUM_FEATURES, |f| f.len());
        let svm = SvmClassifier::train(&scaled, label_ids, SvmParams::rbf_default(dim));
        Self { scaler, svm }
    }

    /// Predicts the phase for a `(current, previous)` request pair.
    pub fn predict(&self, r: &Request, prev: Option<&Request>) -> Phase {
        let f = phase_features(r, prev);
        Phase::from_index(self.predict_features(&f))
    }

    /// Predicts a class id from a raw feature vector.
    pub fn predict_features(&self, features: &[f64]) -> usize {
        self.svm.predict(&self.scaler.transform(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::{Move, Quadrant, TileId};

    #[test]
    fn phase_index_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_index(p.index()), p);
        }
        assert_eq!(Phase::Foraging.to_string(), "Foraging");
    }

    /// A synthetic but structured dataset: Foraging = coarse-level pans,
    /// Navigation = zooms, Sensemaking = deep-level pans. The classifier
    /// must exceed 80% training-set accuracy (the paper reports 82% on
    /// held-out users).
    #[test]
    fn classifier_learns_structured_phases() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40u32 {
            // Foraging: pan at level 1.
            let cur = Request::new(TileId::new(1, 0, i % 4), Some(Move::PanRight));
            let prev = Request::new(TileId::new(1, 0, (i + 3) % 4), Some(Move::PanRight));
            samples.push((cur, Some(prev)));
            labels.push(Phase::Foraging);
            // Navigation: zoom at mid levels.
            let cur = Request::new(
                TileId::new(3 + (i % 2) as u8, i % 8, i % 8),
                Some(if i % 2 == 0 {
                    Move::ZoomIn(Quadrant::Nw)
                } else {
                    Move::ZoomOut
                }),
            );
            let prev = Request::new(
                TileId::new(3, i % 4, i % 4),
                Some(Move::ZoomIn(Quadrant::Se)),
            );
            samples.push((cur, Some(prev)));
            labels.push(Phase::Navigation);
            // Sensemaking: pan at deep level 6.
            let cur = Request::new(TileId::new(6, 20 + i % 3, 30 + i % 3), Some(Move::PanDown));
            let prev = Request::new(TileId::new(6, 20 + i % 3, 29 + i % 3), Some(Move::PanLeft));
            samples.push((cur, Some(prev)));
            labels.push(Phase::Sensemaking);
        }
        let clf = PhaseClassifier::train(&samples, &labels);
        let correct = samples
            .iter()
            .zip(&labels)
            .filter(|((r, prev), &l)| clf.predict(r, prev.as_ref()) == l)
            .count();
        let acc = correct as f64 / samples.len() as f64;
        assert!(acc > 0.8, "training accuracy {acc}");
    }

    #[test]
    fn predict_handles_missing_previous() {
        let samples = vec![
            (Request::initial(TileId::new(1, 0, 0)), None),
            (
                Request::new(TileId::new(6, 5, 5), Some(Move::PanRight)),
                None,
            ),
        ];
        let labels = vec![Phase::Foraging, Phase::Sensemaking];
        let clf = PhaseClassifier::train(&samples, &labels);
        // Must not panic; any of the trained phases is acceptable.
        let p = clf.predict(&Request::initial(TileId::new(1, 0, 0)), None);
        assert!(Phase::ALL.contains(&p));
    }
}
