//! Tile signatures (paper Table 2): compact numerical representations of
//! a data tile used to compare visual similarity.
//!
//! | signature | measures | captures |
//! |---|---|---|
//! | NormalDist | mean, std of cell values | average position/color/size |
//! | Hist1D | histogram of cell values | value distribution |
//! | Sift | BoVW histogram of DoG keypoint descriptors | distinct landmarks |
//! | DenseSift | BoVW histogram of dense-grid descriptors | landmarks **and** their layout |
//!
//! All signatures are computed over a single array attribute and stored
//! as `f64` vectors in the tile store's shared metadata map. The SIFT
//! variants need a visual-word vocabulary trained over the pyramid's tile
//! corpus first — [`attach_signatures`] performs the whole offline
//! pipeline (§2.3, "Computing Metadata").

use fc_tiles::{MetadataComputer, Pyramid, Tile};
use fc_vision::{
    dense_descriptors, dense_descriptors_on, describe_keypoints, describe_keypoints_on,
    detect_keypoints, DetectorParams, GradientField, GrayImage, Vocabulary,
};
use rayon::prelude::*;
use std::sync::Arc;

/// The four signature families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureKind {
    /// Mean and standard deviation of the attribute values.
    NormalDist,
    /// Fixed-bin histogram of the attribute values.
    Hist1D,
    /// Bag-of-visual-words over sparse SIFT keypoint descriptors.
    Sift,
    /// Bag-of-visual-words over dense-grid descriptors.
    DenseSift,
}

/// All four kinds, in Table-2 order.
pub const SIGNATURE_KINDS: [SignatureKind; 4] = [
    SignatureKind::NormalDist,
    SignatureKind::Hist1D,
    SignatureKind::Sift,
    SignatureKind::DenseSift,
];

impl SignatureKind {
    /// The metadata key under which this signature is stored.
    pub fn meta_name(self) -> &'static str {
        match self {
            SignatureKind::NormalDist => "sig_normal",
            SignatureKind::Hist1D => "sig_hist",
            SignatureKind::Sift => "sig_sift",
            SignatureKind::DenseSift => "sig_densesift",
        }
    }

    /// Display name matching the paper.
    pub fn display_name(self) -> &'static str {
        match self {
            SignatureKind::NormalDist => "Normal Distribution",
            SignatureKind::Hist1D => "1-D histogram",
            SignatureKind::Sift => "SIFT",
            SignatureKind::DenseSift => "DenseSIFT",
        }
    }
}

/// Configuration for the signature pipeline.
#[derive(Debug, Clone)]
pub struct SignatureConfig {
    /// The attribute the signatures are computed over (§4.3.3: "All of
    /// our signatures are calculated over a single SciDB array
    /// attribute").
    pub attr: String,
    /// Renderer value domain `(lo, hi)` for the grayscale heatmap.
    pub domain: (f64, f64),
    /// Histogram bin count for [`SignatureKind::Hist1D`].
    pub hist_bins: usize,
    /// Visual-word vocabulary size for the SIFT signatures.
    pub vocab_size: usize,
    /// Cap on keypoints described per tile (strongest first).
    pub max_keypoints: usize,
    /// Dense grid step in pixels.
    pub dense_step: usize,
    /// Dense patch radius in pixels.
    pub dense_radius: f64,
    /// DoG detector parameters.
    pub detector: DetectorParams,
    /// RNG seed for vocabulary training.
    pub seed: u64,
}

impl SignatureConfig {
    /// Defaults tuned for NDSI-style heatmaps in `[-1, 1]`.
    pub fn ndsi(attr: impl Into<String>) -> Self {
        Self {
            attr: attr.into(),
            domain: (-1.0, 1.0),
            hist_bins: 16,
            vocab_size: 16,
            max_keypoints: 60,
            dense_step: 8,
            dense_radius: 6.0,
            detector: DetectorParams {
                // Snow-cover heatmaps are smoother than photographs;
                // a lower contrast threshold keeps ridge-edge keypoints.
                contrast_threshold: 0.004,
                ..DetectorParams::default()
            },
            seed: 0xF0CE,
        }
    }
}

/// Sizing hint for the χ² pair cache ([`crate::paircache::PairCache`]):
/// slots for `nsig` signatures over an `ntiles`-tile index.
///
/// An interactive request touches `|C| × |R|` pairs (≤ 64 × 16 = 1024
/// at the acceptance shape) and a pan/zoom neighbourhood revisits a few
/// multiples of that, so the working set scales with how much of the
/// pyramid a session explores — not with the full pair count `ntiles²`.
/// One slot covers **all** of a pair's signatures, so `nsig` barely
/// matters; `32 × nsig × ntiles` keeps the load factor low enough
/// (≲ 0.1 for serpentine exploration of a whole level) that the
/// additive slot mapping's runs-of-`|R|` rarely overlap another
/// candidate's probe window — overlaps turn into chronic
/// evict-and-recompute churn. A sparse table is cheap: warm probes
/// touch only the live runs, so the cache *footprint* scales with the
/// working set, not the table. The result is clamped to `[2¹², 2¹⁸]`
/// slots (256 KiB – 16 MiB of address space at 64-byte slots; engines
/// allocate lazily and scheduler-batched sessions share one table).
pub fn pair_cache_capacity_hint(nsig: usize, ntiles: usize) -> usize {
    nsig.max(1)
        .saturating_mul(ntiles.max(1))
        .saturating_mul(32)
        .next_power_of_two()
        .clamp(1 << 12, 1 << 18)
}

/// Renders a tile to the grayscale image the vision signatures consume.
pub fn tile_image(tile: &Tile, attr: &str, domain: (f64, f64)) -> GrayImage {
    let (h, w) = tile.shape();
    let raster = tile
        .render(attr, domain.0, domain.1)
        .unwrap_or_else(|_| vec![0.0; w * h]);
    GrayImage::new(w, h, raster)
}

/// Computes the [`SignatureKind::NormalDist`] vector: `[mean, std]`.
pub fn normal_signature(tile: &Tile, attr: &str) -> Vec<f64> {
    let vals = tile.present_values(attr).unwrap_or_default();
    normal_signature_from(&vals)
}

/// [`normal_signature`] over an already-collected value slice.
fn normal_signature_from(vals: &[f64]) -> Vec<f64> {
    vec![fc_ml::mean(vals), fc_ml::std_dev(vals)]
}

/// Computes the [`SignatureKind::Hist1D`] vector: a normalized
/// `bins`-bucket histogram of attribute values over `domain`.
pub fn hist_signature(tile: &Tile, attr: &str, domain: (f64, f64), bins: usize) -> Vec<f64> {
    let vals = tile.present_values(attr).unwrap_or_default();
    hist_signature_from(&vals, domain, bins)
}

/// [`hist_signature`] over an already-collected value slice.
fn hist_signature_from(vals: &[f64], domain: (f64, f64), bins: usize) -> Vec<f64> {
    let mut h = vec![0.0f64; bins];
    let span = (domain.1 - domain.0).max(f64::EPSILON);
    for v in vals {
        let t = ((v - domain.0) / span).clamp(0.0, 1.0);
        let b = ((t * bins as f64) as usize).min(bins - 1);
        h[b] += 1.0;
    }
    let total: f64 = h.iter().sum();
    if total > 0.0 {
        for v in &mut h {
            *v /= total;
        }
    }
    h
}

/// Extracts SIFT keypoint descriptors from a tile image (strongest
/// `max_keypoints`).
pub fn sift_descriptors(img: &GrayImage, cfg: &SignatureConfig) -> Vec<Vec<f64>> {
    let mut kps = detect_keypoints(img, &cfg.detector);
    kps.truncate(cfg.max_keypoints);
    describe_keypoints(img, &kps)
}

/// [`sift_descriptors`] over a prebuilt [`GradientField`] for `img`, so
/// the SIFT and denseSIFT harvests of one tile share a single gradient
/// pass (detection still runs on the image — the DoG pyramid needs the
/// raw pixels, not gradients).
fn sift_descriptors_on(
    img: &GrayImage,
    field: &GradientField,
    cfg: &SignatureConfig,
) -> Vec<Vec<f64>> {
    let mut kps = detect_keypoints(img, &cfg.detector);
    kps.truncate(cfg.max_keypoints);
    describe_keypoints_on(field, &kps)
}

/// A [`MetadataComputer`] producing one signature kind per tile.
pub struct SignatureComputer {
    kind: SignatureKind,
    cfg: SignatureConfig,
    /// Trained codebook; required for the SIFT kinds.
    vocab: Option<Arc<Vocabulary>>,
}

impl SignatureComputer {
    /// A computer for a value-statistics signature (NormalDist / Hist1D).
    ///
    /// # Panics
    /// Panics when `kind` is a SIFT kind (those need a vocabulary).
    pub fn stats(kind: SignatureKind, cfg: SignatureConfig) -> Self {
        assert!(
            matches!(kind, SignatureKind::NormalDist | SignatureKind::Hist1D),
            "SIFT kinds need a vocabulary; use SignatureComputer::vision"
        );
        Self {
            kind,
            cfg,
            vocab: None,
        }
    }

    /// A computer for a vision signature with a trained vocabulary.
    ///
    /// # Panics
    /// Panics when `kind` is a stats kind.
    pub fn vision(kind: SignatureKind, cfg: SignatureConfig, vocab: Arc<Vocabulary>) -> Self {
        assert!(
            matches!(kind, SignatureKind::Sift | SignatureKind::DenseSift),
            "stats kinds take no vocabulary; use SignatureComputer::stats"
        );
        Self {
            kind,
            cfg,
            vocab: Some(vocab),
        }
    }
}

impl MetadataComputer for SignatureComputer {
    fn name(&self) -> &str {
        self.kind.meta_name()
    }

    fn compute(&self, tile: &Tile) -> Vec<f64> {
        match self.kind {
            SignatureKind::NormalDist => normal_signature(tile, &self.cfg.attr),
            SignatureKind::Hist1D => {
                hist_signature(tile, &self.cfg.attr, self.cfg.domain, self.cfg.hist_bins)
            }
            SignatureKind::Sift => {
                let img = tile_image(tile, &self.cfg.attr, self.cfg.domain);
                let descs = sift_descriptors(&img, &self.cfg);
                self.vocab
                    .as_ref()
                    .expect("vision computer has vocabulary")
                    .histogram(&descs)
            }
            SignatureKind::DenseSift => {
                let img = tile_image(tile, &self.cfg.attr, self.cfg.domain);
                let descs = dense_descriptors(&img, self.cfg.dense_step, self.cfg.dense_radius);
                self.vocab
                    .as_ref()
                    .expect("vision computer has vocabulary")
                    .histogram(&descs)
            }
        }
    }
}

/// Splits `items` into one contiguous span per worker thread, so a
/// parallel map over the spans lets each worker keep mutable scratch
/// across its whole span while preserving input order.
fn worker_spans<T>(items: &[T]) -> Vec<&[T]> {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    items.chunks(items.len().div_ceil(workers).max(1)).collect()
}

/// Per-tile output of the parallel harvest pass: the two cheap stats
/// signatures plus the tile's own SIFT / denseSIFT descriptors (kept so
/// the histogram pass never re-runs the vision pipeline).
struct TileHarvest {
    id: fc_tiles::TileId,
    normal: Vec<f64>,
    hist: Vec<f64>,
    sift: Vec<Vec<f64>>,
    dense: Vec<Vec<f64>>,
}

/// Runs the full offline metadata pipeline over a built pyramid:
/// 1. harvests per-tile descriptors and stats signatures,
/// 2. trains SIFT and denseSIFT vocabularies over the descriptor corpus,
/// 3. quantizes each tile's harvested descriptors into BoVW histograms
///    and stores all four signatures in the shared metadata map.
///
/// Returns the trained vocabularies `(sift, dense_sift)` so callers can
/// attach signatures to future tiles.
///
/// The harvest fans tiles out across worker threads — one contiguous
/// tile span per worker, per-worker value scratch reused across its
/// span — and each tile's descriptors are computed **once** and reused
/// for both vocabulary training and its own histograms (the seed ran
/// the whole vision pipeline twice per tile). Per-tile math is
/// independent of the split and spans are concatenated in tile order
/// before training or `put_meta`, so the output is identical to a
/// sequential build regardless of worker count.
pub fn attach_signatures(
    pyramid: &Pyramid,
    cfg: &SignatureConfig,
) -> (Arc<Vocabulary>, Arc<Vocabulary>) {
    let store = pyramid.store();
    let ids: Vec<_> = pyramid.geometry().all_tiles().collect();

    let harvested: Vec<Vec<TileHarvest>> = worker_spans(&ids)
        .par_iter()
        .with_min_len(1)
        .map(|span| {
            let mut vals: Vec<f64> = Vec::new();
            let mut out = Vec::with_capacity(span.len());
            for &id in *span {
                if let Some(tile) = store.fetch_offline(id) {
                    if tile.present_values_into(&cfg.attr, &mut vals).is_err() {
                        vals.clear();
                    }
                    let img = tile_image(&tile, &cfg.attr, cfg.domain);
                    // One gradient field per tile, shared by both vision
                    // signatures (the seed ran the gradient pass — and the
                    // per-pixel sqrt/atan2 behind it — twice per tile).
                    let field = GradientField::new(&img);
                    out.push(TileHarvest {
                        id,
                        normal: normal_signature_from(&vals),
                        hist: hist_signature_from(&vals, cfg.domain, cfg.hist_bins),
                        sift: sift_descriptors_on(&img, &field, cfg),
                        dense: dense_descriptors_on(&field, cfg.dense_step, cfg.dense_radius),
                    });
                }
            }
            out
        })
        .collect();
    let mut harvested: Vec<TileHarvest> = harvested.into_iter().flatten().collect();

    // Concatenate the corpora (tile order, as sequential), remembering
    // each tile's descriptor range so the histogram step can quantize
    // straight out of the corpus without copies.
    let mut sift_corpus: Vec<Vec<f64>> = Vec::new();
    let mut dense_corpus: Vec<Vec<f64>> = Vec::new();
    let mut ranges = Vec::with_capacity(harvested.len());
    for t in &mut harvested {
        let (s0, d0) = (sift_corpus.len(), dense_corpus.len());
        sift_corpus.append(&mut t.sift);
        dense_corpus.append(&mut t.dense);
        ranges.push((s0..sift_corpus.len(), d0..dense_corpus.len()));
    }
    // Degenerate datasets (entirely flat) still need a non-empty corpus.
    if sift_corpus.is_empty() {
        sift_corpus.push(vec![0.0; fc_vision::DESCRIPTOR_DIM]);
    }
    if dense_corpus.is_empty() {
        dense_corpus.push(vec![0.0; fc_vision::DESCRIPTOR_DIM]);
    }
    let sift_vocab = Arc::new(Vocabulary::train(&sift_corpus, cfg.vocab_size, cfg.seed));
    let dense_vocab = Arc::new(Vocabulary::train(
        &dense_corpus,
        cfg.vocab_size,
        cfg.seed ^ 0xD5,
    ));

    // Quantize the harvested descriptors and store in tile order
    // (single-threaded: put_meta takes the metadata write lock and bumps
    // the epoch; batching writes here keeps that serialization out of
    // the parallel region).
    for (t, (srange, drange)) in harvested.into_iter().zip(ranges) {
        store.put_meta(t.id, SignatureKind::NormalDist.meta_name(), t.normal);
        store.put_meta(t.id, SignatureKind::Hist1D.meta_name(), t.hist);
        store.put_meta(
            t.id,
            SignatureKind::Sift.meta_name(),
            sift_vocab.histogram(&sift_corpus[srange]),
        );
        store.put_meta(
            t.id,
            SignatureKind::DenseSift.meta_name(),
            dense_vocab.histogram(&dense_corpus[drange]),
        );
    }
    // Freeze the signature index now that the metadata map is complete,
    // so the first user request doesn't pay the build.
    store.signature_index();
    (sift_vocab, dense_vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};
    use fc_tiles::{PyramidBuilder, PyramidConfig, TileId};

    fn tile_with(values: Vec<f64>, side: usize) -> Tile {
        let schema = Schema::grid2d("T", side, side, &["v"]).unwrap();
        Tile::new(
            TileId::new(1, 0, 0),
            DenseArray::from_vec(schema, values).unwrap(),
        )
    }

    #[test]
    fn normal_signature_mean_std() {
        let t = tile_with(vec![1.0, 1.0, 3.0, 3.0], 2);
        let s = normal_signature(&t, "v");
        assert_eq!(s.len(), 2);
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hist_signature_buckets_and_normalizes() {
        let t = tile_with(vec![-1.0, -0.9, 0.95, 1.0], 2);
        let h = hist_signature(&t, "v", (-1.0, 1.0), 4);
        assert_eq!(h.len(), 4);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[0] - 0.5).abs() < 1e-12);
        assert!((h[3] - 0.5).abs() < 1e-12);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn hist_of_empty_tile_is_zero() {
        let schema = Schema::grid2d("T", 2, 2, &["v"]).unwrap();
        let t = Tile::new(TileId::ROOT, DenseArray::empty(schema));
        let h = hist_signature(&t, "v", (-1.0, 1.0), 4);
        assert_eq!(h, vec![0.0; 4]);
        let n = normal_signature(&t, "v");
        assert_eq!(n, vec![0.0, 0.0]);
    }

    /// Terrain with a bright blob in one corner; pyramid 2 levels.
    fn blobby_base(side: usize) -> DenseArray {
        let schema = Schema::grid2d("B", side, side, &["v"]).unwrap();
        let mut data = vec![0.0f64; side * side];
        for y in 0..side {
            for x in 0..side {
                let d2 =
                    (x as f64 - side as f64 / 4.0).powi(2) + (y as f64 - side as f64 / 4.0).powi(2);
                data[y * side + x] = (-d2 / 16.0).exp() * 2.0 - 1.0;
            }
        }
        DenseArray::from_vec(schema, data).unwrap()
    }

    #[test]
    fn attach_signatures_populates_all_tiles() {
        let base = blobby_base(64);
        let cfg = PyramidConfig::simple(2, 32, &["v"]);
        let pyramid = PyramidBuilder::new().build(&base, &cfg).unwrap();
        let sig_cfg = SignatureConfig::ndsi("v");
        let (sv, dv) = attach_signatures(&pyramid, &sig_cfg);
        assert!(sv.size() >= 1);
        assert!(dv.size() >= 1);
        for id in pyramid.geometry().all_tiles() {
            let meta = pyramid.store().meta(id).unwrap();
            for kind in SIGNATURE_KINDS {
                let v = meta.get(kind.meta_name()).unwrap();
                assert!(!v.is_empty(), "{} on {id}", kind.meta_name());
                assert!(v.iter().all(|x| x.is_finite()));
            }
        }
        // I/O stats untouched: signature work is offline.
        assert_eq!(pyramid.store().io_stats().reads, 0);
    }

    #[test]
    fn meta_names_are_distinct() {
        let names: Vec<&str> = SIGNATURE_KINDS.iter().map(|k| k.meta_name()).collect();
        let mut d = names.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), names.len());
        assert_eq!(SignatureKind::Sift.display_name(), "SIFT");
    }

    #[test]
    #[should_panic(expected = "need a vocabulary")]
    fn stats_constructor_rejects_sift() {
        SignatureComputer::stats(SignatureKind::Sift, SignatureConfig::ndsi("v"));
    }
}
