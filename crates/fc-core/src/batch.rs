//! Cross-session predict batching (the multi-user serving core).
//!
//! One analyst's candidate set at prediction distance 1 is at most 24
//! tiles — far below the ≥ 512-candidate threshold where the SB
//! recommender's rayon fan-out pays for itself (`sb.rs`,
//! `SB_PAR_MIN_CANDIDATES`). A busy server, however, runs many
//! sessions whose predicts arrive *together*. The
//! [`PredictScheduler`] exploits that: concurrent sessions submit
//! their candidate/ROI sets, a short rendezvous coalesces them into
//! **one** [`SbRecommender::distances_batched_into`] call per tick,
//! and every session gets back exactly the ranking it would have
//! computed alone (per-job normalization keeps the batch
//! bit-identical to per-session predicts — a golden test enforces it).
//!
//! # Rendezvous protocol (group commit)
//!
//! The first session to submit becomes the **tick leader**. With the
//! default zero window it computes the pending batch *immediately* —
//! no timed wait — while jobs submitted during its compute accumulate
//! for the next tick, whose leader is the first of them. Batch size
//! therefore adapts to load (one job when idle, most of the registered
//! sessions when saturated) without adding latency at low
//! concurrency: this is group commit, not a barrier. Setting
//! [`BatchConfig::window`] non-zero makes the leader additionally wait
//! up to that long for every registered session to join — a fan-in
//! hint for multi-core hosts chasing maximal batch width. Followers
//! just enqueue and sleep on the condvar until the leader deposits
//! their results — bounded by [`BatchConfig::follower_timeout`], after
//! which a follower assumes its leader died uncleanly and rescues
//! itself with a bit-identical solo recompute (counted in
//! [`SchedulerStats::rescues`]).
//!
//! # Allocation discipline
//!
//! The scheduler owns one [`PredictScratch`] plus pooled job and
//! output buffers, all recycled through the state mutex: at a steady
//! session count the submit → batch → result cycle allocates only the
//! final ranked `Vec<TileId>` handed to each caller (the same
//! allocation the unbatched path makes), keeping `predict`
//! allocation-free under fan-in.

use crate::paircache::{PairCache, PairCacheStats};
use crate::sb::{sort_scored, PredictScratch, SbBatchJob, SbRecommender};
use crate::signature::pair_cache_capacity_hint;
use fc_tiles::{Pyramid, TileId};
use parking_lot::atomic::{AtomicU64, AtomicUsize};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Scheduler tuning parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchConfig {
    /// Extra fan-in time a tick leader waits for the remaining
    /// registered sessions before computing. Zero (the default) is
    /// pure group commit: the leader computes whatever is pending and
    /// later arrivals form the next tick — the right setting when
    /// cores are scarce. A non-zero window trades per-predict latency
    /// for wider batches (more rayon headroom) on multi-core hosts.
    pub window: Duration,
    /// Upper bound on jobs folded into one tick (0 = no bound beyond
    /// the registered-session count).
    pub max_batch: usize,
    /// How long a follower sleeps on the leader's deposit before
    /// rescuing itself with a bit-identical solo computation (zero =
    /// [`DEFAULT_FOLLOWER_TIMEOUT`]). The leader's `catch_unwind`
    /// already unwedges followers on a clean panic; this bound covers
    /// the unclean cases — a leader thread killed by stack overflow or
    /// an abort-in-destructor — so a follower can never block forever.
    pub follower_timeout: Duration,
}

/// Follower rescue bound used when [`BatchConfig::follower_timeout`]
/// is zero. Generous on purpose: a rescue duplicates work, so it must
/// only fire when the leader is genuinely gone, not merely slow.
pub const DEFAULT_FOLLOWER_TIMEOUT: Duration = Duration::from_secs(5);

/// Counters describing scheduler behaviour (monotonic, lock-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Batch ticks executed.
    pub batches: u64,
    /// Jobs served across all ticks.
    pub jobs: u64,
    /// Largest single tick, in jobs.
    pub largest_batch: usize,
    /// Candidates scored across all ticks (the quantity the rayon
    /// threshold sees).
    pub batched_candidates: u64,
    /// Followers that timed out waiting for a dead leader and
    /// recomputed solo. Zero in healthy operation.
    pub rescues: u64,
}

/// One queued predict job: the submitting session's candidate set and
/// resolved reference tiles, plus the ticket its result is filed under.
#[derive(Debug, Default)]
struct PendingJob {
    ticket: u64,
    candidates: Vec<TileId>,
    roi: Vec<TileId>,
}

/// Mutex-guarded scheduler state (see module docs for the protocol).
#[derive(Debug, Default)]
struct SchedState {
    next_ticket: u64,
    /// Jobs awaiting the current tick.
    pending: Vec<PendingJob>,
    /// Results for followers, keyed by ticket.
    results: HashMap<u64, Vec<TileId>>,
    /// Whether a leader is collecting the current tick.
    leader_active: bool,
    /// Whether that leader is inside its fan-in wait (submitters only
    /// notify the condvar then, sparing the thundering herd when the
    /// window is zero).
    leader_waiting: bool,
    /// Batch scratch, recycled across ticks.
    scratch: PredictScratch,
    /// The χ² pair cache **shared by every coalesced session**: one
    /// session's pans warm the pairs another session probes (the
    /// prediction-arithmetic analogue of §6.2's shared tile cache).
    /// Sized lazily from the first tick's index; epoch changes
    /// invalidate it in O(1) via its generation stamp.
    cache: PairCache,
    /// Snapshot of `cache`'s counters at the last leader deposit.
    /// While a leader computes it holds the cache *outside* the lock
    /// (`cache` here is a zero-stat placeholder), so readers combine
    /// this snapshot with the live counters — see
    /// [`PredictScheduler::pair_cache_stats`].
    pair_stats: PairCacheStats,
    /// Per-job distance outputs, recycled across ticks.
    outs: Vec<Vec<(TileId, f64)>>,
    /// Recycled job buffers (candidates/roi capacity survives).
    job_pool: Vec<PendingJob>,
}

/// Coalesces concurrent sessions' SB predictions into one batched
/// distance computation per tick. Construct one per served pyramid and
/// share it (`Arc`) across session threads; results are bit-identical
/// to unbatched per-session prediction.
///
/// The scheduler's [`SbRecommender`] must be configured identically to
/// the sessions' own (same signature weights and flags) — the engine
/// factory that builds session engines should also supply this model,
/// e.g. via [`crate::engine::PredictionEngine::sb_model`].
pub struct PredictScheduler {
    sb: SbRecommender,
    pyramid: Arc<Pyramid>,
    cfg: BatchConfig,
    /// Sessions currently registered (the leader's fan-in target).
    registered: AtomicUsize,
    state: Mutex<SchedState>,
    /// Shim condvar (guard-based `wait`/`wait_for` API): in debug
    /// builds its waits are model-checker scheduling points, which is
    /// what lets `fc-check` explore the leader/follower rendezvous.
    cv: Condvar,
    batches: AtomicU64,
    jobs_total: AtomicU64,
    largest: AtomicUsize,
    cands_total: AtomicU64,
    rescues: AtomicU64,
}

impl std::fmt::Debug for PredictScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictScheduler")
            .field("registered", &self.registered.load(Ordering::Relaxed))
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PredictScheduler {
    /// Creates a scheduler for sessions exploring `pyramid`, using `sb`
    /// (a clone of the sessions' SB model) for the batched scoring.
    pub fn new(sb: SbRecommender, pyramid: Arc<Pyramid>, cfg: BatchConfig) -> Self {
        Self {
            sb,
            pyramid,
            cfg,
            registered: AtomicUsize::new(0),
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            batches: AtomicU64::new(0),
            jobs_total: AtomicU64::new(0),
            largest: AtomicUsize::new(0),
            cands_total: AtomicU64::new(0),
            rescues: AtomicU64::new(0),
        }
    }

    /// Registers a session: the fan-in target every tick leader waits
    /// for grows by one. Pair with [`Self::unregister`].
    pub fn register(&self) {
        self.registered.fetch_add(1, Ordering::Relaxed);
    }

    /// Unregisters a session (a leader mid-wait re-reads the target,
    /// so departures never wedge a tick past its window).
    pub fn unregister(&self) {
        self.registered.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of registered sessions.
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::Relaxed)
    }

    /// The SIMD dispatch level the scheduler's shared SB model runs at.
    pub fn simd_level(&self) -> fc_simd::SimdLevel {
        self.sb.simd_level()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs_total.load(Ordering::Relaxed),
            largest_batch: self.largest.load(Ordering::Relaxed),
            batched_candidates: self.cands_total.load(Ordering::Relaxed),
            rescues: self.rescues.load(Ordering::Relaxed),
        }
    }

    /// Ranks `candidates` against `refs` (the session's ROI, or its
    /// current tile when no ROI is committed), joining — or leading —
    /// the current batch tick. Blocks until the tick containing this
    /// job completes; the returned ranking is bit-identical to
    /// [`SbRecommender::rank_indexed`] on the same inputs.
    pub fn rank(&self, candidates: &[TileId], refs: &[TileId]) -> Vec<TileId> {
        let (ticket, leading, wake_leader) = {
            let mut g = self.state.lock();
            let ticket = g.next_ticket;
            g.next_ticket += 1;
            let mut job = g.job_pool.pop().unwrap_or_default();
            job.ticket = ticket;
            job.candidates.clear();
            job.candidates.extend_from_slice(candidates);
            job.roi.clear();
            job.roi.extend_from_slice(refs);
            g.pending.push(job);
            let leading = !g.leader_active;
            if leading {
                g.leader_active = true;
            }
            (ticket, leading, g.leader_waiting)
        };
        if wake_leader {
            // A leader is in its fan-in wait: let it see the new job.
            self.cv.notify_all();
        }
        if leading {
            self.lead(ticket)
        } else {
            self.follow(ticket, candidates, refs)
        }
    }

    /// Leader path: (optionally) wait for fan-in, compute the batch,
    /// deposit the followers' results, return our own.
    fn lead(&self, ticket: u64) -> Vec<TileId> {
        let mut g = self.state.lock();
        if !self.cfg.window.is_zero() {
            let deadline = parking_lot::time::now() + self.cfg.window;
            g.leader_waiting = true;
            loop {
                let mut target = self.registered.load(Ordering::Relaxed).max(1);
                if self.cfg.max_batch > 0 {
                    target = target.min(self.cfg.max_batch);
                }
                if g.pending.len() >= target {
                    break;
                }
                let now = parking_lot::time::now();
                if now >= deadline {
                    break;
                }
                self.cv.wait_for(&mut g, deadline - now);
            }
            g.leader_waiting = false;
        }
        let jobs = std::mem::take(&mut g.pending);
        let mut scratch = std::mem::take(&mut g.scratch);
        let mut cache = std::mem::take(&mut g.cache);
        let mut outs = std::mem::take(&mut g.outs);
        // The next submitter may start collecting the following tick
        // while we compute this one outside the lock.
        g.leader_active = false;
        drop(g);

        let ncands: usize = jobs.iter().map(|j| j.candidates.len()).sum();
        // The compute runs under `catch_unwind`: a panicking leader
        // must still deposit *something* for its followers (empty
        // rankings) before re-raising, or every coalesced session
        // would sleep on the condvar forever.
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let store = self.pyramid.store();
            let mut ranked: Vec<(u64, Vec<TileId>)> = Vec::with_capacity(jobs.len());
            match store.signature_index() {
                Some(index) => {
                    // Lazy sizing: the shared cache follows the served
                    // index's shape (a later epoch bump keeps the
                    // table and invalidates by generation).
                    let want = pair_cache_capacity_hint(index.keys().len(), index.ntiles());
                    if cache.capacity() != want {
                        cache = PairCache::new(want);
                    }
                    let jobrefs: Vec<SbBatchJob<'_>> = jobs
                        .iter()
                        .map(|j| SbBatchJob {
                            candidates: &j.candidates,
                            roi: &j.roi,
                        })
                        .collect();
                    self.sb.distances_batched_cached_into(
                        &index,
                        &jobrefs,
                        &mut cache,
                        &mut scratch,
                        &mut outs,
                    );
                    for (j, job) in jobs.iter().enumerate() {
                        sort_scored(&mut outs[j]);
                        ranked.push((job.ticket, outs[j].iter().map(|&(t, _)| t).collect()));
                    }
                }
                // Metadata-free store: fall back to the locked
                // reference path per job (identical to the sessions'
                // own fallback).
                None => {
                    for job in &jobs {
                        let mut scored = self.sb.distances(store, &job.candidates, &job.roi);
                        sort_scored(&mut scored);
                        ranked.push((job.ticket, scored.into_iter().map(|(t, _)| t).collect()));
                    }
                }
            }
            ranked
        }));
        let ranked = match computed {
            Ok(r) => r,
            Err(payload) => {
                // Unwedge the followers with empty rankings (the
                // possibly-poisoned scratch/outs are dropped, not
                // returned to the pool), then re-raise on this thread.
                let mut g = self.state.lock();
                for job in &jobs {
                    if job.ticket != ticket {
                        g.results.insert(job.ticket, Vec::new());
                    }
                }
                drop(g);
                self.cv.notify_all();
                std::panic::resume_unwind(payload);
            }
        };

        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs_total
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        self.largest.fetch_max(jobs.len(), Ordering::Relaxed);
        self.cands_total.fetch_add(ncands as u64, Ordering::Relaxed);

        let mut mine = Vec::new();
        let mut g = self.state.lock();
        for (t, r) in ranked {
            if t == ticket {
                mine = r;
            } else {
                g.results.insert(t, r);
            }
        }
        g.job_pool.extend(jobs);
        g.scratch = scratch;
        g.pair_stats = cache.stats();
        g.cache = cache;
        g.outs = outs;
        drop(g);
        self.cv.notify_all();
        mine
    }

    /// Counters of the shared χ² pair-distance cache (cumulative over
    /// every coalesced session). Takes the scheduler state lock
    /// briefly. While a tick leader is computing it holds the cache
    /// outside the lock (the in-state placeholder reads all-zero), so
    /// this returns the elementwise max of the live counters and the
    /// last deposited snapshot — counters are monotonic, so the max is
    /// always the freshest complete reading and never regresses.
    pub fn pair_cache_stats(&self) -> PairCacheStats {
        let g = self.state.lock();
        let live = g.cache.stats();
        let snap = g.pair_stats;
        PairCacheStats {
            hits: live.hits.max(snap.hits),
            misses: live.misses.max(snap.misses),
            invalidations: live.invalidations.max(snap.invalidations),
        }
    }

    /// Follower path: sleep until the tick leader deposits our result,
    /// bounded by [`BatchConfig::follower_timeout`]. A leader that
    /// panics cleanly unwedges us through its `catch_unwind` deposit;
    /// if the leader thread dies *without* unwinding (stack overflow,
    /// abort) the timeout fires and we rescue ourselves with a
    /// bit-identical solo recompute of our own job.
    fn follow(&self, ticket: u64, candidates: &[TileId], refs: &[TileId]) -> Vec<TileId> {
        let timeout = if self.cfg.follower_timeout.is_zero() {
            DEFAULT_FOLLOWER_TIMEOUT
        } else {
            self.cfg.follower_timeout
        };
        let deadline = parking_lot::time::now() + timeout;
        let mut g = self.state.lock();
        loop {
            if let Some(r) = g.results.remove(&ticket) {
                return r;
            }
            let now = parking_lot::time::now();
            if now >= deadline {
                break;
            }
            self.cv.wait_for(&mut g, deadline - now);
        }
        // Rescue. If our job is still queued the leader died before
        // even collecting the tick: withdraw the job and clear the
        // ghost leader flag so the next submitter can lead again. (If
        // a merely-slow leader races this, the worst case is a benign
        // second concurrent tick — `lead` takes state buffers by
        // `mem::take`, so a concurrent tick just runs on fresh ones —
        // plus one orphaned `results` entry for the rescued ticket.)
        if let Some(pos) = g.pending.iter().position(|j| j.ticket == ticket) {
            let job = g.pending.remove(pos);
            g.job_pool.push(job);
            g.leader_active = false;
        }
        drop(g);
        self.rescues.fetch_add(1, Ordering::Relaxed);
        self.rank_solo(candidates, refs)
    }

    /// The unbatched computation for a single job — exactly what
    /// [`Self::rank`] is specified to equal. Used by the follower
    /// rescue path; runs on fresh scratch so it never touches buffers
    /// a dead leader may still own.
    fn rank_solo(&self, candidates: &[TileId], refs: &[TileId]) -> Vec<TileId> {
        let store = self.pyramid.store();
        match store.signature_index() {
            Some(index) => {
                let mut scratch = PredictScratch::default();
                let mut out = Vec::new();
                self.sb
                    .distances_indexed_into(&index, candidates, refs, &mut scratch, &mut out);
                sort_scored(&mut out);
                out.into_iter().map(|(t, _)| t).collect()
            }
            None => {
                let mut scored = self.sb.distances(store, candidates, refs);
                sort_scored(&mut scored);
                scored.into_iter().map(|(t, _)| t).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureKind;
    use crate::{SbConfig, SbRecommender};
    use fc_array::{DenseArray, Schema};
    use fc_tiles::{PyramidBuilder, PyramidConfig, TileId};
    use std::time::Instant;

    fn pyramid(with_sigs: bool) -> Arc<Pyramid> {
        let schema = Schema::grid2d("G", 64, 64, &["v"]).unwrap();
        let data: Vec<f64> = (0..64 * 64).map(|i| (i % 64) as f64 / 64.0).collect();
        let base = DenseArray::from_vec(schema, data).unwrap();
        let p = PyramidBuilder::new()
            .build(&base, &PyramidConfig::simple(3, 16, &["v"]))
            .unwrap();
        if with_sigs {
            for id in p.geometry().all_tiles() {
                let v = f64::from(id.x % 3) / 3.0;
                p.store()
                    .put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
            }
        }
        Arc::new(p)
    }

    fn scheduler(p: &Arc<Pyramid>) -> PredictScheduler {
        PredictScheduler::new(
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            p.clone(),
            BatchConfig::default(),
        )
    }

    #[test]
    fn single_session_rank_matches_unbatched() {
        let p = pyramid(true);
        let s = scheduler(&p);
        s.register();
        let g = p.geometry();
        let cands = g.candidates(TileId::new(2, 2, 2), 1);
        let refs = [TileId::new(2, 2, 2)];
        let batched = s.rank(&cands, &refs);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let ix = p.store().signature_index().unwrap();
        let mut scratch = PredictScratch::default();
        let mut out = Vec::new();
        sb.distances_indexed_into(&ix, &cands, &refs, &mut scratch, &mut out);
        sort_scored(&mut out);
        let direct: Vec<TileId> = out.into_iter().map(|(t, _)| t).collect();
        assert_eq!(batched, direct);
        assert_eq!(s.stats().batches, 1);
        assert_eq!(s.stats().jobs, 1);
        s.unregister();
    }

    #[test]
    fn concurrent_sessions_coalesce_and_agree_with_solo_ranking() {
        let p = pyramid(true);
        let s = Arc::new(scheduler(&p));
        let g = p.geometry();
        const N: usize = 8;
        for _ in 0..N {
            s.register();
        }
        let results: Vec<(usize, Vec<TileId>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|i| {
                    let s = s.clone();
                    let tile = TileId::new(2, (i % 4) as u32, (i / 4 + 1) as u32);
                    scope.spawn(move || {
                        let cands = g.candidates(tile, 1);
                        let refs = [tile];
                        (i, s.rank(&cands, &refs))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every session's ranking equals its solo computation.
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let ix = p.store().signature_index().unwrap();
        let mut scratch = PredictScratch::default();
        for (i, ranked) in &results {
            let tile = TileId::new(2, (i % 4) as u32, (i / 4 + 1) as u32);
            let cands = g.candidates(tile, 1);
            let mut out = Vec::new();
            sb.distances_indexed_into(&ix, &cands, &[tile], &mut scratch, &mut out);
            sort_scored(&mut out);
            let solo: Vec<TileId> = out.into_iter().map(|(t, _)| t).collect();
            assert_eq!(ranked, &solo, "session {i}");
        }
        let st = s.stats();
        assert_eq!(st.jobs, N as u64);
        assert!(st.batches <= N as u64);
        assert!(st.largest_batch >= 1);
        for _ in 0..N {
            s.unregister();
        }
    }

    #[test]
    fn leader_panic_reraises_and_scheduler_stays_usable() {
        let p = pyramid(false);
        // Infinite metadata drives χ² to ∞/∞ = NaN (NaN inputs are
        // skipped by the zero-bin guard, but ∞ passes it), so
        // sort_scored's finite-distance expectation fires inside the
        // leader's compute.
        for id in p.geometry().all_tiles() {
            p.store().put_meta(
                id,
                SignatureKind::Hist1D.meta_name(),
                vec![f64::INFINITY, 0.5],
            );
        }
        let s = scheduler(&p);
        s.register();
        let cands = [TileId::new(2, 1, 1), TileId::new(2, 1, 2)];
        let refs = [TileId::new(2, 1, 0)];
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.rank(&cands, &refs)));
        assert!(panicked.is_err(), "NaN distances must still panic");
        // The tick's state was cleaned up: a later rank (with sane
        // metadata) leads a fresh batch instead of wedging.
        for id in p.geometry().all_tiles() {
            let v = f64::from(id.x % 3) / 3.0;
            p.store()
                .put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
        }
        let ranked = s.rank(&cands, &refs);
        assert_eq!(ranked.len(), 2);
        s.unregister();
    }

    /// Solo ranking for comparison in the rescue tests.
    fn solo(p: &Arc<Pyramid>, cands: &[TileId], refs: &[TileId]) -> Vec<TileId> {
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let ix = p.store().signature_index().unwrap();
        let mut scratch = PredictScratch::default();
        let mut out = Vec::new();
        sb.distances_indexed_into(&ix, cands, refs, &mut scratch, &mut out);
        sort_scored(&mut out);
        out.into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn follower_of_a_dead_leader_rescues_itself() {
        let p = pyramid(true);
        let s = PredictScheduler::new(
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            p.clone(),
            BatchConfig {
                follower_timeout: Duration::from_millis(40),
                ..BatchConfig::default()
            },
        );
        s.register();
        // Forge a leader that died uncleanly (no unwind, no deposit)
        // before even collecting its tick.
        s.state.lock().leader_active = true;
        let g = p.geometry();
        let cands = g.candidates(TileId::new(2, 2, 2), 1);
        let refs = [TileId::new(2, 2, 2)];
        let t0 = Instant::now();
        let ranked = s.rank(&cands, &refs);
        assert!(t0.elapsed() >= Duration::from_millis(40), "must time out");
        assert_eq!(ranked, solo(&p, &cands, &refs), "rescue is bit-identical");
        assert_eq!(s.stats().rescues, 1);
        assert_eq!(s.stats().batches, 0, "no tick ever completed");
        // The ghost leader flag was cleared: the next rank leads a
        // fresh tick immediately instead of waiting out the timeout.
        let t1 = Instant::now();
        let again = s.rank(&cands, &refs);
        assert!(t1.elapsed() < Duration::from_millis(40));
        assert_eq!(again, ranked);
        assert_eq!(s.stats().batches, 1);
        assert_eq!(s.stats().rescues, 1);
        s.unregister();
    }

    #[test]
    fn follower_rescues_even_after_its_job_was_collected() {
        let p = pyramid(true);
        let s = PredictScheduler::new(
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            p.clone(),
            BatchConfig {
                follower_timeout: Duration::from_millis(40),
                ..BatchConfig::default()
            },
        );
        s.register();
        s.state.lock().leader_active = true;
        let g = p.geometry();
        let cands = g.candidates(TileId::new(2, 1, 1), 1);
        let refs = [TileId::new(2, 1, 1)];
        let ranked = std::thread::scope(|scope| {
            let follower = scope.spawn(|| s.rank(&cands, &refs));
            // Play the leader dying *after* it collected the tick:
            // steal the pending job so the follower cannot withdraw it.
            loop {
                let mut st = s.state.lock();
                if !st.pending.is_empty() {
                    st.pending.clear();
                    break;
                }
                drop(st);
                std::thread::sleep(Duration::from_millis(1));
            }
            follower.join().unwrap()
        });
        assert_eq!(ranked, solo(&p, &cands, &refs));
        assert_eq!(s.stats().rescues, 1);
        // The forged leader never cleared its flag (the follower must
        // not: a live leader may still own the tick). Clean up.
        s.state.lock().leader_active = false;
        s.unregister();
    }

    #[test]
    fn metadata_free_store_falls_back_to_reference_path() {
        let p = pyramid(false);
        let s = scheduler(&p);
        s.register();
        let cands = [TileId::new(2, 1, 1), TileId::new(2, 1, 2)];
        let refs = [TileId::new(2, 1, 0)];
        let ranked = s.rank(&cands, &refs);
        assert_eq!(ranked.len(), 2);
        s.unregister();
    }
}
