//! The epoch-stamped χ² pair-distance cache — the steady-state predict
//! accelerator.
//!
//! # Why this exists
//!
//! The frozen [`SignatureIndex`] removed every lock and copy from the SB
//! predict path, leaving IEEE-exact per-bin χ² divisions as the whole
//! cost (~56 µs at 4 sigs × 64 candidates × 16 ROI; see
//! `BENCH_predict.json`). But consecutive interactive requests — pan by
//! one tile, zoom by one level — share the vast majority of their
//! (candidate, ROI) pairs, and χ² is symmetric in its arguments. The
//! [`PairCache`] memoizes **penalty-free** χ² values keyed by the
//! index's dense tile pairs, so the warm steady state probes instead of
//! dividing: only the miss frontier (the pairs a pan step newly
//! exposes) runs the χ² kernel.
//!
//! # What a slot holds
//!
//! One slot covers one unordered dense pair `{a, b}` (symmetric
//! storage: `d(a,b)` and `d(b,a)` share the slot — χ² is bitwise
//! symmetric, since `(x−y)²` and `(y−x)²` are the same IEEE product).
//! It carries the **raw** χ² value per signature plus the pair's
//! geometry primitives (Manhattan distance and the floored Euclidean
//! denominator). Algorithm 3's Manhattan/physical penalties are applied
//! *outside* the cached χ² values by the fill in `sb.rs`, so cached
//! entries are position-pure and stay valid across
//! [`crate::sb::SbConfig`] penalty-flag changes; the geometry
//! primitives ride along because they too are pure functions of the
//! dense pair and their recomputation (projection + `sqrt` per pair)
//! would otherwise bound the warm-path latency.
//!
//! # Invalidation: epochs and generation stamps
//!
//! The cache is valid for exactly one *domain*: a
//! `(SignatureIndex::build_id, χ² kernel, signature key set)` triple.
//! Each [`PairCache::begin`] compares the requested domain against the
//! current one; any difference — a metadata epoch bump rebuilt the
//! index, the kernel switched, the recommender's key set changed —
//! bumps the cache **generation** instead of clearing the table. Every
//! slot is stamped with the generation that wrote it, and a probe only
//! trusts a slot whose stamp matches: invalidation is O(1) with no
//! clearing pass, exactly like the store's metadata epoch.
//!
//! Within one generation slots only ever transition stale → live, and
//! inserts always fill the *first* stale (or matching) slot of a key's
//! probe window. A probe can therefore stop at the first stale slot it
//! meets — the key cannot live past it — which makes misses on a cold
//! cache nearly free (one load).
//!
//! # Sharing
//!
//! [`crate::engine::PredictionEngine`] owns one cache per session next
//! to its `PredictScratch`; [`crate::batch::PredictScheduler`] owns one
//! cache *shared by every coalesced session*, so session B hits the
//! pairs session A computed — the multi-user analogue of §6.2's shared
//! tile cache, applied to prediction arithmetic.
//!
//! [`SignatureIndex`]: fc_tiles::SignatureIndex

use crate::sb::Chi2Kernel;
use fc_tiles::{MetaKey, SignatureIndex};

/// Most signatures a slot can hold inline. Configurations with more
/// weighted signatures than this bypass the cache (the paper's SB
/// recommender uses exactly four).
pub const MAX_CACHED_SIGS: usize = 4;

/// Linear-probe window; beyond it an insert evicts the home slot.
/// Must exceed the run length the additive [`home_slot`] mapping
/// produces (one consecutive slot per ROI tile of a candidate, ≤ 16 at
/// the interactive shape): when two candidates' runs land adjacent,
/// displaced keys must still be reachable past the neighbour's run,
/// or they would be evicted and re-missed on every request.
const PROBE_WINDOW: usize = 24;

/// Bits per dense index in a packed pair key (two indices + headroom
/// must fit 64 bits). Indexes ≥ 2⁲⁸ disable the cache.
const DENSE_BITS: u32 = 28;

/// The SplitMix64 finalizer: a stateless, deterministic mix whose low
/// bits are well distributed, so power-of-two masks spread dense key
/// ranges evenly. Shared by the pair cache and the multi-user cache's
/// shard/stripe assignment.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Monotonic cache counters (see [`PairCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCacheStats {
    /// Pair probes answered from the cache.
    pub hits: u64,
    /// Pair probes that fell through to the χ² kernel.
    pub misses: u64,
    /// Domain changes (index rebuild / kernel or key-set switch) that
    /// bumped the generation.
    pub invalidations: u64,
}

impl PairCacheStats {
    /// The counter deltas accumulated since `earlier` (saturating, so a
    /// snapshot from a recreated cache never underflows).
    pub fn since(self, earlier: Self) -> Self {
        Self {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }

    /// Hit fraction in `[0, 1]`; zero when no probes happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached pair: raw per-signature χ² plus the pair geometry. 64
/// bytes, 64-byte aligned — exactly one cache line per probe (without
/// the alignment, half the slots would straddle two lines).
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
pub(crate) struct Slot {
    /// Packed unordered dense pair (`pair_key`).
    key: u64,
    /// Generation that wrote this slot; stale unless it matches the
    /// cache's current generation.
    gen: u64,
    /// Manhattan distance between the pair's projected tile centres.
    pub(crate) dmanh: u32,
    /// Raw (penalty-free, unnormalized) χ² per signature, in the
    /// recommender's key order; entries past the domain's signature
    /// count are unspecified.
    pub(crate) vals: [f64; MAX_CACHED_SIGS],
    /// `dphysical`: floored Euclidean distance between projected tile
    /// centres (already `.max(1.0)`-ed, bit-exact as computed).
    pub(crate) denom: f64,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    gen: 0,
    dmanh: 0,
    vals: [0.0; MAX_CACHED_SIGS],
    denom: 1.0,
};

/// Packs an unordered dense pair into one key. Both indices must be
/// `< 2^DENSE_BITS` (guaranteed by [`PairCache::begin`]'s size gate).
#[inline]
pub(crate) fn pair_key(a: usize, b: usize) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    pair_key_ordered(lo, hi)
}

/// [`pair_key`] when the caller already knows `lo ≤ hi`.
#[inline]
pub(crate) fn pair_key_ordered(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi);
    ((lo as u64) << DENSE_BITS) | hi as u64
}

/// The hashed half of a pair's home slot for a fixed `hi` index. A
/// fill scoring one candidate (the `hi` half in the common steady
/// state) against many ROI tiles computes this **once per candidate**
/// and derives each pair's slot by adding `lo` — see
/// [`PairCache::probe_from`].
#[inline]
pub(crate) fn slot_base(hi: usize) -> u64 {
    splitmix64(hi as u64)
}

/// Home slot for a key: `splitmix64(hi) + lo`. The `hi` half is hashed
/// (spreading load across the table) while the `lo` half offsets
/// *linearly*, so a fill iterating one candidate against consecutive
/// ROI dense indices probes **consecutive slots** — consecutive cache
/// lines the hardware prefetcher streams — instead of taking a DRAM
/// round-trip per probe. (ROI tiles sit at coarser levels than the
/// candidates in the common steady state, and coarser levels have
/// smaller dense indices, so the ROI index is the `lo` half.) Distinct
/// `lo` under one `hi` can never collide; only different `hi` hashes
/// can, as in a plain hashed table.
#[inline]
fn home_slot(key: u64, mask: usize) -> usize {
    let lo = (key >> DENSE_BITS) as usize;
    let hi = key & ((1u64 << DENSE_BITS) - 1);
    (splitmix64(hi) as usize).wrapping_add(lo) & mask
}

/// The epoch-stamped, symmetric χ² pair-distance cache. See the module
/// docs for semantics; see `sb.rs`'s cache-aware fill for the probe /
/// miss-frontier / write-back protocol.
#[derive(Debug, Clone)]
pub struct PairCache {
    slots: Vec<Slot>,
    mask: usize,
    /// Current generation; slots stamped otherwise are stale.
    gen: u64,
    /// Fingerprint of the domain the current generation serves
    /// (`None` until the first [`Self::begin`]).
    domain: Option<u64>,
    /// Whether probes/inserts are live for the current domain.
    enabled: bool,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Default for PairCache {
    /// A zero-capacity (permanently disabled) cache.
    fn default() -> Self {
        Self::new(0)
    }
}

impl PairCache {
    /// Creates a cache with `capacity` slots (rounded up to a power of
    /// two; `0` builds a permanently disabled cache that misses every
    /// probe).
    pub fn new(capacity: usize) -> Self {
        let cap = if capacity == 0 {
            0
        } else {
            capacity.next_power_of_two()
        };
        Self {
            slots: vec![EMPTY_SLOT; cap],
            mask: cap.wrapping_sub(1),
            // Starts above every pre-initialized slot stamp, so the
            // fresh table reads as all-stale.
            gen: 1,
            domain: None,
            enabled: false,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// A cache sized for steady-state prediction over `index` — see
    /// [`crate::signature::pair_cache_capacity_hint`].
    pub fn for_index(index: &SignatureIndex) -> Self {
        Self::new(crate::signature::pair_cache_capacity_hint(
            index.keys().len(),
            index.ntiles(),
        ))
    }

    /// Slot count (a power of two, or zero when permanently disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PairCacheStats {
        PairCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
        }
    }

    /// Declares the domain of the upcoming fill: the frozen index, the
    /// χ² kernel, and the recommender's signature key set. Any change
    /// from the previous domain bumps the generation — an O(1)
    /// invalidation with no clearing pass. Returns whether the cache is
    /// usable for this domain (non-zero capacity, ≤
    /// [`MAX_CACHED_SIGS`] signatures, dense indices packable).
    pub fn begin(&mut self, index: &SignatureIndex, kernel: Chi2Kernel, keys: &[MetaKey]) -> bool {
        let mut fp = splitmix64(index.build_id() ^ 0xC2B2_AE3D_27D4_EB4F);
        fp = splitmix64(fp ^ kernel as u64);
        for k in keys {
            fp = splitmix64(fp ^ (u64::from(k.raw()) + 1));
        }
        if self.domain != Some(fp) {
            if self.domain.is_some() {
                self.invalidations += 1;
            }
            self.domain = Some(fp);
            self.gen += 1;
        }
        self.enabled = !self.slots.is_empty()
            && keys.len() <= MAX_CACHED_SIGS
            && index.ntiles() <= (1usize << DENSE_BITS);
        self.enabled
    }

    /// Looks up a pair in the current generation. `None` is a miss.
    /// Stats are **not** counted here — the fill batches its per-request
    /// hit/miss totals through [`Self::record`] to keep the probe loop
    /// store-free.
    #[inline]
    pub(crate) fn probe(&self, key: u64) -> Option<&Slot> {
        if !self.enabled {
            return None;
        }
        self.scan(home_slot(key, self.mask), key)
    }

    /// [`Self::probe`] with the home slot derived from a per-candidate
    /// [`slot_base`]: `(base + lo) & mask`, which equals
    /// `home_slot(key)` whenever `base == slot_base(hi)` for the
    /// `key = pair_key_ordered(lo, hi)` being probed (the caller
    /// guarantees that). Skips the per-pair hash on the steady path.
    #[inline]
    pub(crate) fn probe_from(&self, base: u64, lo: usize, key: u64) -> Option<&Slot> {
        if !self.enabled {
            return None;
        }
        self.scan((base as usize).wrapping_add(lo) & self.mask, key)
    }

    #[inline]
    fn scan(&self, mut i: usize, key: u64) -> Option<&Slot> {
        for _ in 0..PROBE_WINDOW {
            let s = &self.slots[i];
            if s.gen != self.gen {
                // First stale slot: inserts fill the earliest stale
                // slot of the window, so the key cannot live past it.
                return None;
            }
            if s.key == key {
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Writes (or refreshes) a pair's raw χ² values and geometry.
    /// `vals.len()` must be the domain's signature count.
    #[inline]
    pub(crate) fn insert(&mut self, key: u64, vals: &[f64], dmanh: u32, denom: f64) {
        if !self.enabled {
            return;
        }
        debug_assert!(vals.len() <= MAX_CACHED_SIGS);
        let gen = self.gen;
        let home = home_slot(key, self.mask);
        let mut victim = home;
        let mut i = home;
        for _ in 0..PROBE_WINDOW {
            let s = &self.slots[i];
            if s.gen != gen || s.key == key {
                victim = i;
                break;
            }
            i = (i + 1) & self.mask;
        }
        // Window full of live foreign keys: evict the home slot. That
        // keeps the probe invariant (stale slots never reappear within
        // a generation) — eviction replaces live with live.
        let s = &mut self.slots[victim];
        s.key = key;
        s.gen = gen;
        s.dmanh = dmanh;
        s.denom = denom;
        s.vals[..vals.len()].copy_from_slice(vals);
    }

    /// Adds one fill's hit/miss totals to the monotonic counters.
    pub(crate) fn record(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::{Geometry, TileId, TileStore};

    fn small_index() -> SignatureIndex {
        let g = Geometry::new(2, 32, 32, 16, 16);
        let s = TileStore::new(
            g,
            fc_array::LatencyModel::free(),
            fc_array::IoMode::Simulated,
            fc_array::SimClock::new(),
        );
        s.put_meta(TileId::ROOT, "sig", vec![0.5, 0.5]);
        (*s.signature_index().unwrap()).clone()
    }

    #[test]
    fn pair_key_is_symmetric() {
        assert_eq!(pair_key(3, 7), pair_key(7, 3));
        assert_ne!(pair_key(3, 7), pair_key(3, 8));
        assert_eq!(pair_key(5, 5), pair_key(5, 5));
    }

    #[test]
    fn probe_hits_after_insert_and_respects_generations() {
        let ix = small_index();
        let keys = [MetaKey::intern("sig")];
        let mut c = PairCache::new(64);
        assert!(c.begin(&ix, Chi2Kernel::Exact, &keys));
        let k = pair_key(1, 2);
        assert!(c.probe(k).is_none());
        c.insert(k, &[0.25], 3, 2.0);
        let s = c.probe(k).expect("hit");
        assert_eq!(s.vals[0], 0.25);
        assert_eq!(s.dmanh, 3);
        assert_eq!(s.denom, 2.0);
        // Same domain again: still a hit, no invalidation.
        assert!(c.begin(&ix, Chi2Kernel::Exact, &keys));
        assert!(c.probe(k).is_some());
        assert_eq!(c.stats().invalidations, 0);
        // Kernel switch: O(1) invalidation, the slot reads stale.
        assert!(c.begin(&ix, Chi2Kernel::Reciprocal, &keys));
        assert!(c.probe(k).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // A fresh index build likewise invalidates.
        assert!(c.begin(&ix, Chi2Kernel::Reciprocal, &keys));
        let ix2 = small_index();
        assert!(c.begin(&ix2, Chi2Kernel::Reciprocal, &keys));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn zero_capacity_and_oversized_domains_disable() {
        let ix = small_index();
        let keys = [MetaKey::intern("sig")];
        let mut c = PairCache::new(0);
        assert!(!c.begin(&ix, Chi2Kernel::Exact, &keys));
        c.insert(pair_key(0, 1), &[1.0], 0, 1.0);
        assert!(c.probe(pair_key(0, 1)).is_none());
        // More signatures than a slot holds: bypass.
        let many: Vec<MetaKey> = (0..=MAX_CACHED_SIGS)
            .map(|i| MetaKey::intern(&format!("k{i}")))
            .collect();
        let mut c = PairCache::new(64);
        assert!(!c.begin(&ix, Chi2Kernel::Exact, &many));
    }

    #[test]
    fn eviction_keeps_probes_correct() {
        let ix = small_index();
        let keys = [MetaKey::intern("sig")];
        // Tiny table: plenty of collisions and evictions.
        let mut c = PairCache::new(8);
        assert!(c.begin(&ix, Chi2Kernel::Exact, &keys));
        for a in 0..8usize {
            for b in a..8usize {
                c.insert(pair_key(a, b), &[(a * 10 + b) as f64], 0, 1.0);
            }
        }
        // Whatever survived must read back its own value.
        for a in 0..8usize {
            for b in a..8usize {
                if let Some(s) = c.probe(pair_key(a, b)) {
                    assert_eq!(s.vals[0], (a * 10 + b) as f64, "pair ({a},{b})");
                }
            }
        }
    }
}
