//! The ForeCache middleware: prediction engine + cache manager + backend
//! store, serving tile requests with the paper's latency profile (§3).
//!
//! Per request the middleware:
//! 1. answers from the cache (hit → 19.5 ms) or the backend DBMS
//!    (miss → ~984 ms);
//! 2. records the request with the prediction engine and cache manager;
//! 3. re-evaluates the allocation strategy and prefetches the engine's
//!    top-k tiles into the cache for the *next* request.

use crate::batch::PredictScheduler;
use crate::burst::{BurstConfig, BurstTracker, TrafficPhase};
use crate::cache::{CacheManager, CacheStats};
use crate::engine::PredictionEngine;
use crate::fault::{FaultKind, FaultPlan, FetchError, RetryPolicy};
use crate::history::Request;
use crate::latency::LatencyProfile;
use crate::multiuser::{
    HotspotSnapshot, HotspotView, MultiUserCache, SessionId, SharedHotspotModel,
};
use crate::paircache::PairCacheStats;
use crate::phase::Phase;
use fc_tiles::{Pyramid, Tile, TileId, TileStore};
use rayon::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Fan the prefetch-fetch loop out across cores only for bulk budgets;
/// interactive budgets (k ≤ 9) stay on the sequential path where the
/// per-fetch work (a map lookup + `Arc` clone) is far below the cost of
/// spawning workers.
const PREFETCH_PAR_MIN_LEN: usize = 64;

/// The middleware's answer to one tile request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The tile payload.
    pub tile: Arc<Tile>,
    /// User-visible response time for this request.
    pub latency: Duration,
    /// Whether the cache answered.
    pub cache_hit: bool,
    /// The phase the engine inferred for this request.
    pub phase: Phase,
    /// Tiles prefetched after answering (for the next request).
    pub prefetched: Vec<TileId>,
    /// Wall time the prediction-engine call took (includes any
    /// cross-session batch rendezvous) — the quantity `exp_multiuser`
    /// reports percentiles of.
    pub predict_time: Duration,
    /// χ² pair-cache activity attributed to this request's prediction:
    /// the counter delta across the predict call, from the engine's
    /// private cache or — in scheduler-batched mode — the shared
    /// cross-session cache (there the delta can include pairs other
    /// coalesced sessions probed in the same tick; treat it as
    /// approximate under concurrency).
    pub pair_cache: PairCacheStats,
    /// Whether this is a **degraded** reply: the requested tile's fetch
    /// failed within its deadline budget, so the middleware served the
    /// nearest resident ancestor instead (and skipped prediction +
    /// prefetch). Always `false` when no fault plan is attached.
    pub degraded: bool,
    /// Backend retries the primary fetch needed (0 on the fault-free
    /// path and on cache hits).
    pub fetch_retries: u32,
    /// The traffic phase this request was served under (burst / dwell
    /// / idle), classified from the session's inter-request gap.
    /// `None` unless burst-aware scheduling is on
    /// ([`crate::burst::BurstConfig`]).
    pub traffic: Option<TrafficPhase>,
}

/// A session's membership in the multi-user serving layer: its slot in
/// the shared tile cache, plus (optionally) the cross-session predict
/// scheduler it coalesces with. Dropping the handle closes the session
/// — holds release, the prefetch budget repartitions across the
/// remaining sessions, and the scheduler's fan-in target shrinks.
pub struct SharedSessionHandle {
    cache: Arc<dyn MultiUserCache>,
    id: SessionId,
    scheduler: Option<Arc<PredictScheduler>>,
    /// The namespace's cross-session hotspot model, when popularity
    /// blending is on for this session.
    hotspots: Option<Arc<SharedHotspotModel>>,
    /// Epoch-cached snapshot view (steady state reads no lock).
    view: HotspotView,
}

impl std::fmt::Debug for SharedSessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSessionHandle")
            .field("id", &self.id)
            .field("batched", &self.scheduler.is_some())
            .field("hotspots", &self.hotspots.is_some())
            .finish()
    }
}

impl SharedSessionHandle {
    /// Opens a session on `cache` (and registers with `scheduler` when
    /// cross-session batching is enabled).
    pub fn open(cache: Arc<dyn MultiUserCache>, scheduler: Option<Arc<PredictScheduler>>) -> Self {
        let id = cache.open_session();
        if let Some(s) = &scheduler {
            s.register();
        }
        Self {
            cache,
            id,
            scheduler,
            hotspots: None,
            view: HotspotView::default(),
        }
    }

    /// Attaches the namespace's cross-session hotspot model: each
    /// request ticks the model's refresh cadence and hands the current
    /// snapshot to the engine as a ranking prior (the engine applies
    /// it only when `EngineConfig::hotspot` opts in).
    pub fn with_hotspots(mut self, model: Arc<SharedHotspotModel>) -> Self {
        self.hotspots = Some(model);
        self
    }

    /// The session's id within the shared cache.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The shared cache this session participates in.
    pub fn cache(&self) -> &Arc<dyn MultiUserCache> {
        &self.cache
    }

    /// Ticks the hotspot model's refresh cadence and returns the
    /// current epoch snapshot (None when blending is off).
    fn hotspot_prior(&mut self) -> Option<Arc<HotspotSnapshot>> {
        let model = self.hotspots.as_ref()?;
        model.observe(self.cache.as_ref());
        Some(self.view.current(model).clone())
    }
}

impl Drop for SharedSessionHandle {
    fn drop(&mut self) {
        if let Some(s) = &self.scheduler {
            s.unregister();
        }
        self.cache.close_session(self.id);
    }
}

/// Aggregate middleware statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MiddlewareStats {
    /// Requests served.
    pub requests: usize,
    /// Cache hits among them.
    pub hits: usize,
    /// Sum of user-visible latency.
    pub total_latency: Duration,
    /// Requests per phase, indexed by [`Phase::index`].
    pub per_phase: [usize; 3],
    /// Degraded replies served (ancestor fallback after a failed
    /// fetch); these also count in `requests`.
    pub degraded: usize,
    /// Requests that failed outright — fetch error with no resident
    /// ancestor to degrade to. **Not** counted in `requests`.
    pub fetch_failures: usize,
    /// Requests per traffic phase, indexed by
    /// [`TrafficPhase::index`]. All zero unless burst-aware
    /// scheduling is on.
    pub per_traffic: [usize; 3],
    /// Speculative (prefetch) tiles this session fetched from the
    /// backend, over the session. Tracked whether or not burst-aware
    /// scheduling is on — it is the denominator of the
    /// prefetch-efficiency A/B.
    pub prefetch_issued: usize,
    /// Prefetched tiles later served to this session as cache hits —
    /// the *useful* prefetches.
    pub prefetch_used: usize,
}

impl MiddlewareStats {
    /// Average user-visible latency; zero when no requests.
    pub fn avg_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(self.requests).unwrap_or(u32::MAX)
        }
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Useful-prefetch ratio in `[0, 1]`: the fraction of speculative
    /// fetches this session later consumed as cache hits. Zero when
    /// nothing was prefetched.
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_used as f64 / self.prefetch_issued as f64
        }
    }
}

/// The middleware layer for one user session.
pub struct Middleware {
    engine: PredictionEngine,
    cache: CacheManager,
    pyramid: Arc<Pyramid>,
    profile: LatencyProfile,
    /// Prefetch budget k (tiles fetched ahead per request).
    k: usize,
    stats: MiddlewareStats,
    /// Multi-user mode: prefetched tiles go to the shared cache (under
    /// the session's fair budget slice) instead of the private
    /// prefetch set, and predictions may coalesce with other sessions.
    shared: Option<SharedSessionHandle>,
    /// Fault injection (chaos runs only): `None` keeps the fetch path
    /// byte-for-byte the fault-free code.
    faults: Option<FaultInjector>,
    /// Burst-aware prefetch scheduling: `None` (the default) keeps
    /// the predict/prefetch path byte-for-byte the uniform-budget
    /// code.
    burst: Option<BurstState>,
    /// Tiles this session prefetched that have not been requested
    /// yet — the outstanding speculation `prefetch_used` is settled
    /// against. Tracked unconditionally (it never changes behavior).
    speculative: HashSet<TileId>,
    /// The last dwell plan (burst-on): shared mode pins it as the
    /// hold set the session keeps while riding a burst reactively
    /// (kept to the session's fair budget slice so four planning
    /// sessions can never pin more than the communal capacity between
    /// them); private mode uses it as the keep list a momentum fetch
    /// folds in around.
    dwell_plan: Vec<TileId>,
    /// The previous request's interface move — the momentum signal
    /// the dwell planner checks: a dwell move that repeats it (same
    /// pan, same direction) is a live run, anything else is a pivot.
    /// Tracked unconditionally; read only when burst-aware scheduling
    /// is on.
    last_move: Option<fc_tiles::Move>,
    /// The session's recent distinct requests, most recent first —
    /// the keep-warm candidate set the dwell planner re-pins (and
    /// re-fetches if evicted). Tracked unconditionally; read only
    /// when burst-aware scheduling is on.
    recent: VecDeque<TileId>,
    /// The last request's full ranked prediction list, captured
    /// *before* the fetch-budget truncation — the server-push
    /// planner's candidate feed ([`Middleware::take_push_candidates`]).
    /// Tracked unconditionally; behavior-inert (no stats, no cache
    /// effect) until something drains it.
    push_candidates: Vec<TileId>,
}

/// Cap on the [`Middleware::recent`] ring. Bounds the bookkeeping,
/// not the plan: the per-plan keep-warm budget is
/// [`BurstConfig::dwell_keep_warm`].
const RECENT_RING: usize = 32;

/// The session's burst-scheduling state: the phase tracker plus the
/// session-local timeline its gaps are measured on.
///
/// The timeline advances by each served request's user-visible latency
/// and by explicit [`Middleware::note_idle`] charges (the replay
/// harness's think time) — the same nanoseconds the shared `SimClock`
/// accounts, but private to the session, so a co-resident session's
/// backend charges can never bleed into this session's gap
/// classification and multi-session replays stay deterministic.
struct BurstState {
    cfg: BurstConfig,
    tracker: BurstTracker,
    /// Session-local timeline reading.
    now: Duration,
    /// Timeline reading when the previous request finished.
    last_done: Option<Duration>,
}

impl BurstState {
    fn new(cfg: BurstConfig) -> Self {
        Self {
            cfg,
            tracker: BurstTracker::new(cfg),
            now: Duration::ZERO,
            last_done: None,
        }
    }

    /// Classifies the request arriving now.
    fn classify(&mut self) -> TrafficPhase {
        let gap = self.last_done.map(|at| self.now.saturating_sub(at));
        self.tracker.observe(gap)
    }

    /// Books a finished request that took `latency`.
    fn finish(&mut self, latency: Duration) {
        self.now += latency;
        self.last_done = Some(self.now);
    }
}

/// The session's attachment to a fault plan: the shared plan, the
/// retry policy the guarded fetch runs under, and the per-session
/// request counter fault decisions are keyed by.
struct FaultInjector {
    plan: Arc<FaultPlan>,
    retry: RetryPolicy,
    /// Serviceable requests seen so far — the `request_index` in the
    /// plan's `(tile, request index, attempt)` decision key, and the
    /// coordinate fault windows are expressed in.
    request_index: u64,
}

/// A guarded fetch that gave up, with the simulated time it burned
/// (already charged to the clock) for latency accounting.
struct FailedFetch {
    error: FetchError,
    waited: Duration,
}

impl std::fmt::Debug for Middleware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Middleware")
            .field("k", &self.k)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Middleware {
    /// Creates a middleware session.
    ///
    /// `history_cache` is the number of recently requested tiles kept in
    /// the cache alongside the prefetch set; `k` is the prefetch budget.
    pub fn new(
        engine: PredictionEngine,
        pyramid: Arc<Pyramid>,
        profile: LatencyProfile,
        history_cache: usize,
        k: usize,
    ) -> Self {
        let burst = engine.config().burst.map(BurstState::new);
        Self {
            engine,
            cache: CacheManager::new(history_cache),
            pyramid,
            profile,
            k,
            stats: MiddlewareStats::default(),
            shared: None,
            faults: None,
            burst,
            speculative: HashSet::new(),
            dwell_plan: Vec::new(),
            last_move: None,
            recent: VecDeque::new(),
            push_candidates: Vec::new(),
        }
    }

    /// Attaches (or detaches) burst-aware prefetch scheduling after
    /// construction — how the drivers flip the scheduler on for an A/B
    /// measurement. Resets the phase tracker and the session timeline.
    pub fn set_burst(&mut self, cfg: Option<BurstConfig>) {
        self.burst = cfg.map(BurstState::new);
        self.dwell_plan.clear();
    }

    /// The session's current traffic phase (`None` when burst-aware
    /// scheduling is off).
    pub fn traffic_phase(&self) -> Option<TrafficPhase> {
        self.burst.as_ref().map(|b| b.tracker.phase())
    }

    /// Whether the auto sweep detector currently has this session on
    /// the uniform fallback budget (always `false` with burst-aware
    /// scheduling off or [`crate::burst::BurstConfig::auto_window`]
    /// = 0).
    pub fn sweeping(&self) -> bool {
        self.burst.as_ref().is_some_and(|b| b.tracker.sweeping())
    }

    /// Takes the last request's full ranked prediction list (before
    /// the fetch-budget truncation) — the candidate feed for the
    /// server-push planner ([`crate::PushPlanner::refill`]). Empty
    /// until a request has been served, and after each take.
    pub fn take_push_candidates(&mut self) -> Vec<TileId> {
        std::mem::take(&mut self.push_candidates)
    }

    /// Advances the session's burst timeline by `d` of user think
    /// time: the replay harness's way of saying "the analyst sat on
    /// the current view for `d` before the next request". A no-op
    /// when burst-aware scheduling is off.
    pub fn note_idle(&mut self, d: Duration) {
        if let Some(b) = self.burst.as_mut() {
            b.now += d;
        }
    }

    /// Attaches a fault plan: primary fetches run under `retry`
    /// (bounded retries with backoff and a deadline budget, all
    /// charged to the simulated clock) and failures degrade to the
    /// nearest resident ancestor or surface as [`FetchError`] from
    /// [`Middleware::try_request`]. Sessions of one chaos run share
    /// the plan (`Arc`); decisions stay deterministic because they key
    /// on this session's own request counter, not on global state.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>, retry: RetryPolicy) {
        self.faults = Some(FaultInjector {
            plan,
            retry,
            request_index: 0,
        });
    }

    /// Detaches the fault plan (the fetch path reverts to infallible).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Serviceable requests seen so far under the attached fault plan
    /// — the request-index coordinate fault windows are expressed in.
    /// Zero when no plan is attached.
    pub fn fault_request_index(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.request_index)
    }

    /// Creates a middleware session in multi-user mode: lookups fall
    /// back to the shared tile cache (earning cross-session hits),
    /// prefetched tiles install into it under the session's fair
    /// budget slice, and — when the handle carries a scheduler —
    /// predictions coalesce with other sessions' into batched SB
    /// sweeps. The private cache still keeps the last `history_cache`
    /// requested tiles, as in single-user mode.
    pub fn new_shared(
        engine: PredictionEngine,
        pyramid: Arc<Pyramid>,
        profile: LatencyProfile,
        history_cache: usize,
        k: usize,
        shared: SharedSessionHandle,
    ) -> Self {
        let mut mw = Self::new(engine, pyramid, profile, history_cache, k);
        mw.shared = Some(shared);
        mw
    }

    /// The session's multi-user membership, when in shared mode.
    pub fn shared(&self) -> Option<&SharedSessionHandle> {
        self.shared.as_ref()
    }

    /// Serves one tile request. The `mv` is the interface move that
    /// produced it (`None` for the session's first request).
    ///
    /// Returns `None` when the tile does not exist in the pyramid.
    /// When a fault plan is attached, a fetch failure with no resident
    /// ancestor also maps to `None` here — callers that need to tell
    /// the two apart use [`Middleware::try_request`].
    pub fn request(&mut self, id: TileId, mv: Option<fc_tiles::Move>) -> Option<Response> {
        self.try_request(id, mv).unwrap_or(None)
    }

    /// Serves one tile request, surfacing fetch failures.
    ///
    /// `Ok(None)` means the tile does not exist in the pyramid (no
    /// side effects); `Err` means the backend fetch failed within its
    /// retry/deadline budget *and* no resident ancestor was available
    /// to degrade to. Without an attached fault plan this never
    /// returns `Err` and behaves exactly like [`Middleware::request`].
    ///
    /// # Errors
    /// [`FetchError`] as above (fault plans only).
    pub fn try_request(
        &mut self,
        id: TileId,
        mv: Option<fc_tiles::Move>,
    ) -> Result<Option<Response>, FetchError> {
        // Unservable ids — outside the geometry, or absent from the
        // backend (both free metadata checks) — return before *any*
        // side effect: no stats, no shared-cache probe, and in
        // particular no popularity-sketch bump that could train the
        // communal hotspot model toward a tile that cannot be served.
        if !self.pyramid.geometry().contains(id) || !self.pyramid.store().contains(id) {
            return Ok(None);
        }
        // Under a fault plan every serviceable request ticks the
        // session's request index — the coordinate fault windows are
        // keyed by — whether it ends in a hit, a miss, or a failure.
        let fault_ctx: Option<(Arc<FaultPlan>, RetryPolicy, u64)> = self.faults.as_mut().map(|f| {
            let idx = f.request_index;
            f.request_index += 1;
            (f.plan.clone(), f.retry, idx)
        });
        // Burst scheduling: classify this request's traffic phase from
        // the gap on the session's timeline since the last request
        // finished (None with the scheduler off).
        let traffic = self.burst.as_mut().map(BurstState::classify);
        // Auto sweep fallback: when burst occupancy over the sliding
        // window says this session is a pause-free sweep, the
        // counter-cyclical schedule has no quiet windows to spend its
        // budget in — every budget decision below reverts to the
        // uniform per-request path while classification (and the
        // per-traffic accounting) keeps running.
        let sweeping = self.burst.as_ref().is_some_and(|b| b.tracker.sweeping());
        // Settle outstanding speculation: if this tile was one of our
        // prefetches, the request decides whether it was useful (it
        // must still be resident to count).
        let was_speculative = self.speculative.remove(&id);
        // 1. Serve the tile: private cache, then the shared cache
        // (another session may have prefetched it — the §6.2 sharing
        // benefit), then the backend. The private probe is uncounted:
        // the hit/miss is booked once below, after the whole serve
        // path resolves, so a shared-cache answer counts as a cache
        // hit (not a private miss) and a request the backend cannot
        // serve counts as nothing at all.
        let cache_probe = match self.cache.peek(id) {
            Some(t) => Some(t),
            None => self
                .shared
                .as_ref()
                .and_then(|sh| sh.cache.lookup(sh.id, id)),
        };
        let mut fetch_retries = 0u32;
        let (tile, latency, cache_hit) = match cache_probe {
            Some(t) => {
                self.pyramid.store().clock().advance(self.profile.hit);
                (t, self.profile.hit, true)
            }
            None => match &fault_ctx {
                None => {
                    // Backend query; the store charges its own
                    // (SciDB-like) latency on the shared clock. A
                    // missing tile returns before the count below —
                    // the request was never served, so no counter
                    // moves.
                    let Some((t, cost)) = self.pyramid.store().fetch_backend(id) else {
                        return Ok(None);
                    };
                    (t, cost, false)
                }
                Some((plan, retry, idx)) => {
                    match fetch_guarded(self.pyramid.store(), plan, retry, id, *idx) {
                        Ok((t, cost, retries)) => {
                            fetch_retries = retries;
                            (t, cost, false)
                        }
                        Err(fail) => {
                            // Degradation ladder: the fetch budget is
                            // spent, so serve the nearest resident
                            // ancestor as a flagged degraded reply
                            // (prediction and prefetch skipped — the
                            // backend is in no state for speculative
                            // I/O); with nothing resident, fail the
                            // request cleanly.
                            return match self.resident_ancestor(id) {
                                Some(anc) => {
                                    Ok(Some(self.serve_degraded(id, mv, anc, &fail, traffic)))
                                }
                                None => {
                                    self.stats.fetch_failures += 1;
                                    // The user still waited out the
                                    // failed fetch on the session
                                    // timeline.
                                    if let Some(b) = self.burst.as_mut() {
                                        b.finish(fail.waited);
                                    }
                                    Err(fail.error)
                                }
                            };
                        }
                    }
                }
            },
        };
        self.cache.count_lookup(cache_hit);

        // 2. Record the request.
        let req = Request::new(id, mv);
        self.engine.observe(req);
        self.cache.note_request(tile.clone());
        let phase = self.engine.current_phase();

        // 3. Re-evaluate allocations and prefetch for the next request.
        // The cross-session hotspot prior (when the handle carries a
        // model) is read through the epoch-cached view; the engine
        // applies it only if its config opts in for this phase.
        // Burst scheduling spends the budget counter-cyclically:
        // reactive-only during bursts (the speculative budget drops to
        // `burst_budget`, default 0 — prefetch I/O must not compete
        // with the user's own misses), a deep speculative run during
        // dwell (boosted budget, widened candidate horizon, multi-step
        // run extrapolation, hotspot riders), and a keep-warm trickle
        // when idle. With the scheduler off (`traffic` None) every
        // value below reduces to today's uniform budget.
        let (eff_k, dwell) = match (traffic, self.burst.as_ref()) {
            // Sweeping sessions take the exact burst-off arm: uniform
            // budget, no dwell plan.
            _ if sweeping => (self.k, None),
            (Some(tp), Some(b)) => (
                b.cfg.speculative_budget(tp, self.k),
                (tp == TrafficPhase::Dwell).then_some(b.cfg),
            ),
            _ => (self.k, None),
        };
        let reactive_only = !sweeping && matches!(traffic, Some(TrafficPhase::Burst)) && eff_k == 0;
        // Idle keep-warm: the trickle maintains the analyst's working
        // set, it does not speculate — the plan is the recent ring,
        // the engine stays off the idle path entirely.
        let idle_warm = (!sweeping && matches!(traffic, Some(TrafficPhase::Idle)))
            .then(|| self.burst.as_ref().map(|b| b.cfg))
            .flatten();
        let predict_start = parking_lot::time::now();
        let scheduler = self.shared.as_ref().and_then(|sh| sh.scheduler.clone());
        let prior = self
            .shared
            .as_mut()
            .and_then(SharedSessionHandle::hotspot_prior);
        let prior: &[(TileId, u64)] = prior.as_ref().map_or(&[], |s| s.hotspots.as_slice());
        let pair_before = match &scheduler {
            Some(sched) => sched.pair_cache_stats(),
            None => self.engine.pair_cache_stats(),
        };
        let mut predictions = if reactive_only {
            // Reactive-only: no speculation at all this cycle — the
            // prediction engine is not even consulted, so its cost
            // (and any batch rendezvous) stays off the burst path.
            Vec::new()
        } else if let Some(cfg) = idle_warm {
            // Keep-warm plan: the recent distinct tiles, most recent
            // first. Resident ones stay pinned; at most `idle_trickle`
            // evicted ones are re-fetched per request (the fetch cap
            // below), so an idle session trickles its working set back
            // in instead of campaigning the engine's speculation.
            self.recent
                .iter()
                .copied()
                .filter(|&t| t != id)
                .take(cfg.dwell_keep_warm)
                .collect()
        } else {
            match (&scheduler, dwell) {
                (Some(sched), Some(cfg)) => self.engine.predict_batched_deep_with_prior(
                    sched,
                    self.pyramid.store(),
                    eff_k,
                    prior,
                    cfg.dwell_distance.max(1),
                ),
                (Some(sched), None) => self.engine.predict_batched_with_prior(
                    sched,
                    self.pyramid.store(),
                    eff_k,
                    prior,
                ),
                (None, Some(cfg)) => self.engine.predict_deep_with_prior(
                    self.pyramid.store(),
                    eff_k,
                    prior,
                    cfg.dwell_distance.max(1),
                ),
                (None, None) => self
                    .engine
                    .predict_with_prior(self.pyramid.store(), eff_k, prior),
            }
        };
        // How many leading entries of `predictions` are deliberate
        // scheduler signals (pinnable); the rest is opportunistic.
        let mut deliberate = predictions.len();
        if let Some(cfg) = dwell {
            // The dwell plan leads with the scheduler's own signals,
            // ahead of the models' ranked list: shared mode truncates
            // the fetch set to the session's fair budget slice, and
            // tiles past that cap are silently dropped — tail
            // position would starve the plan of exactly the tiles it
            // exists to stage. Two signals, ordered by whether the
            // run that led here is still alive:
            //
            //  * **run extrapolation** — walk the current pan move
            //    forward `dwell_depth` steps; the one candidate set
            //    the per-step models cannot rank (they score
            //    similarity and transition history, not momentum);
            //  * **keep-warm** — the session's recent distinct tiles,
            //    re-pinned (and re-fetched if evicted): the analyst
            //    who paused mid-loop comes back over this set.
            //
            // A run is *live* only when this move repeats the
            // previous one (a pan continuing in the same direction) —
            // that is the one case where momentum is established and
            // extrapolation leads, pinned as a deliberate signal.
            // Anything else — a reversal, a turn, a zoom — is a
            // *pivot*: extrapolating a single unconfirmed move would
            // pin tiles nobody may touch, and worse, its fetches
            // would outrank re-fetching evicted keep-warm tiles
            // (hold() only pins residents, so a keep-warm tile that
            // loses its fetch slot silently loses its pin too). On a
            // pivot, keep-warm takes the budget and the speculative
            // extrapolation rides behind, unpinned.
            let mut plan: Vec<TileId> = Vec::new();
            let push = |plan: &mut Vec<TileId>, t: TileId| {
                if t != id && !plan.contains(&t) {
                    plan.push(t);
                }
            };
            let extrapolate = |plan: &mut Vec<TileId>| {
                if let Some(m) = mv.filter(|m| m.is_pan()) {
                    let geometry = self.pyramid.geometry();
                    let mut cur = id;
                    for _ in 0..cfg.dwell_depth {
                        let Some(next) = geometry.apply(cur, m) else {
                            break;
                        };
                        if !plan.contains(&next) {
                            plan.push(next);
                        }
                        cur = next;
                    }
                }
            };
            let pivot = match (self.last_move, mv) {
                (Some(prev), Some(cur)) => !(cur.is_pan() && prev == cur),
                _ => true,
            };
            if !pivot {
                extrapolate(&mut plan);
            }
            for &t in self.recent.iter().take(cfg.dwell_keep_warm) {
                push(&mut plan, t);
            }
            // Hotspot riders: the communal model's top tiles join the
            // dwell plan directly (the blend only re-ranks candidates
            // near the session's own position; this reaches across the
            // dataset to where the crowd actually is).
            let mut added = 0usize;
            for &(t, _) in prior {
                if added >= cfg.dwell_hotspots {
                    break;
                }
                if !plan.contains(&t) {
                    plan.push(t);
                    added += 1;
                }
            }
            // Everything up to here is deliberate — the pinnable core
            // of the plan. A pivot's dead-run extrapolation rides
            // behind it, fetched opportunistically but never pinned.
            // The per-step models' ranked list is dropped outright:
            // it scores the *next single move* from transition
            // history, which a pause step contradicts by definition —
            // during dwell the scheduler's own retrace + momentum
            // signals are strictly better, and fetching the model's
            // candidates anyway is what turns a deep dwell budget
            // into junk I/O that dilutes the useful-prefetch ratio.
            deliberate = plan.len();
            if pivot {
                extrapolate(&mut plan);
            }
            predictions = plan;
        }
        // Burst-phase momentum ([`BurstConfig::momentum`]): mid-burst
        // the one speculation with a confirmed signal is the pan the
        // user is executing *right now* — a 1-deep same-direction
        // lookahead that consults no model (one geometry step) and so
        // stays cheap even on the reactive path. It leads the list and
        // rides on top of the phase budget (`momentum_extra` below),
        // which is what makes pause-free sweeps survivable: every
        // request of a straight sweep leg after the first hits its
        // predecessor's lookahead. It fires on a MISS (the run has
        // outrun the cache, the next tile is about to miss too) or on
        // a *speculative* hit (the chain case: this tile was itself a
        // prefetch — momentum's own lookahead, a dwell extrapolation
        // — so the run is live and the staged coverage ends here).
        // An organic hit stays quiet: the run is inside a revisited
        // working set or a pinned plan, and a lookahead would only
        // churn tiles other sessions have pinned.
        let mut momentum_extra = 0usize;
        if !sweeping
            && (!cache_hit || was_speculative)
            && matches!(traffic, Some(TrafficPhase::Burst))
            && self.burst.as_ref().is_some_and(|b| b.cfg.momentum)
        {
            if let Some(next) = mv
                .filter(|m| m.is_pan())
                .and_then(|m| self.pyramid.geometry().apply(id, m))
            {
                if !predictions.contains(&next) {
                    predictions.insert(0, next);
                    momentum_extra = 1;
                }
            }
        }
        let predictions = predictions;
        // Captured pre-truncation: the push planner wants the whole
        // ranked belief, including tiles already resident (they are
        // exactly the ones a push can ship without new backend I/O).
        self.push_candidates.clear();
        self.push_candidates.extend_from_slice(&predictions);
        let predict_time = parking_lot::time::now().saturating_duration_since(predict_start);
        let pair_cache = match &scheduler {
            Some(sched) => sched.pair_cache_stats(),
            None => self.engine.pair_cache_stats(),
        }
        .since(pair_before);
        let store = self.pyramid.store();
        let mut to_fetch: Vec<TileId> = predictions
            .iter()
            .copied()
            .filter(|p| {
                !self.cache.contains(*p)
                    && self.shared.as_ref().is_none_or(|sh| !sh.cache.contains(*p))
            })
            .collect();
        // The speculative *fetch* budget is `eff_k` in every phase —
        // the idle trickle, the boosted dwell run, the uniform k. A
        // dwell plan may list more than that (pinned keep-warm tiles
        // plus the opportunistic tail), but the list's extra entries
        // are for `hold`; fetch I/O stays within the phase budget.
        // Burst-off predictions never exceed `eff_k`, so this is
        // byte-for-byte inert without a scheduler. The momentum
        // lookahead (list head) rides on top of the phase budget: a
        // reactive burst still fetches its one confirmed tile.
        to_fetch.truncate(eff_k + momentum_extra);
        // Shared mode: install() keeps at most the session's fair
        // budget slice, so fetching past it would charge backend I/O
        // for tiles the cache immediately discards. Predictions are
        // ranked best-first; the cap keeps the best.
        if let Some(sh) = &self.shared {
            to_fetch.truncate(sh.cache.session_budget());
        }
        // Prefetch I/O happens while the user analyzes the current tile;
        // it costs backend time (accounted on the shared clock) but not
        // user-visible latency. The fetches are independent reads of the
        // immutable backend, so bulk budgets fan out across cores; each
        // fetch's cost is computed locally and the sum is charged to the
        // shared clock once, so the clock reading is identical to the
        // sequential loop's regardless of worker interleaving.
        let model = store.latency_model();
        let fetched: Vec<(Arc<Tile>, Duration)> = to_fetch
            .par_iter()
            .with_min_len(PREFETCH_PAR_MIN_LEN)
            .map(|p| {
                // Prefetches are best-effort under a fault plan: a
                // failed speculative fetch skips the tile (no retries
                // — the budget belongs to foreground requests), a
                // spike only raises its background cost. Decisions
                // key on (tile, request index), so the outcome is
                // deterministic under any worker interleaving.
                let mut extra = Duration::ZERO;
                if let Some((plan, _, idx)) = &fault_ctx {
                    match plan.decide_prefetch(*p, *idx) {
                        Some(FaultKind::Transient | FaultKind::Stuck) => return None,
                        Some(FaultKind::LatencySpike(d)) => extra = d,
                        None => {}
                    }
                }
                store.fetch_offline(*p).map(|t| {
                    let cost = model.cost(t.array.nbytes()) + extra;
                    (t, cost)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        store.clock().advance(fetched.iter().map(|(_, c)| *c).sum());
        let prefetched_ids: Vec<TileId> = fetched.iter().map(|(t, _)| t.id).collect();
        let fetched_tiles: Vec<Arc<Tile>> = fetched.into_iter().map(|(t, _)| t).collect();
        match &self.shared {
            // Shared mode: the prefetch set lives in the communal
            // cache (capped at this session's fair budget slice).
            // `hold` covers predictions already resident — fetched by
            // this session earlier or by *another* session — so the
            // whole prediction list is protected from eviction until
            // the next request, when `retain_for` re-partitions the
            // hold set to the new list.
            Some(sh) => {
                sh.cache.install(sh.id, fetched_tiles);
                if reactive_only {
                    // Mid-burst, holds are left exactly as they are.
                    // The dwell plan's pins keep protecting the run
                    // the burst is consuming, and the holder
                    // registrations each hit adds accumulate into a
                    // keep-warm pin over the session's working set —
                    // the protection a revisit pattern needs. Both
                    // kinds release at the next planning step's
                    // `retain_for`; until then eviction pressure
                    // resolves against popularity, so an unconsumed
                    // plan dies before a working set ever does.
                } else if dwell.is_some() || idle_warm.is_some() {
                    // A dwell (or idle keep-warm) plan pins only the
                    // scheduler's own deliberate signals — live run,
                    // keep-warm, riders — capped at the session's
                    // fair slice. The opportunistic tail (a pivot's
                    // dead-run extrapolation, the boosted model
                    // candidates) is fetched but left unpinned:
                    // holding it would put every session at its full
                    // slice and leave the communal LRU no slack, so
                    // plans would evict each other on every
                    // foreground miss.
                    let cap = deliberate.min(sh.cache.session_budget());
                    let plan = &predictions[..cap];
                    // Promote local copies first: a just-visited tile
                    // lives only in this session's private LRU
                    // (foreground misses never install communally),
                    // so it is skipped by the fetch set as already
                    // resident — and then skipped by `hold`, which
                    // pins communal residents only. Without promotion
                    // the plan silently loses exactly the tiles the
                    // analyst just walked, and they die with the tiny
                    // private LRU a few requests later. The `Arc` is
                    // already in hand; this is a map insert, not
                    // backend I/O.
                    let promoted: Vec<Arc<Tile>> = plan
                        .iter()
                        .filter(|&&t| !sh.cache.contains(t))
                        .filter_map(|&t| self.cache.peek(t))
                        .collect();
                    sh.cache.install(sh.id, promoted);
                    sh.cache.hold(sh.id, plan);
                    sh.cache.retain_for(sh.id, plan);
                    self.dwell_plan = plan.to_vec();
                } else {
                    sh.cache.hold(sh.id, &predictions);
                    sh.cache.retain_for(sh.id, &predictions);
                    self.dwell_plan.clear();
                }
            }
            None if reactive_only => {
                // Private mode, mid-burst: leave the prefetch set
                // alone — install's replace semantics would drop the
                // dwell plan the burst is consuming. A momentum fetch
                // folds in through the keeping install, with the keep
                // list the staged plan plus the recent ring (both
                // capped), so the set stays bounded across an
                // arbitrarily long burst.
                if !fetched_tiles.is_empty() {
                    let mut keep: Vec<TileId> = self.dwell_plan.clone();
                    keep.extend(self.recent.iter().copied());
                    self.cache.install_prefetch_keeping(fetched_tiles, &keep);
                }
            }
            None if dwell.is_some() || idle_warm.is_some() => {
                self.cache
                    .install_prefetch_keeping(fetched_tiles, &predictions);
                self.dwell_plan = predictions.clone();
            }
            None => {
                self.cache.install_prefetch(fetched_tiles);
                self.dwell_plan.clear();
            }
        }

        self.stats.requests += 1;
        if cache_hit {
            self.stats.hits += 1;
        }
        self.stats.total_latency += latency;
        self.stats.per_phase[phase.index()] += 1;
        if let Some(tp) = traffic {
            self.stats.per_traffic[tp.index()] += 1;
        }
        if was_speculative && cache_hit {
            self.stats.prefetch_used += 1;
        }
        self.stats.prefetch_issued += prefetched_ids.len();
        self.speculative.extend(prefetched_ids.iter().copied());
        self.note_recent(id, mv);
        if let Some(b) = self.burst.as_mut() {
            b.finish(latency);
        }

        Ok(Some(Response {
            tile,
            latency,
            cache_hit,
            phase,
            prefetched: prefetched_ids,
            predict_time,
            pair_cache,
            degraded: false,
            fetch_retries,
            traffic,
        }))
    }

    /// Books `id`/`mv` into the momentum and keep-warm trackers the
    /// dwell planner reads. Pure bookkeeping: tracked on every served
    /// request (clean or degraded) regardless of scheduler state.
    fn note_recent(&mut self, id: TileId, mv: Option<fc_tiles::Move>) {
        self.last_move = mv;
        if let Some(pos) = self.recent.iter().position(|&t| t == id) {
            self.recent.remove(pos);
        }
        self.recent.push_front(id);
        self.recent.truncate(RECENT_RING);
    }

    /// The nearest ancestor of `id` resident in the private or shared
    /// cache — the stale-but-served answer of the degradation ladder.
    fn resident_ancestor(&self, id: TileId) -> Option<Arc<Tile>> {
        let mut cur = id.parent();
        while let Some(a) = cur {
            if let Some(t) = self.cache.peek(a) {
                return Some(t);
            }
            if let Some(sh) = &self.shared {
                if let Some(t) = sh.cache.lookup(sh.id, a) {
                    return Some(t);
                }
            }
            cur = a.parent();
        }
        None
    }

    /// Books and builds a degraded reply: the user waited out the
    /// failed fetch (`fail.waited`, already on the clock), then the
    /// resident `ancestor` answered at cache-hit cost. Booked as a
    /// miss for the requested tile; prediction and prefetch skipped.
    fn serve_degraded(
        &mut self,
        id: TileId,
        mv: Option<fc_tiles::Move>,
        ancestor: Arc<Tile>,
        fail: &FailedFetch,
        traffic: Option<TrafficPhase>,
    ) -> Response {
        self.pyramid.store().clock().advance(self.profile.hit);
        let latency = fail.waited + self.profile.hit;
        self.cache.count_lookup(false);
        self.engine.observe(Request::new(id, mv));
        self.cache.note_request(ancestor.clone());
        let phase = self.engine.current_phase();
        self.stats.requests += 1;
        self.stats.degraded += 1;
        self.stats.total_latency += latency;
        self.stats.per_phase[phase.index()] += 1;
        if let Some(tp) = traffic {
            self.stats.per_traffic[tp.index()] += 1;
        }
        self.note_recent(id, mv);
        if let Some(b) = self.burst.as_mut() {
            b.finish(latency);
        }
        let attempts = match fail.error {
            FetchError::Unavailable { attempts } | FetchError::DeadlineExceeded { attempts } => {
                attempts
            }
        };
        Response {
            tile: ancestor,
            latency,
            cache_hit: false,
            phase,
            prefetched: Vec::new(),
            predict_time: Duration::ZERO,
            pair_cache: PairCacheStats::default(),
            degraded: true,
            fetch_retries: attempts.saturating_sub(1),
            traffic,
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> MiddlewareStats {
        self.stats
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The underlying engine (e.g. to inspect ROI state).
    pub fn engine(&self) -> &PredictionEngine {
        &self.engine
    }

    /// The prefetch budget k.
    pub fn prefetch_budget(&self) -> usize {
        self.k
    }

    /// Changes the prefetch budget (the paper varies k from 1 to 8).
    pub fn set_prefetch_budget(&mut self, k: usize) {
        self.k = k;
    }

    /// Resets the session (history, ROI, cache, stats). In shared mode
    /// this also releases the session's shared-cache holds (its last
    /// prediction list): holds that outlive the session state would
    /// pin stale tiles against eviction and shrink every other
    /// session's effective capacity until the handle drops.
    pub fn reset_session(&mut self) {
        self.engine.reset_session();
        self.cache.clear();
        if let Some(sh) = &self.shared {
            sh.cache.retain_for(sh.id, &[]);
        }
        self.stats = MiddlewareStats::default();
        self.speculative.clear();
        self.dwell_plan.clear();
        self.last_move = None;
        self.recent.clear();
        if let Some(b) = self.burst.as_mut() {
            *b = BurstState::new(b.cfg);
        }
    }
}

/// The guarded primary fetch: bounded retries with exponential
/// backoff and deterministic jitter, under a per-request deadline
/// budget. Every wait is simulated — charged to the store's shared
/// clock — so chaos runs replay at full speed. Returns the tile, the
/// user-visible cost (backoffs + backend latency + any spike), and
/// the retry count.
fn fetch_guarded(
    store: &TileStore,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    id: TileId,
    request_index: u64,
) -> Result<(Arc<Tile>, Duration, u32), FailedFetch> {
    let max_attempts = retry.max_attempts.max(1);
    let mut consumed = Duration::ZERO;
    let mut attempt = 0u32;
    loop {
        match plan.decide(id, request_index, attempt) {
            None => {
                let Some((t, cost)) = store.fetch_backend(id) else {
                    return Err(FailedFetch {
                        error: FetchError::Unavailable {
                            attempts: attempt + 1,
                        },
                        waited: consumed,
                    });
                };
                return Ok((t, consumed + cost, attempt));
            }
            Some(FaultKind::LatencySpike(extra)) => {
                let Some((t, cost)) = store.fetch_backend(id) else {
                    return Err(FailedFetch {
                        error: FetchError::Unavailable {
                            attempts: attempt + 1,
                        },
                        waited: consumed,
                    });
                };
                store.clock().advance(extra);
                return Ok((t, consumed + cost + extra, attempt));
            }
            Some(FaultKind::Stuck) => {
                // A wedged fetch never returns; the deadline reaps it,
                // consuming whatever budget was left.
                let rem = retry.deadline.saturating_sub(consumed);
                store.clock().advance(rem);
                return Err(FailedFetch {
                    error: FetchError::DeadlineExceeded {
                        attempts: attempt + 1,
                    },
                    waited: retry.deadline,
                });
            }
            Some(FaultKind::Transient) => {
                attempt += 1;
                if attempt >= max_attempts {
                    return Err(FailedFetch {
                        error: FetchError::Unavailable { attempts: attempt },
                        waited: consumed,
                    });
                }
                let backoff = retry.backoff(plan, id, request_index, attempt);
                if consumed + backoff >= retry.deadline {
                    let rem = retry.deadline.saturating_sub(consumed);
                    store.clock().advance(rem);
                    return Err(FailedFetch {
                        error: FetchError::DeadlineExceeded { attempts: attempt },
                        waited: retry.deadline,
                    });
                }
                store.clock().advance(backoff);
                consumed += backoff;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ab::AbRecommender;
    use crate::alloc::AllocationStrategy;
    use crate::engine::{EngineConfig, PhaseSource};
    use crate::sb::{SbConfig, SbRecommender};
    use crate::signature::SignatureKind;
    use fc_array::{DenseArray, Schema};
    use fc_tiles::{Move, PyramidBuilder, PyramidConfig};

    fn pyramid() -> Arc<Pyramid> {
        let schema = Schema::grid2d("G", 64, 64, &["v"]).unwrap();
        let data: Vec<f64> = (0..64 * 64).map(|i| (i % 64) as f64 / 64.0).collect();
        let base = DenseArray::from_vec(schema, data).unwrap();
        let mut cfg = PyramidConfig::simple(3, 16, &["v"]);
        cfg.latency = fc_array::LatencyModel::scidb_like();
        let p = PyramidBuilder::new().build(&base, &cfg).unwrap();
        // Hist signatures for the SB model.
        for id in p.geometry().all_tiles() {
            let t = p.store().fetch_offline(id).unwrap();
            p.store().put_meta(
                id,
                SignatureKind::Hist1D.meta_name(),
                crate::signature::hist_signature(&t, "v", (0.0, 1.0), 8),
            );
        }
        p.store().reset_io_stats();
        Arc::new(p)
    }

    fn middleware(p: Arc<Pyramid>, k: usize) -> Middleware {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 12]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        let engine = PredictionEngine::new(
            p.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                // AB-only keeps the prefetch target deterministic for the
                // pan-run tests (the SB model would chase the synthetic
                // gradient's vertical stripes instead).
                strategy: AllocationStrategy::AbOnly,
                ..EngineConfig::default()
            },
        );
        Middleware::new(engine, p, LatencyProfile::paper(), 3, k)
    }

    #[test]
    fn first_request_misses_then_prefetch_hits() {
        let p = pyramid();
        let mut mw = middleware(p, 4);
        let r1 = mw.request(TileId::new(2, 2, 0), None).unwrap();
        assert!(!r1.cache_hit);
        assert!(r1.latency >= Duration::from_millis(900), "{:?}", r1.latency);
        assert!(!r1.prefetched.is_empty());
        // The first prediction runs against a cold pair cache.
        assert_eq!(r1.pair_cache.hits, 0);
        assert!(r1.pair_cache.misses > 0, "{:?}", r1.pair_cache);

        // Pan right repeatedly: the AB model (trained on right-runs)
        // prefetches the continuation, so subsequent requests hit.
        let mut hits = 0;
        let mut pair_hits = 0;
        for x in 1..=3 {
            let r = mw
                .request(TileId::new(2, 2, x), Some(Move::PanRight))
                .unwrap();
            pair_hits += r.pair_cache.hits;
            if r.cache_hit {
                hits += 1;
                assert_eq!(r.latency, LatencyProfile::paper().hit);
            }
        }
        assert!(pair_hits > 0, "pan overlap must hit the pair cache");
        assert!(hits >= 2, "prefetching should produce hits, got {hits}");
        let stats = mw.stats();
        assert_eq!(stats.requests, 4);
        assert!(stats.hit_rate() > 0.0);
        assert!(stats.avg_latency() < Duration::from_millis(984));
    }

    #[test]
    fn nonexistent_tile_returns_none() {
        let p = pyramid();
        let mut mw = middleware(p, 2);
        assert!(mw.request(TileId::new(7, 0, 0), None).is_none());
        assert!(mw.request(TileId::new(2, 9, 9), None).is_none());
        assert_eq!(mw.stats().requests, 0);
    }

    #[test]
    fn zero_budget_never_prefetches() {
        let p = pyramid();
        let mut mw = middleware(p, 0);
        let r1 = mw.request(TileId::new(2, 2, 0), None).unwrap();
        assert!(r1.prefetched.is_empty());
        let r2 = mw
            .request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert!(!r2.cache_hit, "no prefetching → miss");
        // Except the history cache: re-requesting a recent tile hits.
        let r3 = mw
            .request(TileId::new(2, 2, 0), Some(Move::PanLeft))
            .unwrap();
        assert!(r3.cache_hit, "history cache serves recent tiles");
    }

    #[test]
    fn budget_is_adjustable() {
        let p = pyramid();
        let mut mw = middleware(p, 1);
        assert_eq!(mw.prefetch_budget(), 1);
        mw.set_prefetch_budget(8);
        let r = mw.request(TileId::new(2, 2, 2), None).unwrap();
        assert!(r.prefetched.len() > 1);
    }

    #[test]
    fn reset_session_clears_state() {
        let p = pyramid();
        let mut mw = middleware(p, 4);
        mw.request(TileId::new(2, 2, 0), None).unwrap();
        mw.reset_session();
        assert_eq!(mw.stats(), MiddlewareStats::default());
        assert!(mw.engine().history().is_empty());
        let r = mw.request(TileId::new(2, 2, 0), None).unwrap();
        assert!(!r.cache_hit, "cache cleared");
    }

    fn shared_middleware(p: Arc<Pyramid>, cache: Arc<dyn MultiUserCache>, k: usize) -> Middleware {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 12]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        let engine = PredictionEngine::new(
            p.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::AbOnly,
                ..EngineConfig::default()
            },
        );
        let handle = SharedSessionHandle::open(cache, None);
        Middleware::new_shared(engine, p, LatencyProfile::paper(), 3, k, handle)
    }

    /// Regression (reset-session hold leak): before the fix,
    /// `reset_session` never touched the shared cache, so the
    /// session's holds from its last prediction list pinned stale
    /// tiles against eviction forever (until the handle dropped),
    /// making *other* sessions' unheld tiles the preferred victims.
    #[test]
    fn reset_session_releases_shared_holds() {
        use crate::multiuser::SharedTileCache;
        let p = pyramid();
        let cache: Arc<dyn MultiUserCache> = Arc::new(SharedTileCache::with_shards(2, 1));
        let mut mw = shared_middleware(p.clone(), cache.clone(), 2);
        mw.request(TileId::new(2, 2, 0), None).unwrap();
        let stale: Vec<TileId> = cache.popular(usize::MAX).iter().map(|&(t, _)| t).collect();
        assert_eq!(stale.len(), 2, "both prefetches installed and held");
        mw.reset_session();
        // Session B: install f1, release it, install f2. Eviction
        // prefers unheld tiles — if A's reset leaked its holds, the
        // just-released f1 is the only unheld resident and gets
        // evicted in favour of A's stale tiles; with the fix the stale
        // tiles are unheld and older, so they are the victims.
        let b = cache.open_session();
        let (f1, f2) = (TileId::new(2, 0, 0), TileId::new(2, 0, 1));
        let store = p.store();
        cache.install(b, vec![store.fetch_offline(f1).unwrap()]);
        cache.retain_for(b, &[]);
        cache.install(b, vec![store.fetch_offline(f2).unwrap()]);
        assert!(
            cache.contains(f1),
            "f1 must survive: reset released A's holds, so A's stale tiles evict first"
        );
        assert!(cache.contains(f2));
        for id in stale {
            assert!(!cache.contains(id), "stale tile {id} must have evicted");
        }
    }

    /// Regression (shared-hit accounting skew): a shared-cache hit
    /// used to be booked as a *miss* in the private CacheManager, so
    /// `cache_stats().hit_rate()` contradicted `stats().hit_rate()`.
    #[test]
    fn shared_hit_counts_once_and_consistently() {
        use crate::multiuser::SharedTileCache;
        let p = pyramid();
        let cache: Arc<dyn MultiUserCache> = Arc::new(SharedTileCache::with_shards(64, 1));
        // Session A walks right; its prefetches are communal.
        let mut a = shared_middleware(p.clone(), cache.clone(), 4);
        a.request(TileId::new(2, 2, 0), None).unwrap();
        let ra = a
            .request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert!(ra.cache_hit, "A rides its own prefetch");
        // Session B requests a tile A prefetched: private miss, shared
        // hit — one *hit* in both counters, zero misses.
        let mut b = shared_middleware(p, cache.clone(), 4);
        let rb = b.request(TileId::new(2, 2, 1), None).unwrap();
        assert!(rb.cache_hit, "B rides A's communal prefetch");
        let cs = b.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 0), "shared hit booked as a hit");
        assert!(
            (b.cache_stats().hit_rate() - b.stats().hit_rate()).abs() < 1e-12,
            "cache_stats {:?} must agree with stats {:?}",
            b.cache_stats(),
            b.stats()
        );
        assert!(cache.stats().cross_session_hits > 0);
    }

    /// Regression (dangling miss counter): a request the backend
    /// cannot serve used to charge a private-cache miss before
    /// returning `None`.
    #[test]
    fn unserved_request_counts_nothing() {
        use fc_array::{IoMode, LatencyModel, SimClock};
        use fc_tiles::{Geometry, TileStore};
        // A store that covers the geometry only partially: the root
        // exists, its children don't.
        let g = Geometry::new(2, 32, 32, 16, 16);
        let store = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
        let schema = Schema::grid2d("T", 16, 16, &["v"]).unwrap();
        store.put_tile(fc_tiles::Tile::new(
            TileId::ROOT,
            DenseArray::filled(schema, 0.5),
        ));
        let p = Arc::new(Pyramid::from_parts(g, store));
        let mut mw = middleware(p, 2);
        assert!(mw.request(TileId::new(1, 0, 0), None).is_none());
        let cs = mw.cache_stats();
        assert_eq!(
            (cs.hits, cs.misses),
            (0, 0),
            "unserved request must leave the counters untouched: {cs:?}"
        );
        assert_eq!(mw.stats().requests, 0);
        // A servable tile still counts normally afterwards.
        assert!(mw.request(TileId::ROOT, None).is_some());
        assert_eq!(mw.cache_stats().misses, 1);
    }

    /// The hotspot prior flows handle → middleware → engine: with the
    /// blend opted in, a popular off-path tile redirects the prefetch.
    #[test]
    fn hotspot_model_redirects_shared_prefetch() {
        use crate::alloc::HotspotBlend;
        use crate::multiuser::{HotspotConfig, SharedHotspotModel, SharedTileCache};
        let p = pyramid();
        let cache = Arc::new(SharedTileCache::with_shards(64, 1));
        // top_n 1: only the genuinely hammered tile qualifies, so the
        // walk's own install/lookup bumps can't dilute the prior.
        let model = Arc::new(SharedHotspotModel::new(HotspotConfig {
            top_n: 1,
            refresh_every: 1,
        }));
        // Another session has hammered the tile *below* the walk.
        let hot_tile = TileId::new(2, 3, 1);
        let other = cache.open_session();
        for _ in 0..50 {
            let _ = MultiUserCache::lookup(cache.as_ref(), other, hot_tile);
        }
        let build = |blend: Option<HotspotBlend>| {
            let r = Move::PanRight.index() as u16;
            let traces: Vec<Vec<u16>> = vec![vec![r; 12]];
            let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
            let mut engine = PredictionEngine::new(
                p.geometry(),
                AbRecommender::train(refs, 3),
                SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
                PhaseSource::Heuristic,
                EngineConfig {
                    strategy: AllocationStrategy::AbOnly,
                    ..EngineConfig::default()
                },
            );
            engine.set_hotspot_blend(blend);
            let cache: Arc<dyn MultiUserCache> = cache.clone();
            let handle = SharedSessionHandle::open(cache, None).with_hotspots(model.clone());
            Middleware::new_shared(engine, p.clone(), LatencyProfile::paper(), 3, 1, handle)
        };
        // Blend off: k=1 prefetch follows the AB continuation (right).
        let mut off = build(None);
        let r_off = off
            .request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r_off.prefetched, vec![TileId::new(2, 2, 2)]);
        // Blend on: the communal hotspot pulls the single prefetch
        // slot toward it instead.
        let mut on = build(Some(HotspotBlend {
            radius: 8,
            phases: [true, true, true],
        }));
        let r_on = on
            .request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r_on.prefetched.len(), 1);
        let target = r_on.prefetched[0];
        assert!(
            target.manhattan(&hot_tile) < TileId::new(2, 2, 1).manhattan(&hot_tile),
            "prefetch {target} must approach the hotspot {hot_tile}"
        );
    }

    #[test]
    fn phase_counts_accumulate() {
        let p = pyramid();
        let mut mw = middleware(p, 4);
        mw.request(TileId::new(1, 0, 0), None).unwrap();
        mw.request(TileId::new(1, 0, 1), Some(Move::PanRight))
            .unwrap();
        mw.request(TileId::new(1, 0, 0), Some(Move::PanLeft))
            .unwrap();
        let total: usize = mw.stats().per_phase.iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn burst_scheduler_spends_counter_cyclically() {
        use crate::burst::{BurstConfig, TrafficPhase};
        let p = pyramid();
        let mut mw = middleware(p, 4);
        mw.set_burst(Some(BurstConfig::default()));
        assert_eq!(mw.traffic_phase(), Some(TrafficPhase::Burst));

        // Back-to-back requests land inside the burst-enter threshold:
        // reactive-only — the engine stays off, and the only
        // speculation is the momentum lookahead along the confirmed
        // pan (one tile, no move on r1 means none at all).
        let r1 = mw.request(TileId::new(2, 2, 0), None).unwrap();
        let r2 = mw
            .request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r1.traffic, Some(TrafficPhase::Burst));
        assert_eq!(r2.traffic, Some(TrafficPhase::Burst));
        assert!(r1.prefetched.is_empty(), "no move, no momentum");
        assert_eq!(
            r2.prefetched,
            vec![TileId::new(2, 2, 2)],
            "mid-burst speculation is the momentum lookahead only"
        );

        // A one-second pause exits the burst; the dwell deep run
        // speculates along the pan direction.
        mw.note_idle(Duration::from_secs(1));
        let r3 = mw
            .request(TileId::new(2, 2, 2), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r3.traffic, Some(TrafficPhase::Dwell));
        assert!(
            !r3.prefetched.is_empty(),
            "dwell must spend speculative budget"
        );

        // A 40 s pause goes idle: keep-warm trickle caps speculation.
        mw.note_idle(Duration::from_secs(40));
        let r4 = mw
            .request(TileId::new(2, 2, 3), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r4.traffic, Some(TrafficPhase::Idle));
        assert!(
            r4.prefetched.len() <= BurstConfig::default().idle_trickle,
            "idle trickle exceeded: {:?}",
            r4.prefetched
        );
        // The dwell run predicted the pan continuation, so the request
        // after the pause is a useful prefetch.
        assert!(r4.cache_hit, "dwell deep run should cover the pan run");

        let s = mw.stats();
        assert_eq!(s.per_traffic, [2, 1, 1]);
        assert_eq!(s.per_traffic.iter().sum::<usize>(), s.requests);
        assert!(s.prefetch_issued >= r3.prefetched.len());
        assert!(s.prefetch_used >= 1);
        let eff = s.prefetch_efficiency();
        assert!(eff > 0.0 && eff <= 1.0, "{eff}");
    }

    #[test]
    fn momentum_off_keeps_bursts_fully_reactive() {
        use crate::burst::{BurstConfig, TrafficPhase};
        let p = pyramid();
        let mut mw = middleware(p, 4);
        mw.set_burst(Some(BurstConfig {
            momentum: false,
            ..BurstConfig::default()
        }));
        mw.request(TileId::new(2, 2, 0), None).unwrap();
        let r = mw
            .request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r.traffic, Some(TrafficPhase::Burst));
        assert!(r.prefetched.is_empty(), "no lookahead with momentum off");
        assert_eq!(mw.stats().prefetch_issued, 0);
    }

    #[test]
    fn sweep_fallback_restores_uniform_speculation() {
        use crate::burst::{BurstConfig, TrafficPhase};
        let p = pyramid();
        let mut mw = middleware(p, 4);
        mw.set_burst(Some(BurstConfig {
            auto_window: 8,
            ..BurstConfig::default()
        }));
        // A serpentine sweep over the deepest level's 4×4 grid,
        // back-to-back (every gap inside the burst band).
        let serp: Vec<(TileId, Option<Move>)> = {
            let mut walk = vec![(TileId::new(2, 0, 0), None)];
            for row in 0..4u32 {
                let (cols, mv): (Vec<u32>, Move) = if row % 2 == 0 {
                    ((1..4).collect(), Move::PanRight)
                } else {
                    ((0..3).rev().collect(), Move::PanLeft)
                };
                for c in cols {
                    walk.push((TileId::new(2, row, c), Some(mv)));
                }
                if row < 3 {
                    let x = walk.last().unwrap().0.x;
                    walk.push((TileId::new(2, row + 1, x), Some(Move::PanDown)));
                }
            }
            walk
        };
        for &(id, mv) in &serp {
            mw.request(id, mv).unwrap();
        }
        assert!(
            mw.sweeping(),
            "a pause-free sweep must trip the auto fallback"
        );
        assert_eq!(mw.traffic_phase(), Some(TrafficPhase::Burst));
        // Second lap, still sweeping: a mid-row pan is served with
        // the uniform budget — the model speculates again (a reactive
        // burst would fetch at most the single momentum tile; sweep
        // mode hands the full `k` back to the engine).
        mw.request(TileId::new(2, 0, 0), None).unwrap();
        let r = mw
            .request(TileId::new(2, 0, 1), Some(Move::PanRight))
            .unwrap();
        assert_eq!(r.traffic, Some(TrafficPhase::Burst));
        assert!(mw.sweeping());
        assert!(
            !r.prefetched.is_empty(),
            "sweep fallback must restore uniform speculation"
        );
    }

    #[test]
    fn burst_off_tracks_efficiency_but_not_traffic() {
        let p = pyramid();
        let mut mw = middleware(p, 4);
        let r1 = mw.request(TileId::new(2, 2, 0), None).unwrap();
        assert!(r1.traffic.is_none());
        mw.request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        let s = mw.stats();
        assert_eq!(s.per_traffic, [0, 0, 0]);
        // Prefetch-efficiency accounting runs unconditionally — it is
        // the denominator of the scheduler on/off A/B.
        assert!(s.prefetch_issued > 0);
    }

    #[test]
    fn burst_reset_session_restarts_the_tracker() {
        use crate::burst::{BurstConfig, TrafficPhase};
        let p = pyramid();
        let mut mw = middleware(p, 4);
        mw.set_burst(Some(BurstConfig::default()));
        mw.request(TileId::new(2, 2, 0), None).unwrap();
        mw.note_idle(Duration::from_secs(40));
        mw.request(TileId::new(2, 2, 1), Some(Move::PanRight))
            .unwrap();
        assert_eq!(mw.traffic_phase(), Some(TrafficPhase::Idle));
        mw.reset_session();
        // Fresh session: tracker back to its initial phase, no stale
        // speculative bookkeeping.
        assert_eq!(mw.traffic_phase(), Some(TrafficPhase::Burst));
        assert_eq!(mw.stats().prefetch_issued, 0);
        let r = mw.request(TileId::new(2, 2, 0), None).unwrap();
        assert_eq!(r.traffic, Some(TrafficPhase::Burst));
    }
}
