//! Cache allocation strategies (§4.4, updated in §5.4.3).
//!
//! The cache manager assigns each recommendation model a slice of the
//! prefetch budget `k`, depending on the predicted analysis phase:
//!
//! * **Original** (§4.4): Navigation → all AB; Sensemaking → all SB;
//!   Foraging → equal split.
//! * **Updated** (§5.4.3, after the accuracy study): "When the
//!   Sensemaking phase is predicted, our model always fetches predictions
//!   from our SB model only. Otherwise, our final model fetches the first
//!   4 predictions from the AB model (or less if k < 4), and then starts
//!   fetching predictions from the SB model if k > 4."
//! * AB-only / SB-only for the ablation benches.

use crate::phase::Phase;

/// How the prefetch budget is split between the AB and SB recommenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationStrategy {
    /// The §4.4 design.
    Original,
    /// The §5.4.3 final engine (used for Figs. 10c–13).
    Updated,
    /// Everything to the AB model (ablation).
    AbOnly,
    /// Everything to the SB model (ablation).
    SbOnly,
}

impl AllocationStrategy {
    /// Returns `(ab_slots, sb_slots)` for a budget of `k` tiles in the
    /// given phase. Slots sum to `k`.
    pub fn allocate(self, phase: Phase, k: usize) -> (usize, usize) {
        match self {
            AllocationStrategy::Original => match phase {
                Phase::Navigation => (k, 0),
                Phase::Sensemaking => (0, k),
                Phase::Foraging => {
                    let ab = k / 2 + k % 2; // odd budgets favour AB
                    (ab, k - ab)
                }
            },
            AllocationStrategy::Updated => match phase {
                Phase::Sensemaking => (0, k),
                _ => {
                    let ab = k.min(4);
                    (ab, k - ab)
                }
            },
            AllocationStrategy::AbOnly => (k, 0),
            AllocationStrategy::SbOnly => (0, k),
        }
    }

    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            AllocationStrategy::Original => "original",
            AllocationStrategy::Updated => "hybrid",
            AllocationStrategy::AbOnly => "ab-only",
            AllocationStrategy::SbOnly => "sb-only",
        }
    }
}

/// Merges two ranked lists under an allocation: take `ab_slots` from
/// `ab`, then `sb_slots` from `sb`, skipping duplicates; if either list
/// runs short, backfill from the other so the budget is used fully.
pub fn merge_allocated(
    ab: &[fc_tiles::TileId],
    sb: &[fc_tiles::TileId],
    ab_slots: usize,
    sb_slots: usize,
) -> Vec<fc_tiles::TileId> {
    let budget = ab_slots + sb_slots;
    let mut out = Vec::with_capacity(budget);
    let push = |t: fc_tiles::TileId, out: &mut Vec<fc_tiles::TileId>| {
        if !out.contains(&t) && out.len() < budget {
            out.push(t);
        }
    };
    for &t in ab.iter().take(ab_slots) {
        push(t, &mut out);
    }
    for &t in sb {
        if out.len() >= budget {
            break;
        }
        push(t, &mut out);
    }
    // Backfill from AB beyond its slots if SB was short.
    for &t in ab.iter().skip(ab_slots) {
        if out.len() >= budget {
            break;
        }
        push(t, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::TileId;

    #[test]
    fn original_strategy_follows_section_4_4() {
        let s = AllocationStrategy::Original;
        assert_eq!(s.allocate(Phase::Navigation, 8), (8, 0));
        assert_eq!(s.allocate(Phase::Sensemaking, 8), (0, 8));
        assert_eq!(s.allocate(Phase::Foraging, 8), (4, 4));
        assert_eq!(s.allocate(Phase::Foraging, 5), (3, 2));
    }

    #[test]
    fn updated_strategy_follows_section_5_4_3() {
        let s = AllocationStrategy::Updated;
        assert_eq!(s.allocate(Phase::Sensemaking, 6), (0, 6));
        assert_eq!(s.allocate(Phase::Navigation, 3), (3, 0));
        assert_eq!(s.allocate(Phase::Navigation, 4), (4, 0));
        assert_eq!(s.allocate(Phase::Foraging, 8), (4, 4));
        assert_eq!(s.allocate(Phase::Navigation, 8), (4, 4));
    }

    #[test]
    fn slots_always_sum_to_k() {
        for s in [
            AllocationStrategy::Original,
            AllocationStrategy::Updated,
            AllocationStrategy::AbOnly,
            AllocationStrategy::SbOnly,
        ] {
            for phase in Phase::ALL {
                for k in 0..=9 {
                    let (a, b) = s.allocate(phase, k);
                    assert_eq!(a + b, k, "{s:?} {phase} k={k}");
                }
            }
        }
    }

    fn tid(x: u32) -> TileId {
        TileId::new(3, 0, x)
    }

    #[test]
    fn merge_takes_slots_then_dedups() {
        let ab = [tid(1), tid(2), tid(3)];
        let sb = [tid(2), tid(4), tid(5)];
        let merged = merge_allocated(&ab, &sb, 2, 2);
        assert_eq!(merged, vec![tid(1), tid(2), tid(4), tid(5)]);
    }

    #[test]
    fn merge_backfills_when_sb_short() {
        let ab = [tid(1), tid(2), tid(3), tid(4)];
        let sb = [tid(1)];
        let merged = merge_allocated(&ab, &sb, 2, 2);
        assert_eq!(merged, vec![tid(1), tid(2), tid(3), tid(4)]);
    }

    #[test]
    fn merge_respects_budget() {
        let ab = [tid(1), tid(2), tid(3)];
        let sb = [tid(4), tid(5), tid(6)];
        assert_eq!(merge_allocated(&ab, &sb, 1, 1).len(), 2);
        assert_eq!(merge_allocated(&ab, &sb, 0, 0).len(), 0);
    }
}
