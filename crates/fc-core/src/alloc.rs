//! Cache allocation strategies (§4.4, updated in §5.4.3).
//!
//! The cache manager assigns each recommendation model a slice of the
//! prefetch budget `k`, depending on the predicted analysis phase:
//!
//! * **Original** (§4.4): Navigation → all AB; Sensemaking → all SB;
//!   Foraging → equal split.
//! * **Updated** (§5.4.3, after the accuracy study): "When the
//!   Sensemaking phase is predicted, our model always fetches predictions
//!   from our SB model only. Otherwise, our final model fetches the first
//!   4 predictions from the AB model (or less if k < 4), and then starts
//!   fetching predictions from the SB model if k > 4."
//! * AB-only / SB-only for the ablation benches.
//!
//! The module also hosts the **cross-session hotspot prior**
//! ([`HotspotBlend`], [`boost_toward_hotspots`]): in multi-user mode
//! the engine can re-rank each model's candidate list toward the
//! communal hotspots the shared cache's popularity sketch discovered
//! online — the same toward-hotspot boost the Doshi-et-al. Hotspot
//! baseline applies (`baselines::HotspotRecommender::rank`), but
//! trained from live traffic instead of offline traces. Opt-in and
//! phase-gated, so single-user prediction stays bit-identical.

use crate::phase::Phase;
use fc_tiles::TileId;

/// How the prefetch budget is split between the AB and SB recommenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationStrategy {
    /// The §4.4 design.
    Original,
    /// The §5.4.3 final engine (used for Figs. 10c–13).
    Updated,
    /// Everything to the AB model (ablation).
    AbOnly,
    /// Everything to the SB model (ablation).
    SbOnly,
}

impl AllocationStrategy {
    /// Returns `(ab_slots, sb_slots)` for a budget of `k` tiles in the
    /// given phase. Slots sum to `k`.
    pub fn allocate(self, phase: Phase, k: usize) -> (usize, usize) {
        match self {
            AllocationStrategy::Original => match phase {
                Phase::Navigation => (k, 0),
                Phase::Sensemaking => (0, k),
                Phase::Foraging => {
                    let ab = k / 2 + k % 2; // odd budgets favour AB
                    (ab, k - ab)
                }
            },
            AllocationStrategy::Updated => match phase {
                Phase::Sensemaking => (0, k),
                _ => {
                    let ab = k.min(4);
                    (ab, k - ab)
                }
            },
            AllocationStrategy::AbOnly => (k, 0),
            AllocationStrategy::SbOnly => (0, k),
        }
    }

    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            AllocationStrategy::Original => "original",
            AllocationStrategy::Updated => "hybrid",
            AllocationStrategy::AbOnly => "ab-only",
            AllocationStrategy::SbOnly => "sb-only",
        }
    }
}

/// How (and when) the cross-session hotspot prior blends into
/// candidate ranking. Carried by `EngineConfig::hotspot`; `None` there
/// (the default) keeps prediction bit-identical to the paper engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotBlend {
    /// A hotspot is "nearby" within this projected Manhattan distance
    /// of the current tile (the Doshi-et-al. radius).
    pub radius: u32,
    /// Per-phase gate, indexed by [`Phase::index`]: the prior applies
    /// only in phases marked `true`. Default: Foraging and Navigation
    /// (where the user is *seeking* regions of interest); Sensemaking
    /// stays pure SB, as §5.4.3 allocates.
    pub phases: [bool; 3],
}

impl Default for HotspotBlend {
    fn default() -> Self {
        Self {
            radius: 4,
            phases: [true, true, false],
        }
    }
}

impl HotspotBlend {
    /// Whether the prior applies in `phase`.
    pub fn applies_in(&self, phase: Phase) -> bool {
        self.phases[phase.index()]
    }
}

/// Re-ranks `list` toward the nearest communal hotspot, mirroring
/// `HotspotRecommender::rank`: when a hotspot lies within `radius` of
/// `current`, candidates strictly closer to it than `current` move to
/// the front (stable — relative model order is preserved within both
/// groups, so the boost only expresses the prior, never reshuffles the
/// model's own ranking). No nearby hotspot → no change.
///
/// Hotspots *at* the current tile are skipped: the online sketch
/// counts every request, so the tile being viewed is routinely among
/// the top-N, and a zero-distance "nearest hotspot" would silence the
/// pull of every real neighbour exactly when the user sits on a
/// popular path.
pub fn boost_toward_hotspots(
    list: &mut [TileId],
    current: TileId,
    hotspots: &[(TileId, u64)],
    radius: u32,
) {
    let Some(hs) = hotspots
        .iter()
        .map(|&(h, _)| (h, current.manhattan(&h)))
        .filter(|&(_, d)| d > 0 && d <= radius)
        .min_by_key(|&(h, d)| (d, h))
        .map(|(h, _)| h)
    else {
        return;
    };
    let here = current.manhattan(&hs);
    // Stable partition via a stable sort on the boost predicate:
    // toward-hotspot candidates (key `false`) move to the front,
    // relative order preserved within both groups, no allocation on
    // the predict path (candidate lists are ≤ the 24-tile move
    // neighbourhood, well inside the sort's insertion-run regime).
    list.sort_by_key(|t| t.manhattan(&hs) >= here);
}

/// Merges two ranked lists under an allocation: take `ab_slots` from
/// `ab`, then `sb_slots` from `sb`, skipping duplicates; if either list
/// runs short, backfill from the other so the budget is used fully.
pub fn merge_allocated(
    ab: &[fc_tiles::TileId],
    sb: &[fc_tiles::TileId],
    ab_slots: usize,
    sb_slots: usize,
) -> Vec<fc_tiles::TileId> {
    let budget = ab_slots + sb_slots;
    let mut out = Vec::with_capacity(budget);
    let push = |t: fc_tiles::TileId, out: &mut Vec<fc_tiles::TileId>| {
        if !out.contains(&t) && out.len() < budget {
            out.push(t);
        }
    };
    for &t in ab.iter().take(ab_slots) {
        push(t, &mut out);
    }
    for &t in sb {
        if out.len() >= budget {
            break;
        }
        push(t, &mut out);
    }
    // Backfill from AB beyond its slots if SB was short.
    for &t in ab.iter().skip(ab_slots) {
        if out.len() >= budget {
            break;
        }
        push(t, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::TileId;

    #[test]
    fn original_strategy_follows_section_4_4() {
        let s = AllocationStrategy::Original;
        assert_eq!(s.allocate(Phase::Navigation, 8), (8, 0));
        assert_eq!(s.allocate(Phase::Sensemaking, 8), (0, 8));
        assert_eq!(s.allocate(Phase::Foraging, 8), (4, 4));
        assert_eq!(s.allocate(Phase::Foraging, 5), (3, 2));
    }

    #[test]
    fn updated_strategy_follows_section_5_4_3() {
        let s = AllocationStrategy::Updated;
        assert_eq!(s.allocate(Phase::Sensemaking, 6), (0, 6));
        assert_eq!(s.allocate(Phase::Navigation, 3), (3, 0));
        assert_eq!(s.allocate(Phase::Navigation, 4), (4, 0));
        assert_eq!(s.allocate(Phase::Foraging, 8), (4, 4));
        assert_eq!(s.allocate(Phase::Navigation, 8), (4, 4));
    }

    #[test]
    fn slots_always_sum_to_k() {
        for s in [
            AllocationStrategy::Original,
            AllocationStrategy::Updated,
            AllocationStrategy::AbOnly,
            AllocationStrategy::SbOnly,
        ] {
            for phase in Phase::ALL {
                for k in 0..=9 {
                    let (a, b) = s.allocate(phase, k);
                    assert_eq!(a + b, k, "{s:?} {phase} k={k}");
                }
            }
        }
    }

    fn tid(x: u32) -> TileId {
        TileId::new(3, 0, x)
    }

    #[test]
    fn merge_takes_slots_then_dedups() {
        let ab = [tid(1), tid(2), tid(3)];
        let sb = [tid(2), tid(4), tid(5)];
        let merged = merge_allocated(&ab, &sb, 2, 2);
        assert_eq!(merged, vec![tid(1), tid(2), tid(4), tid(5)]);
    }

    #[test]
    fn merge_backfills_when_sb_short() {
        let ab = [tid(1), tid(2), tid(3), tid(4)];
        let sb = [tid(1)];
        let merged = merge_allocated(&ab, &sb, 2, 2);
        assert_eq!(merged, vec![tid(1), tid(2), tid(3), tid(4)]);
    }

    #[test]
    fn merge_respects_budget() {
        let ab = [tid(1), tid(2), tid(3)];
        let sb = [tid(4), tid(5), tid(6)];
        assert_eq!(merge_allocated(&ab, &sb, 1, 1).len(), 2);
        assert_eq!(merge_allocated(&ab, &sb, 0, 0).len(), 0);
    }

    #[test]
    fn boost_moves_toward_hotspot_candidates_to_the_front_stably() {
        // Current tile at x=5; hotspot at x=8 (distance 3 ≤ radius 4).
        let current = tid(5);
        let hotspots = [(tid(8), 10u64)];
        // tid(4) and tid(5) don't approach the hotspot; 6 and 7 do.
        let mut list = vec![tid(4), tid(7), tid(6)];
        boost_toward_hotspots(&mut list, current, &hotspots, 4);
        // 7 and 6 move up preserving their relative (model) order.
        assert_eq!(list, vec![tid(7), tid(6), tid(4)]);
    }

    #[test]
    fn boost_is_a_no_op_without_a_nearby_hotspot() {
        let current = tid(5);
        let hotspots = [(tid(50), 99u64)];
        let original = vec![tid(4), tid(6), tid(7)];
        let mut list = original.clone();
        boost_toward_hotspots(&mut list, current, &hotspots, 4);
        assert_eq!(list, original, "far hotspot must not re-rank");
        let mut list = original.clone();
        boost_toward_hotspots(&mut list, current, &[], 4);
        assert_eq!(list, original, "empty prior must not re-rank");
    }

    #[test]
    fn boost_picks_the_nearest_hotspot_deterministically() {
        let current = tid(5);
        // Two hotspots in range; the nearer (tid 7, d=2) wins over
        // tid(2) (d=3), so tid(6) boosts but tid(4) does not.
        let hotspots = [(tid(2), 50u64), (tid(7), 10u64)];
        let mut list = vec![tid(4), tid(6)];
        boost_toward_hotspots(&mut list, current, &hotspots, 4);
        assert_eq!(list, vec![tid(6), tid(4)]);
    }

    #[test]
    fn boost_skips_the_current_tile_as_its_own_hotspot() {
        // The current tile tops the (online) sketch; the real pull
        // must come from the next-nearest hotspot, not be silenced by
        // the zero-distance self entry.
        let current = tid(5);
        let hotspots = [(tid(5), 100u64), (tid(8), 10u64)];
        let mut list = vec![tid(4), tid(6)];
        boost_toward_hotspots(&mut list, current, &hotspots, 4);
        assert_eq!(list, vec![tid(6), tid(4)]);
    }

    #[test]
    fn default_blend_gates_sensemaking_off() {
        let b = HotspotBlend::default();
        assert!(b.applies_in(Phase::Foraging));
        assert!(b.applies_in(Phase::Navigation));
        assert!(!b.applies_in(Phase::Sensemaking));
    }
}
