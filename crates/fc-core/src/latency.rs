//! The latency model observed in the paper's deployment (§5.5).
//!
//! "On average, the middleware took 19.5 ms to send tiles for a cache
//! hit, and 984.0 ms for a cache miss." Average response time is then a
//! linear function of hit rate — the Fig. 12 law.

use std::time::Duration;

/// Hit/miss response-time profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Response time when the tile is in the middleware cache.
    pub hit: Duration,
    /// Response time when the tile must be fetched from the DBMS.
    pub miss: Duration,
}

impl LatencyProfile {
    /// The paper's measured constants: 19.5 ms hit, 984 ms miss.
    pub fn paper() -> Self {
        Self {
            hit: Duration::from_micros(19_500),
            miss: Duration::from_millis(984),
        }
    }

    /// Expected average response time at a given prefetch accuracy
    /// (= cache hit rate).
    pub fn expected_response(&self, accuracy: f64) -> Duration {
        let a = accuracy.clamp(0.0, 1.0);
        Duration::from_secs_f64(self.hit.as_secs_f64() * a + self.miss.as_secs_f64() * (1.0 - a))
    }

    /// The slope of response-vs-accuracy in milliseconds per unit
    /// accuracy (the paper fits ≈ −939 ms with their measured data; the
    /// pure two-point model gives `hit − miss` ≈ −964.5 ms).
    pub fn slope_ms(&self) -> f64 {
        (self.hit.as_secs_f64() - self.miss.as_secs_f64()) * 1e3
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = LatencyProfile::paper();
        assert_eq!(p.hit, Duration::from_micros(19_500));
        assert_eq!(p.miss, Duration::from_millis(984));
    }

    #[test]
    fn expected_response_interpolates() {
        let p = LatencyProfile::paper();
        assert_eq!(p.expected_response(1.0), p.hit);
        assert_eq!(p.expected_response(0.0), p.miss);
        let mid = p.expected_response(0.5);
        assert!(mid > p.hit && mid < p.miss);
        // ~82% accuracy → ≈193 ms, near the paper's 185 ms at k=5.
        let at82 = p.expected_response(0.82).as_secs_f64() * 1e3;
        assert!((at82 - 193.1).abs() < 1.0, "{at82}");
    }

    #[test]
    fn clamps_out_of_range_accuracy() {
        let p = LatencyProfile::paper();
        assert_eq!(p.expected_response(2.0), p.hit);
        assert_eq!(p.expected_response(-1.0), p.miss);
    }

    #[test]
    fn slope_matches_paper_order_of_magnitude() {
        let s = LatencyProfile::paper().slope_ms();
        assert!((-970.0..=-950.0).contains(&s), "{s}");
    }
}
