//! The most-recent-ROI heuristic — the paper's Algorithm 1, verbatim.
//!
//! The SB recommender needs "the last location in the dataset that the
//! user explored in detail". The heuristic searches the request stream
//! for the pattern: one zoom-in, zero or more pans, one zoom-out; the
//! tiles visited between the zoom-in and the zoom-out become the ROI.

use crate::history::Request;
use fc_tiles::TileId;

/// Streaming implementation of Algorithm 1 (`UPDATEROI`).
#[derive(Debug, Clone, Default)]
pub struct RoiTracker {
    roi: Vec<TileId>,
    temp_roi: Vec<TileId>,
    in_flag: bool,
}

impl RoiTracker {
    /// Creates a tracker with an empty ROI.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one request and returns the current ROI (Algorithm 1,
    /// lines 4–15).
    pub fn update(&mut self, r: &Request) -> &[TileId] {
        match r.mv {
            // Lines 5-7: a zoom-in starts collecting a new tempROI.
            Some(m) if m.is_zoom_in() => {
                self.in_flag = true;
                self.temp_roi = vec![r.tile];
            }
            // Lines 8-12: a zoom-out commits tempROI if we were collecting.
            Some(m) if m.is_zoom_out() && self.in_flag => {
                self.roi = std::mem::take(&mut self.temp_roi);
                self.in_flag = false;
            }
            // Lines 13-14: pans while collecting extend tempROI.
            Some(m) if m.is_pan() && self.in_flag => {
                self.temp_roi.push(r.tile);
            }
            _ => {}
        }
        &self.roi
    }

    /// The user's most recent committed ROI.
    pub fn roi(&self) -> &[TileId] {
        &self.roi
    }

    /// The in-progress (uncommitted) ROI, exposed for diagnostics.
    pub fn pending(&self) -> &[TileId] {
        &self.temp_roi
    }

    /// Whether a zoom-in has opened a collection window.
    pub fn collecting(&self) -> bool {
        self.in_flag
    }

    /// Resets all state (new session).
    pub fn reset(&mut self) {
        self.roi.clear();
        self.temp_roi.clear();
        self.in_flag = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::{Move, Quadrant, TileId};

    fn req(tile: TileId, mv: Move) -> Request {
        Request::new(tile, Some(mv))
    }

    fn zin() -> Move {
        Move::ZoomIn(Quadrant::Nw)
    }

    #[test]
    fn zoom_in_pan_zoom_out_commits_roi() {
        let mut t = RoiTracker::new();
        let a = TileId::new(3, 2, 2);
        let b = TileId::new(3, 2, 3);
        let c = TileId::new(3, 3, 3);
        t.update(&req(a, zin()));
        assert!(t.collecting());
        t.update(&req(b, Move::PanRight));
        t.update(&req(c, Move::PanDown));
        assert!(t.roi().is_empty(), "ROI not committed until zoom-out");
        let out = t.update(&req(TileId::new(2, 1, 1), Move::ZoomOut)).to_vec();
        assert_eq!(out, vec![a, b, c]);
        assert!(!t.collecting());
    }

    #[test]
    fn consecutive_zoom_ins_restart_collection() {
        let mut t = RoiTracker::new();
        t.update(&req(TileId::new(2, 0, 0), zin()));
        t.update(&req(TileId::new(3, 0, 0), zin()));
        t.update(&req(TileId::new(2, 0, 0), Move::ZoomOut));
        // Only the tile from the *last* zoom-in is committed (line 7
        // replaces tempROI).
        assert_eq!(t.roi(), &[TileId::new(3, 0, 0)]);
    }

    #[test]
    fn zoom_out_without_zoom_in_keeps_old_roi() {
        let mut t = RoiTracker::new();
        t.update(&req(TileId::new(3, 1, 1), zin()));
        t.update(&req(TileId::new(2, 0, 0), Move::ZoomOut));
        let committed = t.roi().to_vec();
        // A second zoom-out with inFlag false must not clear the ROI.
        t.update(&req(TileId::new(1, 0, 0), Move::ZoomOut));
        assert_eq!(t.roi(), committed.as_slice());
    }

    #[test]
    fn pans_outside_collection_are_ignored() {
        let mut t = RoiTracker::new();
        t.update(&req(TileId::new(1, 0, 0), Move::PanRight));
        t.update(&req(TileId::new(1, 0, 1), Move::PanRight));
        assert!(t.roi().is_empty());
        assert!(t.pending().is_empty());
    }

    #[test]
    fn initial_request_is_ignored() {
        let mut t = RoiTracker::new();
        t.update(&Request::initial(TileId::ROOT));
        assert!(t.roi().is_empty());
        assert!(!t.collecting());
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = RoiTracker::new();
        t.update(&req(TileId::new(2, 0, 0), zin()));
        t.update(&req(TileId::new(1, 0, 0), Move::ZoomOut));
        assert!(!t.roi().is_empty());
        t.reset();
        assert!(t.roi().is_empty());
        assert!(!t.collecting());
    }
}
