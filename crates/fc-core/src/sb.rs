//! The Signature-Based (SB) recommender — the paper's Algorithm 3,
//! implemented verbatim.
//!
//! For every candidate tile `T_A` and every ROI tile `T_B`:
//!
//! 1. per signature `S_i`:  `d_{i,A,B} = 2^{dmanh(T_A,T_B)−1} · distχ²(S_i(T_A), S_i(T_B))`
//! 2. normalize by the per-signature maximum over all pairs;
//! 3. combine: `d_{A,B} = √(Σ_i w_i · d_{i,A,B}²) / dphysical(A,B)`
//! 4. per candidate: `d_A = Σ_B d_{A,B}`; rank ascending (most similar
//!    first).
//!
//! The χ² distance applies to all four signatures ("all four of our
//! current signatures produce histograms as output"). When the user has
//! not yet committed an ROI, the current tile serves as the reference —
//! the recommender then looks for "more tiles like the one being viewed".
//!
//! # Two evaluation paths
//!
//! [`SbRecommender::distances`] is the reference path: it reads every
//! signature through the store's locked metadata map. It is kept for
//! standalone use, for the golden regression test, and as the baseline
//! the perf benches compare against. The hot path is
//! [`SbRecommender::distances_indexed_into`]: it reads contiguous rows
//! of a frozen [`SignatureIndex`] with all tile/key lookups hoisted out
//! of the triple loop and every buffer reused from a caller-owned
//! [`PredictScratch`] — no locks, no signature copies, no allocation.
//! [`SbRecommender::distances_batched_into`] generalizes the hot path
//! to several sessions' jobs at once: one shared pair-matrix fill
//! (so the rayon fan-out engages on the summed candidate count) with
//! per-job normalization, keeping every job bit-identical to its
//! standalone run — see [`crate::batch::PredictScheduler`] for the
//! cross-session rendezvous built on it.
//! Both paths produce **bit-identical** distances for tiles inside
//! the index's geometry: they perform the same floating-point
//! operations in the same order (index rows are zero-padded, and χ²
//! skips all-zero bins). Metadata stored for out-of-geometry ids is
//! not representable in the index and ranks as "missing" there — see
//! the scope note in `fc_tiles::sigindex`.

use crate::paircache::{pair_key, pair_key_ordered, slot_base, PairCache, MAX_CACHED_SIGS};
use crate::recommender::{PredictionContext, Recommender};
use crate::signature::SignatureKind;
use fc_simd::{fast_recip, SimdLevel};
use fc_tiles::{MetaKey, SignatureIndex, TileId, TileStore};
use rayon::prelude::*;

/// How the hot paths evaluate the per-bin χ² division.
///
/// Applies to the indexed/batched fills (and therefore to the values a
/// [`PairCache`] memoizes — the cache stamps the kernel into its
/// validity domain, so switching kernels invalidates in O(1)). The
/// locked [`SbRecommender::distances`] reference path always computes
/// IEEE-exact divisions: it is the golden baseline both kernels are
/// tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Chi2Kernel {
    /// IEEE-exact per-bin division. Hot-path results are bit-identical
    /// to the reference path (golden-tested).
    #[default]
    Exact,
    /// The opt-in relaxed arithmetic mode, two effects:
    ///
    /// * cold/miss χ² uses a division-free reciprocal-multiply (an
    ///   exponent-trick initial guess refined by three Newton–Raphson
    ///   steps; multiplies and subtractions only, relative error
    ///   ≲ 4 × 10⁻⁹ per bin);
    /// * cached fills keep raw values ROI-major and finish with a
    ///   fused reassociated normalize/combine (`wᵢ/mᵢ²` hoisted, no
    ///   per-element normalization division, no transpose) — the
    ///   warm-path latency win.
    ///
    /// Distances stay within [`CHI2_RECIPROCAL_EPSILON`] relative of
    /// the exact path (golden + property tested); near-tie ranks can
    /// flip within that bound. Trades bit-exactness for divider-port
    /// relief and fewer passes.
    ///
    /// **Hardware caveat:** whether this wins is CPU-dependent. On
    /// cores with a fast pipelined double divider (e.g. recent x86-64,
    /// where `vdivpd` approaches one result per few cycles amortized),
    /// the three Newton–Raphson multiply chains can *lose* to the
    /// exact division — PR 4 measured exactly that on this project's
    /// reference container, and the SIMD exact path widens the gap.
    /// `exp_predict_steady` measures both on the current host and
    /// prints a one-line warning when `Reciprocal` is slower; treat it
    /// as an opt-in for divider-starved cores, not a default.
    Reciprocal,
}

/// Documented bound on the **relative** error of a full Algorithm 3
/// distance computed with [`Chi2Kernel::Reciprocal`] versus
/// [`Chi2Kernel::Exact`]: per-bin reciprocals are accurate to ≲ 4 ×
/// 10⁻⁹, the fused combine's reassociation of non-negative terms and
/// hoisted `1/m²` cost a few ulp more, and the subsequent sums and
/// square root are error-contracting or mildly amplifying, so
/// distances stay within `1e-6` relative of the exact path (golden +
/// property tested with this constant).
pub const CHI2_RECIPROCAL_EPSILON: f64 = 1e-6;

/// Configuration for the SB recommender.
#[derive(Debug, Clone)]
pub struct SbConfig {
    /// Which signatures participate, with their weights `w_i`
    /// ("All signatures are assigned equal weight by default, but the
    /// user can update these weight parameters as necessary").
    pub weights: Vec<(SignatureKind, f64)>,
    /// Apply Algorithm 3's line-8 Manhattan penalty `2^(dmanh−1)`
    /// (disabled only by the ablation benches).
    pub manhattan_penalty: bool,
    /// Apply Algorithm 3's line-13 division by `dphysical(A,B)`
    /// (disabled only by the ablation benches).
    pub physical_distance: bool,
    /// χ² evaluation kernel for the indexed hot paths (default
    /// [`Chi2Kernel::Exact`], bit-identical to the reference path).
    pub kernel: Chi2Kernel,
}

impl SbConfig {
    /// All four signatures with equal weight.
    pub fn all_equal() -> Self {
        Self {
            weights: crate::signature::SIGNATURE_KINDS
                .iter()
                .map(|&k| (k, 1.0))
                .collect(),
            manhattan_penalty: true,
            physical_distance: true,
            kernel: Chi2Kernel::Exact,
        }
    }

    /// A single signature (used by the Fig. 10b per-signature runs).
    pub fn single(kind: SignatureKind) -> Self {
        Self {
            weights: vec![(kind, 1.0)],
            ..Self::all_equal()
        }
    }
}

/// Reusable buffers for the allocation-free predict path. Owned by the
/// caller (the [`crate::engine::PredictionEngine`] keeps one per
/// session) and grown to the high-water mark of
/// `candidates × signatures × ROI`; steady-state predictions then
/// allocate nothing.
#[derive(Debug, Default)]
pub struct PredictScratch {
    /// Penalized (unnormalized) χ² per (candidate, signature, roi),
    /// candidate-major so each candidate owns one contiguous block
    /// (enables disjoint parallel fills). Normalization by the
    /// per-signature maxima happens inside the combine pass — the same
    /// per-element division, fused to avoid a full rewrite sweep.
    pair: Vec<f64>,
    /// Per-(job, signature) normalization maxima (Algorithm 3 line 2),
    /// job-major (`nsig` entries per job).
    maxes: Vec<f64>,
    /// Dense index per candidate (`usize::MAX` = outside the index).
    cand_rows: Vec<usize>,
    /// Manhattan penalty per (candidate, roi) pair — it is independent
    /// of the signature, so it is computed once per pair instead of
    /// once per (signature, pair).
    penalties: Vec<f64>,
    /// Physical-distance denominator per (candidate, roi) pair, sharing
    /// the penalty pass's level projection.
    denoms: Vec<f64>,
    /// Matrix row offset per (signature, roi) (`usize::MAX` = the ROI
    /// tile has no vector under that signature's key).
    roi_offsets: Vec<usize>,
    /// Per-ROI weighted-l2 partials for the current candidate.
    sq: Vec<f64>,
    /// Scored candidates, reused by [`SbRecommender::rank_indexed`].
    scored: Vec<(TileId, f64)>,
    /// Per-job layout descriptors for the batched fill.
    descs: Vec<JobDesc>,
    /// Job index per flat candidate across the batch.
    job_of: Vec<u32>,
    /// Dense index per (job, ROI tile) (`usize::MAX` = outside the
    /// index) — the cache key half the pair probes share.
    roi_dense: Vec<usize>,
    /// ROI positions of the current candidate's cache misses.
    miss_bi: Vec<u32>,
    /// Geometry `(dmanh, dphysical)` per miss, stashed for write-back.
    miss_geo: Vec<(u32, f64)>,
    /// Row offsets gathered over the miss frontier.
    gath_offs: Vec<usize>,
    /// χ² lane outputs over the miss frontier.
    gath_out: Vec<f64>,
    /// All-ones penalty slice handed to the fused χ² lanes when the
    /// cached fill wants raw values (`1.0 · x` is exact).
    ones: Vec<f64>,
    /// Whether the last fill used the cached ROI-major layout: `pair`
    /// holds **raw** values ROI-major (`nsig` lanes per pair) and
    /// `combine_job` must run the matching streaming pass (exact or
    /// fused-reciprocal by kernel). Set by `batch_fill`, consumed by
    /// `combine_job`.
    roi_major: bool,
}

/// One session's slice of a cross-session predict batch: its candidate
/// set scored against its own reference (ROI) tiles. Jobs in one batch
/// share a single pair-matrix fill but are normalized and combined
/// independently, so each job's distances are bit-identical to running
/// [`SbRecommender::distances_indexed_into`] on that job alone.
#[derive(Debug, Clone, Copy)]
pub struct SbBatchJob<'a> {
    /// Candidate tiles to score.
    pub candidates: &'a [TileId],
    /// Reference tiles (the session's ROI, or its current tile).
    pub roi: &'a [TileId],
}

/// Offsets of one job's slices inside the flat batch scratch buffers.
#[derive(Debug, Clone, Copy, Default)]
struct JobDesc {
    /// Candidate count.
    nc: usize,
    /// Reference-tile count.
    nr: usize,
    /// First flat candidate index (into `cand_rows` / pair blocks).
    cand_off: usize,
    /// Offset into `roi_offsets` (job occupies `nsig * nr` entries).
    roioff_off: usize,
    /// Offset into `penalties`/`denoms` (job occupies `nc * nr`).
    pen_off: usize,
    /// Offset into `roi_dense` (job occupies `nr` entries).
    rd_off: usize,
}

/// Sentinel for "no row" in the hoisted offset tables.
const NO_ROW: usize = usize::MAX;

/// Parallelize the per-candidate distance fill only at batch sizes
/// where the fan-out pays for itself; interactive candidate sets
/// (|C| ≤ 24 at d = 1) stay on the allocation-free sequential path.
const SB_PAR_MIN_CANDIDATES: usize = 512;

/// The SB recommendation model.
#[derive(Debug, Clone)]
pub struct SbRecommender {
    cfg: SbConfig,
    /// Interned metadata keys, parallel to `cfg.weights` — resolved
    /// once at construction so the hot path never touches strings.
    keys: Vec<MetaKey>,
    /// SIMD dispatch level for the hot-path kernels, resolved once at
    /// construction (runtime CPU detection, `FC_FORCE_SCALAR` /
    /// `FC_SIMD` overrides). Every level is bit-identical on the exact
    /// paths, so it is *not* part of the pair cache's validity domain.
    simd: SimdLevel,
    name: String,
}

impl SbRecommender {
    /// Creates a recommender with the given signature weights.
    pub fn new(cfg: SbConfig) -> Self {
        Self::with_simd_level(cfg, fc_simd::active_level())
    }

    /// [`Self::new`] with an explicit SIMD dispatch level (clamped to
    /// what the CPU supports), ignoring the environment knobs — used by
    /// the per-level golden tests and the scalar-baseline benches.
    pub fn with_simd_level(cfg: SbConfig, level: SimdLevel) -> Self {
        let name = if cfg.weights.len() == 1 {
            format!("SB:{}", cfg.weights[0].0.display_name())
        } else {
            "SB".to_string()
        };
        let keys = cfg
            .weights
            .iter()
            .map(|&(kind, _)| MetaKey::intern(kind.meta_name()))
            .collect();
        Self {
            cfg,
            keys,
            simd: fc_simd::clamp_level(level),
            name,
        }
    }

    /// The SIMD dispatch level the hot paths run at.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Computes Algorithm 3's distance values for `candidates` against
    /// `roi`, returning `(candidate, d_A)` pairs (unsorted).
    ///
    /// This is the **reference path**: it re-reads every signature
    /// through the store's metadata lock, per pair. Use
    /// [`Self::distances_indexed_into`] on the request path.
    pub fn distances(
        &self,
        store: &TileStore,
        candidates: &[TileId],
        roi: &[TileId],
    ) -> Vec<(TileId, f64)> {
        let nsig = self.cfg.weights.len();
        // d[i][(a, b)] laid out as d[i][a * roi.len() + b].
        let mut per_sig = vec![vec![0.0f64; candidates.len() * roi.len()]; nsig];
        let mut maxes = vec![1.0f64; nsig]; // line 2: d_i,MAX ← 1

        for (i, &key) in self.keys.iter().enumerate() {
            for (ai, &a) in candidates.iter().enumerate() {
                let sig_a = store.meta_vec_key(a, key);
                for (bi, &b) in roi.iter().enumerate() {
                    let sig_b = store.meta_vec_key(b, key);
                    let raw = match (&sig_a, &sig_b) {
                        (Some(x), Some(y)) => chi_squared(x, y),
                        // Missing metadata: treated as maximally distant.
                        _ => 1.0,
                    };
                    let v = penalized(self.cfg.manhattan_penalty, a, b, raw);
                    per_sig[i][ai * roi.len() + bi] = v;
                    maxes[i] = maxes[i].max(v);
                }
            }
        }

        // Lines 10-15: normalize, combine, sum over ROI tiles.
        candidates
            .iter()
            .enumerate()
            .map(|(ai, &a)| {
                let total = combine_one(&self.cfg, a, roi, |i, bi| {
                    per_sig[i][ai * roi.len() + bi] / maxes[i]
                });
                (a, total)
            })
            .collect()
    }

    /// The allocation-free hot path: Algorithm 3 over the frozen
    /// [`SignatureIndex`], writing `(candidate, d_A)` pairs into `out`
    /// (cleared first). All metadata lookups are hoisted out of the
    /// triple loop; χ² runs over contiguous matrix rows; every buffer
    /// comes from `scratch`. Results are bit-identical to
    /// [`Self::distances`].
    pub fn distances_indexed_into(
        &self,
        index: &SignatureIndex,
        candidates: &[TileId],
        roi: &[TileId],
        scratch: &mut PredictScratch,
        out: &mut Vec<(TileId, f64)>,
    ) {
        let job = SbBatchJob { candidates, roi };
        let stride = self.batch_fill(index, std::slice::from_ref(&job), scratch, None);
        out.clear();
        self.combine_job(0, &job, stride, scratch, out);
    }

    /// [`Self::distances_indexed_into`] through an epoch-stamped
    /// [`PairCache`]: every (candidate, ROI) pair is probed first, only
    /// the miss frontier runs the χ² kernel, and misses are written
    /// back for the next request. With [`Chi2Kernel::Exact`] (the
    /// default) results are **bit-identical** to
    /// [`Self::distances_indexed_into`] — and therefore to
    /// [`Self::distances`] — across hits, misses and epoch
    /// invalidations (golden-tested); with [`Chi2Kernel::Reciprocal`]
    /// they are within [`CHI2_RECIPROCAL_EPSILON`] relative.
    pub fn distances_indexed_cached_into(
        &self,
        index: &SignatureIndex,
        candidates: &[TileId],
        roi: &[TileId],
        cache: &mut PairCache,
        scratch: &mut PredictScratch,
        out: &mut Vec<(TileId, f64)>,
    ) {
        let job = SbBatchJob { candidates, roi };
        let stride = self.batch_fill(index, std::slice::from_ref(&job), scratch, Some(cache));
        out.clear();
        self.combine_job(0, &job, stride, scratch, out);
    }

    /// Algorithm 3 over several sessions' jobs at once — the
    /// cross-session batching entry point. All jobs share **one**
    /// pair-matrix fill (the expensive χ² sweep), so the rayon fan-out
    /// engages on the *total* candidate count across sessions
    /// (≥ `SB_PAR_MIN_CANDIDATES`, 512) even when each individual session
    /// brings an interactive-sized candidate set. Normalization maxima
    /// and the combine pass stay **per job**, so `outs[j]` is
    /// bit-identical to calling [`Self::distances_indexed_into`] with
    /// job `j` alone.
    ///
    /// `outs` is resized to `jobs.len()`; inner vectors are reused
    /// across calls (allocation-free at a steady batch shape).
    pub fn distances_batched_into(
        &self,
        index: &SignatureIndex,
        jobs: &[SbBatchJob<'_>],
        scratch: &mut PredictScratch,
        outs: &mut Vec<Vec<(TileId, f64)>>,
    ) {
        let stride = self.batch_fill(index, jobs, scratch, None);
        self.combine_jobs(jobs, stride, scratch, outs);
    }

    /// [`Self::distances_batched_into`] through a shared [`PairCache`]:
    /// the cross-session scheduler hands every tick the same cache, so
    /// one session's pans warm the pairs another session probes. Same
    /// exactness contract as [`Self::distances_indexed_cached_into`].
    pub fn distances_batched_cached_into(
        &self,
        index: &SignatureIndex,
        jobs: &[SbBatchJob<'_>],
        cache: &mut PairCache,
        scratch: &mut PredictScratch,
        outs: &mut Vec<Vec<(TileId, f64)>>,
    ) {
        let stride = self.batch_fill(index, jobs, scratch, Some(cache));
        self.combine_jobs(jobs, stride, scratch, outs);
    }

    /// Shared tail of the batched entry points: normalize/combine every
    /// job into its own output vector. `outs` is resized to
    /// `jobs.len()` (`resize_with` both grows and shrinks); inner
    /// vectors are reused across calls.
    fn combine_jobs(
        &self,
        jobs: &[SbBatchJob<'_>],
        stride: usize,
        scratch: &mut PredictScratch,
        outs: &mut Vec<Vec<(TileId, f64)>>,
    ) {
        outs.resize_with(jobs.len(), Vec::new);
        for (j, job) in jobs.iter().enumerate() {
            let mut out = std::mem::take(&mut outs[j]);
            out.clear();
            self.combine_job(j, job, stride, scratch, &mut out);
            outs[j] = out;
        }
    }

    /// The shared batch core: hoists per-job lookups, fills every
    /// candidate's penalized-χ² block (flat across jobs, parallel past
    /// [`SB_PAR_MIN_CANDIDATES`] total candidates), then normalizes
    /// per job (Algorithm 3 lines 2 + 10-11). Returns the per-candidate
    /// block stride (`nsig × max_j nr_j`; blocks of jobs with fewer
    /// reference tiles are zero-padded at the tail and never read).
    ///
    /// With a [`PairCache`], the fill probes every (candidate, ROI)
    /// pair first and runs the χ² kernel only over the miss frontier
    /// (see [`Self::fill_cached`]); the cached fill is sequential —
    /// probes and write-backs mutate the cache — and targets
    /// interactive steady state, where hits dominate and the rayon
    /// fan-out would have nothing to chew on anyway.
    fn batch_fill(
        &self,
        index: &SignatureIndex,
        jobs: &[SbBatchJob<'_>],
        scratch: &mut PredictScratch,
        cache: Option<&mut PairCache>,
    ) -> usize {
        let nsig = self.cfg.weights.len();
        let nr_max = jobs.iter().map(|j| j.roi.len()).max().unwrap_or(0);
        let stride = nsig * nr_max;
        // A cache only participates once it accepts the fill's domain
        // (index build, kernel, key set); otherwise fall through to the
        // uncached fill untouched.
        let cache = cache.and_then(|c| {
            if c.begin(index, self.cfg.kernel, &self.keys) {
                Some(c)
            } else {
                None
            }
        });
        let cached = cache.is_some();

        // Hoisted lookups, each performed once per batch instead of
        // once per pair inside the triple loop:
        scratch.descs.clear();
        scratch.job_of.clear();
        scratch.cand_rows.clear();
        scratch.roi_offsets.clear();
        scratch.roi_dense.clear();
        // Cached fills write every (candidate, ROI) slot of
        // `penalties`/`denoms` during the probe pass, so those stay
        // grow-only there (no clearing memset); the uncached hoist
        // pushes, so it starts from empty.
        if !cached {
            scratch.penalties.clear();
            scratch.denoms.clear();
        }
        let mut pen_len = 0usize;
        let mut total_nc = 0usize;
        for (j, job) in jobs.iter().enumerate() {
            scratch.descs.push(JobDesc {
                nc: job.candidates.len(),
                nr: job.roi.len(),
                cand_off: total_nc,
                roioff_off: scratch.roi_offsets.len(),
                pen_off: pen_len,
                rd_off: scratch.roi_dense.len(),
            });
            scratch
                .job_of
                .extend(std::iter::repeat_n(j as u32, job.candidates.len()));
            // candidate dense indices …
            scratch.cand_rows.extend(
                job.candidates
                    .iter()
                    .map(|&t| index.dense_index(t).unwrap_or(NO_ROW)),
            );
            // … ROI dense indices (the probe key half shared by every
            // candidate of the job) …
            scratch.roi_dense.extend(
                job.roi
                    .iter()
                    .map(|&b| index.dense_index(b).unwrap_or(NO_ROW)),
            );
            // … ROI row offsets per signature …
            for &key in &self.keys {
                let mat = index.matrix(key);
                let rd = &scratch.roi_dense[scratch.roi_dense.len() - job.roi.len()..];
                scratch.roi_offsets.extend(rd.iter().map(|&d| {
                    if d == NO_ROW {
                        NO_ROW
                    } else {
                        mat.and_then(|m| m.row_offset(d)).unwrap_or(NO_ROW)
                    }
                }));
            }
            // … and the signature-independent pair geometry: the
            // Manhattan penalty and the physical-distance denominator
            // share one level-projection per pair instead of
            // recomputing it in the combine loop. The cached fill
            // resolves geometry per pair instead (slot hit or miss
            // compute), so it only reserves the slots here.
            pen_len += job.candidates.len() * job.roi.len();
            if cached {
                if scratch.penalties.len() < pen_len {
                    scratch.penalties.resize(pen_len, 0.0);
                    scratch.denoms.resize(pen_len, 0.0);
                }
            } else {
                for &a in job.candidates {
                    for &b in job.roi {
                        let (dmanh, dphys) = pair_geometry(a, b);
                        scratch.penalties.push(if self.cfg.manhattan_penalty {
                            exp2i(dmanh as i32 - 1)
                        } else {
                            1.0
                        });
                        scratch.denoms.push(if self.cfg.physical_distance {
                            dphys
                        } else {
                            1.0
                        });
                    }
                }
            }
            total_nc += job.candidates.len();
        }

        // Grow-only: every cell the normalize/combine passes read is
        // written by the fill below (rows are packed `0..nsig·nr`;
        // the `nsig·nr..stride` padding is never read), so stale data
        // past the high-water mark needs no clearing pass.
        let need = total_nc * stride;
        if scratch.pair.len() < need {
            scratch.pair.resize(need, 0.0);
        }

        // Line 2: d_i,MAX ← 1, per (job, signature). The cached
        // ROI-major fill accumulates these on the fly; the uncached
        // path scans after the fill (gated below).
        scratch.maxes.clear();
        scratch.maxes.resize(jobs.len() * nsig, 1.0);
        scratch.roi_major = cached && stride > 0;

        if let Some(cache) = cache {
            if stride > 0 {
                self.fill_cached(index, jobs, stride, scratch, cache);
            }
        } else {
            // Fill the penalized χ² block of every candidate. Blocks
            // are disjoint, so large batches (bulk replay / coalesced
            // multi-session predicts) fan out across cores; results
            // are bit-identical to the sequential fill because each
            // block's arithmetic is self-contained.
            let kernel = self.cfg.kernel;
            let simd = self.simd;
            let roi_offsets = &scratch.roi_offsets;
            let penalties = &scratch.penalties;
            let cand_rows = &scratch.cand_rows;
            let descs = &scratch.descs;
            let job_of = &scratch.job_of;
            let fill = |fi: usize, chunk: &mut [f64]| {
                let d = descs[job_of[fi] as usize];
                let nr = d.nr;
                if nr == 0 {
                    return;
                }
                let ai = fi - d.cand_off;
                let ra = cand_rows[fi];
                let pen = &penalties[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                for (i, &key) in self.keys.iter().enumerate() {
                    let out_row = &mut chunk[i * nr..(i + 1) * nr];
                    let offs = &roi_offsets[d.roioff_off + i * nr..d.roioff_off + (i + 1) * nr];
                    let mat_row = index.matrix(key).and_then(|m| {
                        let row = if ra != NO_ROW { m.row(ra) } else { None };
                        row.map(|r| (m, r))
                    });
                    match mat_row {
                        Some((mat, row_a)) => {
                            chi_squared_lanes(kernel, simd, row_a, mat.data(), offs, pen, out_row);
                        }
                        // Candidate (or whole key) missing: every pair is
                        // maximally distant (raw = 1) times its penalty.
                        None => {
                            for bi in 0..nr {
                                out_row[bi] = pen[bi] * 1.0;
                            }
                        }
                    }
                }
            };
            if stride > 0 && total_nc >= SB_PAR_MIN_CANDIDATES {
                scratch.pair[..need]
                    .par_chunks_mut(stride)
                    .with_min_len(1)
                    .enumerate()
                    .for_each(|(fi, chunk)| fill(fi, chunk));
            } else if stride > 0 {
                for (fi, chunk) in scratch.pair[..need].chunks_mut(stride).enumerate() {
                    fill(fi, chunk);
                }
            }
        }

        // Line 2 **per job**: per-signature maxima over the job's pair
        // blocks ([`fc_simd::max_num`] selects one argument and is
        // insensitive to accumulation order, so neither the parallel
        // fill nor the blocked/vector scan can change the result). The
        // line-10-11 normalization division itself is fused into
        // `combine_job` — the identical per-element `v / max`, without
        // a full rewrite-and-reread sweep of the pair matrix. Jobs
        // never share maxima: batching cannot change any session's
        // normalization. (The cached ROI-major fill already
        // accumulated its maxima — and uses a layout this scan cannot
        // read — so it skips the scan.)
        let scan_jobs = if scratch.roi_major { 0 } else { jobs.len() };
        for j in 0..scan_jobs {
            let d = scratch.descs[j];
            if d.nr == 0 || d.nc == 0 {
                continue;
            }
            let maxes = &mut scratch.maxes[j * nsig..(j + 1) * nsig];
            for ai in 0..d.nc {
                let chunk = &scratch.pair[(d.cand_off + ai) * stride..];
                for (i, mx) in maxes.iter_mut().enumerate() {
                    let row = &chunk[i * d.nr..(i + 1) * d.nr];
                    let m = fc_simd::max_scan(self.simd, row);
                    *mx = fc_simd::max_num(*mx, m);
                }
            }
        }
        stride
    }

    /// The cache-aware fill, shared by both kernels: per candidate,
    /// probe the [`PairCache`] for every ROI pair, resolve hits (and
    /// missing tiles) **straight into the pair matrix ROI-major** —
    /// `nsig` raw lanes per pair, no staging buffer, no transpose —
    /// run the χ² kernel over the gathered miss frontier only, write
    /// misses back, and accumulate the per-signature maxima on the fly
    /// from the same `pen · raw` products the uncached path scans
    /// ([`fc_simd::max_num`] is order-insensitive, so the maxima equal
    /// that scan's bit-for-bit). [`Self::combine_job`] consumes the
    /// layout with one streaming pass per kernel: the exact pass
    /// performs the reference's normalize/combine operations in the
    /// reference order (bit-identical — `raw · pen` is the same IEEE
    /// product as the uncached fill's `pen · raw`, and gathering
    /// misses never regroups any accumulation), the Reciprocal pass
    /// the fused reassociated variant (within
    /// [`CHI2_RECIPROCAL_EPSILON`] relative).
    fn fill_cached(
        &self,
        index: &SignatureIndex,
        jobs: &[SbBatchJob<'_>],
        stride: usize,
        scratch: &mut PredictScratch,
        cache: &mut PairCache,
    ) {
        let nsig = self.keys.len();
        let (mut hits, mut misses) = (0u64, 0u64);
        let nr_max = stride / nsig.max(1);
        if scratch.ones.len() < nr_max {
            scratch.ones.resize(nr_max, 1.0);
        }
        let s = &mut *scratch;
        let pair = &mut s.pair;
        let penalties = &mut s.penalties;
        let denoms = &mut s.denoms;
        let all_maxes = &mut s.maxes;
        let miss_bi = &mut s.miss_bi;
        let miss_geo = &mut s.miss_geo;
        let gath_offs = &mut s.gath_offs;
        let gath_out = &mut s.gath_out;
        let ones = &s.ones;
        for (j, job) in jobs.iter().enumerate() {
            let d = s.descs[j];
            let nr = d.nr;
            if nr == 0 {
                continue;
            }
            let rd = &s.roi_dense[d.rd_off..d.rd_off + nr];
            let rd_max = rd.iter().copied().max().unwrap_or(NO_ROW);
            let jmax = &mut all_maxes[j * nsig..(j + 1) * nsig];
            for ai in 0..d.nc {
                let fi = d.cand_off + ai;
                let ra = s.cand_rows[fi];
                let chunk = &mut pair[fi * stride..(fi + 1) * stride];
                let pen = &mut penalties[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                let den = &mut denoms[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                let a = job.candidates[ai];
                // Resolve every pair straight into the ROI-major pair
                // matrix (no transpose), misses deferred.
                let (h, m) = self.resolve_pairs(
                    cache, a, job.roi, ra, rd, rd_max, chunk, nsig, pen, den, miss_bi, miss_geo,
                );
                hits += h;
                misses += m;
                if !miss_bi.is_empty() {
                    self.miss_frontier(
                        index,
                        ra,
                        nr,
                        d.roioff_off,
                        &s.roi_offsets,
                        miss_bi,
                        gath_offs,
                        gath_out,
                        ones,
                        |i, _mi, bi, raw| chunk[bi * nsig + i] = raw,
                    );
                    // ROI-major lanes are contiguous per pair, so the
                    // write-back reads them straight from the matrix.
                    for (mi, &bi) in miss_bi.iter().enumerate() {
                        let bi = bi as usize;
                        let (dmanh, dphys) = miss_geo[mi];
                        cache.insert(
                            pair_key(ra, rd[bi]),
                            &chunk[bi * nsig..(bi + 1) * nsig],
                            dmanh,
                            dphys,
                        );
                    }
                }
                // Line 2 on the fly: the same `pen · raw` products the
                // uncached scan maximizes over, in a different order —
                // `max_num` doesn't care. Full-width configs take the
                // vector kernel (one `max_num` lane per signature).
                if nsig == MAX_CACHED_SIGS {
                    let jm: &mut [f64; MAX_CACHED_SIGS] = (&mut jmax[..MAX_CACHED_SIGS])
                        .try_into()
                        .expect("nsig == 4");
                    fc_simd::max_pen_accum4(self.simd, &chunk[..nr * nsig], pen, jm);
                } else {
                    for (bi, &p) in pen.iter().enumerate() {
                        let lanes = &chunk[bi * nsig..(bi + 1) * nsig];
                        for (mx, &v) in jmax.iter_mut().zip(lanes) {
                            *mx = fc_simd::max_num(*mx, p * v);
                        }
                    }
                }
            }
        }
        cache.record(hits, misses);
    }

    /// Resolves one candidate's (candidate, ROI) pairs against the
    /// cache — the single source of the probe protocol both cached
    /// fills share. Per pair: writes the flag-adjusted penalty and
    /// denominator, copies hit (or missing-tile) raw lanes into
    /// `lanes` (`lw`-strided, `lw ≥ nsig`), and defers misses into
    /// `miss_bi`/`miss_geo` with their geometry stashed for
    /// write-back. Returns the (hits, misses) deltas.
    ///
    /// Fast path: when every ROI dense index is valid and below the
    /// candidate's (the steady state — ROI tiles live at coarser
    /// levels, which have smaller dense indices), the candidate is the
    /// `hi` half of every pair key: one hash per candidate,
    /// consecutive slots per ROI. `NO_ROW` is `usize::MAX`, so any
    /// out-of-geometry ROI tile disables the fast path by dominating
    /// `rd_max`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn resolve_pairs(
        &self,
        cache: &PairCache,
        a: TileId,
        roi: &[TileId],
        ra: usize,
        rd: &[usize],
        rd_max: usize,
        lanes: &mut [f64],
        lw: usize,
        pen: &mut [f64],
        den: &mut [f64],
        miss_bi: &mut Vec<u32>,
        miss_geo: &mut Vec<(u32, f64)>,
    ) -> (u64, u64) {
        let nsig = self.keys.len();
        let (mut hits, mut misses) = (0u64, 0u64);
        miss_bi.clear();
        miss_geo.clear();
        let tile_missing =
            |bi: usize, b: TileId, pen: &mut [f64], den: &mut [f64], lanes: &mut [f64]| {
                // Candidate or ROI tile outside the index: every signature
                // reads as raw distance 1.
                let (dmanh, dphys) = pair_geometry(a, b);
                pen[bi] = self.penalty_of(dmanh);
                den[bi] = self.denom_of(dphys);
                lanes[bi * lw..bi * lw + nsig].fill(1.0);
            };
        if ra == NO_ROW {
            for (bi, &b) in roi.iter().enumerate() {
                tile_missing(bi, b, pen, den, lanes);
            }
        } else if ra > rd_max {
            let base = slot_base(ra);
            for (bi, &rb) in rd.iter().enumerate() {
                let key = pair_key_ordered(rb, ra);
                if let Some(slot) = cache.probe_from(base, rb, key) {
                    hits += 1;
                    pen[bi] = self.penalty_of(slot.dmanh);
                    den[bi] = self.denom_of(slot.denom);
                    copy_lanes(lanes, bi * lw, slot, nsig);
                } else {
                    misses += 1;
                    let (dmanh, dphys) = pair_geometry(a, roi[bi]);
                    pen[bi] = self.penalty_of(dmanh);
                    den[bi] = self.denom_of(dphys);
                    miss_bi.push(bi as u32);
                    miss_geo.push((dmanh, dphys));
                }
            }
        } else {
            for (bi, &b) in roi.iter().enumerate() {
                let rb = rd[bi];
                if rb == NO_ROW {
                    tile_missing(bi, b, pen, den, lanes);
                } else if let Some(slot) = cache.probe(pair_key(ra, rb)) {
                    hits += 1;
                    pen[bi] = self.penalty_of(slot.dmanh);
                    den[bi] = self.denom_of(slot.denom);
                    copy_lanes(lanes, bi * lw, slot, nsig);
                } else {
                    misses += 1;
                    let (dmanh, dphys) = pair_geometry(a, b);
                    pen[bi] = self.penalty_of(dmanh);
                    den[bi] = self.denom_of(dphys);
                    miss_bi.push(bi as u32);
                    miss_geo.push((dmanh, dphys));
                }
            }
        }
        (hits, misses)
    }

    /// Runs the χ² kernel over one candidate's miss frontier: per
    /// signature, gathers the missing pairs' row offsets, computes raw
    /// values (unit penalties — `1.0 · x` is exact), and hands each to
    /// `scatter(i, mi, bi, raw)`. Shared by both cached fills; only
    /// the scatter destination differs between layouts.
    #[allow(clippy::too_many_arguments)]
    fn miss_frontier(
        &self,
        index: &SignatureIndex,
        ra: usize,
        nr: usize,
        roioff_off: usize,
        roi_offsets: &[usize],
        miss_bi: &[u32],
        gath_offs: &mut Vec<usize>,
        gath_out: &mut Vec<f64>,
        ones: &[f64],
        mut scatter: impl FnMut(usize, usize, usize, f64),
    ) {
        let nm = miss_bi.len();
        for (i, &key) in self.keys.iter().enumerate() {
            let offs = &roi_offsets[roioff_off + i * nr..roioff_off + (i + 1) * nr];
            gath_offs.clear();
            gath_offs.extend(miss_bi.iter().map(|&bi| offs[bi as usize]));
            gath_out.clear();
            gath_out.resize(nm, 0.0);
            match index.matrix(key).and_then(|m| m.row(ra).map(|r| (m, r))) {
                Some((mat, row_a)) => chi_squared_lanes(
                    self.cfg.kernel,
                    self.simd,
                    row_a,
                    mat.data(),
                    gath_offs,
                    &ones[..nm],
                    gath_out,
                ),
                None => gath_out.iter_mut().for_each(|v| *v = 1.0),
            }
            for (mi, &bi) in miss_bi.iter().enumerate() {
                scatter(i, mi, bi as usize, gath_out[mi]);
            }
        }
    }

    /// Line 8's penalty factor from a cached/computed Manhattan
    /// distance, honoring the ablation flag.
    #[inline]
    fn penalty_of(&self, dmanh: u32) -> f64 {
        if self.cfg.manhattan_penalty {
            exp2i(dmanh as i32 - 1)
        } else {
            1.0
        }
    }

    /// Line 13's denominator from a cached/computed physical distance,
    /// honoring the ablation flag.
    #[inline]
    fn denom_of(&self, dphys: f64) -> f64 {
        if self.cfg.physical_distance {
            dphys
        } else {
            1.0
        }
    }

    /// Lines 10-15 for one job: normalize (the division by the
    /// per-signature maxima, exactly as the reference path performs it
    /// inside its combine closure), weighted l2 combine, physical
    /// distance, sum over ROI — same operation order as `distances`.
    /// The per-pair `sq`/`t` phases are element-independent
    /// (vectorizable); only the final per-candidate sum is
    /// order-sensitive, and it runs in ROI order exactly like the
    /// reference path.
    fn combine_job(
        &self,
        j: usize,
        job: &SbBatchJob<'_>,
        stride: usize,
        scratch: &mut PredictScratch,
        out: &mut Vec<(TileId, f64)>,
    ) {
        let nsig = self.cfg.weights.len();
        let d = scratch.descs[j];
        let nr = d.nr;
        out.reserve(d.nc);
        let weights = &self.cfg.weights;
        let maxes = &scratch.maxes[j * nsig..(j + 1) * nsig];
        if scratch.roi_major && self.cfg.kernel == Chi2Kernel::Reciprocal {
            // Fused reassociated combine over the ROI-major raw
            // layout: hoist `cᵢ = wᵢ/mᵢ²` once, then per pair
            // `√(pen²·Σᵢ cᵢ·rawᵢ²) / dphys` — multiplies where the
            // exact path divides per element. Epsilon-bounded against
            // the exact path ([`CHI2_RECIPROCAL_EPSILON`]); only
            // reachable in [`Chi2Kernel::Reciprocal`] mode.
            let mut c = [0.0f64; MAX_CACHED_SIGS];
            for (ci, (&(_, w), &m)) in c.iter_mut().zip(weights.iter().zip(maxes)) {
                *ci = w / (m * m);
            }
            for (ai, &a) in job.candidates.iter().enumerate() {
                let base = (d.cand_off + ai) * stride;
                let block = &scratch.pair[base..base + nr * nsig];
                let pens = &scratch.penalties[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                let dens = &scratch.denoms[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                let mut total = 0.0f64;
                for ((lanes, &p), &dn) in block.chunks_exact(nsig).zip(pens).zip(dens) {
                    let mut sq = 0.0f64;
                    for (&ci, &v) in c[..nsig].iter().zip(lanes) {
                        sq += ci * (v * v);
                    }
                    total += (sq * (p * p)).sqrt() / dn;
                }
                out.push((a, total));
            }
            return;
        }
        if scratch.roi_major {
            // Exact streaming combine over the ROI-major raw layout —
            // Algorithm 3 lines 10-15 with the reference's exact
            // operations and order per pair: `dv = (raw·pen)/mᵢ` (the
            // same IEEE product as the fill's `pen·raw`), `sq += wᵢ
            // ·dv·dv` in signature order, `total += √sq/dphys` in ROI
            // order. Bit-identical to the sig-major path below (and
            // therefore to the reference); the full-width config takes
            // the vector kernel, which transposes in registers while
            // preserving exactly this order per lane.
            let pens_all = &scratch.penalties;
            let dens_all = &scratch.denoms;
            let mut w4 = [0.0f64; MAX_CACHED_SIGS];
            let mut m4 = [1.0f64; MAX_CACHED_SIGS];
            for (i, (&(_, w), &m)) in weights.iter().zip(maxes).enumerate().take(MAX_CACHED_SIGS) {
                w4[i] = w;
                m4[i] = m;
            }
            for (ai, &a) in job.candidates.iter().enumerate() {
                let base = (d.cand_off + ai) * stride;
                let block = &scratch.pair[base..base + nr * nsig];
                let pens = &pens_all[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                let dens = &dens_all[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
                let total = if nsig == MAX_CACHED_SIGS {
                    fc_simd::combine_exact4(self.simd, block, pens, dens, &w4, &m4)
                } else {
                    let mut total = 0.0f64;
                    for ((lanes, &p), &dn) in block.chunks_exact(nsig).zip(pens).zip(dens) {
                        let mut sq = 0.0f64;
                        for (i, &(_, w)) in weights.iter().enumerate() {
                            let dv = (lanes[i] * p) / maxes[i];
                            sq += w * dv * dv;
                        }
                        total += sq.sqrt() / dn;
                    }
                    total
                };
                out.push((a, total));
            }
            return;
        }
        scratch.sq.clear();
        scratch.sq.resize(nr, 0.0);
        for (ai, &a) in job.candidates.iter().enumerate() {
            let base = (d.cand_off + ai) * stride;
            // Phase a: sq[bi] = Σ_i w_i · (v/mᵢ)², accumulated
            // sig-major so each addition matches the reference's
            // i-order per pair.
            scratch.sq.iter_mut().for_each(|v| *v = 0.0);
            for (i, &(_, w)) in weights.iter().enumerate() {
                let row = &scratch.pair[base + i * nr..base + (i + 1) * nr];
                // Vector div-mul-mul-add lanes; the per-element
                // operation order is unchanged.
                fc_simd::norm_sq_accum(self.simd, row, maxes[i], w, &mut scratch.sq);
            }
            // Phase b+c: t = √sq / dphysical, summed in ROI order.
            let denoms = &scratch.denoms[d.pen_off + ai * nr..d.pen_off + (ai + 1) * nr];
            let total = fc_simd::sqrt_div_sum(self.simd, &scratch.sq, denoms);
            out.push((a, total));
        }
    }

    /// Ranks candidates against the context's reference set using the
    /// frozen index and caller-owned scratch. Ordering is identical to
    /// [`Recommender::rank`] on the same data.
    pub fn rank_indexed(
        &self,
        ctx: &PredictionContext<'_>,
        index: &SignatureIndex,
        scratch: &mut PredictScratch,
    ) -> Vec<TileId> {
        let fallback = [ctx.request.tile];
        let refs: &[TileId] = if ctx.roi.is_empty() {
            &fallback
        } else {
            ctx.roi
        };
        let mut scored = std::mem::take(&mut scratch.scored);
        self.distances_indexed_into(index, ctx.candidates, refs, scratch, &mut scored);
        sort_scored(&mut scored);
        let ranked = scored.iter().map(|&(t, _)| t).collect();
        scratch.scored = scored;
        ranked
    }

    /// [`Self::rank_indexed`] through an epoch-stamped [`PairCache`] —
    /// the steady-state request path. Ordering is identical to
    /// [`Self::rank_indexed`] in [`Chi2Kernel::Exact`] mode (the
    /// distances are bit-identical).
    pub fn rank_indexed_cached(
        &self,
        ctx: &PredictionContext<'_>,
        index: &SignatureIndex,
        cache: &mut PairCache,
        scratch: &mut PredictScratch,
    ) -> Vec<TileId> {
        let fallback = [ctx.request.tile];
        let refs: &[TileId] = if ctx.roi.is_empty() {
            &fallback
        } else {
            ctx.roi
        };
        let mut scored = std::mem::take(&mut scratch.scored);
        self.distances_indexed_cached_into(
            index,
            ctx.candidates,
            refs,
            cache,
            scratch,
            &mut scored,
        );
        sort_scored(&mut scored);
        let ranked = scored.iter().map(|&(t, _)| t).collect();
        scratch.scored = scored;
        ranked
    }
}

/// Line 8: the Manhattan-distance penalty `2^(dmanh − 1)` applied to a
/// raw χ² value.
#[inline]
fn penalized(enabled: bool, a: TileId, b: TileId, raw: f64) -> f64 {
    if enabled {
        let dmanh = a.manhattan(&b);
        2.0f64.powi(dmanh as i32 - 1) * raw
    } else {
        raw
    }
}

/// Exact `2^n` by exponent-field construction — the same value
/// `2.0f64.powi(n)` computes (powers of two are exact in binary
/// floating point) without the libcall. Falls back to `powi` outside
/// the normal-exponent range.
#[inline]
fn exp2i(n: i32) -> f64 {
    if (-1022..=1023).contains(&n) {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else {
        2.0f64.powi(n)
    }
}

/// Lines 12-15 for one candidate: weighted l2 combine over signatures,
/// divided by physical distance, summed over ROI tiles. `d(i, bi)`
/// yields the normalized per-signature distance.
#[inline]
fn combine_one(cfg: &SbConfig, a: TileId, roi: &[TileId], d: impl Fn(usize, usize) -> f64) -> f64 {
    let mut total = 0.0f64;
    for (bi, &b) in roi.iter().enumerate() {
        let mut sq = 0.0f64;
        for (i, &(_, w)) in cfg.weights.iter().enumerate() {
            let v = d(i, bi);
            sq += w * v * v;
        }
        let denom = if cfg.physical_distance {
            physical_distance(a, b)
        } else {
            1.0
        };
        total += sq.sqrt() / denom;
    }
    total
}

/// Ascending by distance, candidate id as the deterministic tiebreak.
pub(crate) fn sort_scored(scored: &mut [(TileId, f64)]) {
    scored.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite distances")
            .then(a.0.cmp(&b.0))
    });
}

impl Recommender for SbRecommender {
    fn name(&self) -> &str {
        &self.name
    }

    fn rank(&self, ctx: &PredictionContext<'_>) -> Vec<TileId> {
        // Reference set: the last ROI, or the current tile before any ROI
        // has been committed.
        let fallback = [ctx.request.tile];
        let refs: &[TileId] = if ctx.roi.is_empty() {
            &fallback
        } else {
            ctx.roi
        };
        let mut scored = self.distances(ctx.store, ctx.candidates, refs);
        sort_scored(&mut scored);
        scored.into_iter().map(|(t, _)| t).collect()
    }
}

/// χ² distance between two non-negative vectors:
/// `½ Σ (a−b)² / (a+b)`, skipping all-zero bins. Defined for unequal
/// lengths by treating missing entries as 0.
pub fn chi_squared(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut acc = 0.0f64;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        let denom = x + y;
        if denom > 1e-12 {
            acc += (x - y) * (x - y) / denom;
        }
    }
    acc / 2.0
}

/// `dmanh` and the floored-Euclidean `dphysical` for one tile pair,
/// from one shared level projection. Bitwise symmetric in `(a, b)`:
/// `abs_diff` is symmetric and `(−d)·(−d)` is the same IEEE product as
/// `d·d`, so the pair cache can store one value per unordered pair.
#[inline]
fn pair_geometry(a: TileId, b: TileId) -> (u32, f64) {
    let level = a.level.max(b.level);
    let pa = a.project_to(level);
    let pb = b.project_to(level);
    let dmanh = pa.y.abs_diff(pb.y) + pa.x.abs_diff(pb.x);
    let dy = f64::from(pa.y) - f64::from(pb.y);
    let dx = f64::from(pa.x) - f64::from(pb.x);
    (dmanh, (dy * dy + dx * dx).sqrt().max(1.0))
}

/// Copies a slot's first `nsig` raw lanes to `lanes[at..]`, with a
/// fixed-width fast path for the common full-width config (a
/// runtime-length `copy_from_slice` lowers to a `memcpy` call).
#[inline]
fn copy_lanes(lanes: &mut [f64], at: usize, slot: &crate::paircache::Slot, nsig: usize) {
    if nsig == MAX_CACHED_SIGS {
        lanes[at..at + MAX_CACHED_SIGS].copy_from_slice(&slot.vals);
    } else {
        lanes[at..at + nsig].copy_from_slice(&slot.vals[..nsig]);
    }
}

/// One χ² bin division under the compile-time kernel choice. The
/// division-free arm is [`fc_simd::fast_recip`] — shared with the
/// vector kernels so every dispatch level performs the identical
/// Newton–Raphson chain.
#[inline]
fn lane_div<const RECIP: bool>(num: f64, denom: f64) -> f64 {
    if RECIP {
        num * fast_recip(denom)
    } else {
        num / denom
    }
}

/// χ² over two equal-length contiguous rows — the hot-path form used
/// against [`SignatureIndex`] matrices, whose rows are zero-padded to a
/// common width. Zero-padded bins contribute exactly 0, as in
/// [`chi_squared`]'s skip, so both forms agree bitwise (the accumulator
/// is non-negative, and adding +0.0 to a non-negative `f64` is exact).
#[inline]
pub fn chi_squared_rows(a: &[f64], b: &[f64]) -> f64 {
    chi_squared_rows_k::<false>(a, b)
}

/// [`chi_squared_rows`] parameterized by the χ² kernel.
#[inline]
fn chi_squared_rows_k<const RECIP: bool>(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let denom = x + y;
        let num = (x - y) * (x - y);
        // Branchless select: the rejected-lane division may produce
        // inf/NaN, which is discarded, never accumulated.
        acc += if denom > 1e-12 {
            lane_div::<RECIP>(num, denom)
        } else {
            0.0
        };
    }
    acc / 2.0
}

/// χ² of one candidate row against many ROI rows of the same matrix,
/// fused with the per-pair penalty multiply: `out[bi] = pen[bi] ·
/// χ²(row_a, row(offs[bi]))`, with `offs[bi] == NO_ROW` meaning the ROI
/// tile lacks this signature (raw distance 1).
///
/// Present lanes are processed four at a time through
/// [`fc_simd::chi2_acc4`] with one independent accumulator per lane.
/// Each lane performs exactly the operations of [`chi_squared_rows`]
/// in the same order — lanes are independent sums, so the blocking
/// adds data parallelism without reassociating any addition, and
/// results stay bit-identical to the scalar loop at every dispatch
/// level (the vector guard adds `+0.0` for rejected bins, exactly the
/// scalar's `else` arm). The per-call `kernel` dispatch monomorphizes
/// the bin loop, so the kernel branch never reaches the inner loop.
fn chi_squared_lanes(
    kernel: Chi2Kernel,
    simd: SimdLevel,
    row_a: &[f64],
    data: &[f64],
    offs: &[usize],
    pen: &[f64],
    out: &mut [f64],
) {
    match kernel {
        Chi2Kernel::Exact => chi_squared_lanes_k::<false>(simd, row_a, data, offs, pen, out),
        Chi2Kernel::Reciprocal => chi_squared_lanes_k::<true>(simd, row_a, data, offs, pen, out),
    }
}

/// [`chi_squared_lanes`] monomorphized over the kernel.
fn chi_squared_lanes_k<const RECIP: bool>(
    simd: SimdLevel,
    row_a: &[f64],
    data: &[f64],
    offs: &[usize],
    pen: &[f64],
    out: &mut [f64],
) {
    let dim = row_a.len();
    let nr = offs.len();
    if dim == 0 {
        // Degenerate zero-width key: χ² of empty rows is 0.
        for bi in 0..nr {
            out[bi] = pen[bi] * if offs[bi] == NO_ROW { 1.0 } else { 0.0 };
        }
        return;
    }
    let mut bi = 0;
    while bi < nr {
        if bi + 4 <= nr && offs[bi..bi + 4].iter().all(|&o| o != NO_ROW) {
            let b0 = &data[offs[bi]..][..dim];
            let b1 = &data[offs[bi + 1]..][..dim];
            let b2 = &data[offs[bi + 2]..][..dim];
            let b3 = &data[offs[bi + 3]..][..dim];
            let acc = fc_simd::chi2_acc4::<RECIP>(simd, row_a, b0, b1, b2, b3);
            for k in 0..4 {
                out[bi + k] = pen[bi + k] * (acc[k] / 2.0);
            }
            bi += 4;
        } else {
            let raw = match offs[bi] {
                NO_ROW => 1.0,
                o => chi_squared_rows_k::<RECIP>(row_a, &data[o..][..dim]),
            };
            out[bi] = pen[bi] * raw;
            bi += 1;
        }
    }
}

/// `dphysical(A, B)`: Euclidean distance between tile centres in the
/// deeper level's tile coordinates, floored at 1 so the division in
/// Algorithm 3 line 13 is well-defined for coincident tiles.
pub fn physical_distance(a: TileId, b: TileId) -> f64 {
    let level = a.level.max(b.level);
    let pa = a.project_to(level);
    let pb = b.project_to(level);
    let dy = f64::from(pa.y) - f64::from(pb.y);
    let dx = f64::from(pa.x) - f64::from(pb.x);
    (dy * dy + dx * dx).sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Request, SessionHistory};
    use fc_array::{IoMode, LatencyModel, SimClock};
    use fc_tiles::Geometry;

    fn store_with_sigs() -> (TileStore, Geometry) {
        let g = Geometry::new(3, 256, 256, 64, 64);
        let s = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
        (s, g)
    }

    fn put_hist(s: &TileStore, id: TileId, hist: &[f64]) {
        s.put_meta(id, SignatureKind::Hist1D.meta_name(), hist.to_vec());
    }

    #[test]
    fn chi_squared_basics() {
        assert_eq!(chi_squared(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        let d = chi_squared(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12, "{d}");
        // Symmetry.
        let a = [0.2, 0.3, 0.5];
        let b = [0.5, 0.25, 0.25];
        assert!((chi_squared(&a, &b) - chi_squared(&b, &a)).abs() < 1e-15);
        // Unequal lengths: missing = 0.
        assert!(chi_squared(&[1.0], &[1.0, 1.0]) > 0.0);
    }

    #[test]
    fn chi_squared_rows_matches_padded_general_form() {
        let a = [0.2, 0.3, 0.5, 0.0];
        let b = [0.5, 0.25, 0.25, 0.0];
        assert_eq!(
            chi_squared_rows(&a, &b).to_bits(),
            chi_squared(&[0.2, 0.3, 0.5], &[0.5, 0.25, 0.25]).to_bits()
        );
    }

    #[test]
    fn physical_distance_floors_at_one() {
        let a = TileId::new(2, 1, 1);
        assert_eq!(physical_distance(a, a), 1.0);
        assert_eq!(physical_distance(a, TileId::new(2, 1, 4)), 3.0);
        // Cross-level projects to the deeper level.
        let parent = TileId::new(1, 0, 0);
        let deep = TileId::new(2, 0, 4);
        assert_eq!(physical_distance(parent, deep), 4.0);
    }

    #[test]
    fn rank_prefers_similar_signature() {
        let (s, g) = store_with_sigs();
        let roi = TileId::new(2, 1, 1);
        let similar = TileId::new(2, 1, 2);
        let different = TileId::new(2, 2, 1);
        put_hist(&s, roi, &[0.9, 0.1]);
        put_hist(&s, similar, &[0.85, 0.15]);
        put_hist(&s, different, &[0.1, 0.9]);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let mut h = SessionHistory::new(3);
        let cur = Request::initial(TileId::new(2, 2, 2));
        h.push(cur);
        let candidates = [similar, different];
        let roi_tiles = [roi];
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store: &s,
            roi: &roi_tiles,
        };
        let ranked = sb.rank(&ctx);
        assert_eq!(ranked[0], similar);
        assert_eq!(ranked.len(), 2);
        // The indexed fast path agrees exactly.
        let ix = s.signature_index().unwrap();
        let mut scratch = PredictScratch::default();
        assert_eq!(sb.rank_indexed(&ctx, &ix, &mut scratch), ranked);
    }

    #[test]
    fn manhattan_penalty_demotes_distant_lookalikes() {
        let (s, _g) = store_with_sigs();
        let roi = TileId::new(2, 0, 0);
        // Identical signatures, but one candidate is far away.
        let near = TileId::new(2, 0, 1);
        let far = TileId::new(2, 3, 3);
        for id in [roi, near, far] {
            put_hist(&s, id, &[0.5, 0.5]);
        }
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let d = sb.distances(&s, &[near, far], &[roi]);
        // Identical signatures → raw distance 0 for both; the Manhattan
        // penalty multiplies zero, so both are 0 — the tie is fine. Now
        // make signatures slightly different to expose the penalty.
        put_hist(&s, near, &[0.45, 0.55]);
        put_hist(&s, far, &[0.45, 0.55]);
        let d2 = sb.distances(&s, &[near, far], &[roi]);
        let near_d = d2[0].1;
        let far_d = d2[1].1;
        assert!(near_d < far_d, "near {near_d} vs far {far_d}");
        let _ = d;
    }

    #[test]
    fn missing_metadata_is_max_distance() {
        let (s, _g) = store_with_sigs();
        let roi = TileId::new(2, 1, 1);
        let known = TileId::new(2, 1, 2);
        let unknown = TileId::new(2, 1, 0);
        put_hist(&s, roi, &[1.0, 0.0]);
        put_hist(&s, known, &[1.0, 0.0]);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let d = sb.distances(&s, &[known, unknown], &[roi]);
        assert!(d[0].1 < d[1].1);
        // Same verdict through the index.
        let ix = s.signature_index().unwrap();
        let mut scratch = PredictScratch::default();
        let mut out = Vec::new();
        sb.distances_indexed_into(&ix, &[known, unknown], &[roi], &mut scratch, &mut out);
        assert_eq!(out[0].1.to_bits(), d[0].1.to_bits());
        assert_eq!(out[1].1.to_bits(), d[1].1.to_bits());
    }

    #[test]
    fn falls_back_to_current_tile_without_roi() {
        let (s, g) = store_with_sigs();
        let cur_tile = TileId::new(2, 1, 1);
        let like_cur = TileId::new(2, 1, 2);
        let unlike = TileId::new(2, 0, 1);
        put_hist(&s, cur_tile, &[0.8, 0.2]);
        put_hist(&s, like_cur, &[0.8, 0.2]);
        put_hist(&s, unlike, &[0.0, 1.0]);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let mut h = SessionHistory::new(3);
        let cur = Request::initial(cur_tile);
        h.push(cur);
        let candidates = [unlike, like_cur];
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store: &s,
            roi: &[],
        };
        assert_eq!(sb.rank(&ctx)[0], like_cur);
        let ix = s.signature_index().unwrap();
        let mut scratch = PredictScratch::default();
        assert_eq!(sb.rank_indexed(&ctx, &ix, &mut scratch)[0], like_cur);
    }

    #[test]
    fn multi_signature_weights_combine() {
        let cfg = SbConfig::all_equal();
        assert_eq!(cfg.weights.len(), 4);
        let sb = SbRecommender::new(cfg);
        assert_eq!(sb.name(), "SB");
        let single = SbRecommender::new(SbConfig::single(SignatureKind::Sift));
        assert_eq!(single.name(), "SB:SIFT");
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        let (s, _g) = store_with_sigs();
        for y in 0..4 {
            for x in 0..4 {
                put_hist(
                    &s,
                    TileId::new(2, y, x),
                    &[f64::from(y) / 4.0, 1.0 - f64::from(y) / 4.0],
                );
            }
        }
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let ix = s.signature_index().unwrap();
        let candidates: Vec<TileId> = (0..4)
            .flat_map(|y| (0..4).map(move |x| TileId::new(2, y, x)))
            .collect();
        let roi = [TileId::new(2, 0, 0), TileId::new(2, 3, 3)];
        let mut scratch = PredictScratch::default();
        let mut first = Vec::new();
        sb.distances_indexed_into(&ix, &candidates, &roi, &mut scratch, &mut first);
        // Re-running with warm scratch (including a shrunk problem in
        // between) must give identical bits.
        let mut small = Vec::new();
        sb.distances_indexed_into(&ix, &candidates[..3], &roi[..1], &mut scratch, &mut small);
        let mut second = Vec::new();
        sb.distances_indexed_into(&ix, &candidates, &roi, &mut scratch, &mut second);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }
}
