//! The Signature-Based (SB) recommender — the paper's Algorithm 3,
//! implemented verbatim.
//!
//! For every candidate tile `T_A` and every ROI tile `T_B`:
//!
//! 1. per signature `S_i`:  `d_{i,A,B} = 2^{dmanh(T_A,T_B)−1} · distχ²(S_i(T_A), S_i(T_B))`
//! 2. normalize by the per-signature maximum over all pairs;
//! 3. combine: `d_{A,B} = √(Σ_i w_i · d_{i,A,B}²) / dphysical(A,B)`
//! 4. per candidate: `d_A = Σ_B d_{A,B}`; rank ascending (most similar
//!    first).
//!
//! The χ² distance applies to all four signatures ("all four of our
//! current signatures produce histograms as output"). When the user has
//! not yet committed an ROI, the current tile serves as the reference —
//! the recommender then looks for "more tiles like the one being viewed".

use crate::recommender::{PredictionContext, Recommender};
use crate::signature::SignatureKind;
use fc_tiles::{TileId, TileStore};

/// Configuration for the SB recommender.
#[derive(Debug, Clone)]
pub struct SbConfig {
    /// Which signatures participate, with their weights `w_i`
    /// ("All signatures are assigned equal weight by default, but the
    /// user can update these weight parameters as necessary").
    pub weights: Vec<(SignatureKind, f64)>,
    /// Apply Algorithm 3's line-8 Manhattan penalty `2^(dmanh−1)`
    /// (disabled only by the ablation benches).
    pub manhattan_penalty: bool,
    /// Apply Algorithm 3's line-13 division by `dphysical(A,B)`
    /// (disabled only by the ablation benches).
    pub physical_distance: bool,
}

impl SbConfig {
    /// All four signatures with equal weight.
    pub fn all_equal() -> Self {
        Self {
            weights: crate::signature::SIGNATURE_KINDS
                .iter()
                .map(|&k| (k, 1.0))
                .collect(),
            manhattan_penalty: true,
            physical_distance: true,
        }
    }

    /// A single signature (used by the Fig. 10b per-signature runs).
    pub fn single(kind: SignatureKind) -> Self {
        Self {
            weights: vec![(kind, 1.0)],
            ..Self::all_equal()
        }
    }
}

/// The SB recommendation model.
#[derive(Debug, Clone)]
pub struct SbRecommender {
    cfg: SbConfig,
    name: String,
}

impl SbRecommender {
    /// Creates a recommender with the given signature weights.
    pub fn new(cfg: SbConfig) -> Self {
        let name = if cfg.weights.len() == 1 {
            format!("SB:{}", cfg.weights[0].0.display_name())
        } else {
            "SB".to_string()
        };
        Self { cfg, name }
    }

    /// Computes Algorithm 3's distance values for `candidates` against
    /// `roi`, returning `(candidate, d_A)` pairs (unsorted).
    pub fn distances(
        &self,
        store: &TileStore,
        candidates: &[TileId],
        roi: &[TileId],
    ) -> Vec<(TileId, f64)> {
        let nsig = self.cfg.weights.len();
        // d[i][(a, b)] laid out as d[i][a * roi.len() + b].
        let mut per_sig = vec![vec![0.0f64; candidates.len() * roi.len()]; nsig];
        let mut maxes = vec![1.0f64; nsig]; // line 2: d_i,MAX ← 1

        for (i, &(kind, _)) in self.cfg.weights.iter().enumerate() {
            for (ai, &a) in candidates.iter().enumerate() {
                let sig_a = store.meta_vec(a, kind.meta_name());
                for (bi, &b) in roi.iter().enumerate() {
                    let sig_b = store.meta_vec(b, kind.meta_name());
                    let raw = match (&sig_a, &sig_b) {
                        (Some(x), Some(y)) => chi_squared(x, y),
                        // Missing metadata: treated as maximally distant.
                        _ => 1.0,
                    };
                    // Line 8: Manhattan-distance penalty 2^(dmanh − 1).
                    let penalty = if self.cfg.manhattan_penalty {
                        let dmanh = a.manhattan(&b);
                        2.0f64.powi(dmanh as i32 - 1)
                    } else {
                        1.0
                    };
                    let v = penalty * raw;
                    per_sig[i][ai * roi.len() + bi] = v;
                    maxes[i] = maxes[i].max(v);
                }
            }
        }

        // Lines 10-11: normalize by per-signature max.
        for (i, sig) in per_sig.iter_mut().enumerate() {
            for v in sig.iter_mut() {
                *v /= maxes[i];
            }
        }

        // Lines 12-15: weighted l2 combine / physical distance, then sum
        // over ROI tiles.
        candidates
            .iter()
            .enumerate()
            .map(|(ai, &a)| {
                let mut total = 0.0f64;
                for (bi, &b) in roi.iter().enumerate() {
                    let mut sq = 0.0f64;
                    for (i, &(_, w)) in self.cfg.weights.iter().enumerate() {
                        let d = per_sig[i][ai * roi.len() + bi];
                        sq += w * d * d;
                    }
                    let denom = if self.cfg.physical_distance {
                        physical_distance(a, b)
                    } else {
                        1.0
                    };
                    total += sq.sqrt() / denom;
                }
                (a, total)
            })
            .collect()
    }
}

impl Recommender for SbRecommender {
    fn name(&self) -> &str {
        &self.name
    }

    fn rank(&self, ctx: &PredictionContext<'_>) -> Vec<TileId> {
        // Reference set: the last ROI, or the current tile before any ROI
        // has been committed.
        let fallback = [ctx.request.tile];
        let refs: &[TileId] = if ctx.roi.is_empty() {
            &fallback
        } else {
            ctx.roi
        };
        let mut scored = self.distances(ctx.store, ctx.candidates, refs);
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(t, _)| t).collect()
    }
}

/// χ² distance between two non-negative vectors:
/// `½ Σ (a−b)² / (a+b)`, skipping all-zero bins. Defined for unequal
/// lengths by treating missing entries as 0.
pub fn chi_squared(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut acc = 0.0f64;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        let denom = x + y;
        if denom > 1e-12 {
            acc += (x - y) * (x - y) / denom;
        }
    }
    acc / 2.0
}

/// `dphysical(A, B)`: Euclidean distance between tile centres in the
/// deeper level's tile coordinates, floored at 1 so the division in
/// Algorithm 3 line 13 is well-defined for coincident tiles.
pub fn physical_distance(a: TileId, b: TileId) -> f64 {
    let level = a.level.max(b.level);
    let pa = a.project_to(level);
    let pb = b.project_to(level);
    let dy = f64::from(pa.y) - f64::from(pb.y);
    let dx = f64::from(pa.x) - f64::from(pb.x);
    (dy * dy + dx * dx).sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Request, SessionHistory};
    use fc_array::{IoMode, LatencyModel, SimClock};
    use fc_tiles::Geometry;

    fn store_with_sigs() -> (TileStore, Geometry) {
        let g = Geometry::new(3, 256, 256, 64, 64);
        let s = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
        (s, g)
    }

    fn put_hist(s: &TileStore, id: TileId, hist: &[f64]) {
        s.put_meta(id, SignatureKind::Hist1D.meta_name(), hist.to_vec());
    }

    #[test]
    fn chi_squared_basics() {
        assert_eq!(chi_squared(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        let d = chi_squared(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12, "{d}");
        // Symmetry.
        let a = [0.2, 0.3, 0.5];
        let b = [0.5, 0.25, 0.25];
        assert!((chi_squared(&a, &b) - chi_squared(&b, &a)).abs() < 1e-15);
        // Unequal lengths: missing = 0.
        assert!(chi_squared(&[1.0], &[1.0, 1.0]) > 0.0);
    }

    #[test]
    fn physical_distance_floors_at_one() {
        let a = TileId::new(2, 1, 1);
        assert_eq!(physical_distance(a, a), 1.0);
        assert_eq!(physical_distance(a, TileId::new(2, 1, 4)), 3.0);
        // Cross-level projects to the deeper level.
        let parent = TileId::new(1, 0, 0);
        let deep = TileId::new(2, 0, 4);
        assert_eq!(physical_distance(parent, deep), 4.0);
    }

    #[test]
    fn rank_prefers_similar_signature() {
        let (s, g) = store_with_sigs();
        let roi = TileId::new(2, 1, 1);
        let similar = TileId::new(2, 1, 2);
        let different = TileId::new(2, 2, 1);
        put_hist(&s, roi, &[0.9, 0.1]);
        put_hist(&s, similar, &[0.85, 0.15]);
        put_hist(&s, different, &[0.1, 0.9]);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let mut h = SessionHistory::new(3);
        let cur = Request::initial(TileId::new(2, 2, 2));
        h.push(cur);
        let candidates = [similar, different];
        let roi_tiles = [roi];
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store: &s,
            roi: &roi_tiles,
        };
        let ranked = sb.rank(&ctx);
        assert_eq!(ranked[0], similar);
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn manhattan_penalty_demotes_distant_lookalikes() {
        let (s, _g) = store_with_sigs();
        let roi = TileId::new(2, 0, 0);
        // Identical signatures, but one candidate is far away.
        let near = TileId::new(2, 0, 1);
        let far = TileId::new(2, 3, 3);
        for id in [roi, near, far] {
            put_hist(&s, id, &[0.5, 0.5]);
        }
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let d = sb.distances(&s, &[near, far], &[roi]);
        // Identical signatures → raw distance 0 for both; the Manhattan
        // penalty multiplies zero, so both are 0 — the tie is fine. Now
        // make signatures slightly different to expose the penalty.
        put_hist(&s, near, &[0.45, 0.55]);
        put_hist(&s, far, &[0.45, 0.55]);
        let d2 = sb.distances(&s, &[near, far], &[roi]);
        let near_d = d2[0].1;
        let far_d = d2[1].1;
        assert!(near_d < far_d, "near {near_d} vs far {far_d}");
        let _ = d;
    }

    #[test]
    fn missing_metadata_is_max_distance() {
        let (s, _g) = store_with_sigs();
        let roi = TileId::new(2, 1, 1);
        let known = TileId::new(2, 1, 2);
        let unknown = TileId::new(2, 1, 0);
        put_hist(&s, roi, &[1.0, 0.0]);
        put_hist(&s, known, &[1.0, 0.0]);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let d = sb.distances(&s, &[known, unknown], &[roi]);
        assert!(d[0].1 < d[1].1);
    }

    #[test]
    fn falls_back_to_current_tile_without_roi() {
        let (s, g) = store_with_sigs();
        let cur_tile = TileId::new(2, 1, 1);
        let like_cur = TileId::new(2, 1, 2);
        let unlike = TileId::new(2, 0, 1);
        put_hist(&s, cur_tile, &[0.8, 0.2]);
        put_hist(&s, like_cur, &[0.8, 0.2]);
        put_hist(&s, unlike, &[0.0, 1.0]);
        let sb = SbRecommender::new(SbConfig::single(SignatureKind::Hist1D));
        let mut h = SessionHistory::new(3);
        let cur = Request::initial(cur_tile);
        h.push(cur);
        let candidates = [unlike, like_cur];
        let ctx = PredictionContext {
            request: cur,
            history: &h,
            candidates: &candidates,
            geometry: g,
            store: &s,
            roi: &[],
        };
        assert_eq!(sb.rank(&ctx)[0], like_cur);
    }

    #[test]
    fn multi_signature_weights_combine() {
        let cfg = SbConfig::all_equal();
        assert_eq!(cfg.weights.len(), 4);
        let sb = SbRecommender::new(cfg);
        assert_eq!(sb.name(), "SB");
        let single = SbRecommender::new(SbConfig::single(SignatureKind::Sift));
        assert_eq!(single.name(), "SB:SIFT");
    }
}
