//! User requests and bounded session history (paper §4.1).
//!
//! "The user's last n moves are constantly recorded by the cache manager
//! and sent to the prediction engine as an ordered list of user requests:
//! H = [r1, r2, …, rn]." The history length n is a system parameter set
//! before the session starts.

use fc_tiles::{Move, TileId};
use std::collections::VecDeque;

/// One user request: the tile retrieved, and the move that produced it
/// (`None` for the session's first request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The requested tile `T_r`.
    pub tile: TileId,
    /// The interface move that led here (`r.move` in the paper).
    pub mv: Option<Move>,
}

impl Request {
    /// Creates a request.
    pub fn new(tile: TileId, mv: Option<Move>) -> Self {
        Self { tile, mv }
    }

    /// The session-opening request (no move).
    pub fn initial(tile: TileId) -> Self {
        Self { tile, mv: None }
    }
}

/// A bounded FIFO of the last `n` requests.
#[derive(Debug, Clone)]
pub struct SessionHistory {
    capacity: usize,
    items: VecDeque<Request>,
}

impl SessionHistory {
    /// Creates a history holding at most `capacity` requests.
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        Self {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a request, evicting the oldest when full.
    pub fn push(&mut self, r: Request) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(r);
    }

    /// Most recent request.
    pub fn last(&self) -> Option<&Request> {
        self.items.back()
    }

    /// Second most recent request (the "previous request rn ∈ H" used by
    /// the phase feature extractor).
    pub fn previous(&self) -> Option<&Request> {
        self.items.iter().rev().nth(1)
    }

    /// Number of stored requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no requests are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity (the paper's history-length parameter n).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.items.iter()
    }

    /// The move sequence (vocabulary ids) of stored requests, oldest to
    /// newest, skipping the initial moveless request — the n-gram model's
    /// context.
    pub fn move_sequence(&self) -> Vec<u16> {
        self.items
            .iter()
            .filter_map(|r| r.mv.map(|m| m.index() as u16))
            .collect()
    }

    /// Clears the history (new session).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_tiles::Quadrant;

    fn t(l: u8, y: u32, x: u32) -> TileId {
        TileId::new(l, y, x)
    }

    #[test]
    fn bounded_fifo_evicts_oldest() {
        let mut h = SessionHistory::new(3);
        for i in 0..5 {
            h.push(Request::new(t(0, 0, i), Some(Move::PanRight)));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.iter().next().unwrap().tile, t(0, 0, 2));
        assert_eq!(h.last().unwrap().tile, t(0, 0, 4));
        assert_eq!(h.previous().unwrap().tile, t(0, 0, 3));
        assert_eq!(h.capacity(), 3);
    }

    #[test]
    fn move_sequence_skips_initial_request() {
        let mut h = SessionHistory::new(5);
        h.push(Request::initial(t(0, 0, 0)));
        h.push(Request::new(t(1, 0, 0), Some(Move::ZoomIn(Quadrant::Nw))));
        h.push(Request::new(t(1, 0, 1), Some(Move::PanRight)));
        assert_eq!(
            h.move_sequence(),
            vec![
                Move::ZoomIn(Quadrant::Nw).index() as u16,
                Move::PanRight.index() as u16
            ]
        );
    }

    #[test]
    fn clear_resets() {
        let mut h = SessionHistory::new(2);
        h.push(Request::initial(t(0, 0, 0)));
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
        assert!(h.last().is_none());
        assert!(h.previous().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SessionHistory::new(0);
    }
}
