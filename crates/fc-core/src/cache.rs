//! The middleware tile cache (§3, "Tile Cache Manager").
//!
//! The cache stores two populations: the **last n tiles requested by the
//! interface** (an LRU ring) and the **per-cycle prefetch set** filled
//! from the prediction engine's recommendations. "This allocation
//! strategy is reevaluated after each request" — installing a new
//! prefetch set replaces the previous one.

use fc_tiles::{Tile, TileId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the tile in the cache.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Tiles installed by prefetching over the session.
    pub prefetched: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The main-memory middleware cache.
#[derive(Debug)]
pub struct CacheManager {
    /// LRU of the last `history_capacity` requested tiles.
    history: VecDeque<TileId>,
    history_capacity: usize,
    /// Current prefetch set (replaced each request cycle).
    prefetch: HashMap<TileId, Arc<Tile>>,
    /// Backing storage for history entries.
    resident: HashMap<TileId, Arc<Tile>>,
    stats: CacheStats,
}

impl CacheManager {
    /// Creates a cache that retains the last `history_capacity` requested
    /// tiles alongside the prefetch set.
    pub fn new(history_capacity: usize) -> Self {
        Self {
            history: VecDeque::with_capacity(history_capacity),
            history_capacity,
            prefetch: HashMap::new(),
            resident: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up a tile, counting a hit or miss.
    pub fn lookup(&mut self, id: TileId) -> Option<Arc<Tile>> {
        let found = self.peek(id);
        self.count_lookup(found.is_some());
        found
    }

    /// Looks up a tile **without counting** — the shared-mode probe:
    /// the middleware resolves the request against the shared cache
    /// (and the backend) first, then records the outcome once with
    /// [`CacheManager::count_lookup`], so a shared-cache hit is never
    /// booked as a private miss and an unserved request books nothing.
    pub fn peek(&self, id: TileId) -> Option<Arc<Tile>> {
        self.prefetch
            .get(&id)
            .or_else(|| self.resident.get(&id))
            .cloned()
    }

    /// Records the outcome of a lookup resolved through
    /// [`CacheManager::peek`] (see there).
    pub fn count_lookup(&mut self, hit: bool) {
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }

    /// Checks residency without touching the stats.
    pub fn contains(&self, id: TileId) -> bool {
        self.prefetch.contains_key(&id) || self.resident.contains_key(&id)
    }

    /// Records the tile the user actually requested: it joins the
    /// last-n history (evicting the oldest history entry if full).
    ///
    /// The `position` scan is O(history_capacity), which is bounded by
    /// the paper's "last n tiles" with n = 3–4 in every deployed
    /// configuration — at that size a linear probe of a `VecDeque`
    /// beats maintaining a position map. Measured via the
    /// `cache lookup+note+prefetch cycle` micro-bench: the whole cycle
    /// (lookup + note_request + install_prefetch of 8 tiles) runs in
    /// ~420 ns at capacity 4, with the scan itself a single-digit-ns
    /// slice of that. Revisit only if a caller ever passes a large
    /// `history_capacity`.
    pub fn note_request(&mut self, tile: Arc<Tile>) {
        let id = tile.id;
        if let Some(pos) = self.history.iter().position(|&t| t == id) {
            self.history.remove(pos);
        } else if self.history.len() == self.history_capacity {
            if let Some(old) = self.history.pop_front() {
                self.resident.remove(&old);
            }
        }
        if self.history_capacity > 0 {
            self.history.push_back(id);
            self.resident.insert(id, tile);
        }
    }

    /// Replaces the prefetch set with freshly fetched predictions (the
    /// per-request reallocation step).
    pub fn install_prefetch(&mut self, tiles: Vec<Arc<Tile>>) {
        self.prefetch.clear();
        self.stats.prefetched += tiles.len();
        for t in tiles {
            self.prefetch.insert(t.id, t);
        }
    }

    /// Like [`CacheManager::install_prefetch`], but tiles named in
    /// `keep` that are already in the old prefetch set survive the
    /// replacement (without being re-counted as new installs). The
    /// burst scheduler's dwell-time deep runs install through this so
    /// a still-predicted tile fetched on an earlier cycle stays
    /// resident until the burst that wants it arrives — the
    /// private-mode analog of the shared cache's hold set.
    pub fn install_prefetch_keeping(&mut self, tiles: Vec<Arc<Tile>>, keep: &[TileId]) {
        let kept: Vec<Arc<Tile>> = keep
            .iter()
            .filter_map(|id| self.prefetch.get(id).cloned())
            .collect();
        self.install_prefetch(tiles);
        for t in kept {
            self.prefetch.entry(t.id).or_insert(t);
        }
    }

    /// Tile count currently resident (history + prefetch, counting
    /// overlaps once).
    pub fn len(&self) -> usize {
        let overlap = self
            .prefetch
            .keys()
            .filter(|id| self.resident.contains_key(id))
            .count();
        self.prefetch.len() + self.resident.len() - overlap
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.prefetch.is_empty() && self.resident.is_empty()
    }

    /// Approximate resident bytes (for the paper's "less than 10MB of
    /// prefetching space per user" claim).
    pub fn resident_bytes(&self) -> usize {
        use fc_array::BlobSize;
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for (id, t) in self.prefetch.iter().chain(self.resident.iter()) {
            if seen.insert(*id) {
                total += t.nbytes();
            }
        }
        total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drops all cached tiles and counters (new session).
    pub fn clear(&mut self) {
        self.history.clear();
        self.prefetch.clear();
        self.resident.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};

    fn tile(id: TileId) -> Arc<Tile> {
        Arc::new(Tile::new(
            id,
            DenseArray::filled(Schema::grid2d("T", 4, 4, &["v"]).unwrap(), 0.5),
        ))
    }

    fn tid(x: u32) -> TileId {
        TileId::new(2, 0, x)
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = CacheManager::new(2);
        assert!(c.lookup(tid(1)).is_none());
        c.note_request(tile(tid(1)));
        assert!(c.lookup(tid(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn history_evicts_oldest() {
        let mut c = CacheManager::new(2);
        c.note_request(tile(tid(1)));
        c.note_request(tile(tid(2)));
        c.note_request(tile(tid(3)));
        assert!(!c.contains(tid(1)));
        assert!(c.contains(tid(2)) && c.contains(tid(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn renoting_a_tile_refreshes_lru_position() {
        let mut c = CacheManager::new(2);
        c.note_request(tile(tid(1)));
        c.note_request(tile(tid(2)));
        c.note_request(tile(tid(1))); // refresh 1
        c.note_request(tile(tid(3))); // evicts 2, not 1
        assert!(c.contains(tid(1)));
        assert!(!c.contains(tid(2)));
    }

    #[test]
    fn prefetch_set_is_replaced_each_cycle() {
        let mut c = CacheManager::new(1);
        c.install_prefetch(vec![tile(tid(5)), tile(tid(6))]);
        assert!(c.contains(tid(5)) && c.contains(tid(6)));
        c.install_prefetch(vec![tile(tid(7))]);
        assert!(!c.contains(tid(5)) && !c.contains(tid(6)));
        assert!(c.contains(tid(7)));
        assert_eq!(c.stats().prefetched, 3);
    }

    #[test]
    fn len_counts_overlap_once() {
        let mut c = CacheManager::new(2);
        c.note_request(tile(tid(1)));
        c.install_prefetch(vec![tile(tid(1)), tile(tid(2))]);
        assert_eq!(c.len(), 2);
        assert!(c.resident_bytes() > 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = CacheManager::new(2);
        c.note_request(tile(tid(1)));
        c.lookup(tid(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
    }
}
