//! Deterministic fault injection for the backend fetch path.
//!
//! The reproduction's backend never fails: `TileStore::fetch_backend`
//! is infallible-or-absent, which makes every resilience claim about
//! the serving stack untestable. This module supplies the missing
//! adversary — a seeded [`FaultPlan`] that injects **latency spikes**,
//! **transient errors**, and **stuck fetches** into the fetch path —
//! without giving up replayability:
//!
//! * Every decision is a pure function of `(seed, tile id, request
//!   index, attempt)` hashed through a splitmix64 mix, so a chaos run
//!   replays **bit-identically** regardless of thread count or
//!   interleaving. No global RNG stream exists to race on.
//! * Fault *windows* are expressed in per-session request indices, so
//!   "brownout between requests 24 and 56" means the same thing for
//!   every session of a workload — and hit-rate recovery *after* the
//!   window is a well-defined, assertable quantity.
//! * All waiting (retry backoff, consumed deadlines, spike latency) is
//!   charged to the shared [`fc_array::SimClock`], never to wall time:
//!   chaos suites run at full speed.
//!
//! The consumer is [`crate::middleware::Middleware`]: when a plan is
//! attached (`set_faults`) the primary fetch runs under a bounded
//! [`RetryPolicy`] and failures surface as [`FetchError`] / degraded
//! replies. With no plan attached the fetch path is byte-for-byte the
//! pre-fault code — zero cost by default, enforced by golden tests.

use fc_tiles::TileId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injected fault on a single fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The fetch succeeds but costs this much extra backend latency.
    LatencySpike(Duration),
    /// The attempt fails with a retryable error.
    Transient,
    /// The fetch never returns; the caller's remaining deadline budget
    /// is consumed reaping it.
    Stuck,
}

/// Why a guarded fetch gave up. The middleware maps these to degraded
/// replies (when an ancestor tile is resident) or error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// Transient backend errors exhausted the retry budget.
    Unavailable {
        /// Fetch attempts made (including the first).
        attempts: u32,
    },
    /// The per-request deadline budget ran out — a stuck fetch, or
    /// backoff waits that would overrun it.
    DeadlineExceeded {
        /// Fetch attempts made before the deadline expired.
        attempts: u32,
    },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Unavailable { attempts } => {
                write!(f, "backend unavailable after {attempts} attempts")
            }
            FetchError::DeadlineExceeded { attempts } => {
                write!(f, "fetch deadline exceeded after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for FetchError {}

/// Bounded-retry parameters for the guarded fetch path. All waits are
/// simulated (charged to the `SimClock`), so generous budgets cost no
/// wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch attempts allowed (first try + retries). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Deterministic jitter added to each backoff, as a per-mille
    /// fraction of it (250 = up to +25%), keyed off the plan seed.
    pub jitter_per_mille: u16,
    /// Per-request fetch budget: once backoffs (or a stuck fetch) have
    /// consumed it, the fetch gives up with
    /// [`FetchError::DeadlineExceeded`].
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            jitter_per_mille: 250,
            deadline: Duration::from_secs(3),
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry number `retry` (1-based), with
    /// the plan-seeded jitter for `(tile, request_index)` folded in.
    pub fn backoff(
        &self,
        plan: &FaultPlan,
        tile: TileId,
        request_index: u64,
        retry: u32,
    ) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let base = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        if self.jitter_per_mille == 0 || base.is_zero() {
            return base;
        }
        let jitter_mille = plan.roll(tile, request_index, retry, SALT_JITTER)
            % (u64::from(self.jitter_per_mille) + 1);
        let extra = base.as_nanos().saturating_mul(u128::from(jitter_mille)) / 1000;
        base + Duration::from_nanos(u64::try_from(extra).unwrap_or(u64::MAX))
    }
}

/// Per-mille fault probabilities for one regime (inside or outside the
/// plan's window). All-zero rates inject nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Probability (‰) that an attempt fails with a transient error.
    pub transient_per_mille: u16,
    /// Attempts below this index on a faulted fetch *always* fail
    /// transiently — a deterministic "first k tries fail" knob for
    /// exercising the retry ladder in tests and schedules.
    pub transient_first_attempts: u32,
    /// Probability (‰) that a successful fetch carries a latency spike.
    pub spike_per_mille: u16,
    /// Spike magnitude.
    pub spike: Duration,
    /// Probability (‰) that the fetch wedges (consuming the deadline).
    pub stuck_per_mille: u16,
}

impl FaultRates {
    fn quiet(&self) -> bool {
        self.transient_per_mille == 0
            && self.transient_first_attempts == 0
            && self.spike_per_mille == 0
            && self.stuck_per_mille == 0
    }
}

/// A request-index window (half-open, per session) with its own rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First request index (0-based, per session) the window covers.
    pub from: u64,
    /// First request index past the window.
    pub until: u64,
    /// Rates in effect inside the window.
    pub rates: FaultRates,
}

const SALT_STUCK: u64 = 0x5157_4b21;
const SALT_TRANSIENT: u64 = 0x7452_4e53;
const SALT_SPIKE: u64 = 0x5350_4b45;
const SALT_JITTER: u64 = 0x4a49_5454;
const SALT_PREFETCH: u64 = 0x5046_4348;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Monotonic counters of faults actually injected (relaxed atomics;
/// approximate under concurrency, exact in single-threaded replays).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Latency spikes injected (primary fetches and prefetches).
    pub spikes: u64,
    /// Transient errors injected.
    pub transients: u64,
    /// Stuck fetches injected.
    pub stuck: u64,
}

/// A seeded, deterministic schedule of backend faults.
///
/// Decisions are keyed by `(tile id, request index, attempt)`, so the
/// same plan replayed over the same traces produces the same faults in
/// the same places — independent of thread interleaving. Construct one
/// per chaos run and share it (`Arc`) across sessions.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    base: FaultRates,
    window: Option<FaultWindow>,
    spikes: AtomicU64,
    transients: AtomicU64,
    stuck: AtomicU64,
}

impl FaultPlan {
    /// A plan applying `base` everywhere (no window).
    pub fn new(seed: u64, base: FaultRates) -> Self {
        Self {
            seed,
            base,
            window: None,
            spikes: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            stuck: AtomicU64::new(0),
        }
    }

    /// A plan that is quiet outside `window` and applies the window's
    /// rates inside it.
    pub fn windowed(seed: u64, window: FaultWindow) -> Self {
        let mut plan = Self::new(seed, FaultRates::default());
        plan.window = Some(window);
        plan
    }

    /// Sets the base (outside-window) rates on a windowed plan.
    pub fn with_base(mut self, base: FaultRates) -> Self {
        self.base = base;
        self
    }

    /// A plan that never injects anything — for A/B baselines where
    /// the *mechanism* (guarded fetch, retry bookkeeping) should run
    /// but no fault should fire.
    pub fn quiet(seed: u64) -> Self {
        Self::new(seed, FaultRates::default())
    }

    /// **Backend brownout**: inside `[from, until)` the backend turns
    /// flaky — frequent transient errors (first attempt always fails,
    /// so every fetch exercises the retry ladder), latency spikes on
    /// survivors, and occasional wedged fetches. Quiet outside.
    pub fn brownout(seed: u64, from: u64, until: u64) -> Self {
        Self::windowed(
            seed,
            FaultWindow {
                from,
                until,
                rates: FaultRates {
                    transient_per_mille: 350,
                    transient_first_attempts: 1,
                    spike_per_mille: 300,
                    spike: Duration::from_millis(250),
                    stuck_per_mille: 40,
                },
            },
        )
    }

    /// **Error burst** (the flash-crowd companion): inside the window
    /// most attempts fail outright; almost no spikes, no wedges. Pair
    /// with a convergent (hotspot) workload for the flash-crowd +
    /// error-burst chaos scenario.
    pub fn error_burst(seed: u64, from: u64, until: u64) -> Self {
        Self::windowed(
            seed,
            FaultWindow {
                from,
                until,
                rates: FaultRates {
                    transient_per_mille: 850,
                    transient_first_attempts: 0,
                    spike_per_mille: 100,
                    spike: Duration::from_millis(100),
                    stuck_per_mille: 0,
                },
            },
        )
    }

    /// **Degraded backend**: a constant low-grade fault floor with no
    /// window — background flakiness rather than an incident.
    pub fn degraded_backend(seed: u64) -> Self {
        Self::new(
            seed,
            FaultRates {
                transient_per_mille: 100,
                transient_first_attempts: 0,
                spike_per_mille: 200,
                spike: Duration::from_millis(150),
                stuck_per_mille: 10,
            },
        )
    }

    /// A plan where every attempt fails transiently — the retry budget
    /// always exhausts (test helper for the degradation ladder).
    pub fn always_failing(seed: u64) -> Self {
        Self::new(
            seed,
            FaultRates {
                transient_per_mille: 1000,
                transient_first_attempts: u32::MAX,
                ..FaultRates::default()
            },
        )
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rates in effect at `request_index`.
    pub fn rates_at(&self, request_index: u64) -> FaultRates {
        match self.window {
            Some(w) if request_index >= w.from && request_index < w.until => w.rates,
            _ => self.base,
        }
    }

    /// Whether `request_index` falls inside the plan's fault window
    /// (always false for windowless plans).
    pub fn in_window(&self, request_index: u64) -> bool {
        self.window
            .is_some_and(|w| request_index >= w.from && request_index < w.until)
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            spikes: self.spikes.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
            stuck: self.stuck.load(Ordering::Relaxed),
        }
    }

    fn roll(&self, tile: TileId, request_index: u64, attempt: u32, salt: u64) -> u64 {
        let tile_key =
            (u64::from(tile.level) << 56) ^ (u64::from(tile.y) << 28) ^ u64::from(tile.x);
        splitmix64(
            self.seed
                ^ splitmix64(tile_key)
                ^ splitmix64(request_index.wrapping_mul(0x9e37_79b9))
                ^ splitmix64(u64::from(attempt) ^ salt),
        )
    }

    fn hits(&self, per_mille: u16, roll: u64) -> bool {
        per_mille > 0 && roll % 1000 < u64::from(per_mille)
    }

    /// The fault (if any) injected into fetch `attempt` (0-based) of
    /// the request at `request_index` for `tile`. Pure in its inputs;
    /// records the decision in [`FaultPlan::stats`].
    pub fn decide(&self, tile: TileId, request_index: u64, attempt: u32) -> Option<FaultKind> {
        let rates = self.rates_at(request_index);
        if rates.quiet() {
            return None;
        }
        if self.hits(
            rates.stuck_per_mille,
            self.roll(tile, request_index, attempt, SALT_STUCK),
        ) {
            self.stuck.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::Stuck);
        }
        if attempt < rates.transient_first_attempts
            || self.hits(
                rates.transient_per_mille,
                self.roll(tile, request_index, attempt, SALT_TRANSIENT),
            )
        {
            self.transients.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::Transient);
        }
        if self.hits(
            rates.spike_per_mille,
            self.roll(tile, request_index, attempt, SALT_SPIKE),
        ) {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::LatencySpike(rates.spike));
        }
        None
    }

    /// The fault (if any) injected into a *prefetch* of `tile` issued
    /// by the request at `request_index`. Prefetches are best-effort:
    /// no retries, so transient and stuck both mean "skip this tile";
    /// a spike only makes the background fetch cost more.
    pub fn decide_prefetch(&self, tile: TileId, request_index: u64) -> Option<FaultKind> {
        let rates = self.rates_at(request_index);
        if rates.quiet() {
            return None;
        }
        if self.hits(
            rates.stuck_per_mille,
            self.roll(tile, request_index, 0, SALT_PREFETCH ^ SALT_STUCK),
        ) {
            self.stuck.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::Stuck);
        }
        if self.hits(
            rates.transient_per_mille,
            self.roll(tile, request_index, 0, SALT_PREFETCH ^ SALT_TRANSIENT),
        ) {
            self.transients.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::Transient);
        }
        if self.hits(
            rates.spike_per_mille,
            self.roll(tile, request_index, 0, SALT_PREFETCH ^ SALT_SPIKE),
        ) {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::LatencySpike(rates.spike));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(x: u32) -> TileId {
        TileId::new(2, 1, x)
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let a = FaultPlan::brownout(42, 0, 1000);
        let b = FaultPlan::brownout(42, 0, 1000);
        let mut decisions = Vec::new();
        for x in 0..32 {
            for req in 0..16 {
                for attempt in 0..3 {
                    let da = a.decide(tile(x), req, attempt);
                    assert_eq!(da, b.decide(tile(x), req, attempt), "same seed, same key");
                    decisions.push(da);
                }
            }
        }
        assert!(decisions.iter().any(Option::is_some), "brownout injects");
        assert!(decisions.iter().any(Option::is_none), "but not everywhere");
        // A different seed disagrees somewhere.
        let c = FaultPlan::brownout(43, 0, 1000);
        let mut diff = false;
        for x in 0..32 {
            for req in 0..16 {
                if a.decide(tile(x), req, 1) != c.decide(tile(x), req, 1) {
                    diff = true;
                }
            }
        }
        assert!(diff, "seed must matter");
    }

    #[test]
    fn window_bounds_are_half_open_and_quiet_outside() {
        let plan = FaultPlan::brownout(7, 10, 20);
        for req in [0u64, 9, 20, 21, 1000] {
            assert!(!plan.in_window(req));
            for x in 0..64 {
                for attempt in 0..4 {
                    assert_eq!(plan.decide(tile(x), req, attempt), None, "req {req}");
                }
            }
        }
        assert!(plan.in_window(10) && plan.in_window(19));
        // Inside the window the forced-first-attempt knob guarantees a
        // transient on attempt 0 of every fetch.
        assert_eq!(plan.decide(tile(0), 10, 0), Some(FaultKind::Transient));
    }

    #[test]
    fn always_failing_fails_every_attempt() {
        let plan = FaultPlan::always_failing(1);
        for attempt in 0..64 {
            assert_eq!(plan.decide(tile(3), 5, attempt), Some(FaultKind::Transient));
        }
        assert_eq!(plan.stats().transients, 64);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = FaultPlan::quiet(99);
        for x in 0..64 {
            for req in 0..64 {
                assert_eq!(plan.decide(tile(x), req, 0), None);
                assert_eq!(plan.decide_prefetch(tile(x), req), None);
            }
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let plan = FaultPlan::brownout(5, 0, 100);
        let policy = RetryPolicy::default();
        let b1 = policy.backoff(&plan, tile(1), 3, 1);
        let b2 = policy.backoff(&plan, tile(1), 3, 2);
        let b5 = policy.backoff(&plan, tile(1), 3, 5);
        assert!(b1 >= policy.base_backoff);
        assert!(b2 > b1, "{b2:?} vs {b1:?}");
        // Cap: max_backoff plus at most the jitter fraction.
        let cap = policy.max_backoff + policy.max_backoff / 4;
        assert!(b5 <= cap, "{b5:?} > {cap:?}");
        // Deterministic.
        assert_eq!(b1, policy.backoff(&plan, tile(1), 3, 1));
        // Jitter-free policy is exact.
        let flat = RetryPolicy {
            jitter_per_mille: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(flat.backoff(&plan, tile(1), 3, 1), flat.base_backoff);
        assert_eq!(flat.backoff(&plan, tile(1), 3, 2), flat.base_backoff * 2);
    }

    #[test]
    fn degraded_backend_has_no_window_and_constant_rates() {
        let plan = FaultPlan::degraded_backend(11);
        assert!(!plan.in_window(0) && !plan.in_window(u64::MAX - 1));
        assert_eq!(plan.rates_at(0), plan.rates_at(1_000_000));
        let mut injected = 0;
        for x in 0..64 {
            for req in 0..32 {
                if plan.decide(tile(x), req, 0).is_some() {
                    injected += 1;
                }
            }
        }
        assert!(injected > 0, "background flakiness must fire somewhere");
    }

    #[test]
    fn fetch_error_displays() {
        assert_eq!(
            FetchError::Unavailable { attempts: 4 }.to_string(),
            "backend unavailable after 4 attempts"
        );
        assert_eq!(
            FetchError::DeadlineExceeded { attempts: 2 }.to_string(),
            "fetch deadline exceeded after 2 attempts"
        );
    }
}
