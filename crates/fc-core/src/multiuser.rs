//! Multi-user cache coordination (paper §6.2, future work).
//!
//! "It is unclear how to partition the middleware cache to make
//! predictions for multiple users exploring different datasets, or how
//! to share data between users exploring the same dataset. We plan to
//! extend our architecture to manage coordinated predictions and caching
//! across multiple users."
//!
//! This module implements that extension for the same-dataset case:
//! a [`SharedTileCache`] holds one copy of every resident tile, visible
//! to all sessions; each session gets a fair slice of the prefetch
//! budget, re-partitioned as sessions come and go; and tiles requested
//! by several sessions gain *popularity* so eviction keeps communal
//! tiles longest.
//!
//! # Sharding
//!
//! [`SharedTileCache`] is **lock-striped**: residency is split across N
//! shards (N a power of two, chosen at construction), each guarded by
//! its own mutex, with tiles assigned by a [`TileId`] hash. Sessions
//! touching tiles on different shards never contend. Three invariants
//! hold by construction:
//!
//! * **Shard count is a power of two** so the shard index is a single
//!   mask of the id hash ([`SharedTileCache::with_shards`] asserts it).
//! * **Capacity partitions exactly**: shard *i* holds at most
//!   `capacity/N` tiles (+1 for the first `capacity mod N` shards), so
//!   the global resident count can never exceed `capacity` no matter
//!   how concurrent installs interleave.
//! * **Budget repartitioning stays global**: the per-session prefetch
//!   allowance ([`MultiUserCache::session_budget`]) is computed from the
//!   *global* capacity and the *global* open-session count (both read
//!   from atomics), not from any per-shard quantity — opening a session
//!   shrinks every other session's allowance exactly as in the
//!   single-lock design.
//!
//! Each shard keeps its own LRU touch clock and evicts among its own
//! residents only, so sharded eviction is a per-shard approximation of
//! the global least-(holders, popularity, recency) policy. The
//! pre-sharding implementation is retained verbatim as
//! [`SingleMutexTileCache`]: it is the golden reference the sharded
//! cache is tested against (a 1-shard cache is bit-identical to it; an
//! N-shard cache behaves like N independent references over the
//! hash-partitioned id space), and the baseline `exp_multiuser`
//! benchmarks contention against.
//!
//! Statistics are lock-free atomics on both implementations' shared
//! paths (hits, misses, cross-session hits, evictions), so hot-path
//! lookups never serialize on a stats lock.

use fc_tiles::{Tile, TileId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A session handle within the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

#[derive(Debug)]
struct Resident {
    tile: Arc<Tile>,
    /// The session whose fetch brought the tile in (re-set when a tile
    /// is re-installed after eviction) — the basis of the
    /// cross-session-hit metric, independent of who currently holds it.
    installer: SessionId,
    /// Sessions whose prefetch set or history references this tile.
    holders: Vec<SessionId>,
    /// Total times any session requested this tile (popularity).
    popularity: u64,
    /// Monotonic touch counter for LRU among equal popularity
    /// (per-shard in the sharded cache).
    last_touch: u64,
}

/// Aggregate statistics for the shared cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found the tile resident (any holder).
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Hits on tiles brought in by a *different* session — the §6.2
    /// sharing benefit.
    pub cross_session_hits: usize,
    /// Evictions performed.
    pub evictions: usize,
}

impl SharedCacheStats {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock-free statistics counters shared by both cache implementations.
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
    cross_session_hits: AtomicUsize,
    evictions: AtomicUsize,
}

impl AtomicStats {
    fn snapshot(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cross_session_hits: self.cross_session_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The operations a multi-user tile cache offers to sessions. Both the
/// lock-striped [`SharedTileCache`] and the retained
/// [`SingleMutexTileCache`] reference implement it, so the middleware,
/// the `fc-sim` multi-user driver, and `exp_multiuser` can run either
/// behind `Arc<dyn MultiUserCache>`.
pub trait MultiUserCache: Send + Sync {
    /// Opens a session; the prefetch budget re-partitions across all
    /// open sessions.
    fn open_session(&self) -> SessionId;
    /// Closes a session, releasing its holds; unheld unpopular tiles
    /// become eviction candidates.
    fn close_session(&self, id: SessionId);
    /// Number of open sessions.
    fn session_count(&self) -> usize;
    /// The per-session prefetch allocation: the **global** budget
    /// divided fairly among open sessions (at least 1).
    fn session_budget(&self) -> usize;
    /// Looks up a tile for `session`, counting shared hits.
    fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>>;
    /// Residency check that touches neither stats nor recency (for
    /// prefetch filtering).
    fn contains(&self, id: TileId) -> bool;
    /// Installs tiles fetched for `session`, evicting per policy when
    /// over capacity; at most the session's fair budget per call.
    /// Returns the number of tiles actually installed.
    fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize;
    /// Adds `session`'s hold on any of `ids` that are resident,
    /// without touching stats, popularity, or recency — how a session
    /// protects predictions another session already fetched (its
    /// prefetch set is communal property it didn't have to install).
    fn hold(&self, session: SessionId, ids: &[TileId]);
    /// Releases `session`'s hold on tiles outside `keep` (its new
    /// prefetch set) — the per-request reallocation step.
    fn retain_for(&self, session: SessionId, keep: &[TileId]);
    /// Number of resident tiles.
    fn len(&self) -> usize;
    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Statistics snapshot.
    fn stats(&self) -> SharedCacheStats;
    /// The most popular resident tiles, best first (dataset hotspots in
    /// the §5.2.3 sense, discovered online).
    fn popular(&self, n: usize) -> Vec<(TileId, u64)>;
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

// The SplitMix64 finalizer lives in `paircache` now, shared with the
// χ² pair cache's slot hashing.
use crate::paircache::splitmix64;

/// [`splitmix64`] over the packed tile coordinates — used for both
/// tile→shard and session→hold-stripe assignment.
#[inline]
fn tile_hash(id: TileId) -> u64 {
    splitmix64((u64::from(id.level) << 58) ^ (u64::from(id.y) << 29) ^ u64::from(id.x))
}

/// One residency map with its LRU clock — the whole cache for the
/// single-mutex reference, one stripe of it for the sharded cache.
#[derive(Debug, Default)]
struct TileMap {
    tiles: HashMap<TileId, Resident>,
    /// Monotonic touch counter scoped to this map.
    touch: u64,
}

impl TileMap {
    /// Looks `id` up, refreshing popularity/recency and recording the
    /// holder. Returns `(tile, was_cross_session_hit, holder_added)`:
    /// a hit is cross-session when a *different* session's fetch
    /// brought the tile in (regardless of who holds it now).
    fn lookup(&mut self, session: SessionId, id: TileId) -> Option<(Arc<Tile>, bool, bool)> {
        self.touch += 1;
        let touch = self.touch;
        let r = self.tiles.get_mut(&id)?;
        r.popularity += 1;
        r.last_touch = touch;
        let foreign = r.installer != session;
        let holder_added = !r.holders.contains(&session);
        if holder_added {
            r.holders.push(session);
        }
        Some((r.tile.clone(), foreign, holder_added))
    }

    /// Inserts `tile` for `session` (or refreshes it), returning
    /// `(newly_resident, holder_added)`.
    fn install_one(&mut self, session: SessionId, tile: Arc<Tile>) -> (bool, bool) {
        self.touch += 1;
        let touch = self.touch;
        match self.tiles.entry(tile.id) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let r = o.get_mut();
                let added = !r.holders.contains(&session);
                if added {
                    r.holders.push(session);
                }
                r.last_touch = touch;
                (false, added)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Resident {
                    tile,
                    installer: session,
                    holders: vec![session],
                    popularity: 1,
                    last_touch: touch,
                });
                (true, true)
            }
        }
    }

    /// Adds `session` as a holder of `id` if resident (no stats,
    /// popularity, or recency side effects); returns whether the
    /// holder was newly added.
    fn hold_one(&mut self, session: SessionId, id: TileId) -> bool {
        match self.tiles.get_mut(&id) {
            Some(r) if !r.holders.contains(&session) => {
                r.holders.push(session);
                true
            }
            _ => false,
        }
    }

    /// Evicts down to `capacity`: lowest (popularity, last_touch)
    /// first, preferring tiles with no holders. Returns evictions done.
    fn evict_to(&mut self, capacity: usize) -> usize {
        let mut evicted = 0;
        while self.tiles.len() > capacity {
            let victim = self
                .tiles
                .iter()
                .min_by_key(|(_, r)| (!r.holders.is_empty() as u64, r.popularity, r.last_touch))
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    self.tiles.remove(&id);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// The session registry shared by both implementations: open-session
/// list under a small mutex (cold path), plus an atomic count so
/// [`MultiUserCache::session_budget`] never takes a lock.
#[derive(Debug, Default)]
struct SessionRegistry {
    sessions: Mutex<Vec<SessionId>>,
    count: AtomicUsize,
    next: AtomicU64,
}

impl SessionRegistry {
    fn new() -> Self {
        Self {
            sessions: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
            next: AtomicU64::new(1),
        }
    }

    fn open(&self) -> SessionId {
        let id = SessionId(self.next.fetch_add(1, Ordering::Relaxed));
        self.sessions.lock().push(id);
        self.count.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Removes `id`; returns whether it was registered.
    fn close(&self, id: SessionId) -> bool {
        let mut g = self.sessions.lock();
        let before = g.len();
        g.retain(|&s| s != id);
        let removed = g.len() < before;
        if removed {
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// SingleMutexTileCache — the retained golden reference
// ---------------------------------------------------------------------

/// The pre-sharding shared cache: one global mutex around the whole
/// residency map. Retained as the **golden reference** for the
/// lock-striped [`SharedTileCache`] (which must match it exactly at one
/// shard, and per shard at N) and as the contention baseline
/// `exp_multiuser` measures against. New code should use
/// [`SharedTileCache`].
pub struct SingleMutexTileCache {
    inner: Mutex<TileMap>,
    capacity: usize,
    registry: SessionRegistry,
    stats: AtomicStats,
}

impl std::fmt::Debug for SingleMutexTileCache {
    /// Non-blocking: formats from a `try_lock` snapshot, printing
    /// `"<locked>"` for the resident count when another thread holds
    /// the map — debug logging can never deadlock against a holder.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("SingleMutexTileCache");
        s.field("capacity", &self.capacity)
            .field("sessions", &self.registry.count());
        match self.inner.try_lock() {
            Some(g) => s.field("resident", &g.tiles.len()),
            None => s.field("resident", &"<locked>"),
        };
        s.finish()
    }
}

impl SingleMutexTileCache {
    /// Creates a cache holding at most `capacity` tiles in total.
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        Self {
            inner: Mutex::new(TileMap::default()),
            capacity,
            registry: SessionRegistry::new(),
            stats: AtomicStats::default(),
        }
    }
}

impl MultiUserCache for SingleMutexTileCache {
    fn open_session(&self) -> SessionId {
        self.registry.open()
    }

    fn close_session(&self, id: SessionId) {
        if !self.registry.close(id) {
            return;
        }
        let mut g = self.inner.lock();
        for r in g.tiles.values_mut() {
            r.holders.retain(|&h| h != id);
        }
    }

    fn session_count(&self) -> usize {
        self.registry.count()
    }

    fn session_budget(&self) -> usize {
        (self.capacity / self.registry.count().max(1)).max(1)
    }

    fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>> {
        let found = self.inner.lock().lookup(session, id);
        match found {
            Some((tile, foreign, _)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                if foreign {
                    self.stats
                        .cross_session_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(tile)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn contains(&self, id: TileId) -> bool {
        self.inner.lock().tiles.contains_key(&id)
    }

    fn hold(&self, session: SessionId, ids: &[TileId]) {
        let mut g = self.inner.lock();
        for &id in ids {
            g.hold_one(session, id);
        }
    }

    fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize {
        let budget = self.session_budget();
        let mut g = self.inner.lock();
        let mut installed = 0usize;
        for tile in tiles.into_iter().take(budget) {
            if g.install_one(session, tile).0 {
                installed += 1;
            }
        }
        let evicted = g.evict_to(self.capacity);
        drop(g);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        installed
    }

    fn retain_for(&self, session: SessionId, keep: &[TileId]) {
        let mut g = self.inner.lock();
        for (id, r) in g.tiles.iter_mut() {
            if !keep.contains(id) {
                r.holders.retain(|&h| h != session);
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().tiles.len()
    }

    fn stats(&self) -> SharedCacheStats {
        self.stats.snapshot()
    }

    fn popular(&self, n: usize) -> Vec<(TileId, u64)> {
        let g = self.inner.lock();
        let mut v: Vec<(TileId, u64)> = g.tiles.iter().map(|(&id, r)| (id, r.popularity)).collect();
        drop(g);
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

// ---------------------------------------------------------------------
// SharedTileCache — the lock-striped serving cache
// ---------------------------------------------------------------------

/// Default shard count for [`SharedTileCache::new`] (clamped down to
/// the largest power of two ≤ capacity so every shard owns ≥ 1 slot).
pub const DEFAULT_SHARDS: usize = 16;

/// One hold-index stripe: each session hashed here maps to the tile
/// ids it currently holds.
type HoldStripe = HashMap<SessionId, Vec<TileId>>;

/// A tile cache shared by all sessions of one dataset, lock-striped
/// into power-of-two shards so sessions on different shards never
/// contend (see the module docs for the sharding invariants).
///
/// Alongside the tile shards, the cache keeps a **session-striped hold
/// index**: per session, the list of tile ids whose `holders` set
/// contains it. [`MultiUserCache::retain_for`] and
/// [`MultiUserCache::close_session`] walk only that list (≤ prefetch
/// budget + history in steady state) and lock only the shards those
/// ids hash to — the single-mutex reference instead scans every
/// resident tile per request, which `exp_multiuser` measures as its
/// dominant per-request cost. Invariants: (a) a session in a
/// resident's `holders` ⇒ the id is in that session's hold list (the
/// converse may be briefly stale: ids evicted while still in the
/// session's keep-set linger, bounded by the keep-set size, until a
/// later rebuild drops them); (b) a hold stripe's lock is never taken
/// while a tile-shard lock is held (hold pushes happen after the
/// shard guard drops), so the two stripe families cannot deadlock —
/// safe because only the owning session ever mutates its own list.
pub struct SharedTileCache {
    shards: Box<[Mutex<TileMap>]>,
    /// Per-session hold lists, striped by a `SessionId` hash under
    /// independent locks (same count as `shards`).
    holds: Box<[Mutex<HoldStripe>]>,
    /// Per-shard capacity, parallel to `shards`; sums to `capacity`.
    shard_caps: Box<[usize]>,
    /// `shards.len() - 1` — valid because the count is a power of two.
    mask: usize,
    capacity: usize,
    registry: SessionRegistry,
    stats: AtomicStats,
}

impl std::fmt::Debug for SharedTileCache {
    /// Non-blocking: each shard is sampled with `try_lock`; a shard
    /// held elsewhere makes the resident count print as `"≥n <locked>"`
    /// rather than blocking the formatter (the try-lock fallback the
    /// single-mutex cache's Debug also uses).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut resident = 0usize;
        let mut blocked = false;
        for s in self.shards.iter() {
            match s.try_lock() {
                Some(g) => resident += g.tiles.len(),
                None => blocked = true,
            }
        }
        let mut d = f.debug_struct("SharedTileCache");
        d.field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("sessions", &self.registry.count());
        if blocked {
            d.field("resident", &format_args!("≥{resident} <locked>"));
        } else {
            d.field("resident", &resident);
        }
        d.finish()
    }
}

impl SharedTileCache {
    /// Creates a cache holding at most `capacity` tiles in total,
    /// striped over [`DEFAULT_SHARDS`] shards (fewer when `capacity`
    /// is small, so no shard has zero slots).
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        let mut shards = DEFAULT_SHARDS.min(capacity);
        // Largest power of two ≤ min(DEFAULT_SHARDS, capacity).
        while !shards.is_power_of_two() {
            shards -= 1;
        }
        Self::with_shards(capacity, shards)
    }

    /// Creates a cache with an explicit shard count.
    ///
    /// # Panics
    /// Panics when `capacity` is 0, when `shards` is not a power of
    /// two, or when `capacity < shards` (a shard with zero slots could
    /// never hold the tiles hashed to it).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(
            capacity >= shards,
            "capacity {capacity} must cover all {shards} shards"
        );
        // Exact partition: base slots everywhere, one extra for the
        // first `capacity mod shards` shards; Σ shard_caps == capacity.
        let base = capacity / shards;
        let extra = capacity % shards;
        let shard_caps: Box<[usize]> = (0..shards).map(|i| base + usize::from(i < extra)).collect();
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(TileMap::default()))
                .collect(),
            holds: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_caps,
            mask: shards - 1,
            capacity,
            registry: SessionRegistry::new(),
            stats: AtomicStats::default(),
        }
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `id` hashes to.
    #[inline]
    pub fn shard_of(&self, id: TileId) -> usize {
        (tile_hash(id) as usize) & self.mask
    }

    /// The hold stripe `session` hashes to.
    #[inline]
    fn hold_stripe_of(&self, session: SessionId) -> usize {
        splitmix64(session.0) as usize & self.mask
    }

    /// Records that `session` now holds all of `ids` (idempotent); one
    /// stripe lock per call. Must be called with no shard lock held —
    /// see the lock-order invariant in the type docs.
    fn push_holds(&self, session: SessionId, ids: &[TileId]) {
        if ids.is_empty() {
            return;
        }
        let mut g = self.holds[self.hold_stripe_of(session)].lock();
        let list = g.entry(session).or_default();
        for &id in ids {
            if !list.contains(&id) {
                list.push(id);
            }
        }
    }

    /// Total capacity in tiles.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl MultiUserCache for SharedTileCache {
    fn open_session(&self) -> SessionId {
        self.registry.open()
    }

    fn close_session(&self, id: SessionId) {
        if !self.registry.close(id) {
            return;
        }
        // The hold index covers every resident this session holds (see
        // the type-level invariant), so only those shards are touched.
        let list = self.holds[self.hold_stripe_of(id)].lock().remove(&id);
        if let Some(list) = list {
            for t in list {
                let mut g = self.shards[self.shard_of(t)].lock();
                if let Some(r) = g.tiles.get_mut(&t) {
                    r.holders.retain(|&h| h != id);
                }
            }
        }
    }

    fn session_count(&self) -> usize {
        self.registry.count()
    }

    fn session_budget(&self) -> usize {
        // Global repartitioning: capacity and session count are global,
        // so shard layout never changes any session's allowance.
        (self.capacity / self.registry.count().max(1)).max(1)
    }

    fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>> {
        let found = self.shards[self.shard_of(id)].lock().lookup(session, id);
        match found {
            Some((tile, foreign, holder_added)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                if holder_added {
                    // Shard guard already dropped (lock order).
                    self.push_holds(session, &[id]);
                }
                if foreign {
                    self.stats
                        .cross_session_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(tile)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn contains(&self, id: TileId) -> bool {
        self.shards[self.shard_of(id)]
            .lock()
            .tiles
            .contains_key(&id)
    }

    fn hold(&self, session: SessionId, ids: &[TileId]) {
        let mut held: Vec<TileId> = Vec::new();
        for &id in ids {
            let mut g = self.shards[self.shard_of(id)].lock();
            if g.hold_one(session, id) {
                held.push(id);
            }
        }
        // Hold-index pushes after every shard guard has dropped (lock
        // order: never a stripe lock under a shard lock).
        self.push_holds(session, &held);
    }

    fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize {
        let budget = self.session_budget();
        // Group the batch by shard, preserving input order within each
        // shard, then run the reference install+evict sequence per
        // shard — so each shard's trace is exactly what the single-lock
        // cache would do over that shard's sub-batch.
        let assigned: Vec<(usize, Arc<Tile>)> = tiles
            .into_iter()
            .take(budget)
            .map(|t| (self.shard_of(t.id), t))
            .collect();
        let mut installed = 0usize;
        let mut evicted = 0usize;
        let mut held: Vec<TileId> = Vec::with_capacity(assigned.len());
        for s in 0..self.shards.len() {
            if !assigned.iter().any(|&(sh, _)| sh == s) {
                continue;
            }
            let mut g = self.shards[s].lock();
            for (_, tile) in assigned.iter().filter(|&&(sh, _)| sh == s) {
                let id = tile.id;
                let (new_resident, holder_added) = g.install_one(session, tile.clone());
                if new_resident {
                    installed += 1;
                }
                if holder_added {
                    held.push(id);
                }
            }
            evicted += g.evict_to(self.shard_caps[s]);
        }
        // Hold pushes after every shard guard has dropped (lock order).
        self.push_holds(session, &held);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        installed
    }

    fn retain_for(&self, session: SessionId, keep: &[TileId]) {
        // Split the session's hold list into kept and released ids
        // under the stripe lock alone; only the owning session mutates
        // its list, so dropping the stripe lock before touching shards
        // races with nobody. Ids evicted while still kept linger
        // (bounded by the keep-set size) until a later rebuild.
        let released: Vec<TileId> = {
            let mut g = self.holds[self.hold_stripe_of(session)].lock();
            let Some(list) = g.get_mut(&session) else {
                return;
            };
            let mut released = Vec::new();
            list.retain(|&id| {
                let kept = keep.contains(&id);
                if !kept {
                    released.push(id);
                }
                kept
            });
            if list.is_empty() {
                g.remove(&session);
            }
            released
        };
        // Only the shards holding released ids are locked.
        for id in released {
            let mut g = self.shards[self.shard_of(id)].lock();
            if let Some(r) = g.tiles.get_mut(&id) {
                r.holders.retain(|&h| h != session);
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tiles.len()).sum()
    }

    fn stats(&self) -> SharedCacheStats {
        self.stats.snapshot()
    }

    fn popular(&self, n: usize) -> Vec<(TileId, u64)> {
        let mut v: Vec<(TileId, u64)> = Vec::new();
        for shard in self.shards.iter() {
            let g = shard.lock();
            v.extend(g.tiles.iter().map(|(&id, r)| (id, r.popularity)));
        }
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};

    fn tile(id: TileId) -> Arc<Tile> {
        Arc::new(Tile::new(
            id,
            DenseArray::filled(Schema::grid2d("T", 2, 2, &["v"]).unwrap(), 1.0),
        ))
    }

    fn tid(x: u32) -> TileId {
        TileId::new(2, 0, x)
    }

    /// Both implementations under one suite: every behavioural test
    /// runs against the reference and the sharded cache.
    fn caches(capacity: usize) -> Vec<Box<dyn MultiUserCache>> {
        vec![
            Box::new(SingleMutexTileCache::new(capacity)),
            Box::new(SharedTileCache::with_shards(capacity, 1)),
        ]
    }

    #[test]
    fn budget_splits_across_sessions() {
        for c in caches(12) {
            let a = c.open_session();
            assert_eq!(c.session_budget(), 12);
            let b = c.open_session();
            assert_eq!(c.session_budget(), 6);
            let d = c.open_session();
            assert_eq!(c.session_budget(), 4);
            c.close_session(b);
            assert_eq!(c.session_budget(), 6);
            let _ = (a, d);
        }
    }

    #[test]
    fn cross_session_sharing_counts() {
        for c in caches(8) {
            let a = c.open_session();
            let b = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            // Session b hits the tile session a brought in.
            assert!(c.lookup(b, tid(1)).is_some());
            let s = c.stats();
            assert_eq!(s.hits, 1);
            assert_eq!(s.cross_session_hits, 1);
            // Session a hitting its own tile is not a cross hit.
            assert!(c.lookup(a, tid(1)).is_some());
            assert_eq!(c.stats().cross_session_hits, 1);
        }
    }

    #[test]
    fn eviction_prefers_unheld_unpopular_tiles() {
        for c in caches(2) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            c.install(a, vec![tile(tid(2))]);
            // Popularize tile 1.
            for _ in 0..3 {
                c.lookup(a, tid(1));
            }
            // Release holds on tile 2 only.
            c.retain_for(a, &[tid(1)]);
            c.install(a, vec![tile(tid(3))]);
            assert!(c.lookup(a, tid(1)).is_some(), "popular tile survives");
            assert!(c.lookup(a, tid(2)).is_none(), "unheld unpopular evicted");
            assert!(c.lookup(a, tid(3)).is_some());
            assert_eq!(c.stats().evictions, 1);
        }
    }

    #[test]
    fn install_respects_session_budget() {
        for c in caches(4) {
            let a = c.open_session();
            let _b = c.open_session(); // budget now 2 per session
            let installed = c.install(a, (0..4).map(|x| tile(tid(x))).collect());
            assert_eq!(installed, 2);
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn popular_ranks_by_request_count() {
        for c in caches(8) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1)), tile(tid(2))]);
            for _ in 0..5 {
                c.lookup(a, tid(2));
            }
            c.lookup(a, tid(1));
            let top = c.popular(2);
            assert_eq!(top[0].0, tid(2));
            assert!(top[0].1 > top[1].1);
        }
    }

    #[test]
    fn close_session_releases_holds() {
        for c in caches(1) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            c.close_session(a);
            // New session can displace the old session's tile.
            let b = c.open_session();
            c.install(b, vec![tile(tid(9))]);
            assert!(c.lookup(b, tid(9)).is_some());
            assert!(c.lookup(b, tid(1)).is_none());
        }
    }

    #[test]
    fn hold_protects_already_resident_tiles() {
        for c in caches(2) {
            let a = c.open_session();
            let b = c.open_session();
            // Budget is 1/session at capacity 2; a installs one tile.
            c.install(a, vec![tile(tid(1))]);
            // b rides a's prefetch: holds it without installing.
            c.hold(b, &[tid(1), tid(42)]); // non-resident id is a no-op
                                           // a moves on and releases everything; tid(1) now survives
                                           // on b's hold alone.
            c.retain_for(a, &[]);
            c.install(b, vec![tile(tid(2))]);
            // b re-partitions its holds to {tid(1)}: tid(2) is unheld.
            c.retain_for(b, &[tid(1)]);
            c.install(b, vec![tile(tid(3))]);
            assert!(c.contains(tid(1)), "held tile survives eviction");
            assert!(!c.contains(tid(2)), "unheld tile was the victim");
            assert!(c.contains(tid(3)));
            // hold() itself never counts stats.
            assert_eq!(c.stats().hits + c.stats().misses, 0);
        }
    }

    #[test]
    fn contains_does_not_touch_stats() {
        for c in caches(4) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            assert!(c.contains(tid(1)));
            assert!(!c.contains(tid(2)));
            assert_eq!(c.stats(), SharedCacheStats::default());
        }
    }

    #[test]
    fn shard_partition_is_exact_and_masked() {
        let c = SharedTileCache::with_shards(13, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.shard_caps.iter().sum::<usize>(), 13);
        // Hash-derived shard indexes stay in range and are stable.
        for x in 0..100 {
            let id = TileId::new(3, x % 7, x);
            let s = c.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, c.shard_of(id));
        }
    }

    #[test]
    fn default_shards_clamp_to_capacity() {
        let small = SharedTileCache::new(3);
        assert_eq!(small.shard_count(), 2);
        assert_eq!(small.capacity(), 3);
        let big = SharedTileCache::new(1024);
        assert_eq!(big.shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panic() {
        let _ = SharedTileCache::with_shards(12, 3);
    }

    #[test]
    fn sharded_capacity_never_exceeded_across_shards() {
        let c = SharedTileCache::with_shards(8, 4);
        let a = c.open_session();
        // Install far more distinct tiles than capacity, in waves.
        for wave in 0..10u32 {
            let tiles: Vec<_> = (0..8u32)
                .map(|x| tile(TileId::new(2, wave % 4, x)))
                .collect();
            c.install(a, tiles);
            assert!(c.len() <= 8, "wave {wave}: {} resident", c.len());
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn debug_is_non_blocking_while_a_shard_is_held() {
        let c = SharedTileCache::with_shards(8, 2);
        let a = c.open_session();
        c.install(a, vec![tile(tid(1))]);
        let g = c.shards[0].lock();
        let s = format!("{c:?}");
        assert!(s.contains("<locked>"), "{s}");
        drop(g);
        let s = format!("{c:?}");
        assert!(!s.contains("<locked>"), "{s}");

        let r = SingleMutexTileCache::new(8);
        let held = r.inner.lock();
        let s = format!("{r:?}");
        assert!(s.contains("<locked>"), "{s}");
        drop(held);
        assert!(!format!("{r:?}").contains("<locked>"));
    }
}
