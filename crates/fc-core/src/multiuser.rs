//! Multi-user cache coordination (paper §6.2, future work).
//!
//! "It is unclear how to partition the middleware cache to make
//! predictions for multiple users exploring different datasets, or how
//! to share data between users exploring the same dataset. We plan to
//! extend our architecture to manage coordinated predictions and caching
//! across multiple users."
//!
//! This module implements that extension for the same-dataset case:
//! a [`SharedTileCache`] holds one copy of every resident tile, visible
//! to all sessions; each session gets a fair slice of the prefetch
//! budget, re-partitioned as sessions come and go; and tiles requested
//! by several sessions gain *popularity* so eviction keeps communal
//! tiles longest.

use fc_tiles::{Tile, TileId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A session handle within the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

#[derive(Debug)]
struct Resident {
    tile: Arc<Tile>,
    /// Sessions whose prefetch set or history references this tile.
    holders: Vec<SessionId>,
    /// Total times any session requested this tile (popularity).
    popularity: u64,
    /// Monotonic touch counter for LRU among equal popularity.
    last_touch: u64,
}

/// Aggregate statistics for the shared cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found the tile resident (any holder).
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Hits on tiles brought in by a *different* session — the §6.2
    /// sharing benefit.
    pub cross_session_hits: usize,
    /// Evictions performed.
    pub evictions: usize,
}

impl SharedCacheStats {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    tiles: HashMap<TileId, Resident>,
    sessions: Vec<SessionId>,
    capacity: usize,
    next_session: u64,
    touch: u64,
    stats: SharedCacheStats,
}

/// A tile cache shared by all sessions of one dataset.
pub struct SharedTileCache {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SharedTileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("SharedTileCache")
            .field("capacity", &g.capacity)
            .field("resident", &g.tiles.len())
            .field("sessions", &g.sessions.len())
            .finish()
    }
}

impl SharedTileCache {
    /// Creates a cache holding at most `capacity` tiles in total.
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        Self {
            inner: Mutex::new(Inner {
                tiles: HashMap::new(),
                sessions: Vec::new(),
                capacity,
                next_session: 1,
                touch: 0,
                stats: SharedCacheStats::default(),
            }),
        }
    }

    /// Opens a session; the prefetch budget re-partitions across all
    /// open sessions.
    pub fn open_session(&self) -> SessionId {
        let mut g = self.inner.lock();
        let id = SessionId(g.next_session);
        g.next_session += 1;
        g.sessions.push(id);
        id
    }

    /// Closes a session, releasing its holds; unheld unpopular tiles
    /// become eviction candidates.
    pub fn close_session(&self, id: SessionId) {
        let mut g = self.inner.lock();
        g.sessions.retain(|&s| s != id);
        for r in g.tiles.values_mut() {
            r.holders.retain(|&h| h != id);
        }
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    /// The per-session prefetch allocation: the global budget divided
    /// fairly among open sessions (at least 1).
    pub fn session_budget(&self) -> usize {
        let g = self.inner.lock();
        (g.capacity / g.sessions.len().max(1)).max(1)
    }

    /// Looks up a tile for `session`, counting shared hits.
    pub fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>> {
        let mut g = self.inner.lock();
        g.touch += 1;
        let touch = g.touch;
        match g.tiles.get_mut(&id) {
            Some(r) => {
                r.popularity += 1;
                r.last_touch = touch;
                let foreign = !r.holders.contains(&session);
                if !r.holders.contains(&session) {
                    r.holders.push(session);
                }
                let tile = r.tile.clone();
                g.stats.hits += 1;
                if foreign {
                    g.stats.cross_session_hits += 1;
                }
                Some(tile)
            }
            None => {
                g.stats.misses += 1;
                None
            }
        }
    }

    /// Installs tiles fetched for `session` (its prefetch set or history),
    /// evicting the least-popular, least-recently-touched unheld tiles
    /// when over capacity. A session may install at most its fair budget
    /// per call; excess tiles are ignored (and reported back).
    ///
    /// Returns the number of tiles actually installed.
    pub fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize {
        let budget = self.session_budget();
        let mut g = self.inner.lock();
        let mut installed = 0usize;
        for tile in tiles.into_iter().take(budget) {
            g.touch += 1;
            let touch = g.touch;
            let entry = g.tiles.entry(tile.id);
            match entry {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let r = o.get_mut();
                    if !r.holders.contains(&session) {
                        r.holders.push(session);
                    }
                    r.last_touch = touch;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Resident {
                        tile,
                        holders: vec![session],
                        popularity: 1,
                        last_touch: touch,
                    });
                    installed += 1;
                }
            }
        }
        // Evict down to capacity: lowest (popularity, last_touch) first,
        // preferring tiles with no holders.
        while g.tiles.len() > g.capacity {
            let victim = g
                .tiles
                .iter()
                .min_by_key(|(_, r)| (!r.holders.is_empty() as u64, r.popularity, r.last_touch))
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    g.tiles.remove(&id);
                    g.stats.evictions += 1;
                }
                None => break,
            }
        }
        installed
    }

    /// Releases `session`'s hold on tiles outside `keep` (its new
    /// prefetch set) — the per-request reallocation step.
    pub fn retain_for(&self, session: SessionId, keep: &[TileId]) {
        let mut g = self.inner.lock();
        for (id, r) in g.tiles.iter_mut() {
            if !keep.contains(id) {
                r.holders.retain(|&h| h != session);
            }
        }
    }

    /// Number of resident tiles.
    pub fn len(&self) -> usize {
        self.inner.lock().tiles.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SharedCacheStats {
        self.inner.lock().stats
    }

    /// The most popular resident tiles, best first (dataset hotspots in
    /// the §5.2.3 sense, discovered online).
    pub fn popular(&self, n: usize) -> Vec<(TileId, u64)> {
        let g = self.inner.lock();
        let mut v: Vec<(TileId, u64)> = g.tiles.iter().map(|(&id, r)| (id, r.popularity)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};

    fn tile(id: TileId) -> Arc<Tile> {
        Arc::new(Tile::new(
            id,
            DenseArray::filled(Schema::grid2d("T", 2, 2, &["v"]).unwrap(), 1.0),
        ))
    }

    fn tid(x: u32) -> TileId {
        TileId::new(2, 0, x)
    }

    #[test]
    fn budget_splits_across_sessions() {
        let c = SharedTileCache::new(12);
        let a = c.open_session();
        assert_eq!(c.session_budget(), 12);
        let b = c.open_session();
        assert_eq!(c.session_budget(), 6);
        let d = c.open_session();
        assert_eq!(c.session_budget(), 4);
        c.close_session(b);
        assert_eq!(c.session_budget(), 6);
        let _ = (a, d);
    }

    #[test]
    fn cross_session_sharing_counts() {
        let c = SharedTileCache::new(8);
        let a = c.open_session();
        let b = c.open_session();
        c.install(a, vec![tile(tid(1))]);
        // Session b hits the tile session a brought in.
        assert!(c.lookup(b, tid(1)).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.cross_session_hits, 1);
        // Session a hitting its own tile is not a cross hit.
        assert!(c.lookup(a, tid(1)).is_some());
        assert_eq!(c.stats().cross_session_hits, 1);
    }

    #[test]
    fn eviction_prefers_unheld_unpopular_tiles() {
        let c = SharedTileCache::new(2);
        let a = c.open_session();
        c.install(a, vec![tile(tid(1))]);
        c.install(a, vec![tile(tid(2))]);
        // Popularize tile 1.
        for _ in 0..3 {
            c.lookup(a, tid(1));
        }
        // Release holds on tile 2 only.
        c.retain_for(a, &[tid(1)]);
        c.install(a, vec![tile(tid(3))]);
        assert!(c.lookup(a, tid(1)).is_some(), "popular tile survives");
        assert!(c.lookup(a, tid(2)).is_none(), "unheld unpopular evicted");
        assert!(c.lookup(a, tid(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn install_respects_session_budget() {
        let c = SharedTileCache::new(4);
        let a = c.open_session();
        let _b = c.open_session(); // budget now 2 per session
        let installed = c.install(a, (0..4).map(|x| tile(tid(x))).collect());
        assert_eq!(installed, 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn popular_ranks_by_request_count() {
        let c = SharedTileCache::new(8);
        let a = c.open_session();
        c.install(a, vec![tile(tid(1)), tile(tid(2))]);
        for _ in 0..5 {
            c.lookup(a, tid(2));
        }
        c.lookup(a, tid(1));
        let top = c.popular(2);
        assert_eq!(top[0].0, tid(2));
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn close_session_releases_holds() {
        let c = SharedTileCache::new(1);
        let a = c.open_session();
        c.install(a, vec![tile(tid(1))]);
        c.close_session(a);
        // New session can displace the old session's tile.
        let b = c.open_session();
        c.install(b, vec![tile(tid(9))]);
        assert!(c.lookup(b, tid(9)).is_some());
        assert!(c.lookup(b, tid(1)).is_none());
    }
}
