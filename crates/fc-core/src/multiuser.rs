//! Multi-user cache coordination (paper §6.2, future work).
//!
//! "It is unclear how to partition the middleware cache to make
//! predictions for multiple users exploring different datasets, or how
//! to share data between users exploring the same dataset. We plan to
//! extend our architecture to manage coordinated predictions and caching
//! across multiple users."
//!
//! This module implements that extension for the same-dataset case:
//! a [`SharedTileCache`] holds one copy of every resident tile, visible
//! to all sessions; each session gets a fair slice of the prefetch
//! budget, re-partitioned as sessions come and go; and tiles requested
//! by several sessions gain *popularity* so eviction keeps communal
//! tiles longest.
//!
//! # Sharding
//!
//! [`SharedTileCache`] is **lock-striped**: residency is split across N
//! shards (N a power of two, chosen at construction), each guarded by
//! its own mutex, with tiles assigned by a [`TileId`] hash. Sessions
//! touching tiles on different shards never contend. Three invariants
//! hold by construction:
//!
//! * **Shard count is a power of two** so the shard index is a single
//!   mask of the id hash ([`SharedTileCache::with_shards`] asserts it).
//! * **Capacity partitions exactly**: shard *i* holds at most
//!   `capacity/N` tiles (+1 for the first `capacity mod N` shards), so
//!   the global resident count can never exceed `capacity` no matter
//!   how concurrent installs interleave.
//! * **Budget repartitioning stays global**: the per-session prefetch
//!   allowance ([`MultiUserCache::session_budget`]) is computed from the
//!   *global* capacity and the *global* open-session count (both read
//!   from atomics), not from any per-shard quantity — opening a session
//!   shrinks every other session's allowance exactly as in the
//!   single-lock design.
//!
//! Each shard keeps its own LRU touch clock and evicts among its own
//! residents only, so sharded eviction is a per-shard approximation of
//! the global least-(holders, popularity, recency) policy. The
//! pre-sharding implementation is retained verbatim as
//! [`SingleMutexTileCache`]: it is the golden reference the sharded
//! cache is tested against (a 1-shard cache is bit-identical to it; an
//! N-shard cache behaves like N independent references over the
//! hash-partitioned id space), and the baseline `exp_multiuser`
//! benchmarks contention against.
//!
//! Statistics are lock-free atomics on both implementations' shared
//! paths (hits, misses, cross-session hits, evictions), so hot-path
//! lookups never serialize on a stats lock.
//!
//! # Namespaces and the cross-session hotspot model
//!
//! One process serves several pyramids through a [`DatasetRegistry`]:
//! each dataset gets its own [`SharedTileCache`] **namespace**, and one
//! global tile budget is partitioned exactly across the attached
//! namespaces (the same base-plus-remainder math the shard partition
//! uses) — attaching or detaching a dataset repartitions every
//! namespace's capacity via [`MultiUserCache::set_capacity`].
//!
//! Each namespace also trains a **cross-session popularity model**
//! online. Residency-based [`MultiUserCache::popular`] forgets a tile
//! the moment it is evicted — exactly the signal hotspots need — so
//! every shard additionally keeps an eviction-surviving popularity
//! sketch (a capped, periodically-halved count map) updated on every
//! lookup and fresh install; [`MultiUserCache::hot`] ranks it. A [`SharedHotspotModel`]
//! periodically snapshots the top-N into an epoch-stamped list that
//! sessions read lock-free in steady state (see [`HotspotView`]) and
//! blend into candidate ranking (`alloc::boost_toward_hotspots`,
//! gated per phase by `EngineConfig::hotspot`).

use fc_tiles::{Tile, TileId};
use parking_lot::atomic::{AtomicU64, AtomicUsize};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A session handle within the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

#[derive(Debug)]
struct Resident {
    tile: Arc<Tile>,
    /// The session whose fetch brought the tile in (re-set when a tile
    /// is re-installed after eviction) — the basis of the
    /// cross-session-hit metric, independent of who currently holds it.
    installer: SessionId,
    /// Sessions whose prefetch set or history references this tile.
    holders: Vec<SessionId>,
    /// Total times any session requested this tile (popularity).
    popularity: u64,
    /// Monotonic touch counter for LRU among equal popularity
    /// (per-shard in the sharded cache).
    last_touch: u64,
}

/// Aggregate statistics for the shared cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found the tile resident (any holder).
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Hits on tiles brought in by a *different* session — the §6.2
    /// sharing benefit.
    pub cross_session_hits: usize,
    /// Evictions performed.
    pub evictions: usize,
}

impl SharedCacheStats {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock-free statistics counters shared by both cache implementations.
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
    cross_session_hits: AtomicUsize,
    evictions: AtomicUsize,
}

impl AtomicStats {
    fn snapshot(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cross_session_hits: self.cross_session_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The operations a multi-user tile cache offers to sessions. Both the
/// lock-striped [`SharedTileCache`] and the retained
/// [`SingleMutexTileCache`] reference implement it, so the middleware,
/// the `fc-sim` multi-user driver, and `exp_multiuser` can run either
/// behind `Arc<dyn MultiUserCache>`.
pub trait MultiUserCache: Send + Sync {
    /// Opens a session; the prefetch budget re-partitions across all
    /// open sessions.
    fn open_session(&self) -> SessionId;
    /// Closes a session, releasing its holds; unheld unpopular tiles
    /// become eviction candidates.
    fn close_session(&self, id: SessionId);
    /// Number of open sessions.
    fn session_count(&self) -> usize;
    /// The per-session prefetch allocation: the **global** budget
    /// divided fairly among open sessions (at least 1).
    fn session_budget(&self) -> usize;
    /// Looks up a tile for `session`, counting shared hits.
    fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>>;
    /// Residency check that touches neither stats nor recency (for
    /// prefetch filtering).
    fn contains(&self, id: TileId) -> bool;
    /// Fetches a resident tile **without any accounting**: no stats,
    /// no popularity, no recency, no holder registration. The push
    /// planner reads candidate payloads through this — a speculative
    /// server push must not forge the hit/miss record or train the
    /// popularity model the way a real session request would.
    fn peek(&self, id: TileId) -> Option<Arc<Tile>>;
    /// Installs tiles fetched for `session`, evicting per policy when
    /// over capacity; at most the session's fair budget per call.
    /// Returns the number of tiles actually installed.
    fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize;
    /// Adds `session`'s hold on any of `ids` that are resident,
    /// without touching stats, popularity, or recency — how a session
    /// protects predictions another session already fetched (its
    /// prefetch set is communal property it didn't have to install).
    fn hold(&self, session: SessionId, ids: &[TileId]);
    /// Releases `session`'s hold on tiles outside `keep` (its new
    /// prefetch set) — the per-request reallocation step.
    fn retain_for(&self, session: SessionId, keep: &[TileId]);
    /// Number of resident tiles.
    fn len(&self) -> usize;
    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Statistics snapshot.
    fn stats(&self) -> SharedCacheStats;
    /// The most popular resident tiles, best first (dataset hotspots in
    /// the §5.2.3 sense, discovered online). In the sharded cache this
    /// is a **non-atomic snapshot**: shards are visited one at a time,
    /// so concurrent installs/evictions may be half-reflected.
    fn popular(&self, n: usize) -> Vec<(TileId, u64)>;
    /// The most-requested tiles per the eviction-surviving decayed
    /// popularity sketch, best first — unlike
    /// [`MultiUserCache::popular`], a tile keeps its standing after
    /// eviction (the signal the cross-session hotspot model trains
    /// on). Counts decay (halve) periodically, so the ranking tracks
    /// current communal interest. Non-atomic snapshot in the sharded
    /// cache, like `popular`; decay is also **per shard** there
    /// (clocked by each shard's own update stream, like the per-shard
    /// LRU clocks), so under heavily skewed traffic a busy shard's
    /// counts are halved more often than a quiet shard's and the
    /// cross-shard ranking is an approximation of the global one —
    /// acceptable for a top-N prior, not for exact accounting.
    fn hot(&self, n: usize) -> Vec<(TileId, u64)>;
    /// Current global capacity in tiles.
    fn capacity(&self) -> usize;
    /// Re-partitions the cache to a new global capacity (the
    /// [`DatasetRegistry`] calls this when datasets attach/detach),
    /// evicting down per shard when shrinking. Sharded caches require
    /// `capacity >=` their shard count.
    fn set_capacity(&self, capacity: usize);
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

// The SplitMix64 finalizer lives in `paircache` now, shared with the
// χ² pair cache's slot hashing.
use crate::paircache::splitmix64;

/// The one ranking order every popularity surface uses: count
/// descending, ties by ascending tile id. `PopularitySketch::top`,
/// both `popular()` impls, and the sharded `hot()` merge must agree on
/// this ordering — the per-shard-head merge in `hot()` is only correct
/// because each shard's `top()` ranks identically.
fn rank_by_count_desc(a: &(TileId, u64), b: &(TileId, u64)) -> std::cmp::Ordering {
    b.1.cmp(&a.1).then(a.0.cmp(&b.0))
}

/// The exact base-plus-remainder partition of `total` into `n` parts:
/// part *i* gets `total / n`, plus one for the first `total % n`
/// parts, so the parts sum to `total` exactly. Shared by the shard
/// capacity split and the registry's per-namespace budget split.
fn exact_partition(total: usize, n: usize) -> impl Iterator<Item = usize> {
    let base = total / n;
    let extra = total % n;
    (0..n).map(move |i| base + usize::from(i < extra))
}

/// [`splitmix64`] over the packed tile coordinates — used for both
/// tile→shard and session→hold-stripe assignment.
#[inline]
fn tile_hash(id: TileId) -> u64 {
    splitmix64((u64::from(id.level) << 58) ^ (u64::from(id.y) << 29) ^ u64::from(id.x))
}

/// Entry cap of one shard's popularity sketch: crossing it prunes the
/// lowest-(count, id) quartile in one batch — bounding memory to the
/// working set's head regardless of how many distinct tiles pass
/// through the namespace, at amortized O(log CAP) per insert instead
/// of a full min-scan under the shard lock on every new id.
const SKETCH_CAP: usize = 1024;
/// Entries surviving a cap prune (¾ of the cap): the slack between
/// `SKETCH_KEEP` and [`SKETCH_CAP`] is what amortizes the prune.
const SKETCH_KEEP: usize = SKETCH_CAP - SKETCH_CAP / 4;
/// Updates between decay sweeps: every `SKETCH_DECAY_EVERY` sketch
/// updates all counts halve (entries reaching zero drop out), so old
/// traffic fades and the ranking tracks *current* communal interest.
const SKETCH_DECAY_EVERY: u64 = 4096;

/// An eviction-surviving, decayed popularity sketch (capped count
/// map). [`MultiUserCache::popular`] ranks only *resident* tiles, so
/// eviction erases exactly the signal a hotspot model needs; the
/// sketch keeps counting a tile after its bytes are gone.
#[derive(Debug, Default)]
struct PopularitySketch {
    counts: HashMap<TileId, u64>,
    /// Updates since construction (drives the decay cadence).
    updates: u64,
}

impl PopularitySketch {
    /// Counts one request for `id`, decaying and capping per the
    /// module constants. Deterministic: the same update sequence
    /// always yields the same sketch (the golden tests rely on it).
    fn bump(&mut self, id: TileId) {
        self.updates += 1;
        if self.updates.is_multiple_of(SKETCH_DECAY_EVERY) {
            self.counts.retain(|_, c| {
                *c >>= 1;
                *c > 0
            });
        }
        *self.counts.entry(id).or_insert(0) += 1;
        if self.counts.len() > SKETCH_CAP {
            // Batch prune: drop the smallest (count, id) entries down
            // to SKETCH_KEEP in one pass — the per-insert min-scan
            // alternative serializes every high-cardinality lookup on
            // an O(CAP) sweep under the shard lock.
            let mut v: Vec<(TileId, u64)> = self.counts.iter().map(|(&t, &c)| (t, c)).collect();
            v.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            for &(t, _) in &v[..v.len() - SKETCH_KEEP] {
                self.counts.remove(&t);
            }
        }
    }

    /// The top-`n` entries, highest count first (ties by tile id).
    /// Runs inline on the hotspot-refresh request path under the
    /// shard lock, so only the n-sized head is ever sorted — the tail
    /// is split off with a linear-time select, not a full sort.
    fn top(&self, n: usize) -> Vec<(TileId, u64)> {
        let mut v: Vec<(TileId, u64)> = self.counts.iter().map(|(&t, &c)| (t, c)).collect();
        if n < v.len() {
            v.select_nth_unstable_by(n, rank_by_count_desc);
            v.truncate(n);
        }
        v.sort_by(rank_by_count_desc);
        v
    }
}

/// One residency map with its LRU clock — the whole cache for the
/// single-mutex reference, one stripe of it for the sharded cache.
#[derive(Debug, Default)]
struct TileMap {
    tiles: HashMap<TileId, Resident>,
    /// Monotonic touch counter scoped to this map.
    touch: u64,
    /// Eviction-surviving request counts for this map's id range.
    sketch: PopularitySketch,
}

impl TileMap {
    /// Looks `id` up, refreshing popularity/recency and recording the
    /// holder. Returns `(tile, was_cross_session_hit, holder_added)`:
    /// a hit is cross-session when a *different* session's fetch
    /// brought the tile in (regardless of who holds it now).
    fn lookup(&mut self, session: SessionId, id: TileId) -> Option<(Arc<Tile>, bool, bool)> {
        self.touch += 1;
        let touch = self.touch;
        // Misses count too: a request for an evicted (or never-fetched)
        // tile is demand the resident-only popularity can't see.
        self.sketch.bump(id);
        let r = self.tiles.get_mut(&id)?;
        r.popularity += 1;
        r.last_touch = touch;
        let foreign = r.installer != session;
        let holder_added = !r.holders.contains(&session);
        if holder_added {
            r.holders.push(session);
        }
        Some((r.tile.clone(), foreign, holder_added))
    }

    /// Inserts `tile` for `session` (or refreshes it), returning
    /// `(newly_resident, holder_added)`.
    fn install_one(&mut self, session: SessionId, tile: Arc<Tile>) -> (bool, bool) {
        self.touch += 1;
        let touch = self.touch;
        let id = tile.id;
        match self.tiles.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let r = o.get_mut();
                let added = !r.holders.contains(&session);
                if added {
                    r.holders.push(session);
                }
                r.last_touch = touch;
                (false, added)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Resident {
                    tile,
                    installer: session,
                    holders: vec![session],
                    popularity: 1,
                    last_touch: touch,
                });
                // Fresh installs feed the sketch (predicted demand);
                // re-installs of a resident tile don't double-count.
                self.sketch.bump(id);
                (true, true)
            }
        }
    }

    /// Adds `session` as a holder of `id` if resident (no stats,
    /// popularity, or recency side effects); returns whether the
    /// holder was newly added.
    fn hold_one(&mut self, session: SessionId, id: TileId) -> bool {
        match self.tiles.get_mut(&id) {
            Some(r) if !r.holders.contains(&session) => {
                r.holders.push(session);
                true
            }
            _ => false,
        }
    }

    /// Evicts down to `capacity`: lowest (popularity, last_touch)
    /// first, preferring tiles with no holders. Returns evictions done.
    fn evict_to(&mut self, capacity: usize) -> usize {
        let mut evicted = 0;
        while self.tiles.len() > capacity {
            let victim = self
                .tiles
                .iter()
                .min_by_key(|(_, r)| (!r.holders.is_empty() as u64, r.popularity, r.last_touch))
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    self.tiles.remove(&id);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// The session registry shared by both implementations: open-session
/// list under a small mutex (cold path), plus an atomic count so
/// [`MultiUserCache::session_budget`] never takes a lock.
#[derive(Debug, Default)]
struct SessionRegistry {
    sessions: Mutex<Vec<SessionId>>,
    count: AtomicUsize,
    next: AtomicU64,
}

impl SessionRegistry {
    fn new() -> Self {
        Self {
            sessions: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
            next: AtomicU64::new(1),
        }
    }

    fn open(&self) -> SessionId {
        let id = SessionId(self.next.fetch_add(1, Ordering::Relaxed));
        self.sessions.lock().push(id);
        self.count.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Removes `id`; returns whether it was registered.
    fn close(&self, id: SessionId) -> bool {
        let mut g = self.sessions.lock();
        let before = g.len();
        g.retain(|&s| s != id);
        let removed = g.len() < before;
        if removed {
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// SingleMutexTileCache — the retained golden reference
// ---------------------------------------------------------------------

/// The pre-sharding shared cache: one global mutex around the whole
/// residency map. Retained as the **golden reference** for the
/// lock-striped [`SharedTileCache`] (which must match it exactly at one
/// shard, and per shard at N) and as the contention baseline
/// `exp_multiuser` measures against. New code should use
/// [`SharedTileCache`].
pub struct SingleMutexTileCache {
    inner: Mutex<TileMap>,
    /// Atomic so [`MultiUserCache::set_capacity`] repartitioning never
    /// takes the map lock just to read the budget.
    capacity: AtomicUsize,
    registry: SessionRegistry,
    stats: AtomicStats,
}

impl std::fmt::Debug for SingleMutexTileCache {
    /// Non-blocking: formats from a `try_lock` snapshot, printing
    /// `"<locked>"` for the resident count when another thread holds
    /// the map — debug logging can never deadlock against a holder.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("SingleMutexTileCache");
        s.field("capacity", &self.capacity.load(Ordering::Relaxed))
            .field("sessions", &self.registry.count());
        match self.inner.try_lock() {
            Some(g) => s.field("resident", &g.tiles.len()),
            None => s.field("resident", &"<locked>"),
        };
        s.finish()
    }
}

impl SingleMutexTileCache {
    /// Creates a cache holding at most `capacity` tiles in total.
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        Self {
            inner: Mutex::new(TileMap::default()),
            capacity: AtomicUsize::new(capacity),
            registry: SessionRegistry::new(),
            stats: AtomicStats::default(),
        }
    }
}

impl MultiUserCache for SingleMutexTileCache {
    fn open_session(&self) -> SessionId {
        self.registry.open()
    }

    fn close_session(&self, id: SessionId) {
        if !self.registry.close(id) {
            return;
        }
        let mut g = self.inner.lock();
        for r in g.tiles.values_mut() {
            r.holders.retain(|&h| h != id);
        }
    }

    fn session_count(&self) -> usize {
        self.registry.count()
    }

    fn session_budget(&self) -> usize {
        (self.capacity.load(Ordering::Relaxed) / self.registry.count().max(1)).max(1)
    }

    fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>> {
        let found = self.inner.lock().lookup(session, id);
        match found {
            Some((tile, foreign, _)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                if foreign {
                    self.stats
                        .cross_session_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(tile)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn contains(&self, id: TileId) -> bool {
        self.inner.lock().tiles.contains_key(&id)
    }

    fn peek(&self, id: TileId) -> Option<Arc<Tile>> {
        self.inner.lock().tiles.get(&id).map(|r| r.tile.clone())
    }

    fn hold(&self, session: SessionId, ids: &[TileId]) {
        let mut g = self.inner.lock();
        for &id in ids {
            g.hold_one(session, id);
        }
    }

    fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize {
        let budget = self.session_budget();
        let mut g = self.inner.lock();
        let mut installed = 0usize;
        for tile in tiles.into_iter().take(budget) {
            if g.install_one(session, tile).0 {
                installed += 1;
            }
        }
        let evicted = g.evict_to(self.capacity.load(Ordering::Relaxed));
        drop(g);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        installed
    }

    fn retain_for(&self, session: SessionId, keep: &[TileId]) {
        let mut g = self.inner.lock();
        for (id, r) in g.tiles.iter_mut() {
            if !keep.contains(id) {
                r.holders.retain(|&h| h != session);
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().tiles.len()
    }

    fn stats(&self) -> SharedCacheStats {
        self.stats.snapshot()
    }

    fn popular(&self, n: usize) -> Vec<(TileId, u64)> {
        let g = self.inner.lock();
        let mut v: Vec<(TileId, u64)> = g.tiles.iter().map(|(&id, r)| (id, r.popularity)).collect();
        drop(g);
        v.sort_by(rank_by_count_desc);
        v.truncate(n);
        v
    }

    fn hot(&self, n: usize) -> Vec<(TileId, u64)> {
        self.inner.lock().sketch.top(n)
    }

    fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    fn set_capacity(&self, capacity: usize) {
        assert!(capacity > 0, "shared cache needs capacity");
        self.capacity.store(capacity, Ordering::Relaxed);
        let evicted = self.inner.lock().evict_to(capacity);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// SharedTileCache — the lock-striped serving cache
// ---------------------------------------------------------------------

/// Default shard count for [`SharedTileCache::new`] (clamped down to
/// the largest power of two ≤ capacity so every shard owns ≥ 1 slot).
pub const DEFAULT_SHARDS: usize = 16;

/// The shard count a dynamically-striped cache gets for `capacity`:
/// the largest power of two ≤ min([`DEFAULT_SHARDS`], `capacity`).
/// One definition shared by [`SharedTileCache::new`] and the
/// registry's attach-time pre-validation — the validation is only
/// sound while both use the same clamp.
fn default_shard_count(capacity: usize) -> usize {
    let mut shards = DEFAULT_SHARDS.min(capacity.max(1));
    while !shards.is_power_of_two() {
        shards -= 1;
    }
    shards
}

/// One hold-index stripe: each session hashed here maps to the tile
/// ids it currently holds.
type HoldStripe = HashMap<SessionId, Vec<TileId>>;

/// A tile cache shared by all sessions of one dataset, lock-striped
/// into power-of-two shards so sessions on different shards never
/// contend (see the module docs for the sharding invariants).
///
/// Alongside the tile shards, the cache keeps a **session-striped hold
/// index**: per session, the list of tile ids whose `holders` set
/// contains it. [`MultiUserCache::retain_for`] and
/// [`MultiUserCache::close_session`] walk only that list (≤ prefetch
/// budget + history in steady state) and lock only the shards those
/// ids hash to — the single-mutex reference instead scans every
/// resident tile per request, which `exp_multiuser` measures as its
/// dominant per-request cost. Invariants: (a) a session in a
/// resident's `holders` ⇒ the id is in that session's hold list (the
/// converse may be briefly stale: ids evicted while still in the
/// session's keep-set linger, bounded by the keep-set size, until a
/// later rebuild drops them); (b) a hold stripe's lock is never taken
/// while a tile-shard lock is held (hold pushes happen after the
/// shard guard drops), so the two stripe families cannot deadlock —
/// safe because only the owning session ever mutates its own list.
pub struct SharedTileCache {
    shards: Box<[Mutex<TileMap>]>,
    /// Per-session hold lists, striped by a `SessionId` hash under
    /// independent locks (same count as `shards`).
    holds: Box<[Mutex<HoldStripe>]>,
    /// Per-shard capacity, parallel to `shards`; sums to `capacity`.
    /// Atomic so [`MultiUserCache::set_capacity`] repartitioning (the
    /// registry's dataset attach/detach path) publishes new caps
    /// without locking every shard at once.
    shard_caps: Box<[AtomicUsize]>,
    /// `shards.len() - 1` — valid because the count is a power of two.
    mask: usize,
    capacity: AtomicUsize,
    registry: SessionRegistry,
    stats: AtomicStats,
}

impl std::fmt::Debug for SharedTileCache {
    /// Non-blocking: each shard is sampled with `try_lock`; a shard
    /// held elsewhere makes the resident count print as `"≥n <locked>"`
    /// rather than blocking the formatter (the try-lock fallback the
    /// single-mutex cache's Debug also uses).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut resident = 0usize;
        let mut blocked = false;
        for s in self.shards.iter() {
            match s.try_lock() {
                Some(g) => resident += g.tiles.len(),
                None => blocked = true,
            }
        }
        let mut d = f.debug_struct("SharedTileCache");
        d.field("capacity", &self.capacity.load(Ordering::Relaxed))
            .field("shards", &self.shards.len())
            .field("sessions", &self.registry.count());
        if blocked {
            d.field("resident", &format_args!("≥{resident} <locked>"));
        } else {
            d.field("resident", &resident);
        }
        d.finish()
    }
}

impl SharedTileCache {
    /// Creates a cache holding at most `capacity` tiles in total,
    /// striped over [`DEFAULT_SHARDS`] shards (fewer when `capacity`
    /// is small, so no shard has zero slots).
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        Self::with_shards(capacity, default_shard_count(capacity))
    }

    /// Creates a cache with an explicit shard count.
    ///
    /// # Panics
    /// Panics when `capacity` is 0, when `shards` is not a power of
    /// two, or when `capacity < shards` (a shard with zero slots could
    /// never hold the tiles hashed to it).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "shared cache needs capacity");
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(
            capacity >= shards,
            "capacity {capacity} must cover all {shards} shards"
        );
        // Exact partition: base slots everywhere, one extra for the
        // first `capacity mod shards` shards; Σ shard_caps == capacity.
        let shard_caps: Box<[AtomicUsize]> = exact_partition(capacity, shards)
            .map(AtomicUsize::new)
            .collect();
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(TileMap::default()))
                .collect(),
            holds: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_caps,
            mask: shards - 1,
            capacity: AtomicUsize::new(capacity),
            registry: SessionRegistry::new(),
            stats: AtomicStats::default(),
        }
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `id` hashes to.
    #[inline]
    pub fn shard_of(&self, id: TileId) -> usize {
        (tile_hash(id) as usize) & self.mask
    }

    /// The hold stripe `session` hashes to.
    #[inline]
    fn hold_stripe_of(&self, session: SessionId) -> usize {
        splitmix64(session.0) as usize & self.mask
    }

    /// Records that `session` now holds all of `ids` (idempotent); one
    /// stripe lock per call. Must be called with no shard lock held —
    /// see the lock-order invariant in the type docs.
    fn push_holds(&self, session: SessionId, ids: &[TileId]) {
        if ids.is_empty() {
            return;
        }
        let mut g = self.holds[self.hold_stripe_of(session)].lock();
        let list = g.entry(session).or_default();
        for &id in ids {
            if !list.contains(&id) {
                list.push(id);
            }
        }
    }

    /// Total capacity in tiles.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// The sessions currently holding resident tile `id`, or `None`
    /// when the tile is not resident. Diagnostic accessor (takes one
    /// shard lock); `fc-check`'s model suites use it to assert the
    /// holders/hold-index consistency invariant under every explored
    /// interleaving.
    pub fn holders_of(&self, id: TileId) -> Option<Vec<SessionId>> {
        self.shards[self.shard_of(id)]
            .lock()
            .tiles
            .get(&id)
            .map(|r| r.holders.clone())
    }

    /// `session`'s hold-index entry (the tile ids the reverse index
    /// believes it holds), or `None` when absent. Diagnostic accessor
    /// for the model suites (takes one stripe lock).
    pub fn hold_index_of(&self, session: SessionId) -> Option<Vec<TileId>> {
        self.holds[self.hold_stripe_of(session)]
            .lock()
            .get(&session)
            .cloned()
    }
}

impl MultiUserCache for SharedTileCache {
    fn open_session(&self) -> SessionId {
        self.registry.open()
    }

    fn close_session(&self, id: SessionId) {
        if !self.registry.close(id) {
            return;
        }
        // The hold index covers every resident this session holds (see
        // the type-level invariant), so only those shards are touched.
        let list = self.holds[self.hold_stripe_of(id)].lock().remove(&id);
        if let Some(list) = list {
            for t in list {
                let mut g = self.shards[self.shard_of(t)].lock();
                if let Some(r) = g.tiles.get_mut(&t) {
                    r.holders.retain(|&h| h != id);
                }
            }
        }
    }

    fn session_count(&self) -> usize {
        self.registry.count()
    }

    fn session_budget(&self) -> usize {
        // Global repartitioning: capacity and session count are global,
        // so shard layout never changes any session's allowance.
        (self.capacity.load(Ordering::Relaxed) / self.registry.count().max(1)).max(1)
    }

    fn lookup(&self, session: SessionId, id: TileId) -> Option<Arc<Tile>> {
        let found = self.shards[self.shard_of(id)].lock().lookup(session, id);
        match found {
            Some((tile, foreign, holder_added)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                if holder_added {
                    // Shard guard already dropped (lock order).
                    self.push_holds(session, &[id]);
                }
                if foreign {
                    self.stats
                        .cross_session_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(tile)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn contains(&self, id: TileId) -> bool {
        self.shards[self.shard_of(id)]
            .lock()
            .tiles
            .contains_key(&id)
    }

    fn peek(&self, id: TileId) -> Option<Arc<Tile>> {
        self.shards[self.shard_of(id)]
            .lock()
            .tiles
            .get(&id)
            .map(|r| r.tile.clone())
    }

    fn hold(&self, session: SessionId, ids: &[TileId]) {
        let mut held: Vec<TileId> = Vec::new();
        for &id in ids {
            let mut g = self.shards[self.shard_of(id)].lock();
            if g.hold_one(session, id) {
                held.push(id);
            }
        }
        // Hold-index pushes after every shard guard has dropped (lock
        // order: never a stripe lock under a shard lock).
        self.push_holds(session, &held);
    }

    fn install(&self, session: SessionId, tiles: Vec<Arc<Tile>>) -> usize {
        let budget = self.session_budget();
        // Group the batch by shard, preserving input order within each
        // shard, then run the reference install+evict sequence per
        // shard — so each shard's trace is exactly what the single-lock
        // cache would do over that shard's sub-batch.
        let assigned: Vec<(usize, Arc<Tile>)> = tiles
            .into_iter()
            .take(budget)
            .map(|t| (self.shard_of(t.id), t))
            .collect();
        let mut installed = 0usize;
        let mut evicted = 0usize;
        let mut held: Vec<TileId> = Vec::with_capacity(assigned.len());
        for s in 0..self.shards.len() {
            if !assigned.iter().any(|&(sh, _)| sh == s) {
                continue;
            }
            let mut g = self.shards[s].lock();
            for (_, tile) in assigned.iter().filter(|&&(sh, _)| sh == s) {
                let id = tile.id;
                let (new_resident, holder_added) = g.install_one(session, tile.clone());
                if new_resident {
                    installed += 1;
                }
                if holder_added {
                    held.push(id);
                }
            }
            evicted += g.evict_to(self.shard_caps[s].load(Ordering::Relaxed));
        }
        // Hold pushes after every shard guard has dropped (lock order).
        self.push_holds(session, &held);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        installed
    }

    fn retain_for(&self, session: SessionId, keep: &[TileId]) {
        // Split the session's hold list into kept and released ids
        // under the stripe lock alone; only the owning session mutates
        // its list, so dropping the stripe lock before touching shards
        // races with nobody. Ids evicted while still kept linger
        // (bounded by the keep-set size) until a later rebuild.
        let released: Vec<TileId> = {
            let mut g = self.holds[self.hold_stripe_of(session)].lock();
            let Some(list) = g.get_mut(&session) else {
                return;
            };
            let mut released = Vec::new();
            list.retain(|&id| {
                let kept = keep.contains(&id);
                if !kept {
                    released.push(id);
                }
                kept
            });
            if list.is_empty() {
                g.remove(&session);
            }
            released
        };
        // Only the shards holding released ids are locked.
        for id in released {
            let mut g = self.shards[self.shard_of(id)].lock();
            if let Some(r) = g.tiles.get_mut(&id) {
                r.holders.retain(|&h| h != session);
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tiles.len()).sum()
    }

    fn stats(&self) -> SharedCacheStats {
        self.stats.snapshot()
    }

    fn popular(&self, n: usize) -> Vec<(TileId, u64)> {
        let mut v: Vec<(TileId, u64)> = Vec::new();
        for shard in self.shards.iter() {
            let g = shard.lock();
            v.extend(g.tiles.iter().map(|(&id, r)| (id, r.popularity)));
        }
        v.sort_by(rank_by_count_desc);
        v.truncate(n);
        v
    }

    fn hot(&self, n: usize) -> Vec<(TileId, u64)> {
        // Each id lives on exactly one shard's sketch, so the merge is
        // a plain concatenation (non-atomic snapshot, like `popular`),
        // and the global top-n is a subset of the union of per-shard
        // top-n (same ordering) — so each shard only surrenders its
        // own head, keeping the refresh-path merge at shards × n
        // entries instead of every sketch in full.
        let mut v: Vec<(TileId, u64)> = Vec::new();
        for shard in self.shards.iter() {
            v.extend(shard.lock().sketch.top(n));
        }
        v.sort_by(rank_by_count_desc);
        v.truncate(n);
        v
    }

    fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    fn set_capacity(&self, capacity: usize) {
        assert!(
            capacity >= self.shards.len(),
            "capacity {capacity} must cover all {} shards",
            self.shards.len()
        );
        // Same exact partition as construction; each shard's new cap
        // is published before that shard is evicted down, one shard at
        // a time — installs racing a shrink are bounded by whichever
        // cap they read, and the global invariant (Σ shard residents ≤
        // capacity) holds once the sweep completes.
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut evicted = 0usize;
        for (i, cap) in exact_partition(capacity, self.shards.len()).enumerate() {
            self.shard_caps[i].store(cap, Ordering::Relaxed);
            evicted += self.shards[i].lock().evict_to(cap);
        }
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// SharedHotspotModel — the cross-session popularity model
// ---------------------------------------------------------------------

/// Cadence and width of a namespace's [`SharedHotspotModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotConfig {
    /// Hotspots kept per snapshot (the top-N of the sketch).
    pub top_n: usize,
    /// Requests between snapshot refreshes (each session's request
    /// ticks the model once; see [`SharedHotspotModel::observe`]).
    pub refresh_every: u64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        Self {
            top_n: 16,
            refresh_every: 64,
        }
    }
}

/// One epoch-stamped publication of a namespace's top hotspots, best
/// first (tile, decayed request count). Sessions hold it through an
/// `Arc`, so a snapshot stays valid however long a predict uses it —
/// the model never mutates a published snapshot, it swaps in a new one
/// under the next epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotspotSnapshot {
    /// Monotonic publication stamp (0 = the empty pre-first snapshot).
    pub epoch: u64,
    /// The hotspots, most requested first.
    pub hotspots: Vec<(TileId, u64)>,
}

/// The cross-session hotspot model of one cache namespace: it
/// periodically snapshots the eviction-surviving popularity sketch
/// ([`MultiUserCache::hot`]) into an epoch-stamped [`HotspotSnapshot`].
///
/// **Readers are lock-free in steady state**: a session keeps a
/// [`HotspotView`] whose `current` does one atomic epoch load per
/// predict and only touches the snapshot mutex when the model has
/// published a new epoch (every [`HotspotConfig::refresh_every`]
/// requests). Writers (refresh) swap the `Arc` under a mutex that is
/// uncontended at that cadence. The model takes **no cache lock order
/// obligations**: `refresh` calls `hot()`, which locks tile shards one
/// at a time and never touches hold stripes.
#[derive(Debug)]
pub struct SharedHotspotModel {
    cfg: HotspotConfig,
    /// Requests observed (drives the refresh cadence).
    ticks: AtomicU64,
    /// Epoch of the current snapshot; readers compare against their
    /// cached copy before taking the mutex.
    epoch: AtomicU64,
    snap: Mutex<Arc<HotspotSnapshot>>,
}

impl SharedHotspotModel {
    /// Creates a model publishing `cfg.top_n` hotspots every
    /// `cfg.refresh_every` observed requests.
    ///
    /// # Panics
    /// Panics when `refresh_every` is 0.
    pub fn new(cfg: HotspotConfig) -> Self {
        assert!(cfg.refresh_every > 0, "hotspot refresh cadence must be > 0");
        Self {
            cfg,
            ticks: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            snap: Mutex::new(Arc::new(HotspotSnapshot::default())),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> HotspotConfig {
        self.cfg
    }

    /// Epoch of the current snapshot (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (cheap `Arc` clone under the snapshot
    /// mutex; sessions should go through a [`HotspotView`] instead so
    /// steady state skips the lock).
    pub fn snapshot(&self) -> Arc<HotspotSnapshot> {
        self.snap.lock().clone()
    }

    /// Counts one request against the refresh cadence; every
    /// `refresh_every`-th call rebuilds the snapshot from `cache`'s
    /// sketch. Call once per served request (any session).
    pub fn observe(&self, cache: &dyn MultiUserCache) {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if t.is_multiple_of(self.cfg.refresh_every) {
            self.refresh(cache);
        }
    }

    /// Forces a snapshot rebuild from `cache`'s popularity sketch and
    /// publishes it under the next epoch.
    pub fn refresh(&self, cache: &dyn MultiUserCache) {
        let hotspots = cache.hot(self.cfg.top_n);
        let mut g = self.snap.lock();
        // Epoch advances under the snapshot mutex so a view can never
        // pair a new epoch with a stale snapshot.
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        *g = Arc::new(HotspotSnapshot { epoch, hotspots });
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// A session's cached read handle on a [`SharedHotspotModel`]: steady
/// state costs one atomic epoch compare; the snapshot mutex is taken
/// only on publication boundaries.
#[derive(Debug, Clone, Default)]
pub struct HotspotView {
    cached: Arc<HotspotSnapshot>,
}

impl HotspotView {
    /// The freshest snapshot, refreshing the cached `Arc` only when
    /// `model` has published a new epoch.
    pub fn current(&mut self, model: &SharedHotspotModel) -> &Arc<HotspotSnapshot> {
        if self.cached.epoch != model.epoch() {
            self.cached = model.snapshot();
        }
        &self.cached
    }
}

// ---------------------------------------------------------------------
// DatasetRegistry — per-dataset cache namespaces under one budget
// ---------------------------------------------------------------------

/// Configuration of a [`DatasetRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Global tile budget, partitioned exactly across attached
    /// namespaces (attach order; first `budget % n` namespaces get one
    /// extra slot — the shard partition math, one level up).
    pub budget: usize,
    /// Shard count per namespace cache (power of two; 0 picks the
    /// default striping for the namespace's initial capacity).
    pub shards: usize,
    /// Hotspot-model cadence for every namespace.
    pub hotspots: HotspotConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            budget: 4096,
            shards: 0,
            hotspots: HotspotConfig::default(),
        }
    }
}

/// One dataset's slot in a [`DatasetRegistry`]: its cache namespace
/// plus the hotspot model trained from that namespace's sketch.
#[derive(Debug)]
pub struct DatasetNamespace {
    name: String,
    cache: Arc<SharedTileCache>,
    hotspots: Arc<SharedHotspotModel>,
}

impl DatasetNamespace {
    /// The dataset name this namespace serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The namespace's tile cache (its capacity is managed by the
    /// registry's repartitioning; don't `set_capacity` it directly).
    pub fn cache(&self) -> &Arc<SharedTileCache> {
        &self.cache
    }

    /// The namespace's cross-session hotspot model.
    pub fn hotspots(&self) -> &Arc<SharedHotspotModel> {
        &self.hotspots
    }
}

/// Partitions one global tile budget across per-dataset
/// [`SharedTileCache`] namespaces: attaching a dataset opens a
/// namespace (shrinking every other namespace's capacity), detaching
/// closes it (returning its slice to the survivors). The per-namespace
/// split reuses the exact base-plus-remainder partition the shard
/// split uses, keyed by attach order, so Σ namespace capacities ==
/// `budget` at all times.
///
/// Sessions hold a namespace's cache through an `Arc`; detaching a
/// dataset mid-session leaves those sessions on the (now
/// unregistered) cache until their handles drop — the registry only
/// governs the budget of *attached* namespaces.
#[derive(Debug)]
pub struct DatasetRegistry {
    cfg: RegistryConfig,
    /// Attached namespaces in attach order (the partition key).
    namespaces: Mutex<Vec<Arc<DatasetNamespace>>>,
}

impl DatasetRegistry {
    /// Creates an empty registry with `cfg.budget` tiles to hand out.
    ///
    /// # Panics
    /// Panics when the budget is 0.
    pub fn new(cfg: RegistryConfig) -> Self {
        assert!(cfg.budget > 0, "dataset registry needs a tile budget");
        Self {
            cfg,
            namespaces: Mutex::new(Vec::new()),
        }
    }

    /// The global tile budget.
    pub fn budget(&self) -> usize {
        self.cfg.budget
    }

    /// Number of attached namespaces.
    pub fn len(&self) -> usize {
        self.namespaces.lock().len()
    }

    /// Whether no dataset is attached.
    pub fn is_empty(&self) -> bool {
        self.namespaces.lock().is_empty()
    }

    /// Attached dataset names, in attach order.
    pub fn names(&self) -> Vec<String> {
        self.namespaces
            .lock()
            .iter()
            .map(|ns| ns.name.clone())
            .collect()
    }

    /// The namespace serving `name`, if attached.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetNamespace>> {
        self.namespaces
            .lock()
            .iter()
            .find(|ns| ns.name == name)
            .cloned()
    }

    /// Opens (or returns the existing) namespace for `name`,
    /// repartitioning every attached namespace's capacity over the
    /// global budget. A namespace's shard count is fixed at attach
    /// time (from its attach-time slice, for dynamic `shards: 0`
    /// configurations): live caches cannot reshard, so a later attach
    /// that would shrink any namespace below its shard count is
    /// rejected *before* anything mutates.
    ///
    /// # Panics
    /// Panics when the post-attach partition cannot cover every
    /// namespace's shard count (attach fewer datasets, or grow the
    /// budget). The registry is left exactly as it was — the
    /// Σ-capacities-==-budget invariant holds across the unwind.
    pub fn attach(&self, name: &str) -> Arc<DatasetNamespace> {
        let mut g = self.namespaces.lock();
        if let Some(ns) = g.iter().find(|ns| ns.name == name) {
            return ns.clone();
        }
        // Validate the whole post-attach partition before touching
        // anything: the new namespace takes the last attach-order
        // slot.
        let caps: Vec<usize> = exact_partition(self.cfg.budget, g.len() + 1).collect();
        let new_cap = *caps.last().expect("at least one slot");
        let new_shards = if self.cfg.shards == 0 {
            default_shard_count(new_cap)
        } else {
            self.cfg.shards
        };
        for (i, ns) in g.iter().enumerate() {
            assert!(
                caps[i] >= ns.cache.shard_count(),
                "budget {} over {} namespaces would leave '{}' with {} tiles \
                 for {} shards — grow the budget or attach fewer datasets",
                self.cfg.budget,
                g.len() + 1,
                ns.name,
                caps[i],
                ns.cache.shard_count()
            );
        }
        assert!(
            new_cap >= new_shards && new_cap > 0,
            "budget {} over {} namespaces leaves only {new_cap} tiles for new \
             namespace '{name}' ({new_shards} shards) — grow the budget or \
             attach fewer datasets",
            self.cfg.budget,
            g.len() + 1,
        );
        let cache = Arc::new(if self.cfg.shards == 0 {
            SharedTileCache::new(new_cap)
        } else {
            SharedTileCache::with_shards(new_cap, self.cfg.shards)
        });
        let ns = Arc::new(DatasetNamespace {
            name: name.to_string(),
            cache,
            hotspots: Arc::new(SharedHotspotModel::new(self.cfg.hotspots)),
        });
        g.push(ns.clone());
        Self::repartition(self.cfg.budget, &g);
        ns
    }

    /// Detaches `name`, returning its budget slice to the surviving
    /// namespaces. Returns whether the dataset was attached.
    pub fn detach(&self, name: &str) -> bool {
        let mut g = self.namespaces.lock();
        let before = g.len();
        g.retain(|ns| ns.name != name);
        let removed = g.len() < before;
        if removed {
            Self::repartition(self.cfg.budget, &g);
        }
        removed
    }

    /// Per-namespace capacities after the last (re)partition, in
    /// attach order.
    pub fn capacities(&self) -> Vec<(String, usize)> {
        self.namespaces
            .lock()
            .iter()
            .map(|ns| (ns.name.clone(), ns.cache.capacity()))
            .collect()
    }

    /// Applies the exact partition of `budget` over the attached
    /// namespaces (attach order).
    fn repartition(budget: usize, namespaces: &[Arc<DatasetNamespace>]) {
        if namespaces.is_empty() {
            return;
        }
        for (ns, cap) in namespaces
            .iter()
            .zip(exact_partition(budget, namespaces.len()))
        {
            assert!(
                cap >= ns.cache.shard_count(),
                "budget {budget} over {} namespaces leaves '{}' with {cap} tiles \
                 for {} shards — grow the budget or attach fewer datasets",
                namespaces.len(),
                ns.name,
                ns.cache.shard_count()
            );
            MultiUserCache::set_capacity(ns.cache.as_ref(), cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};

    fn tile(id: TileId) -> Arc<Tile> {
        Arc::new(Tile::new(
            id,
            DenseArray::filled(Schema::grid2d("T", 2, 2, &["v"]).unwrap(), 1.0),
        ))
    }

    fn tid(x: u32) -> TileId {
        TileId::new(2, 0, x)
    }

    /// Both implementations under one suite: every behavioural test
    /// runs against the reference and the sharded cache.
    fn caches(capacity: usize) -> Vec<Box<dyn MultiUserCache>> {
        vec![
            Box::new(SingleMutexTileCache::new(capacity)),
            Box::new(SharedTileCache::with_shards(capacity, 1)),
        ]
    }

    #[test]
    fn budget_splits_across_sessions() {
        for c in caches(12) {
            let a = c.open_session();
            assert_eq!(c.session_budget(), 12);
            let b = c.open_session();
            assert_eq!(c.session_budget(), 6);
            let d = c.open_session();
            assert_eq!(c.session_budget(), 4);
            c.close_session(b);
            assert_eq!(c.session_budget(), 6);
            let _ = (a, d);
        }
    }

    #[test]
    fn cross_session_sharing_counts() {
        for c in caches(8) {
            let a = c.open_session();
            let b = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            // Session b hits the tile session a brought in.
            assert!(c.lookup(b, tid(1)).is_some());
            let s = c.stats();
            assert_eq!(s.hits, 1);
            assert_eq!(s.cross_session_hits, 1);
            // Session a hitting its own tile is not a cross hit.
            assert!(c.lookup(a, tid(1)).is_some());
            assert_eq!(c.stats().cross_session_hits, 1);
        }
    }

    #[test]
    fn eviction_prefers_unheld_unpopular_tiles() {
        for c in caches(2) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            c.install(a, vec![tile(tid(2))]);
            // Popularize tile 1.
            for _ in 0..3 {
                c.lookup(a, tid(1));
            }
            // Release holds on tile 2 only.
            c.retain_for(a, &[tid(1)]);
            c.install(a, vec![tile(tid(3))]);
            assert!(c.lookup(a, tid(1)).is_some(), "popular tile survives");
            assert!(c.lookup(a, tid(2)).is_none(), "unheld unpopular evicted");
            assert!(c.lookup(a, tid(3)).is_some());
            assert_eq!(c.stats().evictions, 1);
        }
    }

    #[test]
    fn install_respects_session_budget() {
        for c in caches(4) {
            let a = c.open_session();
            let _b = c.open_session(); // budget now 2 per session
            let installed = c.install(a, (0..4).map(|x| tile(tid(x))).collect());
            assert_eq!(installed, 2);
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn popular_ranks_by_request_count() {
        for c in caches(8) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1)), tile(tid(2))]);
            for _ in 0..5 {
                c.lookup(a, tid(2));
            }
            c.lookup(a, tid(1));
            let top = c.popular(2);
            assert_eq!(top[0].0, tid(2));
            assert!(top[0].1 > top[1].1);
        }
    }

    #[test]
    fn close_session_releases_holds() {
        for c in caches(1) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            c.close_session(a);
            // New session can displace the old session's tile.
            let b = c.open_session();
            c.install(b, vec![tile(tid(9))]);
            assert!(c.lookup(b, tid(9)).is_some());
            assert!(c.lookup(b, tid(1)).is_none());
        }
    }

    #[test]
    fn hold_protects_already_resident_tiles() {
        for c in caches(2) {
            let a = c.open_session();
            let b = c.open_session();
            // Budget is 1/session at capacity 2; a installs one tile.
            c.install(a, vec![tile(tid(1))]);
            // b rides a's prefetch: holds it without installing.
            c.hold(b, &[tid(1), tid(42)]); // non-resident id is a no-op
                                           // a moves on and releases everything; tid(1) now survives
                                           // on b's hold alone.
            c.retain_for(a, &[]);
            c.install(b, vec![tile(tid(2))]);
            // b re-partitions its holds to {tid(1)}: tid(2) is unheld.
            c.retain_for(b, &[tid(1)]);
            c.install(b, vec![tile(tid(3))]);
            assert!(c.contains(tid(1)), "held tile survives eviction");
            assert!(!c.contains(tid(2)), "unheld tile was the victim");
            assert!(c.contains(tid(3)));
            // hold() itself never counts stats.
            assert_eq!(c.stats().hits + c.stats().misses, 0);
        }
    }

    #[test]
    fn contains_does_not_touch_stats() {
        for c in caches(4) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            assert!(c.contains(tid(1)));
            assert!(!c.contains(tid(2)));
            assert_eq!(c.stats(), SharedCacheStats::default());
        }
    }

    #[test]
    fn shard_partition_is_exact_and_masked() {
        let c = SharedTileCache::with_shards(13, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(
            c.shard_caps
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum::<usize>(),
            13
        );
        // Hash-derived shard indexes stay in range and are stable.
        for x in 0..100 {
            let id = TileId::new(3, x % 7, x);
            let s = c.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, c.shard_of(id));
        }
    }

    #[test]
    fn default_shards_clamp_to_capacity() {
        let small = SharedTileCache::new(3);
        assert_eq!(small.shard_count(), 2);
        assert_eq!(small.capacity(), 3);
        let big = SharedTileCache::new(1024);
        assert_eq!(big.shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panic() {
        let _ = SharedTileCache::with_shards(12, 3);
    }

    #[test]
    fn sharded_capacity_never_exceeded_across_shards() {
        let c = SharedTileCache::with_shards(8, 4);
        let a = c.open_session();
        // Install far more distinct tiles than capacity, in waves.
        for wave in 0..10u32 {
            let tiles: Vec<_> = (0..8u32)
                .map(|x| tile(TileId::new(2, wave % 4, x)))
                .collect();
            c.install(a, tiles);
            assert!(c.len() <= 8, "wave {wave}: {} resident", c.len());
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn debug_is_non_blocking_while_a_shard_is_held() {
        let c = SharedTileCache::with_shards(8, 2);
        let a = c.open_session();
        c.install(a, vec![tile(tid(1))]);
        let g = c.shards[0].lock();
        let s = format!("{c:?}");
        assert!(s.contains("<locked>"), "{s}");
        drop(g);
        let s = format!("{c:?}");
        assert!(!s.contains("<locked>"), "{s}");

        let r = SingleMutexTileCache::new(8);
        let held = r.inner.lock();
        let s = format!("{r:?}");
        assert!(s.contains("<locked>"), "{s}");
        drop(held);
        assert!(!format!("{r:?}").contains("<locked>"));
    }

    #[test]
    fn hot_survives_eviction_unlike_popular() {
        for c in caches(2) {
            let a = c.open_session();
            c.install(a, vec![tile(tid(1))]);
            for _ in 0..4 {
                c.lookup(a, tid(1));
            }
            // Release the hold, then displace tid(1) with two fresh
            // tiles (capacity 2; eviction prefers the unheld tile).
            c.retain_for(a, &[]);
            c.install(a, vec![tile(tid(2)), tile(tid(3))]);
            assert!(!c.contains(tid(1)), "tid(1) must have been evicted");
            assert!(
                !c.popular(10).iter().any(|&(t, _)| t == tid(1)),
                "popular() forgets evicted tiles"
            );
            let hot = c.hot(10);
            assert_eq!(hot[0].0, tid(1), "sketch remembers the evicted tile");
            assert_eq!(hot[0].1, 5, "1 install + 4 lookups");
            // Requests for non-resident tiles count as demand too.
            c.lookup(a, tid(1));
            assert_eq!(c.hot(1)[0].1, 6);
        }
    }

    #[test]
    fn sketch_ranking_is_sorted_and_truncated() {
        for c in caches(8) {
            let a = c.open_session();
            c.install(a, (0..4).map(|x| tile(tid(x))).collect());
            for x in 0..4u32 {
                for _ in 0..x {
                    c.lookup(a, tid(x));
                }
            }
            let hot = c.hot(3);
            assert_eq!(hot.len(), 3);
            for w in hot.windows(2) {
                assert!(w[0].1 >= w[1].1, "counts non-increasing: {hot:?}");
            }
            assert_eq!(hot[0].0, tid(3));
        }
    }

    #[test]
    fn set_capacity_repartitions_and_evicts() {
        for c in caches(8) {
            let a = c.open_session();
            c.install(a, (0..8).map(|x| tile(tid(x))).collect());
            assert_eq!(c.len(), 8);
            c.retain_for(a, &[]);
            c.set_capacity(4);
            assert_eq!(c.capacity(), 4);
            assert!(c.len() <= 4, "shrink evicts down: {}", c.len());
            assert!(c.stats().evictions >= 4);
            c.set_capacity(8);
            assert_eq!(c.capacity(), 8);
            assert_eq!(c.session_budget(), 8, "budget follows the new capacity");
        }
    }

    #[test]
    #[should_panic(expected = "cover all")]
    fn set_capacity_below_shard_count_panics() {
        let c = SharedTileCache::with_shards(16, 4);
        MultiUserCache::set_capacity(&c, 2);
    }

    #[test]
    fn registry_partitions_budget_exactly_across_namespaces() {
        let r = DatasetRegistry::new(RegistryConfig {
            budget: 10,
            shards: 1,
            hotspots: HotspotConfig::default(),
        });
        assert!(r.is_empty());
        let a = r.attach("a");
        assert_eq!(a.cache().capacity(), 10, "sole namespace owns the budget");
        let b = r.attach("b");
        assert_eq!(a.cache().capacity(), 5);
        assert_eq!(b.cache().capacity(), 5);
        let _c = r.attach("c");
        let caps: Vec<usize> = r.capacities().iter().map(|&(_, c)| c).collect();
        assert_eq!(caps, vec![4, 3, 3], "attach order gets the remainder");
        assert_eq!(caps.iter().sum::<usize>(), 10, "exact partition");
        // Attach is idempotent: same namespace back, no repartition.
        assert!(Arc::ptr_eq(&a, &r.attach("a")));
        assert_eq!(r.len(), 3);
        // Detach returns the slice to the survivors.
        assert!(r.detach("b"));
        assert!(!r.detach("b"), "second detach is a no-op");
        assert_eq!(r.names(), vec!["a", "c"]);
        assert_eq!(
            r.capacities().iter().map(|&(_, c)| c).sum::<usize>(),
            10,
            "budget conserved after detach"
        );
        assert!(r.get("b").is_none());
        assert_eq!(r.get("a").unwrap().name(), "a");
    }

    #[test]
    fn rejected_attach_leaves_the_registry_untouched() {
        // budget 60 with dynamic shards: the first namespace is built
        // for its 60-tile slice (16 shards), so a fourth attach (15
        // tiles each) cannot cover it. The attach must panic *without*
        // mutating: still 3 namespaces, capacities still summing to
        // the budget.
        let r = DatasetRegistry::new(RegistryConfig {
            budget: 60,
            shards: 0,
            hotspots: HotspotConfig::default(),
        });
        for name in ["a", "b", "c"] {
            r.attach(name);
        }
        assert_eq!(
            r.capacities().iter().map(|&(_, c)| c).sum::<usize>(),
            60,
            "exact partition before the rejected attach"
        );
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.attach("d"))).is_err();
        assert!(panicked, "a slice below the shard count must be rejected");
        assert_eq!(r.len(), 3, "rejected namespace must not be attached");
        assert!(r.get("d").is_none());
        assert_eq!(
            r.capacities().iter().map(|&(_, c)| c).sum::<usize>(),
            60,
            "budget invariant survives the unwind"
        );
    }

    #[test]
    fn registry_shrink_evicts_down_attached_namespaces() {
        let r = DatasetRegistry::new(RegistryConfig {
            budget: 8,
            shards: 1,
            hotspots: HotspotConfig::default(),
        });
        let a = r.attach("a");
        let s = a.cache().open_session();
        a.cache().install(s, (0..8).map(|x| tile(tid(x))).collect());
        a.cache().retain_for(s, &[]);
        assert_eq!(a.cache().len(), 8);
        // A second dataset halves a's slice; a evicts down to it.
        let b = r.attach("b");
        assert_eq!(a.cache().capacity(), 4);
        assert!(a.cache().len() <= 4);
        assert_eq!(b.cache().capacity(), 4);
    }

    #[test]
    fn hotspot_model_publishes_epoch_stamped_sketch_snapshots() {
        let c = SharedTileCache::with_shards(4, 1);
        let m = SharedHotspotModel::new(HotspotConfig {
            top_n: 2,
            refresh_every: 3,
        });
        let s = c.open_session();
        c.install(s, vec![tile(tid(1))]);
        for _ in 0..5 {
            c.lookup(s, tid(1));
        }
        let mut view = HotspotView::default();
        assert_eq!(view.current(&m).epoch, 0);
        assert!(view.current(&m).hotspots.is_empty(), "pre-first snapshot");
        m.observe(&c);
        m.observe(&c);
        assert_eq!(m.epoch(), 0, "below the cadence: no publication yet");
        m.observe(&c);
        assert_eq!(m.epoch(), 1, "third observe publishes");
        let snap = view.current(&m).clone();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.hotspots[0].0, tid(1));
        // Same epoch → the view hands back its cached Arc (steady
        // state takes no lock).
        assert!(Arc::ptr_eq(&snap, view.current(&m)));
        m.refresh(&c);
        assert_eq!(view.current(&m).epoch, 2);
    }
}
