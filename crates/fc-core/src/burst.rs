//! Burst-aware traffic-phase classification and the counter-cyclical
//! prefetch budget policy.
//!
//! Real exploration traffic does not arrive at the uniform cadence the
//! paper's replay harness uses: requests come in **bursts** (a pan
//! sprint, a zoom dive) separated by **dwell** (the analyst studies
//! what just rendered) and, eventually, **idle** (they walked away).
//! The xearthlayer tile-prefetch design doc makes the same observation
//! for flight-simulator scenery — "loading occurs in bursts, followed
//! by quiet periods" — and prescribes the counter-cyclical policy this
//! module implements: stay out of the way while the user is actively
//! loading, and spend the speculative budget in the quiet windows.
//!
//! [`BurstTracker`] is a three-state Schmitt trigger over the
//! inter-request gaps of one session's timeline. Each boundary has two
//! thresholds (an *enter* and an *exit* gap), so a gap inside the
//! hysteresis band keeps the current phase: a single hesitation
//! mid-sprint cannot flap burst→dwell→burst, and a single quick
//! double-request during analysis cannot flap the other way. The
//! classification is a pure function of the gap sequence — same trace,
//! same phases, on any host and at any SIMD dispatch level.
//!
//! [`BurstConfig`] carries the thresholds plus the budget policy the
//! middleware applies per phase:
//!
//! * **burst** — reactive-only: at most [`BurstConfig::burst_budget`]
//!   speculative tiles (default 0), so prefetch I/O never competes
//!   with the user's own misses for backend budget;
//! * **dwell** — deep speculative run: the per-request budget `k` is
//!   multiplied by [`BurstConfig::dwell_boost`], the engine's
//!   candidate horizon widens to [`BurstConfig::dwell_distance`], the
//!   current pan run is extrapolated [`BurstConfig::dwell_depth`]
//!   steps ahead, and up to [`BurstConfig::dwell_hotspots`] communal
//!   hotspot tiles ride along;
//! * **idle** — a bounded keep-warm trickle of
//!   [`BurstConfig::idle_trickle`] tiles per request.
//!
//! Two refinements close the policy's known blind spot — pause-free
//! sweeps, where there is no quiet window to spend the budget in:
//!
//! * **momentum** ([`BurstConfig::momentum`]) — a model-free 1-deep
//!   same-direction lookahead on burst-paced pans, cheap enough to run
//!   even reactively;
//! * **auto sweep fallback** ([`BurstConfig::auto_window`]) — a
//!   Schmitt trigger over burst occupancy in a sliding request window;
//!   a session classified as *sweeping* is served with the uniform
//!   per-request budget until its occupancy drops back out of the
//!   sweep band.
//!
//! Everything is gated behind `EngineConfig::burst: Option<BurstConfig>`
//! defaulting to `None`, which keeps the middleware byte-for-byte the
//! pre-scheduler code (golden-pinned in `fc-sim/tests/golden_burst.rs`).

use std::time::Duration;

/// One session's traffic phase, classified from inter-request gaps.
///
/// Distinct from the *analysis* phase ([`crate::Phase`]): that one
/// describes what the analyst is doing with the data (foraging /
/// navigation / sensemaking); this one describes how their requests
/// arrive in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficPhase {
    /// Requests arriving back-to-back (a pan sprint, a zoom dive).
    Burst,
    /// The analyst is studying the current view; the next burst is
    /// seconds away — the window deep speculation pays off in.
    Dwell,
    /// The session has gone quiet for a long stretch.
    Idle,
}

impl TrafficPhase {
    /// Stable index (0, 1, 2) for stats arrays.
    pub fn index(self) -> usize {
        match self {
            TrafficPhase::Burst => 0,
            TrafficPhase::Dwell => 1,
            TrafficPhase::Idle => 2,
        }
    }

    /// Inverse of [`TrafficPhase::index`].
    pub fn from_index(i: usize) -> Option<TrafficPhase> {
        match i {
            0 => Some(TrafficPhase::Burst),
            1 => Some(TrafficPhase::Dwell),
            2 => Some(TrafficPhase::Idle),
            _ => None,
        }
    }

    /// Lower-case name (bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            TrafficPhase::Burst => "burst",
            TrafficPhase::Dwell => "dwell",
            TrafficPhase::Idle => "idle",
        }
    }

    /// All phases, in [`TrafficPhase::index`] order.
    pub const ALL: [TrafficPhase; 3] =
        [TrafficPhase::Burst, TrafficPhase::Dwell, TrafficPhase::Idle];
}

/// Thresholds of the phase state machine plus the counter-cyclical
/// budget policy. See the module docs for the semantics of each knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstConfig {
    /// A gap at or below this (re-)enters **burst** from any phase.
    pub burst_enter: Duration,
    /// A gap above this leaves **burst**; gaps in
    /// `(burst_enter, burst_exit]` are the hysteresis band and keep
    /// the current phase.
    pub burst_exit: Duration,
    /// A gap below this leaves **idle**; gaps in
    /// `[idle_exit, idle_enter)` keep the current phase.
    pub idle_exit: Duration,
    /// A gap at or above this enters **idle** from any phase.
    pub idle_enter: Duration,
    /// Speculative budget while bursting (default 0: reactive-only).
    pub burst_budget: usize,
    /// Multiplier on the per-request budget `k` during dwell.
    pub dwell_boost: usize,
    /// Engine candidate horizon (prediction distance) during dwell.
    pub dwell_distance: usize,
    /// Steps the current pan run is extrapolated ahead during dwell.
    pub dwell_depth: usize,
    /// Communal hotspot tiles appended to a dwell run (shared mode
    /// with a hotspot model only).
    pub dwell_hotspots: usize,
    /// Recent distinct tiles re-pinned (and re-fetched if evicted)
    /// during dwell — the keep-warm half of the dwell plan. It leads
    /// the plan unless the dwell move repeats the previous one (only
    /// a same-direction pan run has confirmed momentum; any turn,
    /// reversal, or zoom is a pivot whose retrace path *is* the
    /// recent set); behind a live run it rides second.
    pub dwell_keep_warm: usize,
    /// Keep-warm budget per request while idle.
    pub idle_trickle: usize,
    /// Burst-phase momentum prefetch: a 1-deep same-direction
    /// lookahead on every burst-paced pan. It consults no model (one
    /// geometry step, one fetch), so it is nearly free even on the
    /// reactive path — and it is the one speculation that pays on
    /// pause-free sweeps, where every request continues the current
    /// pan run.
    pub momentum: bool,
    /// Sliding window (in requests) of the *auto* sweep detector; 0
    /// disables auto mode. The detector watches the classified phase
    /// of the last `auto_window` requests and, when burst occupancy
    /// crosses [`BurstConfig::auto_enter_per_mille`], declares the
    /// session **sweeping** — traffic with essentially no quiet
    /// windows, where the counter-cyclical schedule has nothing to
    /// spend its budget in and the right policy is the uniform
    /// per-request budget.
    pub auto_window: usize,
    /// Burst occupancy (per mille of the window) at or above which
    /// auto mode enters sweep fallback. Integer per-mille keeps the
    /// config `Eq`/hashable and the detector exact.
    pub auto_enter_per_mille: u32,
    /// Burst occupancy (per mille) below which sweep fallback exits.
    /// The `[auto_exit, auto_enter)` band is hysteresis: bursty
    /// workloads that hover near their worst-case occupancy cannot
    /// flap the budget policy request-to-request.
    pub auto_exit_per_mille: u32,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self {
            burst_enter: Duration::from_millis(200),
            burst_exit: Duration::from_millis(500),
            idle_exit: Duration::from_secs(10),
            idle_enter: Duration::from_secs(30),
            burst_budget: 0,
            dwell_boost: 2,
            dwell_distance: 2,
            dwell_depth: 8,
            dwell_hotspots: 2,
            dwell_keep_warm: 8,
            idle_trickle: 1,
            momentum: true,
            // Defaults calibrated against the workload zoo: the
            // bursty-pan-sprint's worst sustained window is 29/32
            // burst (906 ‰) — the enter threshold sits above it, so
            // genuinely bursty traffic can never trip the fallback —
            // while serpentine sweeps run 30/32 (937 ‰) and cross it
            // within two rows.
            auto_window: 32,
            auto_enter_per_mille: 925,
            auto_exit_per_mille: 850,
        }
    }
}

impl BurstConfig {
    /// Whether the four thresholds are consistently ordered
    /// (`burst_enter ≤ burst_exit ≤ idle_exit ≤ idle_enter`). The
    /// tracker asserts this at construction: a crossed band would make
    /// one gap qualify for two phases at once.
    pub fn thresholds_ordered(&self) -> bool {
        self.burst_enter <= self.burst_exit
            && self.burst_exit <= self.idle_exit
            && self.idle_exit <= self.idle_enter
            && self.auto_exit_per_mille <= self.auto_enter_per_mille
            && self.auto_enter_per_mille <= 1000
    }

    /// The speculative prefetch budget for one request: the
    /// counter-cyclical schedule applied to the session's configured
    /// budget `k`.
    pub fn speculative_budget(&self, phase: TrafficPhase, k: usize) -> usize {
        match phase {
            TrafficPhase::Burst => self.burst_budget.min(k),
            TrafficPhase::Dwell => k.saturating_mul(self.dwell_boost.max(1)),
            TrafficPhase::Idle => self.idle_trickle.min(k),
        }
    }
}

/// The deterministic three-state hysteresis classifier. Feed it each
/// request's gap since the previous request ([`BurstTracker::observe`])
/// and read the phase it settles on.
#[derive(Debug, Clone)]
pub struct BurstTracker {
    cfg: BurstConfig,
    phase: TrafficPhase,
    observed: u64,
    transitions: u64,
    /// Ring of `phase == Burst` verdicts for the last
    /// `cfg.auto_window` requests (empty when auto mode is off).
    window: std::collections::VecDeque<bool>,
    bursts_in_window: usize,
    sweeping: bool,
}

impl BurstTracker {
    /// A tracker in its initial state. A session's first request opens
    /// a loading burst (there is no gap to classify yet), so the
    /// tracker starts in [`TrafficPhase::Burst`].
    ///
    /// # Panics
    /// If the config's thresholds are not ordered
    /// ([`BurstConfig::thresholds_ordered`]).
    pub fn new(cfg: BurstConfig) -> Self {
        assert!(
            cfg.thresholds_ordered(),
            "burst thresholds must be ordered: {cfg:?}"
        );
        Self {
            cfg,
            phase: TrafficPhase::Burst,
            observed: 0,
            transitions: 0,
            window: std::collections::VecDeque::with_capacity(cfg.auto_window),
            bursts_in_window: 0,
            sweeping: false,
        }
    }

    /// Classifies one request. `gap` is the time since the previous
    /// request on this session's timeline (`None` for the first
    /// request, which keeps the initial phase). Returns the phase the
    /// request is served under.
    pub fn observe(&mut self, gap: Option<Duration>) -> TrafficPhase {
        self.observed += 1;
        if let Some(gap) = gap {
            let cfg = &self.cfg;
            let next = match self.phase {
                TrafficPhase::Burst => {
                    if gap <= cfg.burst_exit {
                        TrafficPhase::Burst
                    } else if gap >= cfg.idle_enter {
                        TrafficPhase::Idle
                    } else {
                        TrafficPhase::Dwell
                    }
                }
                TrafficPhase::Dwell => {
                    if gap <= cfg.burst_enter {
                        TrafficPhase::Burst
                    } else if gap >= cfg.idle_enter {
                        TrafficPhase::Idle
                    } else {
                        TrafficPhase::Dwell
                    }
                }
                TrafficPhase::Idle => {
                    if gap >= cfg.idle_exit {
                        TrafficPhase::Idle
                    } else if gap <= cfg.burst_enter {
                        TrafficPhase::Burst
                    } else {
                        TrafficPhase::Dwell
                    }
                }
            };
            if next != self.phase {
                self.transitions += 1;
                self.phase = next;
            }
        }
        self.note_phase_for_sweep();
        self.phase
    }

    /// Feeds this request's verdict into the auto sweep window and
    /// updates the sweep Schmitt trigger. Occupancy is compared in
    /// integer per-mille-scaled units (`bursts × 1000` vs
    /// `threshold × window`), so the detector is exact and
    /// host-independent.
    fn note_phase_for_sweep(&mut self) {
        let cap = self.cfg.auto_window;
        if cap == 0 {
            return;
        }
        let is_burst = self.phase == TrafficPhase::Burst;
        self.window.push_back(is_burst);
        self.bursts_in_window += is_burst as usize;
        if self.window.len() > cap && self.window.pop_front() == Some(true) {
            self.bursts_in_window -= 1;
        }
        if self.window.len() == cap {
            let occ = self.bursts_in_window * 1000;
            if !self.sweeping && occ >= self.cfg.auto_enter_per_mille as usize * cap {
                self.sweeping = true;
            } else if self.sweeping && occ < self.cfg.auto_exit_per_mille as usize * cap {
                self.sweeping = false;
            }
        }
    }

    /// Whether the auto detector currently classifies this session as
    /// a pause-free sweep (serve it with the uniform budget). Always
    /// `false` when [`BurstConfig::auto_window`] is 0.
    pub fn sweeping(&self) -> bool {
        self.sweeping
    }

    /// The current phase (the last [`BurstTracker::observe`] verdict).
    pub fn phase(&self) -> TrafficPhase {
        self.phase
    }

    /// Requests observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Phase transitions so far (a flapping classifier shows here).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The thresholds and policy this tracker runs under.
    pub fn config(&self) -> &BurstConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn starts_in_burst_and_first_request_keeps_it() {
        let mut t = BurstTracker::new(BurstConfig::default());
        assert_eq!(t.phase(), TrafficPhase::Burst);
        assert_eq!(t.observe(None), TrafficPhase::Burst);
        assert_eq!(t.transitions(), 0);
    }

    #[test]
    fn classifies_the_three_regimes() {
        let mut t = BurstTracker::new(BurstConfig::default());
        t.observe(None);
        assert_eq!(t.observe(Some(ms(50))), TrafficPhase::Burst);
        assert_eq!(t.observe(Some(ms(2_000))), TrafficPhase::Dwell);
        assert_eq!(t.observe(Some(ms(60_000))), TrafficPhase::Idle);
        assert_eq!(t.observe(Some(ms(50))), TrafficPhase::Burst);
        assert_eq!(t.transitions(), 3);
    }

    #[test]
    fn hysteresis_band_never_flaps() {
        let cfg = BurstConfig::default();
        // Gaps inside (burst_enter, burst_exit]: from Burst they stay
        // Burst, and once in Dwell they stay Dwell.
        let mut t = BurstTracker::new(cfg);
        t.observe(None);
        assert_eq!(t.observe(Some(ms(300))), TrafficPhase::Burst);
        assert_eq!(t.observe(Some(ms(450))), TrafficPhase::Burst);
        assert_eq!(t.observe(Some(ms(2_000))), TrafficPhase::Dwell);
        assert_eq!(t.observe(Some(ms(300))), TrafficPhase::Dwell);
        assert_eq!(t.observe(Some(ms(450))), TrafficPhase::Dwell);
        assert_eq!(t.transitions(), 1, "band gaps caused no transitions");
    }

    #[test]
    fn idle_band_holds_both_ways() {
        let cfg = BurstConfig::default();
        let mut t = BurstTracker::new(cfg);
        t.observe(None);
        t.observe(Some(ms(2_000))); // Dwell
        assert_eq!(t.observe(Some(ms(15_000))), TrafficPhase::Dwell);
        assert_eq!(t.observe(Some(ms(40_000))), TrafficPhase::Idle);
        assert_eq!(t.observe(Some(ms(15_000))), TrafficPhase::Idle);
        assert_eq!(t.observe(Some(ms(2_000))), TrafficPhase::Dwell);
    }

    #[test]
    fn budget_schedule_is_counter_cyclical() {
        let cfg = BurstConfig::default();
        assert_eq!(cfg.speculative_budget(TrafficPhase::Burst, 4), 0);
        assert_eq!(cfg.speculative_budget(TrafficPhase::Dwell, 4), 8);
        assert_eq!(cfg.speculative_budget(TrafficPhase::Idle, 4), 1);
        // Zero k stays zero everywhere.
        for p in TrafficPhase::ALL {
            assert_eq!(cfg.speculative_budget(p, 0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn crossed_thresholds_are_rejected() {
        let cfg = BurstConfig {
            burst_enter: ms(500),
            burst_exit: ms(200),
            ..BurstConfig::default()
        };
        let _ = BurstTracker::new(cfg);
    }

    #[test]
    fn sweep_trigger_needs_a_full_window() {
        let cfg = BurstConfig::default();
        let mut t = BurstTracker::new(cfg);
        t.observe(None);
        for _ in 0..cfg.auto_window - 2 {
            assert_eq!(t.observe(Some(ms(50))), TrafficPhase::Burst);
            assert!(!t.sweeping(), "partial window must not trigger");
        }
        t.observe(Some(ms(50)));
        assert!(t.sweeping(), "a full all-burst window is a sweep");
    }

    #[test]
    fn sweep_exit_has_hysteresis() {
        let cfg = BurstConfig::default();
        let mut t = BurstTracker::new(cfg);
        t.observe(None);
        for _ in 0..cfg.auto_window {
            t.observe(Some(ms(50)));
        }
        assert!(t.sweeping());
        // Two dwell gaps in a 32-window: occupancy 30/32 = 937 ‰ —
        // below enter (925 would re-enter at 937? no: 937 ≥ 925), so
        // drive occupancy just below exit (850 ‰ → < 27.2/32): five
        // dwells leaves 27/32 = 843 ‰.
        for _ in 0..4 {
            t.observe(Some(ms(2_000)));
            t.observe(Some(ms(50))); // classifier re-enters burst fast
            assert!(t.sweeping(), "inside the hysteresis band: still sweeping");
        }
        t.observe(Some(ms(2_000)));
        assert!(!t.sweeping(), "occupancy fell below the exit threshold");
    }

    #[test]
    fn bursty_occupancy_never_trips_the_sweep_trigger() {
        // A 9-burst/1-dwell sprint cycle — the zoo's worst sustained
        // bursty pattern — peaks at 29/32 burst (906 ‰), under the
        // 925 ‰ enter threshold.
        let cfg = BurstConfig::default();
        let mut t = BurstTracker::new(cfg);
        t.observe(None);
        for _ in 0..40 {
            for _ in 0..9 {
                t.observe(Some(ms(50)));
            }
            t.observe(Some(ms(2_000)));
            assert!(!t.sweeping(), "sprint traffic must keep the schedule");
        }
    }

    #[test]
    fn auto_window_zero_disables_the_detector() {
        let cfg = BurstConfig {
            auto_window: 0,
            ..BurstConfig::default()
        };
        let mut t = BurstTracker::new(cfg);
        t.observe(None);
        for _ in 0..200 {
            t.observe(Some(ms(50)));
        }
        assert!(!t.sweeping());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn crossed_auto_thresholds_are_rejected() {
        let cfg = BurstConfig {
            auto_enter_per_mille: 700,
            auto_exit_per_mille: 900,
            ..BurstConfig::default()
        };
        let _ = BurstTracker::new(cfg);
    }

    #[test]
    fn index_roundtrip() {
        for p in TrafficPhase::ALL {
            assert_eq!(TrafficPhase::from_index(p.index()), Some(p));
            assert!(!p.name().is_empty());
        }
        assert_eq!(TrafficPhase::from_index(3), None);
    }
}
