//! The two-level prediction engine (§4).
//!
//! Per request the engine: (1) records the request in the session history
//! and the ROI tracker, (2) predicts the current analysis phase with the
//! top-level classifier, (3) asks the AB and SB recommenders for ranked
//! candidate lists, and (4) merges them under the cache allocation
//! strategy for the predicted phase.

use crate::ab::AbRecommender;
use crate::alloc::{boost_toward_hotspots, merge_allocated, AllocationStrategy, HotspotBlend};
use crate::history::{Request, SessionHistory};
use crate::paircache::{PairCache, PairCacheStats};
use crate::phase::{Phase, PhaseClassifier};
use crate::recommender::{PredictionContext, Recommender};
use crate::roi::RoiTracker;
use crate::sb::{PredictScratch, SbRecommender};
use crate::signature::pair_cache_capacity_hint;
use fc_tiles::{Geometry, SignatureIndex, TileId, TileStore};
use std::sync::Arc;

/// Engine configuration (paper §4.1: history length `n` and prediction
/// distance `d` are system parameters set before the session starts).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// History length `n`.
    pub history_len: usize,
    /// Prediction distance `d` (default 1: "we only considered the tiles
    /// that were exactly one step ahead of the user").
    pub distance: usize,
    /// Cache allocation strategy.
    pub strategy: AllocationStrategy,
    /// Cross-session hotspot blending (multi-user mode): when set, a
    /// hotspot prior handed to [`PredictionEngine::predict_with_prior`]
    /// re-ranks each model's candidate list toward nearby communal
    /// hotspots, gated to the configured phases. `None` (the default)
    /// — and every predict call without a prior — keeps prediction
    /// bit-identical to the paper engine.
    pub hotspot: Option<HotspotBlend>,
    /// Burst-aware prefetch scheduling: when set, the middleware
    /// classifies the session's traffic phase (burst / dwell / idle)
    /// from inter-request gaps and spends the prefetch budget
    /// counter-cyclically (see [`crate::burst`]). `None` (the default)
    /// keeps the middleware byte-for-byte the uniform-budget code.
    pub burst: Option<crate::burst::BurstConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            history_len: 3,
            distance: 1,
            strategy: AllocationStrategy::Updated,
            hotspot: None,
            burst: None,
        }
    }
}

/// How the engine learns the current analysis phase.
pub enum PhaseSource {
    /// The trained SVM classifier (the deployed configuration).
    Classifier(Box<PhaseClassifier>),
    /// A rule-based fallback for sessions without training data: zooms →
    /// Navigation; pans in the deepest third of the pyramid →
    /// Sensemaking; otherwise Foraging.
    Heuristic,
}

impl std::fmt::Debug for PhaseSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseSource::Classifier(_) => f.write_str("Classifier"),
            PhaseSource::Heuristic => f.write_str("Heuristic"),
        }
    }
}

/// The per-session two-level prediction engine.
pub struct PredictionEngine {
    config: EngineConfig,
    geometry: Geometry,
    ab: AbRecommender,
    sb: SbRecommender,
    phase_source: PhaseSource,
    history: SessionHistory,
    roi: RoiTracker,
    /// Reused buffers for the allocation-free SB fast path.
    scratch: PredictScratch,
    /// Epoch-stamped χ² pair-distance cache for steady-state SB
    /// prediction, sized for the current index (resized alongside
    /// `sig_cache`; domain changes invalidate it in O(1)).
    pair_cache: PairCache,
    /// The store's frozen signature index, cached with the
    /// `(store_id, meta_epoch)` it was read at; revalidated per
    /// predict with one atomic load so the steady state acquires no
    /// store locks, and never confused between stores.
    sig_cache: Option<((u64, u64), Arc<SignatureIndex>)>,
}

impl std::fmt::Debug for PredictionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionEngine")
            .field("config", &self.config)
            .field("history_len", &self.history.len())
            .field("phase_source", &self.phase_source)
            .finish()
    }
}

impl PredictionEngine {
    /// Builds an engine.
    pub fn new(
        geometry: Geometry,
        ab: AbRecommender,
        sb: SbRecommender,
        phase_source: PhaseSource,
        config: EngineConfig,
    ) -> Self {
        Self {
            history: SessionHistory::new(config.history_len.max(1)),
            roi: RoiTracker::new(),
            config,
            geometry,
            ab,
            sb,
            phase_source,
            scratch: PredictScratch::default(),
            pair_cache: PairCache::default(),
            sig_cache: None,
        }
    }

    /// Records a request (history + ROI tracking). Call once per user
    /// request, before [`PredictionEngine::predict`].
    pub fn observe(&mut self, request: Request) {
        self.history.push(request);
        self.roi.update(&request);
    }

    /// The engine's current phase estimate for the last observed request.
    pub fn current_phase(&self) -> Phase {
        let Some(last) = self.history.last() else {
            return Phase::Foraging;
        };
        match &self.phase_source {
            PhaseSource::Classifier(c) => c.predict(last, self.history.previous()),
            PhaseSource::Heuristic => heuristic_phase(self.geometry, last),
        }
    }

    /// Predicts up to `k` tiles to prefetch for the last observed request,
    /// letting the engine infer the phase.
    pub fn predict(&mut self, store: &TileStore, k: usize) -> Vec<TileId> {
        self.predict_with_phase(store, self.current_phase(), k)
    }

    /// Like [`Self::predict`], with a cross-session hotspot prior (the
    /// current [`crate::multiuser::HotspotSnapshot`] entries of the
    /// session's namespace). Applied only when
    /// [`EngineConfig::hotspot`] is set *and* its phase gate admits the
    /// inferred phase; an empty prior, a closed gate, or an unset
    /// config all reduce to [`Self::predict`] exactly.
    pub fn predict_with_prior(
        &mut self,
        store: &TileStore,
        k: usize,
        hotspots: &[(TileId, u64)],
    ) -> Vec<TileId> {
        let d = self.config.distance;
        self.predict_inner(store, self.current_phase(), k, None, hotspots, d)
    }

    /// [`Self::predict_with_prior`] with a widened candidate horizon:
    /// candidates come from `distance` moves ahead instead of the
    /// configured [`EngineConfig::distance`]. The burst scheduler's
    /// dwell-time deep runs use this — the analyst is studying the
    /// current view, so there is time to rank (and prefetch) a larger
    /// neighbourhood. `distance` equal to the configured one reduces
    /// to [`Self::predict_with_prior`] exactly.
    pub fn predict_deep_with_prior(
        &mut self,
        store: &TileStore,
        k: usize,
        hotspots: &[(TileId, u64)],
        distance: usize,
    ) -> Vec<TileId> {
        self.predict_inner(store, self.current_phase(), k, None, hotspots, distance)
    }

    /// Refreshes the cached frozen signature index. Steady state (same
    /// store, no metadata writes since the last call) costs one atomic
    /// load and touches no store locks. The key carries the store's
    /// process-unique id, so handing the engine a different store
    /// never reuses the previous store's index.
    fn refresh_sig_cache(&mut self, store: &TileStore) -> Option<Arc<SignatureIndex>> {
        let key = (store.store_id(), store.meta_epoch());
        if let Some((cached_key, ix)) = &self.sig_cache {
            if *cached_key == key {
                return Some(ix.clone());
            }
        }
        self.sig_cache = store.signature_index().map(|ix| (key, ix));
        self.sig_cache.as_ref().map(|(_, ix)| ix.clone())
    }

    /// Sizes the engine's pair cache for `index`, lazily: only the
    /// unbatched predict path calls this (in scheduler-batched mode
    /// the scheduler's *shared* cache does the caching, and a
    /// per-session table would be dead weight). When the capacity is
    /// already right (the common epoch-bump case) the table is kept
    /// as-is: `PairCache::begin` sees the new build id and invalidates
    /// by generation, no clearing pass.
    fn ensure_pair_cache(&mut self, index: &SignatureIndex) {
        let want = pair_cache_capacity_hint(index.keys().len(), index.ntiles());
        if self.pair_cache.capacity() != want {
            self.pair_cache = PairCache::new(want);
        }
    }

    /// Counters of the engine's χ² pair-distance cache (cumulative for
    /// the session). In scheduler-batched mode the scheduler's shared
    /// cache does the caching instead — see
    /// [`crate::batch::PredictScheduler::pair_cache_stats`].
    pub fn pair_cache_stats(&self) -> PairCacheStats {
        self.pair_cache.stats()
    }

    /// Predicts with an externally supplied phase (used when evaluating
    /// the bottom level against hand-labeled phases, §5.4.2).
    pub fn predict_with_phase(&mut self, store: &TileStore, phase: Phase, k: usize) -> Vec<TileId> {
        let d = self.config.distance;
        self.predict_inner(store, phase, k, None, &[], d)
    }

    /// Like [`Self::predict`], but the SB ranking is computed through
    /// the shared [`crate::batch::PredictScheduler`], coalescing with other sessions'
    /// concurrent predicts into one batched distance sweep. The result
    /// is bit-identical to [`Self::predict`] (per-job normalization in
    /// the batch; golden-tested). `scheduler` must be built over the
    /// same pyramid as `store` and with the same SB configuration as
    /// this engine (see [`Self::sb_model`]).
    pub fn predict_batched(
        &mut self,
        scheduler: &crate::batch::PredictScheduler,
        store: &TileStore,
        k: usize,
    ) -> Vec<TileId> {
        let d = self.config.distance;
        self.predict_inner(store, self.current_phase(), k, Some(scheduler), &[], d)
    }

    /// [`Self::predict_batched`] with a cross-session hotspot prior
    /// (see [`Self::predict_with_prior`] for the gating rules).
    pub fn predict_batched_with_prior(
        &mut self,
        scheduler: &crate::batch::PredictScheduler,
        store: &TileStore,
        k: usize,
        hotspots: &[(TileId, u64)],
    ) -> Vec<TileId> {
        let d = self.config.distance;
        self.predict_inner(store, self.current_phase(), k, Some(scheduler), hotspots, d)
    }

    /// [`Self::predict_batched_with_prior`] with a widened candidate
    /// horizon (see [`Self::predict_deep_with_prior`]).
    pub fn predict_batched_deep_with_prior(
        &mut self,
        scheduler: &crate::batch::PredictScheduler,
        store: &TileStore,
        k: usize,
        hotspots: &[(TileId, u64)],
        distance: usize,
    ) -> Vec<TileId> {
        self.predict_inner(
            store,
            self.current_phase(),
            k,
            Some(scheduler),
            hotspots,
            distance,
        )
    }

    /// [`Self::predict_with_phase`] through the shared scheduler.
    pub fn predict_batched_with_phase(
        &mut self,
        scheduler: &crate::batch::PredictScheduler,
        store: &TileStore,
        phase: Phase,
        k: usize,
    ) -> Vec<TileId> {
        let d = self.config.distance;
        self.predict_inner(store, phase, k, Some(scheduler), &[], d)
    }

    fn predict_inner(
        &mut self,
        store: &TileStore,
        phase: Phase,
        k: usize,
        scheduler: Option<&crate::batch::PredictScheduler>,
        hotspots: &[(TileId, u64)],
        distance: usize,
    ) -> Vec<TileId> {
        let Some(last) = self.history.last() else {
            return Vec::new();
        };
        let last = *last;
        // Refreshed before `ctx` borrows the engine; steady state is
        // one atomic load (unused on the scheduler path, which owns
        // its own index refresh).
        let index = self.refresh_sig_cache(store);
        if scheduler.is_none() {
            if let Some(ix) = &index {
                self.ensure_pair_cache(ix);
            }
        }
        let candidates = self.geometry.candidates(last.tile, distance);
        let ctx = PredictionContext {
            request: last,
            history: &self.history,
            candidates: &candidates,
            geometry: self.geometry,
            store,
            roi: self.roi.roi(),
        };
        let (ab_slots, sb_slots) = self.config.strategy.allocate(phase, k);
        let mut ab_list = if ab_slots > 0 || sb_slots > 0 {
            self.ab.rank(&ctx)
        } else {
            Vec::new()
        };
        let mut sb_list = match scheduler {
            // Cross-session path: the scheduler owns index refresh and
            // scratch; we resolve the reference set (ROI, or the
            // current tile before any ROI commits) exactly as
            // `rank_indexed` would.
            Some(s) => {
                let fallback = [last.tile];
                let refs: &[TileId] = if ctx.roi.is_empty() {
                    &fallback
                } else {
                    ctx.roi
                };
                s.rank(&candidates, refs)
            }
            // SB: frozen-index fast path through the pair cache when
            // metadata exists (steady state probes instead of
            // dividing); the locked reference path only serves
            // metadata-free stores.
            None => match &index {
                Some(ix) => {
                    self.sb
                        .rank_indexed_cached(&ctx, ix, &mut self.pair_cache, &mut self.scratch)
                }
                None => self.sb.rank(&ctx),
            },
        };
        // Cross-session hotspot prior: re-rank each model's *full*
        // candidate list toward nearby communal hotspots before the
        // budget split, so the prior can change which tiles make the
        // top-k (not just their order). Opt-in, phase-gated, and inert
        // without a prior — the default path is bit-identical.
        if let Some(blend) = self.config.hotspot {
            if blend.applies_in(phase) && !hotspots.is_empty() {
                boost_toward_hotspots(&mut ab_list, last.tile, hotspots, blend.radius);
                boost_toward_hotspots(&mut sb_list, last.tile, hotspots, blend.radius);
            }
        }
        merge_allocated(&ab_list, &sb_list, ab_slots, sb_slots)
    }

    /// Enables (or disables) cross-session hotspot blending after
    /// construction — how the multi-user drivers flip the model on for
    /// an A/B measurement without rebuilding the engine.
    pub fn set_hotspot_blend(&mut self, blend: Option<HotspotBlend>) {
        self.config.hotspot = blend;
    }

    /// The engine's SB model (e.g. to clone into a
    /// [`crate::batch::PredictScheduler`] so the batched and local
    /// paths share one configuration).
    pub fn sb_model(&self) -> &SbRecommender {
        &self.sb
    }

    /// The SIMD dispatch level the engine's SB hot paths run at
    /// (resolved at model construction; surfaced so benches and
    /// diagnostics can report which kernels actually executed).
    pub fn simd_level(&self) -> fc_simd::SimdLevel {
        self.sb.simd_level()
    }

    /// The session history (read-only).
    pub fn history(&self) -> &SessionHistory {
        &self.history
    }

    /// The user's most recent ROI.
    pub fn roi(&self) -> &[TileId] {
        self.roi.roi()
    }

    /// The configured geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Resets per-session state (history + ROI) without retraining.
    pub fn reset_session(&mut self) {
        self.history.clear();
        self.roi.reset();
    }
}

/// Rule-based phase fallback: zooms → Navigation; pans in the deepest
/// third of the pyramid → Sensemaking; everything else → Foraging.
pub fn heuristic_phase(geometry: Geometry, request: &Request) -> Phase {
    match request.mv {
        Some(m) if m.is_zoom_in() || m.is_zoom_out() => Phase::Navigation,
        Some(m) if m.is_pan() => {
            let deep_threshold = (geometry.levels as f64 * 2.0 / 3.0).floor() as u8;
            if request.tile.level >= deep_threshold {
                Phase::Sensemaking
            } else {
                Phase::Foraging
            }
        }
        _ => Phase::Foraging,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sb::SbConfig;
    use crate::signature::SignatureKind;
    use fc_array::{IoMode, LatencyModel, SimClock};
    use fc_tiles::{Move, Quadrant};

    fn geometry() -> Geometry {
        Geometry::new(4, 512, 512, 64, 64)
    }

    fn store(g: Geometry) -> TileStore {
        let s = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
        // Give every tile a histogram signature so SB has something.
        for id in g.all_tiles() {
            let v = f64::from(id.x % 3) / 3.0;
            s.put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
        }
        s
    }

    fn engine(strategy: AllocationStrategy) -> PredictionEngine {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy,
                ..EngineConfig::default()
            },
        )
    }

    /// Two stores with identical epoch counters must not share a
    /// cached index: the cache key carries the store identity.
    #[test]
    fn switching_stores_refreshes_the_index() {
        let g = geometry();
        let s_by_x = store(g); // signature class = x % 3
        let s_by_y = TileStore::new(g, LatencyModel::free(), IoMode::Simulated, SimClock::new());
        for id in g.all_tiles() {
            let v = f64::from(id.y % 3) / 3.0;
            s_by_y.put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
        }
        assert_eq!(s_by_x.meta_epoch(), s_by_y.meta_epoch(), "equal epochs");
        assert_ne!(s_by_x.store_id(), s_by_y.store_id());
        let mut e = engine(AllocationStrategy::Updated);
        // Deep pan → Sensemaking → all slots to SB.
        e.observe(Request::initial(TileId::new(3, 4, 4)));
        e.observe(Request::new(TileId::new(3, 4, 5), Some(Move::PanRight)));
        // Warm the cache on the x-keyed store, then predict against the
        // y-keyed store: the top tile must match the y-keyed classes.
        let px = e.predict(&s_by_x, 4);
        assert_eq!(px[0].x % 3, 5 % 3, "x-keyed store ranks by x class");
        let py = e.predict(&s_by_y, 4);
        assert_eq!(py[0].y % 3, 4 % 3, "y-keyed store ranks by y class");
    }

    /// A metadata write after the index froze must be visible to the
    /// next prediction (epoch invalidation end to end).
    #[test]
    fn metadata_writes_invalidate_cached_index() {
        let g = geometry();
        let s = store(g);
        let mut e = engine(AllocationStrategy::Updated);
        e.observe(Request::initial(TileId::new(3, 4, 4)));
        e.observe(Request::new(TileId::new(3, 4, 5), Some(Move::PanRight)));
        let before = e.predict(&s, 4);
        assert_eq!(before[0].x % 3, 5 % 3, "x-keyed classes before rewrite");
        // Rewrite every tile's signature from x-keyed to y-keyed classes.
        for id in g.all_tiles() {
            let v = f64::from(id.y % 3) / 3.0;
            s.put_meta(id, SignatureKind::Hist1D.meta_name(), vec![v, 1.0 - v]);
        }
        let after = e.predict(&s, 4);
        assert_eq!(after[0].y % 3, 4 % 3, "y-keyed classes after rewrite");
        assert_ne!(before[0], after[0], "stale index would repeat {before:?}");
    }

    #[test]
    fn empty_engine_predicts_nothing() {
        let mut e = engine(AllocationStrategy::Updated);
        let s = store(geometry());
        assert!(e.predict(&s, 5).is_empty());
        assert_eq!(e.current_phase(), Phase::Foraging);
    }

    #[test]
    fn predictions_respect_budget_and_dedup() {
        let mut e = engine(AllocationStrategy::Updated);
        let s = store(geometry());
        // Level 2 of 4 is interior: all nine moves are legal at (2,2,2).
        e.observe(Request::initial(TileId::new(2, 2, 0)));
        for x in 1..=2 {
            e.observe(Request::new(TileId::new(2, 2, x), Some(Move::PanRight)));
        }
        for k in 0..=9 {
            let p = e.predict(&s, k);
            assert!(p.len() <= k);
            let mut d = p.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), p.len(), "k={k}");
        }
        // Budget 9 fills completely at an interior tile.
        assert_eq!(e.predict(&s, 9).len(), 9);
    }

    #[test]
    fn pan_run_predicts_continuation_first() {
        let mut e = engine(AllocationStrategy::AbOnly);
        let s = store(geometry());
        e.observe(Request::initial(TileId::new(3, 4, 1)));
        for x in 2..5 {
            e.observe(Request::new(TileId::new(3, 4, x), Some(Move::PanRight)));
        }
        let p = e.predict(&s, 3);
        assert_eq!(p[0], TileId::new(3, 4, 5));
    }

    #[test]
    fn heuristic_phase_rules() {
        let g = geometry();
        let zoom = Request::new(TileId::new(2, 0, 0), Some(Move::ZoomIn(Quadrant::Nw)));
        assert_eq!(heuristic_phase(g, &zoom), Phase::Navigation);
        let deep_pan = Request::new(TileId::new(3, 1, 1), Some(Move::PanRight));
        assert_eq!(heuristic_phase(g, &deep_pan), Phase::Sensemaking);
        let shallow_pan = Request::new(TileId::new(1, 0, 0), Some(Move::PanRight));
        assert_eq!(heuristic_phase(g, &shallow_pan), Phase::Foraging);
        let initial = Request::initial(TileId::ROOT);
        assert_eq!(heuristic_phase(g, &initial), Phase::Foraging);
    }

    #[test]
    fn sensemaking_uses_sb_only_under_updated_strategy() {
        let mut e = engine(AllocationStrategy::Updated);
        let s = store(geometry());
        // Deep-level pan → Sensemaking heuristic → all slots to SB.
        e.observe(Request::initial(TileId::new(3, 4, 4)));
        e.observe(Request::new(TileId::new(3, 4, 5), Some(Move::PanRight)));
        let phase = e.current_phase();
        assert_eq!(phase, Phase::Sensemaking);
        let p = e.predict(&s, 4);
        assert_eq!(p.len(), 4);
        // SB ranks by signature similarity: top prediction should share
        // the (x % 3) signature class of the ROI fallback (current tile).
        let cur_class = 5 % 3;
        assert_eq!(p[0].x % 3, cur_class);
    }

    #[test]
    fn hotspot_prior_is_inert_unless_opted_in_and_gated() {
        let s = store(geometry());
        // A hotspot up-and-right of the walk; radius wide enough.
        let hotspots = [(TileId::new(2, 0, 4), 50u64)];
        let observe = |e: &mut PredictionEngine| {
            e.observe(Request::initial(TileId::new(2, 2, 1)));
            e.observe(Request::new(TileId::new(2, 2, 2), Some(Move::PanRight)));
        };
        // Without EngineConfig::hotspot, a prior changes nothing.
        let mut plain = engine(AllocationStrategy::AbOnly);
        observe(&mut plain);
        let baseline = plain.predict(&s, 4);
        let mut ignored = engine(AllocationStrategy::AbOnly);
        observe(&mut ignored);
        assert_eq!(
            ignored.predict_with_prior(&s, 4, &hotspots),
            baseline,
            "prior must be inert without the config opt-in"
        );
        // Opted in: the toward-hotspot candidate overtakes the AB
        // continuation.
        let mut blended = engine(AllocationStrategy::AbOnly);
        blended.set_hotspot_blend(Some(HotspotBlend {
            radius: 8,
            phases: [true, true, true],
        }));
        observe(&mut blended);
        let boosted = blended.predict_with_prior(&s, 4, &hotspots);
        assert_ne!(boosted, baseline, "prior must re-rank when opted in");
        assert!(
            boosted[0].manhattan(&hotspots[0].0) < TileId::new(2, 2, 2).manhattan(&hotspots[0].0),
            "top prediction approaches the hotspot: {boosted:?}"
        );
        // Same engine, empty prior → exactly the baseline again.
        assert_eq!(blended.predict_with_prior(&s, 4, &[]), baseline);
        // Phase gate closed for the inferred phase → baseline too.
        let mut gated = engine(AllocationStrategy::AbOnly);
        gated.set_hotspot_blend(Some(HotspotBlend {
            radius: 8,
            phases: [false, false, false],
        }));
        observe(&mut gated);
        assert_eq!(gated.predict_with_prior(&s, 4, &hotspots), baseline);
    }

    #[test]
    fn observe_tracks_roi() {
        let mut e = engine(AllocationStrategy::Updated);
        e.observe(Request::initial(TileId::new(1, 0, 0)));
        e.observe(Request::new(
            TileId::new(2, 0, 0),
            Some(Move::ZoomIn(Quadrant::Nw)),
        ));
        e.observe(Request::new(TileId::new(2, 0, 1), Some(Move::PanRight)));
        e.observe(Request::new(TileId::new(1, 0, 0), Some(Move::ZoomOut)));
        assert_eq!(e.roi(), &[TileId::new(2, 0, 0), TileId::new(2, 0, 1)]);
        e.reset_session();
        assert!(e.roi().is_empty());
        assert!(e.history().is_empty());
    }
}
