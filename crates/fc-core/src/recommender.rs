//! The recommendation-model interface (paper §4.3.1).
//!
//! "given a user request r, a set of candidate tiles for prediction C,
//! and the session history H, compute an ordering for the candidate
//! tiles Pm = [T1, T2, …]. The ordering signifies m's prediction of how
//! relatively likely the user will request each tile in C."

use crate::history::{Request, SessionHistory};
use fc_tiles::{Geometry, TileId, TileStore};

/// Everything a recommendation model may consult when ranking candidates.
pub struct PredictionContext<'a> {
    /// The user's current request `r`.
    pub request: Request,
    /// The session history `H`.
    pub history: &'a SessionHistory,
    /// The candidate set `C` (tiles at most `d` moves from `r`).
    pub candidates: &'a [TileId],
    /// Pyramid geometry (for move reasoning).
    pub geometry: Geometry,
    /// Tile store (for signature metadata; reads are free).
    pub store: &'a TileStore,
    /// The user's most recent ROI (Algorithm 1 output).
    pub roi: &'a [TileId],
}

/// A low-level recommendation model.
pub trait Recommender: Send + Sync {
    /// Short stable name (used in experiment output).
    fn name(&self) -> &str;

    /// Orders the candidate tiles from most to least likely. The returned
    /// list is a permutation of (a subset of) `ctx.candidates`; the
    /// prediction engine trims it to the model's cache allocation.
    fn rank(&self, ctx: &PredictionContext<'_>) -> Vec<TileId>;
}
