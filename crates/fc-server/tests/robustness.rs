//! Failure-containment tests for the serving stack: admission control,
//! socket timeouts, panic containment, structured error codes, and the
//! degraded-reply path end-to-end over localhost.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, FaultPlan, FaultRates, FaultWindow,
    PredictionEngine, RetryPolicy, SbConfig, SbRecommender,
};
use fc_server::protocol::{read_frame, write_frame};
use fc_server::{
    Client, ClientMsg, EngineFactory, ErrorCode, FaultSetup, MultiUserServing, Server,
    ServerConfig, ServerError, ServerMsg, SessionLimits,
};
use fc_tiles::{Move, Pyramid, PyramidBuilder, PyramidConfig, TileId};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small pyramid with well-formed Hist1D signatures.
fn pyramid(sig: fn(&TileId) -> Vec<f64>) -> Arc<Pyramid> {
    let schema = fc_array::Schema::grid2d("G", 64, 64, &["v"]).unwrap();
    let data: Vec<f64> = (0..64 * 64).map(|i| (i % 64) as f64 / 64.0).collect();
    let base = fc_array::DenseArray::from_vec(schema, data).unwrap();
    let mut cfg = PyramidConfig::simple(3, 16, &["v"]);
    cfg.latency = fc_array::LatencyModel::scidb_like();
    let p = PyramidBuilder::new().build(&base, &cfg).unwrap();
    for id in p.geometry().all_tiles() {
        p.store()
            .put_meta(id, SignatureKind::Hist1D.meta_name(), sig(&id));
    }
    Arc::new(p)
}

fn good_sig(id: &TileId) -> Vec<f64> {
    let t = f64::from(id.x % 3) / 3.0;
    vec![t, 1.0 - t]
}

/// ∞ entries pass the SB zero-bin guard and drive χ² to ∞/∞ = NaN, so
/// `sort_scored` panics inside the session's predict — the in-process
/// stand-in for any middleware bug.
fn poisoned_sig(_id: &TileId) -> Vec<f64> {
    vec![f64::INFINITY, 0.5]
}

fn factory_for(p: &Arc<Pyramid>, strategy: AllocationStrategy) -> EngineFactory {
    let geometry = p.geometry();
    Arc::new(move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            geometry,
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy,
                ..EngineConfig::default()
            },
        )
    })
}

fn bind(p: Arc<Pyramid>, strategy: AllocationStrategy, config: ServerConfig) -> Server {
    let factory = factory_for(&p, strategy);
    Server::bind("127.0.0.1:0", p, factory, config).expect("server binds")
}

/// The structured code inside a client-side `io::Error`, if any.
fn code_of(err: &io::Error) -> Option<ErrorCode> {
    err.get_ref()?.downcast_ref::<ServerError>().map(|e| e.code)
}

/// Polls until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn overloaded_server_sheds_at_accept_with_structured_code() {
    let p = pyramid(good_sig);
    let mut server = bind(
        p,
        AllocationStrategy::AbOnly,
        ServerConfig {
            limits: SessionLimits {
                max_sessions: 1,
                ..SessionLimits::default()
            },
            ..ServerConfig::default()
        },
    );
    let mut first = Client::connect(server.addr(), 2).expect("first session admitted");
    first.request_tile(TileId::ROOT, None).expect("serves");
    wait_for(|| server.active_sessions() == 1, "session registration");
    // The second connection is shed before a session thread exists.
    let err = Client::connect(server.addr(), 2).expect_err("must shed");
    assert_eq!(code_of(&err), Some(ErrorCode::Overloaded), "{err}");
    // The first session is unaffected, and capacity frees on its exit.
    first
        .request_tile(TileId::new(1, 0, 0), None)
        .expect("still serving");
    first.bye().expect("bye");
    wait_for(|| server.active_sessions() == 0, "capacity release");
    let mut again = Client::connect(server.addr(), 2).expect("admitted after release");
    again.request_tile(TileId::ROOT, None).expect("serves");
    server.shutdown();
}

#[test]
fn overload_watermark_sheds_hello_on_cache_pressure() {
    let p = pyramid(good_sig);
    let mut server = bind(
        p,
        AllocationStrategy::AbOnly,
        ServerConfig {
            multi_user: Some(MultiUserServing {
                cache_capacity: 64,
                ..MultiUserServing::default()
            }),
            limits: SessionLimits {
                // One session gets 64 tiles; a second would halve that
                // below the floor.
                min_session_budget: 40,
                ..SessionLimits::default()
            },
            ..ServerConfig::default()
        },
    );
    let mut first = Client::connect(server.addr(), 2).expect("first admitted");
    first.request_tile(TileId::ROOT, None).expect("serves");
    let err = Client::connect(server.addr(), 2).expect_err("watermark must shed");
    assert_eq!(code_of(&err), Some(ErrorCode::Overloaded), "{err}");
    // The shed session's teardown must not disturb the admitted one.
    first
        .request_tile(TileId::new(1, 0, 0), None)
        .expect("still serving");
    first.bye().expect("bye");
    // With the namespace idle again, admission resumes.
    wait_for(|| server.active_sessions() == 0, "session close");
    Client::connect(server.addr(), 2).expect("admitted after release");
    server.shutdown();
}

#[test]
fn read_timeout_reclaims_stalled_sessions() {
    let p = pyramid(good_sig);
    let mut server = bind(
        p,
        AllocationStrategy::AbOnly,
        ServerConfig {
            limits: SessionLimits {
                read_timeout: Some(Duration::from_millis(80)),
                write_timeout: Some(Duration::from_secs(5)),
                ..SessionLimits::default()
            },
            ..ServerConfig::default()
        },
    );
    // A client that connects and never speaks: the session thread must
    // not be pinned forever.
    let stalled = std::net::TcpStream::connect(server.addr()).expect("connect");
    wait_for(|| server.active_sessions() == 1, "session start");
    wait_for(|| server.active_sessions() == 0, "stalled-session reclaim");
    drop(stalled);
    // Live clients are unaffected as long as they keep talking.
    let mut c = Client::connect(server.addr(), 2).expect("connect");
    c.request_tile(TileId::ROOT, None).expect("serves");
    server.shutdown();
}

#[test]
fn session_panic_becomes_error_reply_and_clean_teardown() {
    // SbOnly forces every predict through the poisoned χ² scoring.
    let p = pyramid(poisoned_sig);
    let mut server = bind(p, AllocationStrategy::SbOnly, ServerConfig::default());
    let mut client = Client::connect(server.addr(), 3).expect("connect");
    let err = client
        .request_tile(TileId::ROOT, None)
        .expect_err("the poisoned predict must not produce a tile");
    assert_eq!(code_of(&err), Some(ErrorCode::Internal), "{err}");
    // The server closed the session after replying…
    let also = client.request_tile(TileId::new(1, 0, 0), None);
    assert!(also.is_err(), "session must be closed: {also:?}");
    wait_for(|| server.active_sessions() == 0, "session teardown");
    // …and the process is still healthy: new sessions come up fine
    // (and fail the same contained way, not by wedging).
    let mut again = Client::connect(server.addr(), 3).expect("server alive");
    let err = again
        .request_tile(TileId::ROOT, None)
        .expect_err("same fault");
    assert_eq!(code_of(&err), Some(ErrorCode::Internal));
    wait_for(|| server.active_sessions() == 0, "second teardown");
    server.shutdown();
}

#[test]
fn malformed_frames_draw_an_error_then_close() {
    let p = pyramid(good_sig);
    let mut server = bind(p, AllocationStrategy::AbOnly, ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    // A well-framed body with an unknown tag.
    write_frame(&mut stream, &[1, 0, 0, 0, 9]).expect("send");
    match ServerMsg::decode(read_frame(&mut stream).expect("reply")).expect("decodes") {
        ServerMsg::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error, got {other:?}"),
    }
    // The server hangs up after the courtesy reply.
    assert!(read_frame(&mut stream).is_err(), "connection must close");
    wait_for(|| server.active_sessions() == 0, "teardown");
    server.shutdown();
}

#[test]
fn requests_before_hello_are_rejected_per_message() {
    let p = pyramid(good_sig);
    let mut server = bind(p, AllocationStrategy::AbOnly, ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let req = ClientMsg::RequestTile {
        tile: TileId::ROOT,
        mv: None,
    };
    write_frame(&mut stream, &req.encode()).expect("send");
    match ServerMsg::decode(read_frame(&mut stream).expect("reply")).expect("decodes") {
        ServerMsg::Error { code, reason } => {
            assert_eq!(code, ErrorCode::General);
            assert!(reason.contains("Hello"), "{reason}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    // Unlike a malformed frame, a premature request leaves the session
    // open: a proper Hello still works.
    write_frame(
        &mut stream,
        &ClientMsg::Hello {
            prefetch_k: 1,
            dataset: String::new(),
        }
        .encode(),
    )
    .expect("send");
    match ServerMsg::decode(read_frame(&mut stream).expect("reply")).expect("decodes") {
        ServerMsg::Welcome { .. } => {}
        other => panic!("expected welcome, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn exhausted_fetches_surface_as_unavailable() {
    let p = pyramid(good_sig);
    let mut server = bind(
        p,
        AllocationStrategy::AbOnly,
        ServerConfig {
            faults: Some(FaultSetup {
                plan: Arc::new(FaultPlan::always_failing(11)),
                retry: RetryPolicy::default(),
            }),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.addr(), 0).expect("connect");
    // Deepest-level tile, nothing resident to degrade to.
    let err = client
        .request_tile(TileId::new(2, 1, 1), None)
        .expect_err("backend always fails");
    assert_eq!(code_of(&err), Some(ErrorCode::Unavailable), "{err}");
    // The session survives the failure; the client chooses what's next.
    let stats = client.stats().expect("session still up");
    assert_eq!(stats.requests, 0, "failed fetches serve nothing");
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn degraded_replies_carry_the_resident_ancestor() {
    let p = pyramid(good_sig);
    // Request 0 is clean; everything after always fails.
    let plan = FaultPlan::windowed(
        17,
        FaultWindow {
            from: 1,
            until: u64::MAX,
            rates: FaultRates {
                transient_per_mille: 1000,
                transient_first_attempts: u32::MAX,
                ..FaultRates::default()
            },
        },
    );
    let mut server = bind(
        p,
        AllocationStrategy::AbOnly,
        ServerConfig {
            faults: Some(FaultSetup {
                plan: Arc::new(plan),
                retry: RetryPolicy::default(),
            }),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.addr(), 2).expect("connect");
    let root = client.request_tile(TileId::ROOT, None).expect("clean");
    assert!(!root.degraded);
    // A deep tile the engine would not have prefetched off the root
    // request — its parent is not resident either, so the ladder walks
    // all the way up to the cached root.
    let child = client
        .request_tile(TileId::new(2, 3, 3), None)
        .expect("degrades instead of failing");
    assert!(child.degraded, "reply must be flagged degraded");
    assert_eq!(
        child.payload.tile,
        TileId::ROOT,
        "the resident ancestor answers in the child's place"
    );
    client.bye().expect("bye");
    server.shutdown();
}
