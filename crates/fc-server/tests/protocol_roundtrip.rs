//! Property-based roundtrips for every `ClientMsg`/`ServerMsg` variant:
//! encode → decode must reproduce the message exactly (bit-level for
//! f64 payloads, NaN and ±∞ included), empty-attribute tiles must
//! survive, and truncating any frame must be rejected, never panic or
//! mis-decode.

use bytes::Bytes;
use fc_server::protocol::unframe;
use fc_server::{ClientMsg, ErrorCode, FrameBuf, ServerMsg, TilePayload};
use fc_tiles::{Move, TileId, MOVES};
use proptest::prelude::*;

/// All assigned error codes plus the catch-all, for exhaustive cycling.
const CODES: [ErrorCode; 7] = [
    ErrorCode::General,
    ErrorCode::Malformed,
    ErrorCode::UnknownDataset,
    ErrorCode::NoSuchTile,
    ErrorCode::Overloaded,
    ErrorCode::Unavailable,
    ErrorCode::Internal,
];

/// Deterministic value stream mixing finite values with NaN, ±∞ and -0.
fn payload_values(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match i % 6 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                _ => (state % 100_000) as f64 / 7.0 - 5_000.0,
            }
        })
        .collect()
}

fn tile_msg(level: u8, y: u32, x: u32, h: u32, w: u32, nattrs: usize, seed: u64) -> ServerMsg {
    let ncells = (h * w) as usize;
    ServerMsg::Tile {
        payload: TilePayload {
            tile: TileId::new(level, y, x),
            h,
            w,
            attrs: (0..nattrs).map(|i| format!("attr_{i}")).collect(),
            data: (0..nattrs)
                .map(|i| payload_values(seed ^ (i as u64).wrapping_mul(0x9E37), ncells))
                .collect(),
            present: (0..ncells).map(|i| u8::from(i % 3 != 1)).collect(),
        },
        latency_ns: seed,
        cache_hit: seed.is_multiple_of(2),
        phase: (seed % 4) as u8,
        degraded: seed & 4 != 0,
    }
}

/// Bit-level (NaN-safe) equality: re-encoding the decoded message must
/// reproduce the original frame exactly.
fn assert_reencode_identical(framed: &Bytes, decoded: &ServerMsg) {
    let again = decoded.encode();
    assert_eq!(&framed[..], &again[..], "re-encoded frame differs");
}

proptest! {
    /// Every ClientMsg variant roundtrips; RequestTile covers all move
    /// ids and the no-move case.
    #[test]
    fn client_variants_roundtrip(
        k in any::<u32>(),
        level in 0u8..12,
        y in any::<u32>(),
        x in any::<u32>(),
        mv in 0usize..10,
        dataset_len in 0usize..24,
    ) {
        let mv = if mv >= MOVES.len() { None } else { Some(Move::from_index(mv)) };
        let msgs = [
            ClientMsg::Hello { prefetch_k: k, dataset: "d".repeat(dataset_len) },
            ClientMsg::RequestTile { tile: TileId::new(level, y, x), mv },
            ClientMsg::GetStats,
            ClientMsg::Bye,
        ];
        for m in msgs {
            let dec = ClientMsg::decode(unframe(&m.encode()))
                .expect("valid frame decodes");
            prop_assert_eq!(dec, m);
        }
    }

    /// Welcome / Stats / Error roundtrip across their whole domains.
    #[test]
    fn simple_server_variants_roundtrip(
        levels in any::<u8>(),
        ty in any::<u32>(),
        tx in any::<u32>(),
        requests in any::<u64>(),
        hits in any::<u64>(),
        avg in any::<u64>(),
        reason_len in 0usize..64,
        code_ix in 0usize..CODES.len(),
    ) {
        let msgs = [
            ServerMsg::Welcome { levels, deepest_tiles: (ty, tx) },
            ServerMsg::Stats { requests, hits, avg_latency_ns: avg, prefetch_issued: requests / 2, prefetch_used: hits / 2 },
            ServerMsg::Error { code: CODES[code_ix], reason: "e".repeat(reason_len) },
        ];
        for m in msgs {
            let dec = ServerMsg::decode(unframe(&m.encode()))
                .expect("valid frame decodes");
            prop_assert_eq!(dec, m);
        }
    }

    /// An Error reason beyond the u16 wire limit — e.g. a backend
    /// message echoed verbatim — truncates on a char boundary instead
    /// of panicking the encoder, and the frame stays self-consistent.
    #[test]
    fn oversized_reasons_truncate_not_panic(
        extra in 0usize..200,
        code_ix in 0usize..CODES.len(),
        wide in any::<bool>(),
    ) {
        let unit = if wide { "é" } else { "e" };
        let n = (u16::MAX as usize + extra) / unit.len();
        let msg = ServerMsg::Error { code: CODES[code_ix], reason: unit.repeat(n) };
        let framed = msg.encode();
        let prefix = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
        prop_assert_eq!(prefix, framed.len() - 4, "prefix matches body");
        match ServerMsg::decode(unframe(&framed)).expect("valid frame decodes") {
            ServerMsg::Error { code, reason } => {
                prop_assert_eq!(code, CODES[code_ix]);
                prop_assert!(reason.len() <= u16::MAX as usize);
                prop_assert!(reason.chars().all(|c| c == unit.chars().next().unwrap()));
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// Tile payloads — NaN, ±∞, -0.0, multi-attribute, empty-attribute,
    /// and zero-cell tiles — roundtrip bit-exactly through both the
    /// allocating and the FrameBuf-reusing encoder.
    #[test]
    fn tile_payloads_roundtrip_bit_exact(
        level in 0u8..10,
        y in 0u32..1000,
        x in 0u32..1000,
        h in 0u32..6,
        w in 0u32..6,
        nattrs in 0usize..4,
        seed in any::<u64>(),
    ) {
        let msg = tile_msg(level, y, x, h, w, nattrs, seed);
        let framed = msg.encode();
        let mut buf = FrameBuf::new();
        let reused = msg.encode_into(&mut buf);
        prop_assert_eq!(&framed[..], reused, "encode vs encode_into");
        let dec = ServerMsg::decode(unframe(&framed)).expect("valid frame decodes");
        assert_reencode_identical(&framed, &dec);
        if let (ServerMsg::Tile { payload: a, .. }, ServerMsg::Tile { payload: b, .. }) =
            (&msg, &dec)
        {
            prop_assert_eq!(&a.attrs, &b.attrs);
            prop_assert_eq!(&a.present, &b.present);
        } else {
            panic!("decoded to a different variant");
        }
    }

    /// Truncating any valid frame of any variant at any byte yields a
    /// decode error — never a panic, never a bogus success.
    #[test]
    fn truncated_frames_rejected(
        cut in 1usize..200,
        seed in any::<u64>(),
    ) {
        let client_msgs = [
            ClientMsg::Hello { prefetch_k: 7, dataset: "ndsi".into() },
            ClientMsg::RequestTile {
                tile: TileId::new(2, 1, 3),
                mv: Some(Move::from_index((seed % MOVES.len() as u64) as usize)),
            },
            ClientMsg::GetStats,
            ClientMsg::Bye,
        ];
        for m in client_msgs {
            let body = unframe(&m.encode());
            if cut < body.len() {
                prop_assert!(ClientMsg::decode(body.slice(..body.len() - cut)).is_err());
            }
        }
        let server_msgs = [
            ServerMsg::Welcome { levels: 4, deepest_tiles: (8, 8) },
            tile_msg(3, 1, 2, 3, 3, 2, seed),
            ServerMsg::Stats { requests: 10, hits: 8, avg_latency_ns: 5, prefetch_issued: 6, prefetch_used: 4 },
            ServerMsg::Error { code: ErrorCode::Internal, reason: "broken pipe".into() },
        ];
        for m in server_msgs {
            let body = unframe(&m.encode());
            if cut < body.len() {
                prop_assert!(ServerMsg::decode(body.slice(..body.len() - cut)).is_err());
            }
        }
    }
}
