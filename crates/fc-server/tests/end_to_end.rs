//! End-to-end client/server tests over localhost.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, PredictionEngine, SbConfig, SbRecommender,
};
use fc_server::{Client, DatasetSpec, EngineFactory, MultiUserServing, Server, ServerConfig};
use fc_sim::dataset::{DatasetConfig, StudyDataset};
use fc_tiles::{Move, Pyramid, Quadrant, TileId};
use std::sync::Arc;

fn start_server_with(config: ServerConfig) -> (Server, StudyDataset) {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let pyramid = ds.pyramid.clone();
    let engine_pyramid = pyramid.clone();
    let factory: EngineFactory = Arc::new(move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            engine_pyramid.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    });
    let server = Server::bind("127.0.0.1:0", pyramid, factory, config).expect("server binds");
    (server, ds)
}

fn start_server() -> (Server, StudyDataset) {
    start_server_with(ServerConfig::default())
}

#[test]
fn session_serves_tiles_and_stats() {
    let (mut server, ds) = start_server();
    let mut client = Client::connect(server.addr(), 4).expect("client connects");
    assert_eq!(client.levels(), ds.pyramid.geometry().levels);

    // Walk: root → zoom in → pan.
    let root = client.request_tile(TileId::ROOT, None).expect("root tile");
    assert_eq!(root.payload.tile, TileId::ROOT);
    assert!(!root.cache_hit, "first request is a miss");
    assert!(root.payload.attrs.contains(&"ndsi_avg".to_string()));
    assert_eq!(
        root.payload.data.len(),
        root.payload.attrs.len(),
        "one data vector per attribute"
    );

    let child = client
        .request_tile(TileId::new(1, 0, 0), Some(Move::ZoomIn(Quadrant::Nw)))
        .expect("child tile");
    assert_eq!(child.payload.tile, TileId::new(1, 0, 0));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 2);

    client.bye().expect("clean close");
    server.shutdown();
}

#[test]
fn bad_requests_are_rejected_not_fatal() {
    let (mut server, _ds) = start_server();
    let mut client = Client::connect(server.addr(), 2).expect("connect");
    // Nonexistent tile → error reply, connection stays usable.
    let err = client.request_tile(TileId::new(7, 0, 0), None);
    assert!(err.is_err());
    let ok = client.request_tile(TileId::ROOT, None);
    assert!(ok.is_ok());
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_sessions_are_isolated() {
    let (mut server, _ds) = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, 3).expect("connect");
                // Each session walks a different path.
                c.request_tile(TileId::ROOT, None).expect("root");
                let q = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se][i % 4];
                c.request_tile(TileId::new(1, q.dy(), q.dx()), Some(Move::ZoomIn(q)))
                    .expect("child");
                let s = c.stats().expect("stats");
                assert_eq!(s.requests, 2, "sessions do not share counters");
                c.bye().expect("bye");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn multi_user_mode_shares_prefetched_tiles_across_sessions() {
    let (mut server, ds) = start_server_with(ServerConfig {
        multi_user: Some(MultiUserServing::default()),
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let g = ds.pyramid.geometry();
    let deepest = g.levels - 1;
    // Two sessions walk the same pan run, one after the other: the
    // second rides the first's communal prefetches.
    let walk = |hold: bool| {
        let mut c = Client::connect(addr, 5).expect("connect");
        c.request_tile(TileId::new(deepest, 1, 0), None)
            .expect("first");
        let mut hits = 0;
        for x in 1..4 {
            let a = c
                .request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
                .expect("pan");
            if a.cache_hit {
                hits += 1;
            }
        }
        if hold {
            (Some(c), hits)
        } else {
            c.bye().expect("bye");
            (None, hits)
        }
    };
    // Keep the first session open so its installs stay held while the
    // second session walks.
    let (first, _) = walk(true);
    let (_, second_hits) = walk(false);
    assert!(
        second_hits >= 2,
        "second session should hit shared prefetches, got {second_hits}"
    );
    let shared = server.shared_cache_stats().expect("multi-user mode");
    assert!(
        shared.cross_session_hits > 0,
        "expected cross-session hits, got {shared:?}"
    );
    let sched = server.scheduler_stats().expect("batching on");
    assert!(sched.batches > 0 && sched.jobs >= sched.batches);
    first.expect("held client").bye().expect("bye");
    server.shutdown();
}

fn engine_factory_for(pyramid: &Arc<Pyramid>) -> EngineFactory {
    let g = pyramid.geometry();
    Arc::new(move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            g,
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    })
}

/// Acceptance: one server process serves two pyramids, each under its
/// own cache namespace carved from one global budget.
#[test]
fn one_process_serves_two_datasets_in_separate_namespaces() {
    // Two different geometries so the Welcome tells them apart.
    let west = StudyDataset::build(DatasetConfig::tiny()); // 3 levels
    let east = {
        let mut cfg = DatasetConfig::tiny();
        cfg.levels = 4;
        StudyDataset::build(cfg) // 4 levels
    };
    let specs = vec![
        DatasetSpec {
            name: "west".into(),
            pyramid: west.pyramid.clone(),
            engines: engine_factory_for(&west.pyramid),
        },
        DatasetSpec {
            name: "east".into(),
            pyramid: east.pyramid.clone(),
            engines: engine_factory_for(&east.pyramid),
        },
    ];
    let mut server = Server::bind_datasets(
        "127.0.0.1:0",
        specs,
        ServerConfig {
            multi_user: Some(MultiUserServing {
                cache_capacity: 512,
                hotspots: Some(fc_core::HotspotConfig::default()),
                ..MultiUserServing::default()
            }),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.addr();

    // The global budget partitions exactly across the two namespaces.
    let caps = server.namespace_capacities();
    assert_eq!(caps.len(), 2);
    assert_eq!(caps.iter().map(|&(_, c)| c).sum::<usize>(), 512);

    // Unknown dataset → error reply, not a wedged connection.
    assert!(Client::connect_dataset(addr, 2, "north").is_err());

    // An empty name selects the default (first) dataset.
    let default = Client::connect(addr, 2).expect("default dataset");
    assert_eq!(default.levels(), west.pyramid.geometry().levels);
    default.bye().expect("bye");

    // Each namespace serves its own pyramid.
    let walk = |dataset: &str, levels: u8| {
        let mut c = Client::connect_dataset(addr, 5, dataset).expect("connect");
        assert_eq!(c.levels(), levels, "{dataset}");
        let deepest = levels - 1;
        c.request_tile(TileId::new(deepest, 1, 0), None)
            .expect("first");
        let mut hits = 0;
        for x in 1..4 {
            let a = c
                .request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
                .expect("pan");
            if a.cache_hit {
                hits += 1;
            }
        }
        (c, hits)
    };
    let west_levels = west.pyramid.geometry().levels;
    let east_levels = east.pyramid.geometry().levels;
    // Two sessions on "west": the second rides the first's communal
    // prefetches inside the west namespace.
    let (w1, _) = walk("west", west_levels);
    let (w2, w2_hits) = walk("west", west_levels);
    assert!(w2_hits >= 2, "west session 2 rides shared prefetches");
    // One session on "east" — its namespace is independent.
    let (e1, _) = walk("east", east_levels);

    let stats: std::collections::HashMap<String, fc_core::SharedCacheStats> =
        server.namespace_stats().into_iter().collect();
    let west_stats = stats["west"];
    let east_stats = stats["east"];
    assert!(
        west_stats.cross_session_hits > 0,
        "west sharing: {west_stats:?}"
    );
    assert_eq!(
        east_stats.cross_session_hits, 0,
        "east had one session: {east_stats:?}"
    );
    assert!(
        west_stats.hits + west_stats.misses > 0 && east_stats.hits + east_stats.misses > 0,
        "both namespaces saw traffic"
    );

    w1.bye().expect("bye");
    w2.bye().expect("bye");
    e1.bye().expect("bye");
    server.shutdown();
}

/// Regression: a Hello whose dataset name approaches the u16 wire
/// limit must get a bounded error reply — echoing the raw name into
/// the Error reason used to overflow the reply's own string field and
/// panic the session thread (leaking the active-session counter).
#[test]
fn oversized_dataset_name_is_rejected_not_fatal() {
    use fc_server::protocol::{read_frame, write_frame, MAX_DATASET_NAME};
    use fc_server::{ClientMsg, ServerMsg};
    let (mut server, _ds) = start_server();
    // Client-side guard: refuse before any bytes hit the wire.
    let long = "x".repeat(MAX_DATASET_NAME + 1);
    let err = Client::connect_dataset(server.addr(), 2, &long).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // Raw-frame client: a near-u16-max name (encodable, but whose
    // echoed Error reason would not be) must draw a bounded error.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let hello = ClientMsg::Hello {
        prefetch_k: 1,
        dataset: "x".repeat(65_530),
    };
    write_frame(&mut stream, &hello.encode()).expect("send");
    match ServerMsg::decode(read_frame(&mut stream).expect("alive")).expect("reply") {
        ServerMsg::Error { code, reason } => {
            assert_eq!(code, fc_server::ErrorCode::Malformed);
            assert!(reason.contains("too long"), "{reason}");
            assert!(!reason.contains("xxx"), "name must not be echoed");
        }
        other => panic!("expected error, got {other:?}"),
    }
    // The connection survives: a proper Hello still opens a session.
    let hello = ClientMsg::Hello {
        prefetch_k: 1,
        dataset: String::new(),
    };
    write_frame(&mut stream, &hello.encode()).expect("send");
    match ServerMsg::decode(read_frame(&mut stream).expect("alive")).expect("reply") {
        ServerMsg::Welcome { .. } => {}
        other => panic!("expected welcome, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn prefetching_speeds_up_predictable_walks() {
    let (mut server, ds) = start_server();
    let mut client = Client::connect(server.addr(), 5).expect("connect");
    let g = ds.pyramid.geometry();
    let deepest = g.levels - 1;
    // Pan right along the deepest level; the right-run-trained AB model
    // should prefetch continuations.
    let mut hits = 0;
    client
        .request_tile(TileId::new(deepest, 1, 0), None)
        .expect("first");
    for x in 1..4 {
        let a = client
            .request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
            .expect("pan");
        if a.cache_hit {
            hits += 1;
            assert!(a.latency.as_millis() < 100, "hits are fast");
        }
    }
    assert!(hits >= 2, "expected prefetch hits, got {hits}");
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn burst_scheduler_wired_through_server_config() {
    // Burst-scheduled server: a pan run at wire speed never leaves the
    // Burst phase (every inter-request gap is far below `burst_enter`),
    // so the engine stays off the burst path — the only speculation
    // under the default config is the momentum lookahead, at most one
    // tile per pan, and the wire carries the counters to prove it.
    let (mut server, ds) = start_server_with(ServerConfig {
        burst: Some(fc_core::BurstConfig::default()),
        ..ServerConfig::default()
    });
    let deepest = ds.pyramid.geometry().levels - 1;
    let walk = |server: &Server| {
        let mut client = Client::connect(server.addr(), 4).expect("client connects");
        client
            .request_tile(TileId::new(deepest, 0, 0), None)
            .expect("first tile");
        for x in 1..4 {
            client
                .request_tile(TileId::new(deepest, 0, x), Some(Move::PanRight))
                .expect("pan tile");
        }
        let stats = client.stats().expect("stats");
        client.bye().expect("clean close");
        stats
    };
    let on = walk(&server);
    server.shutdown();
    assert_eq!(on.requests, 4);
    assert!(
        on.prefetch_issued >= 1 && on.prefetch_issued <= 3,
        "mid-burst speculation is the 1-deep momentum lookahead only: {on:?}"
    );
    assert!(
        on.prefetch_used >= 1,
        "the momentum chain must cover the pan run: {on:?}"
    );

    // With momentum disabled the burst path is fully reactive — zero
    // speculative fetches.
    let (mut server, _ds) = start_server_with(ServerConfig {
        burst: Some(fc_core::BurstConfig {
            momentum: false,
            ..fc_core::BurstConfig::default()
        }),
        ..ServerConfig::default()
    });
    let reactive = walk(&server);
    server.shutdown();
    assert_eq!(reactive.requests, 4);
    assert_eq!(
        reactive.prefetch_issued, 0,
        "wire-speed traffic is a burst: the scheduler must stay reactive"
    );

    // The same walk against a default (uniform-budget) server issues
    // speculative fetches every request.
    let (mut server, _ds) = start_server();
    let off = walk(&server);
    server.shutdown();
    assert_eq!(off.requests, 4);
    assert!(
        off.prefetch_issued > 0,
        "uniform budget prefetches per request: {off:?}"
    );
    assert!(off.prefetch_used <= off.prefetch_issued);
}
