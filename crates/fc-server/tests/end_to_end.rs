//! End-to-end client/server tests over localhost.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, PredictionEngine, SbConfig, SbRecommender,
};
use fc_server::{Client, EngineFactory, MultiUserServing, Server, ServerConfig};
use fc_sim::dataset::{DatasetConfig, StudyDataset};
use fc_tiles::{Move, Quadrant, TileId};
use std::sync::Arc;

fn start_server_with(config: ServerConfig) -> (Server, StudyDataset) {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let pyramid = ds.pyramid.clone();
    let engine_pyramid = pyramid.clone();
    let factory: EngineFactory = Arc::new(move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            engine_pyramid.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    });
    let server = Server::bind("127.0.0.1:0", pyramid, factory, config).expect("server binds");
    (server, ds)
}

fn start_server() -> (Server, StudyDataset) {
    start_server_with(ServerConfig::default())
}

#[test]
fn session_serves_tiles_and_stats() {
    let (mut server, ds) = start_server();
    let mut client = Client::connect(server.addr(), 4).expect("client connects");
    assert_eq!(client.levels(), ds.pyramid.geometry().levels);

    // Walk: root → zoom in → pan.
    let root = client.request_tile(TileId::ROOT, None).expect("root tile");
    assert_eq!(root.payload.tile, TileId::ROOT);
    assert!(!root.cache_hit, "first request is a miss");
    assert!(root.payload.attrs.contains(&"ndsi_avg".to_string()));
    assert_eq!(
        root.payload.data.len(),
        root.payload.attrs.len(),
        "one data vector per attribute"
    );

    let child = client
        .request_tile(TileId::new(1, 0, 0), Some(Move::ZoomIn(Quadrant::Nw)))
        .expect("child tile");
    assert_eq!(child.payload.tile, TileId::new(1, 0, 0));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 2);

    client.bye().expect("clean close");
    server.shutdown();
}

#[test]
fn bad_requests_are_rejected_not_fatal() {
    let (mut server, _ds) = start_server();
    let mut client = Client::connect(server.addr(), 2).expect("connect");
    // Nonexistent tile → error reply, connection stays usable.
    let err = client.request_tile(TileId::new(7, 0, 0), None);
    assert!(err.is_err());
    let ok = client.request_tile(TileId::ROOT, None);
    assert!(ok.is_ok());
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_sessions_are_isolated() {
    let (mut server, _ds) = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, 3).expect("connect");
                // Each session walks a different path.
                c.request_tile(TileId::ROOT, None).expect("root");
                let q = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se][i % 4];
                c.request_tile(TileId::new(1, q.dy(), q.dx()), Some(Move::ZoomIn(q)))
                    .expect("child");
                let s = c.stats().expect("stats");
                assert_eq!(s.requests, 2, "sessions do not share counters");
                c.bye().expect("bye");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn multi_user_mode_shares_prefetched_tiles_across_sessions() {
    let (mut server, ds) = start_server_with(ServerConfig {
        multi_user: Some(MultiUserServing::default()),
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let g = ds.pyramid.geometry();
    let deepest = g.levels - 1;
    // Two sessions walk the same pan run, one after the other: the
    // second rides the first's communal prefetches.
    let walk = |hold: bool| {
        let mut c = Client::connect(addr, 5).expect("connect");
        c.request_tile(TileId::new(deepest, 1, 0), None)
            .expect("first");
        let mut hits = 0;
        for x in 1..4 {
            let a = c
                .request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
                .expect("pan");
            if a.cache_hit {
                hits += 1;
            }
        }
        if hold {
            (Some(c), hits)
        } else {
            c.bye().expect("bye");
            (None, hits)
        }
    };
    // Keep the first session open so its installs stay held while the
    // second session walks.
    let (first, _) = walk(true);
    let (_, second_hits) = walk(false);
    assert!(
        second_hits >= 2,
        "second session should hit shared prefetches, got {second_hits}"
    );
    let shared = server.shared_cache_stats().expect("multi-user mode");
    assert!(
        shared.cross_session_hits > 0,
        "expected cross-session hits, got {shared:?}"
    );
    let sched = server.scheduler_stats().expect("batching on");
    assert!(sched.batches > 0 && sched.jobs >= sched.batches);
    first.expect("held client").bye().expect("bye");
    server.shutdown();
}

#[test]
fn prefetching_speeds_up_predictable_walks() {
    let (mut server, ds) = start_server();
    let mut client = Client::connect(server.addr(), 5).expect("connect");
    let g = ds.pyramid.geometry();
    let deepest = g.levels - 1;
    // Pan right along the deepest level; the right-run-trained AB model
    // should prefetch continuations.
    let mut hits = 0;
    client
        .request_tile(TileId::new(deepest, 1, 0), None)
        .expect("first");
    for x in 1..4 {
        let a = client
            .request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
            .expect("pan");
        if a.cache_hit {
            hits += 1;
            assert!(a.latency.as_millis() < 100, "hits are fast");
        }
    }
    assert!(hits >= 2, "expected prefetch hits, got {hits}");
    client.bye().unwrap();
    server.shutdown();
}
