//! Protocol robustness: decoding must never panic on malformed input.

use bytes::Bytes;
use fc_server::protocol::{read_frame, unframe};
use fc_server::{ClientMsg, ServerMsg, TilePayload};
use fc_tiles::TileId;
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup never panics the decoders — they return errors.
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let b = Bytes::from(data.clone());
        let _ = ClientMsg::decode(b.clone());
        let _ = ServerMsg::decode(b);
    }

    /// Truncating a valid frame at any point yields an error, not a panic
    /// or a bogus success (except cutting nothing).
    #[test]
    fn truncated_tiles_error(cut in 1usize..60) {
        let payload = TilePayload {
            tile: TileId::new(3, 1, 2),
            h: 2,
            w: 2,
            attrs: vec!["v".into()],
            data: vec![vec![1.0, 2.0, 3.0, 4.0]],
            present: vec![1, 1, 1, 1],
        };
        let msg = ServerMsg::Tile {
            payload,
            latency_ns: 5,
            cache_hit: false,
            phase: 0,
            degraded: false,
        };
        let full = unframe(&msg.encode());
        prop_assume!(cut < full.len());
        let truncated = full.slice(..full.len() - cut);
        prop_assert!(ServerMsg::decode(truncated).is_err());
    }

    /// read_frame with random prefixes either errors or returns a body of
    /// exactly the advertised length.
    #[test]
    fn read_frame_respects_lengths(len in 0u32..512, extra in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&len.to_le_bytes());
        let body: Vec<u8> = (0..len).map(|i| i as u8).collect();
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&extra);
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).expect("complete frame reads");
        prop_assert_eq!(frame.len(), len as usize);
    }
}
