//! Reactor-path tests: equivalence with the threaded server, the
//! failure paths that only exist on an event loop (write backpressure,
//! mid-frame disconnects, idle teardown), and utility-scheduled push.

use fc_core::engine::PhaseSource;
use fc_core::signature::SignatureKind;
use fc_core::{
    AbRecommender, AllocationStrategy, EngineConfig, PredictionEngine, PushConfig, PushPolicy,
    SbConfig, SbRecommender,
};
use fc_server::protocol::{read_frame, write_frame, ClientMsg, ServerMsg};
use fc_server::{
    Client, DatasetSpec, EngineFactory, ErrorCode, MultiUserServing, PushServing, Server,
    ServerConfig, ServerError, SessionLimits,
};
use fc_sim::dataset::{DatasetConfig, StudyDataset};
use fc_tiles::{Move, Quadrant, TileId};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pan_right_factory(ds: &StudyDataset) -> EngineFactory {
    let engine_pyramid = ds.pyramid.clone();
    Arc::new(move || {
        let r = Move::PanRight.index() as u16;
        let traces: Vec<Vec<u16>> = vec![vec![r; 10]];
        let refs: Vec<&[u16]> = traces.iter().map(|t| t.as_slice()).collect();
        PredictionEngine::new(
            engine_pyramid.geometry(),
            AbRecommender::train(refs, 3),
            SbRecommender::new(SbConfig::single(SignatureKind::Hist1D)),
            PhaseSource::Heuristic,
            EngineConfig {
                strategy: AllocationStrategy::Updated,
                ..EngineConfig::default()
            },
        )
    })
}

fn start_server_with(config: ServerConfig) -> (Server, StudyDataset) {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let factory = pan_right_factory(&ds);
    let server =
        Server::bind("127.0.0.1:0", ds.pyramid.clone(), factory, config).expect("server binds");
    (server, ds)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The golden walk both substrates replay for the equivalence test.
fn golden_walk(addr: std::net::SocketAddr) -> (Vec<String>, String) {
    let mut c = Client::connect(addr, 4).expect("connect");
    let deepest = c.levels() - 1;
    let mut answers = Vec::new();
    let mut walk: Vec<(TileId, Option<Move>)> = vec![
        (TileId::ROOT, None),
        (TileId::new(1, 0, 0), Some(Move::ZoomIn(Quadrant::Nw))),
    ];
    for x in 0..4 {
        walk.push((TileId::new(deepest, 1, x), Some(Move::PanRight)));
    }
    for (tile, mv) in walk {
        let a = c.request_tile(tile, mv).expect("tile reply");
        // The full answer, bit-exactly: payload (tile, dims, attrs,
        // data bits, validity), flags, latency.
        let bits: Vec<String> = a
            .payload
            .data
            .iter()
            .map(|col| {
                col.iter()
                    .map(|v| format!("{:016x}", v.to_bits()))
                    .collect::<String>()
            })
            .collect();
        answers.push(format!(
            "{}|{}x{}|{:?}|{:?}|{:?}|hit={}|deg={}|phase={}|lat={}",
            a.payload.tile,
            a.payload.h,
            a.payload.w,
            a.payload.attrs,
            bits,
            a.payload.present,
            a.cache_hit,
            a.degraded,
            a.phase,
            a.latency.as_nanos(),
        ));
    }
    let stats = c.stats().expect("stats");
    c.bye().expect("bye");
    (answers, format!("{stats:?}"))
}

#[test]
fn reactor_is_bit_identical_to_threaded_on_a_golden_trace() {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let factory = pan_right_factory(&ds);
    let threaded = Server::bind(
        "127.0.0.1:0",
        ds.pyramid.clone(),
        factory.clone(),
        ServerConfig::default(),
    )
    .expect("threaded server");
    let reactor = Server::bind(
        "127.0.0.1:0",
        ds.pyramid.clone(),
        factory,
        ServerConfig {
            reactor: true,
            ..ServerConfig::default()
        },
    )
    .expect("reactor server");
    let (mut threaded, mut reactor) = (threaded, reactor);
    let (t_answers, t_stats) = golden_walk(threaded.addr());
    let (r_answers, r_stats) = golden_walk(reactor.addr());
    assert_eq!(t_answers, r_answers, "every reply must match bit-exactly");
    assert_eq!(t_stats, r_stats, "session stats must match");
    threaded.shutdown();
    reactor.shutdown();
}

#[test]
fn reactor_serves_concurrent_isolated_sessions() {
    let (mut server, _ds) = start_server_with(ServerConfig {
        reactor: true,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, 3).expect("connect");
                c.request_tile(TileId::ROOT, None).expect("root");
                let q = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se][i % 4];
                c.request_tile(TileId::new(1, q.dy(), q.dx()), Some(Move::ZoomIn(q)))
                    .expect("child");
                let s = c.stats().expect("stats");
                assert_eq!(s.requests, 2, "sessions do not share counters");
                c.bye().expect("bye");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    wait_for(|| server.active_sessions() == 0, "session teardown");
    server.shutdown();
}

#[test]
fn reactor_sheds_at_max_sessions() {
    let (mut server, _ds) = start_server_with(ServerConfig {
        reactor: true,
        limits: SessionLimits {
            max_sessions: 2,
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let _a = Client::connect(addr, 2).expect("first session");
    let _b = Client::connect(addr, 2).expect("second session");
    wait_for(|| server.active_sessions() == 2, "two admitted sessions");
    let refused = Client::connect(addr, 2);
    let err = refused.expect_err("third session is shed");
    let code = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<ServerError>())
        .map(|e| e.code);
    assert_eq!(code, Some(ErrorCode::Overloaded), "err: {err}");
    server.shutdown();
}

#[test]
fn slow_reader_backlog_is_shed_with_overloaded() {
    let (mut server, _ds) = start_server_with(ServerConfig {
        reactor: true,
        limits: SessionLimits {
            max_write_queue: 2,
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write_frame(
        &mut stream,
        &ClientMsg::Hello {
            prefetch_k: 2,
            dataset: String::new(),
        }
        .encode(),
    )
    .expect("hello");
    // Pipeline far more requests than the kernel's socket buffers can
    // absorb in replies — without reading any. The reactor's write
    // queue hits the 2-frame bound and sheds the session. The shed
    // can land mid-pipeline: the reactor's close resets the
    // connection while we are still writing, which is itself proof of
    // the shed (and may discard the best-effort Overloaded frame
    // queued ahead of the reset).
    let mut write_reset = false;
    for _ in 0..2000 {
        if let Err(e) = write_frame(
            &mut stream,
            &ClientMsg::RequestTile {
                tile: TileId::ROOT,
                mv: None,
            }
            .encode(),
        ) {
            assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ),
                "pipelined request: {e}"
            );
            write_reset = true;
            break;
        }
    }
    // Now drain: Welcome, some Tile replies, then the shed notice.
    let mut shed = false;
    let mut replies = 0u32;
    // (EOF or a reset after teardown ends the drain.)
    while let Ok(frame) = read_frame(&mut stream) {
        match ServerMsg::decode(frame).expect("well-formed frame") {
            ServerMsg::Error { code, reason } => {
                assert_eq!(code, ErrorCode::Overloaded, "reason: {reason}");
                shed = true;
            }
            _ => replies += 1,
        }
    }
    assert!(
        shed || write_reset,
        "write backlog must shed with Overloaded (saw {replies} replies)"
    );
    assert!(
        replies < 2000,
        "the session must not survive to serve everything"
    );
    wait_for(|| server.active_sessions() == 0, "shed session reaped");
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_is_reaped_cleanly() {
    let (mut server, _ds) = start_server_with(ServerConfig {
        reactor: true,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut stream,
        &ClientMsg::Hello {
            prefetch_k: 2,
            dataset: String::new(),
        }
        .encode(),
    )
    .expect("hello");
    let welcome = ServerMsg::decode(read_frame(&mut stream).expect("reply")).expect("decode");
    assert!(matches!(welcome, ServerMsg::Welcome { .. }));
    wait_for(|| server.active_sessions() == 1, "session admitted");
    // A frame header promising 100 bytes, followed by 10 — then gone.
    use std::io::Write;
    stream.write_all(&100u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[0u8; 10]).expect("partial body");
    drop(stream);
    wait_for(
        || server.active_sessions() == 0,
        "mid-frame disconnect reaped",
    );
    server.shutdown();
}

#[test]
fn idle_session_times_out_on_the_reactor_clock() {
    let (mut server, _ds) = start_server_with(ServerConfig {
        reactor: true,
        limits: SessionLimits {
            read_timeout: Some(Duration::from_millis(150)),
            ..SessionLimits::default()
        },
        ..ServerConfig::default()
    });
    let _c = Client::connect(server.addr(), 2).expect("connect");
    wait_for(|| server.active_sessions() == 1, "session admitted");
    // Say nothing. The reactor's idle clock reaps the session.
    wait_for(|| server.active_sessions() == 0, "idle teardown");
    server.shutdown();
}

#[test]
fn utility_push_ships_predicted_tiles_and_counts_use() {
    let (mut server, ds) = start_server_with(ServerConfig {
        reactor: true,
        multi_user: Some(MultiUserServing::default()),
        push: Some(PushServing {
            planner: PushConfig {
                policy: PushPolicy::Utility,
                ..PushConfig::default()
            },
            tick_budget: 4,
        }),
        ..ServerConfig::default()
    });
    let deepest = ds.pyramid.geometry().levels - 1;
    let mut c = Client::connect(server.addr(), 4).expect("connect");
    // Establish a rightward pan run the AB model can extrapolate,
    // leaving think-time gaps for push ticks to fire in.
    for x in 0..3 {
        c.request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
            .expect("pan tile");
        std::thread::sleep(Duration::from_millis(120));
    }
    // Push frames are observed while awaiting replies; poke the
    // socket with stats until pushes surface.
    let mut pushed = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while pushed.is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(60));
        let _ = c.stats().expect("stats");
        pushed = c.take_pushed();
    }
    assert!(!pushed.is_empty(), "the planner must push in think time");
    let (srv_pushed, _) = server.push_stats();
    assert!(srv_pushed >= pushed.len() as u64);
    // Requesting a pushed tile books a *used* push server-side.
    let hit = c
        .request_tile(pushed[0].tile, Some(Move::PanRight))
        .expect("pushed tile served");
    assert_eq!(hit.payload.tile, pushed[0].tile);
    wait_for(
        || server.push_stats().1 >= 1,
        "a pushed-then-requested tile counted as used",
    );
    c.bye().expect("bye");
    server.shutdown();
}

#[test]
fn push_stays_silent_without_opt_in() {
    let (mut server, ds) = start_server_with(ServerConfig {
        reactor: true,
        multi_user: Some(MultiUserServing::default()),
        ..ServerConfig::default()
    });
    let deepest = ds.pyramid.geometry().levels - 1;
    let mut c = Client::connect(server.addr(), 4).expect("connect");
    for x in 0..3 {
        c.request_tile(TileId::new(deepest, 1, x), Some(Move::PanRight))
            .expect("pan tile");
        std::thread::sleep(Duration::from_millis(80));
    }
    let _ = c.stats().expect("stats");
    assert!(c.take_pushed().is_empty(), "no push without opt-in");
    assert_eq!(server.push_stats(), (0, 0));
    c.bye().expect("bye");
    server.shutdown();
}

#[test]
fn reactor_supports_multiple_datasets() {
    let ds = StudyDataset::build(DatasetConfig::tiny());
    let factory = pan_right_factory(&ds);
    let specs = vec![
        DatasetSpec {
            name: "alpha".into(),
            pyramid: ds.pyramid.clone(),
            engines: factory.clone(),
        },
        DatasetSpec {
            name: "beta".into(),
            pyramid: ds.pyramid.clone(),
            engines: factory,
        },
    ];
    let mut server = Server::bind_datasets(
        "127.0.0.1:0",
        specs,
        ServerConfig {
            reactor: true,
            multi_user: Some(MultiUserServing::default()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let mut a = Client::connect_dataset(server.addr(), 3, "alpha").expect("alpha");
    let mut b = Client::connect_dataset(server.addr(), 3, "beta").expect("beta");
    a.request_tile(TileId::ROOT, None).expect("alpha root");
    b.request_tile(TileId::ROOT, None).expect("beta root");
    let missing = Client::connect_dataset(server.addr(), 3, "gamma");
    assert!(missing.is_err(), "unknown dataset still refused");
    a.bye().expect("bye");
    b.bye().expect("bye");
    server.shutdown();
}
