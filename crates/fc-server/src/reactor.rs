//! The session reactor: every connection on one thread, multiplexed
//! over [`crate::epoll`] readiness instead of one blocked thread per
//! session.
//!
//! The threaded path spends a stack and a scheduler slot per idle
//! session; at ForeCache's think-time-dominated workloads that is
//! almost all of them, almost all of the time. The reactor inverts
//! the cost: a session at rest is one entry in the kernel's epoll
//! interest list, and a wakeup costs O(ready events), independent of
//! fleet size (a `poll(2)` table would re-scan every descriptor per
//! wakeup — O(sessions × request rate), the very tail the reactor
//! exists to flatten; see [`crate::epoll`]). Semantics are unchanged
//! — the same [`crate::server::handle_msg`] runs under the same
//! per-message `catch_unwind`, the same admission control sheds at
//! the same points, and a single-session trace is bit-identical to
//! the threaded server's, responses and stats alike.
//!
//! What the event loop owns per session:
//!
//! * a **read accumulator** re-assembling length-prefixed frames from
//!   whatever byte granularity the socket delivers (a mid-frame
//!   disconnect is detected as EOF with bytes pending);
//! * a **bounded write queue** of encoded frames
//!   ([`crate::server::SessionLimits::max_write_queue`]): replies are
//!   flushed opportunistically, queued only past a full socket
//!   buffer, and a slow reader whose backlog hits the bound is shed
//!   with [`ErrorCode::Overloaded`] — backpressure is explicit and
//!   bounded, never an unbounded heap;
//! * **liveness clocks**: `read_timeout` doubles as the idle-session
//!   timeout, `write_timeout` as the write-stall timeout (measured
//!   from the moment a write first refuses to make progress).
//!
//! Between socket events the loop runs the **push tick**: each served
//! request refills the session's candidate queue in the
//! [`fc_core::PushPlanner`] (ranked predictions via
//! [`fc_core::Middleware::take_push_candidates`], phase via
//! [`fc_core::Middleware::traffic_phase`]), and each tick drains the
//! planner's picks into [`ServerMsg::Push`] frames — only to sessions
//! whose socket is writable *and* whose write queue is empty, so a
//! push never queues behind (or delays) a reply.

use crate::epoll::{Epoll, EpollEvent, EPOLLIN, EPOLLOUT};
use crate::protocol::{write_frame, ClientMsg, ErrorCode, FrameBuf, ServerMsg, MAX_FRAME};
use crate::server::{handle_msg, tile_payload, Flow, PushCounters, ServedDatasets, ServerConfig};
use fc_core::{Middleware, MultiUserCache, PushPlanner};
use fc_tiles::TileId;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wait tick: the upper bound on shutdown/timeout/push latency when no
/// socket event arrives earlier.
const TICK: Duration = Duration::from_millis(25);

/// Read granularity per readiness event.
const READ_CHUNK: usize = 64 * 1024;

/// The listener's registration token (session ids count up from 0, so
/// the top of the space is free).
const LISTENER: u64 = u64::MAX;

/// Wait-buffer capacity: more ready descriptors than this simply
/// surface on the next (immediate) wait.
const EVENT_BATCH: usize = 1024;

/// One session's reactor state.
struct Session {
    stream: TcpStream,
    sid: u64,
    middleware: Option<Middleware>,
    /// The session's namespace cache when it browses a multi-user
    /// dataset — the residency oracle and payload source for pushes.
    push_cache: Option<Arc<dyn MultiUserCache>>,
    /// Unparsed inbound bytes (at most one partial frame plus one
    /// read chunk).
    rbuf: Vec<u8>,
    /// Tiles requested since the last push-planner settlement, in
    /// arrival order.
    requested: Vec<TileId>,
    /// Wall-clock arrival of the previous tile request — the real
    /// inter-request gap that drives the session's burst timeline
    /// (see `serve_msg`).
    last_request: Option<Instant>,
    /// Encoded frames awaiting socket room; `wpos` is the progress
    /// into the front frame.
    wq: VecDeque<Vec<u8>>,
    wpos: usize,
    last_read: Instant,
    /// When the socket first refused write progress with output
    /// pending (cleared by any successful write).
    write_blocked: Option<Instant>,
    /// Whether the epoll registration currently includes `EPOLLOUT`
    /// (mirrors "write queue non-empty"; cached to skip `epoll_ctl`
    /// when nothing changed).
    write_interest: bool,
    /// Flush what is queued, then tear down.
    closing: bool,
    /// Tear down now (queue abandoned).
    dead: bool,
}

impl Session {
    fn new(stream: TcpStream, sid: u64, now: Instant) -> Self {
        Self {
            stream,
            sid,
            middleware: None,
            push_cache: None,
            rbuf: Vec::new(),
            requested: Vec::new(),
            last_request: None,
            wq: VecDeque::new(),
            wpos: 0,
            last_read: now,
            write_blocked: None,
            write_interest: false,
            closing: false,
            dead: false,
        }
    }
}

/// Re-syncs a session's epoll interest with its write-queue state:
/// `EPOLLOUT` is requested exactly while frames are pending. A failed
/// `epoll_ctl` on a live socket is unrecoverable for the session.
fn sync_interest(ep: &Epoll, s: &mut Session) {
    let want = !s.wq.is_empty();
    if s.dead || want == s.write_interest {
        return;
    }
    let events = if want { EPOLLIN | EPOLLOUT } else { EPOLLIN };
    if ep.modify(s.stream.as_raw_fd(), events, s.sid).is_ok() {
        s.write_interest = want;
    } else {
        s.dead = true;
    }
}

/// The reactor accept-and-serve loop (runs on the server's background
/// thread; the counterpart of the threaded `accept_loop`).
pub(crate) fn reactor_loop(
    listener: TcpListener,
    served: Arc<ServedDatasets>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    sessions_gauge: Arc<AtomicUsize>,
    push_counters: Arc<PushCounters>,
) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut next_sid: u64 = 0;
    let mut planner = config.push.map(|p| PushPlanner::new(p.planner));
    let mut frame = FrameBuf::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let Ok(ep) = Epoll::new() else {
        // No readiness primitive, no reactor: unbind by returning (the
        // listener drops, connects fail fast rather than hang).
        return;
    };
    if ep.add(listener.as_raw_fd(), EPOLLIN, LISTENER).is_err() {
        return;
    }
    let mut events = vec![EpollEvent::zeroed(); EVENT_BATCH];
    let mut last_push_tick = Instant::now();
    let mut last_housekeeping = Instant::now();

    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(n) = ep.wait(&mut events, Some(TICK)) else {
            break;
        };
        let now = Instant::now();
        let mut reap = false;
        for ev in &events[..n] {
            if ev.token() == LISTENER {
                accept_ready(
                    &listener,
                    &ep,
                    &mut sessions,
                    &mut next_sid,
                    &config,
                    &sessions_gauge,
                );
                continue;
            }
            // A session reaped earlier this batch can still have a
            // queued event; its token no longer resolves.
            let Some(s) = sessions.get_mut(&ev.token()) else {
                continue;
            };
            // Contain anything a session event path panics on
            // (middleware bugs beyond handle_msg's own catch_unwind,
            // codec edge cases): the session dies, the loop survives.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if ev.failed() {
                    s.dead = true;
                    return;
                }
                if ev.writable() {
                    flush_writes(s, now);
                }
                if ev.readable() && !s.closing && !s.dead {
                    handle_readable(s, &served, &config, &mut frame, &mut scratch, now);
                    flush_writes(s, now);
                }
                if let Some(p) = planner.as_mut() {
                    refill_push(s, p);
                }
            }));
            if outcome.is_err() {
                s.dead = true;
            }
            sync_interest(&ep, s);
            if s.dead || (s.closing && s.wq.is_empty()) {
                reap = true;
            }
        }

        // Liveness clocks tick at TICK granularity, not per wakeup: a
        // busy fleet wakes the loop on every reply, and an O(sessions)
        // sweep per wakeup would be O(sessions × request rate) — the
        // exact overhead the reactor exists to avoid. (The reap sweep
        // below is gated the same way.)
        if now.duration_since(last_housekeeping) >= TICK {
            last_housekeeping = now;
            reap = true;
            for s in sessions.values_mut() {
                enforce_timeouts(s, &config, now);
            }
        }

        if let Some(p) = planner.as_mut() {
            // The tick budget is per TICK of wall clock, not per loop
            // iteration: under traffic the wait returns on readiness
            // far more often than the tick, and an ungated drain would
            // inflate the budget until the schedule stops mattering.
            if now.duration_since(last_push_tick) >= TICK {
                last_push_tick = now;
                push_tick(
                    &mut sessions,
                    &ep,
                    p,
                    config
                        .push
                        // fc-check: allow(handler-unwrap) -- the planner is only constructed when push config is present
                        .expect("planner implies push config")
                        .tick_budget,
                    &mut frame,
                    now,
                );
            }
            let stats = p.stats();
            push_counters.pushed.store(stats.pushed, Ordering::Relaxed);
            push_counters.used.store(stats.used, Ordering::Relaxed);
        }

        // Reap: closing sessions with a drained queue, and the dead.
        // Dropping a session closes its socket, which also removes it
        // from the epoll interest list.
        if reap {
            sessions.retain(|&sid, s| {
                let done = s.dead || (s.closing && s.wq.is_empty());
                if done {
                    if let Some(p) = planner.as_mut() {
                        p.drop_session(sid);
                    }
                    sessions_gauge.fetch_sub(1, Ordering::Relaxed);
                }
                !done
            });
        }
    }
    // Dropping the sessions drops their middlewares: shared holds
    // release and namespace budgets repartition, same as thread exit.
    sessions_gauge.fetch_sub(sessions.len(), Ordering::Relaxed);
}

/// Accepts every connection the listener has ready, applying the same
/// max-sessions shed as the threaded accept loop.
fn accept_ready(
    listener: &TcpListener,
    ep: &Epoll,
    sessions: &mut HashMap<u64, Session>,
    next_sid: &mut u64,
    config: &ServerConfig,
    gauge: &AtomicUsize,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let max = config.limits.max_sessions;
                if max > 0 && sessions.len() >= max {
                    let reply = ServerMsg::Error {
                        code: ErrorCode::Overloaded,
                        reason: format!("server at capacity ({max} sessions)"),
                    };
                    // Best-effort courtesy note, as on the threaded
                    // path: a kernel send buffer swallows a small
                    // frame even from a nonblocking socket.
                    let _ = stream.set_nodelay(true);
                    let _ = write_frame(&mut stream, &reply.encode());
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let sid = *next_sid;
                *next_sid += 1;
                if ep.add(stream.as_raw_fd(), EPOLLIN, sid).is_err() {
                    continue;
                }
                sessions.insert(sid, Session::new(stream, sid, Instant::now()));
                gauge.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Drains the socket into the read accumulator and serves every
/// complete frame in it.
fn handle_readable(
    s: &mut Session,
    served: &ServedDatasets,
    config: &ServerConfig,
    frame: &mut FrameBuf,
    scratch: &mut [u8],
    now: Instant,
) {
    let mut saw_eof = false;
    loop {
        match s.stream.read(scratch) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                s.last_read = now;
                s.rbuf.extend_from_slice(&scratch[..n]);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                s.dead = true;
                return;
            }
        }
    }
    // Serve what arrived *before* acting on the close: a client that
    // pipelines a request and immediately half-closes still gets its
    // reply, exactly as the threaded loop (which reads the frame
    // first and only sees EOF on the next read) behaves.
    serve_buffered(s, served, config, frame);
    if saw_eof && !s.dead {
        // Whatever is left in the accumulator is a mid-frame
        // disconnect; either way the peer sends no more — flush any
        // queued replies, then tear down.
        s.closing = true;
        if s.wq.is_empty() {
            s.dead = true;
        }
    }
}

/// Parses and serves complete frames from the accumulator.
fn serve_buffered(
    s: &mut Session,
    served: &ServedDatasets,
    config: &ServerConfig,
    frame: &mut FrameBuf,
) {
    let mut consumed = 0;
    while !s.closing && !s.dead {
        let rest = &s.rbuf[consumed..];
        if rest.len() < 4 {
            break;
        }
        // fc-check: allow(handler-unwrap) -- rest.len() >= 4 is checked directly above
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            // Corrupt prefix: the threaded read_frame fails the
            // session without a reply; mirror that.
            s.dead = true;
            break;
        }
        if rest.len() < 4 + len {
            break;
        }
        let body = bytes::Bytes::from(rest[4..4 + len].to_vec());
        consumed += 4 + len;
        serve_msg(s, body, served, config, frame);
    }
    s.rbuf.drain(..consumed);
}

/// Decodes and serves one client message — the reactor twin of one
/// iteration of the threaded session loop, with identical semantics.
fn serve_msg(
    s: &mut Session,
    body: bytes::Bytes,
    served: &ServedDatasets,
    config: &ServerConfig,
    frame: &mut FrameBuf,
) {
    let msg = match ClientMsg::decode(body) {
        Ok(m) => m,
        Err(e) => {
            let reply = ServerMsg::Error {
                code: ErrorCode::Malformed,
                reason: format!("malformed message: {e}"),
            };
            enqueue(s, &reply, config, frame);
            s.closing = true;
            return;
        }
    };
    // The push planner settles served requests before the middleware
    // runs: "used" means pushed strictly before requested.
    if let ClientMsg::RequestTile { tile, .. } = &msg {
        s.requested.push(*tile);
        // Live serving drives the session's burst timeline with the
        // real inter-request gap (the analyst's think time), exactly
        // as the threaded session loop does — the replay harnesses
        // charge simulated think time through the same `note_idle`.
        let now = Instant::now();
        if let (Some(mw), Some(prev)) = (s.middleware.as_mut(), s.last_request) {
            mw.note_idle(now.duration_since(prev));
        }
        s.last_request = Some(now);
    }
    let hello_dataset = match &msg {
        ClientMsg::Hello { dataset, .. } => Some(dataset.clone()),
        _ => None,
    };
    let flow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_msg(msg, &mut s.middleware, served, config)
    }))
    .unwrap_or_else(|_panic| {
        s.middleware = None;
        Flow::ReplyClose(ServerMsg::Error {
            code: ErrorCode::Internal,
            reason: "internal error; closing session".into(),
        })
    });
    match flow {
        Flow::Reply(reply) => {
            // A successful Hello re-bound the session; refresh the
            // push payload source to the (new) namespace cache.
            if let (Some(name), ServerMsg::Welcome { .. }) = (&hello_dataset, &reply) {
                s.push_cache = served
                    .resolve(name)
                    .and_then(|d| d.shared.as_ref())
                    .map(|sh| sh.namespace.cache().clone() as Arc<dyn MultiUserCache>);
            }
            enqueue(s, &reply, config, frame);
        }
        Flow::ReplyClose(reply) => {
            enqueue(s, &reply, config, frame);
            s.closing = true;
        }
        Flow::Close => s.closing = true,
    }
}

/// Queues one encoded reply, enforcing the write-queue bound: a
/// session past it is shed with `Overloaded` (the shed notice itself
/// rides outside the bound — it is the last frame the session sees).
fn enqueue(s: &mut Session, reply: &ServerMsg, config: &ServerConfig, frame: &mut FrameBuf) {
    let bound = config.limits.max_write_queue;
    if bound > 0 && !s.closing && s.wq.len() >= bound {
        let shed = ServerMsg::Error {
            code: ErrorCode::Overloaded,
            reason: format!("write backlog exceeded {bound} frames; shedding session"),
        };
        s.wq.push_back(shed.encode_into(frame).to_vec());
        s.closing = true;
        return;
    }
    s.wq.push_back(reply.encode_into(frame).to_vec());
}

/// Writes as much of the queue as the socket accepts right now.
fn flush_writes(s: &mut Session, now: Instant) {
    while let Some(front) = s.wq.front() {
        match s.stream.write(&front[s.wpos..]) {
            Ok(0) => {
                s.dead = true;
                return;
            }
            Ok(n) => {
                s.write_blocked = None;
                s.wpos += n;
                if s.wpos == front.len() {
                    s.wq.pop_front();
                    s.wpos = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                s.write_blocked.get_or_insert(now);
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                s.dead = true;
                return;
            }
        }
    }
    s.write_blocked = None;
}

/// Applies the idle and write-stall timeouts on the reactor clock.
fn enforce_timeouts(s: &mut Session, config: &ServerConfig, now: Instant) {
    if let Some(rt) = config.limits.read_timeout {
        if !s.closing && now.duration_since(s.last_read) > rt {
            // Idle client: silent teardown, as on the threaded path.
            s.dead = true;
        }
    }
    if let Some(wt) = config.limits.write_timeout {
        if let Some(since) = s.write_blocked {
            if now.duration_since(since) > wt {
                s.dead = true;
            }
        }
    }
}

/// Feeds the session's latest served request into the push planner.
fn refill_push(s: &mut Session, planner: &mut PushPlanner) {
    let Some(mw) = s.middleware.as_mut() else {
        s.requested.clear();
        return;
    };
    for tile in s.requested.drain(..) {
        planner.note_request(s.sid, tile);
    }
    let candidates = mw.take_push_candidates();
    if !candidates.is_empty() {
        planner.refill(s.sid, &candidates, mw.traffic_phase());
    }
}

/// One push tick: plan against the currently writable sessions and
/// enqueue the picks as Push frames.
fn push_tick(
    sessions: &mut HashMap<u64, Session>,
    ep: &Epoll,
    planner: &mut PushPlanner,
    budget: usize,
    frame: &mut FrameBuf,
    now: Instant,
) {
    if budget == 0 || planner.pending_sessions() == 0 {
        return;
    }
    // Writable for push = live, bound to a namespace cache, and with
    // an *empty* write queue: a push must never delay a reply, so any
    // pending frame disqualifies the session this tick.
    let writable: Vec<u64> = sessions
        .values()
        .filter(|s| !s.dead && !s.closing && s.wq.is_empty() && s.push_cache.is_some())
        .map(|s| s.sid)
        .collect();
    if writable.is_empty() {
        return;
    }
    let caches: HashMap<u64, Arc<dyn MultiUserCache>> = sessions
        .values()
        .filter(|s| s.push_cache.is_some())
        // fc-check: allow(handler-unwrap) -- the filter above keeps only sessions with push_cache set
        .map(|s| (s.sid, s.push_cache.clone().expect("filtered")))
        .collect();
    let picks = planner.plan(budget, &writable, |sid, tile| {
        caches.get(&sid).is_some_and(|c| c.contains(tile))
    });
    for (sid, tile) in picks {
        let Some(s) = sessions.get_mut(&sid) else {
            continue;
        };
        let Some(t) = s.push_cache.as_ref().and_then(|c| c.peek(tile)) else {
            continue; // evicted between plan and drain
        };
        let reply = ServerMsg::Push {
            payload: tile_payload(&t),
        };
        s.wq.push_back(reply.encode_into(frame).to_vec());
        flush_writes(s, now);
        sync_interest(ep, s);
    }
}
