//! The threaded middleware server: one TCP connection = one user session
//! with its own prediction engine over the shared pyramid. In
//! multi-user mode ([`ServerConfig::multi_user`]) sessions additionally
//! share a lock-striped tile cache (prefetches are communal; the
//! per-session budget re-partitions as sessions come and go) and a
//! cross-session predict scheduler that coalesces concurrent sessions'
//! SB rankings into one batched sweep per tick.

use crate::protocol::{read_frame, write_frame, ClientMsg, FrameBuf, ServerMsg, TilePayload};
use fc_core::{
    BatchConfig, LatencyProfile, Middleware, MultiUserCache, PredictScheduler, PredictionEngine,
    SharedCacheStats, SharedSessionHandle, SharedTileCache,
};
use fc_tiles::{Pyramid, Tile};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Builds a fresh prediction engine per session (sessions never share
/// history/ROI state; what *is* shared in multi-user mode — the tile
/// cache and the predict batch — carries no per-session model state).
pub type EngineFactory = Arc<dyn Fn() -> PredictionEngine + Send + Sync>;

/// Multi-user serving parameters (see `fc_core::multiuser` for the
/// sharding invariants and `fc_core::batch` for the rendezvous).
#[derive(Debug, Clone)]
pub struct MultiUserServing {
    /// Total shared-cache capacity in tiles, partitioned exactly
    /// across shards and fairly across sessions.
    pub cache_capacity: usize,
    /// Shard count (power of two); 0 picks the default striping.
    pub shards: usize,
    /// Whether concurrent sessions' predicts coalesce into batched SB
    /// sweeps.
    pub batch_predicts: bool,
    /// Extra fan-in time a batch leader waits for the other sessions;
    /// zero (default) is pure group commit — see `fc_core::batch`.
    pub batch_window: Duration,
}

impl Default for MultiUserServing {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            shards: 0,
            batch_predicts: true,
            batch_window: Duration::ZERO,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Latency profile reported to clients.
    pub profile: LatencyProfile,
    /// Recently-requested tiles kept per session cache.
    pub history_cache: usize,
    /// Default prefetch budget when the client's Hello doesn't set one.
    pub default_k: usize,
    /// Multi-user serving core; `None` keeps the fully-isolated
    /// per-session caches of the paper's single-analyst architecture.
    pub multi_user: Option<MultiUserServing>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            profile: LatencyProfile::paper(),
            history_cache: 4,
            default_k: 5,
            multi_user: None,
        }
    }
}

/// The shared multi-user serving state: one per server.
struct SharedServing {
    cache: Arc<dyn MultiUserCache>,
    scheduler: Option<Arc<PredictScheduler>>,
}

/// A running ForeCache server.
pub struct Server {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    active_sessions: Arc<AtomicUsize>,
    shared: Option<Arc<SharedServing>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        pyramid: Arc<Pyramid>,
        engines: EngineFactory,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active_sessions = Arc::new(AtomicUsize::new(0));
        let shared = config.multi_user.as_ref().map(|mu| {
            let cache: Arc<dyn MultiUserCache> = Arc::new(if mu.shards == 0 {
                SharedTileCache::new(mu.cache_capacity)
            } else {
                SharedTileCache::with_shards(mu.cache_capacity, mu.shards)
            });
            // The scheduler's SB model must match the sessions': probe
            // the factory once and clone its model.
            let scheduler = if mu.batch_predicts {
                let probe = engines();
                Some(Arc::new(PredictScheduler::new(
                    probe.sb_model().clone(),
                    pyramid.clone(),
                    BatchConfig {
                        window: mu.batch_window,
                        max_batch: 0,
                    },
                )))
            } else {
                None
            };
            Arc::new(SharedServing { cache, scheduler })
        });
        let accept_shutdown = shutdown.clone();
        let accept_sessions = active_sessions.clone();
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                pyramid,
                engines,
                config,
                accept_shutdown,
                accept_sessions,
                accept_shared,
            );
        });
        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            active_sessions,
            shared,
        })
    }

    /// Shared-cache statistics (hits/misses/cross-session hits /
    /// evictions) when running in multi-user mode.
    pub fn shared_cache_stats(&self) -> Option<SharedCacheStats> {
        self.shared.as_ref().map(|s| s.cache.stats())
    }

    /// Cross-session predict-scheduler statistics when batching is on.
    pub fn scheduler_stats(&self) -> Option<fc_core::SchedulerStats> {
        self.shared
            .as_ref()
            .and_then(|s| s.scheduler.as_ref())
            .map(|s| s.stats())
    }

    /// The bound address (for clients).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Number of sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the accept thread. Existing session
    /// threads finish on their own when clients disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    pyramid: Arc<Pyramid>,
    engines: EngineFactory,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
    shared: Option<Arc<SharedServing>>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let pyramid = pyramid.clone();
                let engines = engines.clone();
                let config = config.clone();
                let sessions = sessions.clone();
                let shared = shared.clone();
                sessions.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || {
                    let _ = serve_session(stream, pyramid, engines, config, shared);
                    sessions.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_session(
    mut stream: TcpStream,
    pyramid: Arc<Pyramid>,
    engines: EngineFactory,
    config: ServerConfig,
    shared: Option<Arc<SharedServing>>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Dropping the middleware (on return, including error paths)
    // closes its shared session: holds release and the prefetch budget
    // repartitions across the surviving sessions.
    let mut middleware: Option<Middleware> = None;
    // One reusable frame buffer per session: steady-state replies encode
    // with zero allocations (see protocol.rs, "FrameBuf reuse contract").
    let mut frame = FrameBuf::new();
    loop {
        let body = match read_frame(&mut stream) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let msg = ClientMsg::decode(body)?;
        match msg {
            ClientMsg::Hello { prefetch_k } => {
                let k = if prefetch_k == 0 {
                    config.default_k
                } else {
                    prefetch_k as usize
                };
                middleware = Some(match &shared {
                    Some(s) => Middleware::new_shared(
                        engines(),
                        pyramid.clone(),
                        config.profile,
                        config.history_cache,
                        k,
                        SharedSessionHandle::open(s.cache.clone(), s.scheduler.clone()),
                    ),
                    None => Middleware::new(
                        engines(),
                        pyramid.clone(),
                        config.profile,
                        config.history_cache,
                        k,
                    ),
                });
                let g = pyramid.geometry();
                let reply = ServerMsg::Welcome {
                    levels: g.levels,
                    deepest_tiles: g.tiles_at(g.levels - 1),
                };
                write_frame(&mut stream, reply.encode_into(&mut frame))?;
            }
            ClientMsg::RequestTile { tile, mv } => {
                let reply = match middleware.as_mut() {
                    None => ServerMsg::Error {
                        reason: "session not opened: send Hello first".into(),
                    },
                    Some(mw) => match mw.request(tile, mv) {
                        Some(resp) => ServerMsg::Tile {
                            payload: tile_payload(&resp.tile),
                            latency_ns: u64::try_from(resp.latency.as_nanos()).unwrap_or(u64::MAX),
                            cache_hit: resp.cache_hit,
                            phase: u8::try_from(resp.phase.index()).expect("phase id"),
                        },
                        None => ServerMsg::Error {
                            reason: format!("no such tile: {tile}"),
                        },
                    },
                };
                write_frame(&mut stream, reply.encode_into(&mut frame))?;
            }
            ClientMsg::GetStats => {
                let reply = match middleware.as_ref() {
                    None => ServerMsg::Error {
                        reason: "session not opened".into(),
                    },
                    Some(mw) => {
                        let s = mw.stats();
                        ServerMsg::Stats {
                            requests: s.requests as u64,
                            hits: s.hits as u64,
                            avg_latency_ns: u64::try_from(s.avg_latency().as_nanos())
                                .unwrap_or(u64::MAX),
                        }
                    }
                };
                write_frame(&mut stream, reply.encode_into(&mut frame))?;
            }
            ClientMsg::Bye => return Ok(()),
        }
    }
}

/// Converts a tile into its wire payload.
pub fn tile_payload(tile: &Tile) -> TilePayload {
    let (h, w) = tile.shape();
    let schema = tile.array.schema();
    let attrs: Vec<String> = schema.attrs.iter().map(|a| a.name.clone()).collect();
    let data: Vec<Vec<f64>> = attrs
        .iter()
        .map(|a| tile.array.attr_values(a).expect("attr exists").to_vec())
        .collect();
    let present: Vec<u8> = tile.array.validity().iter().map(u8::from).collect();
    TilePayload {
        tile: tile.id,
        h: u32::try_from(h).expect("tile height"),
        w: u32::try_from(w).expect("tile width"),
        attrs,
        data,
        present,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};
    use fc_tiles::TileId;

    #[test]
    fn tile_payload_reflects_tile() {
        let schema = Schema::grid2d("T", 2, 3, &["a", "b"]).unwrap();
        let mut arr = DenseArray::empty(schema);
        arr.set("a", &[0, 0], 1.5).unwrap();
        arr.set("b", &[0, 0], 2.5).unwrap();
        arr.set("a", &[1, 2], 3.5).unwrap();
        arr.set("b", &[1, 2], 4.5).unwrap();
        let tile = Tile::new(TileId::new(1, 0, 0), arr);
        let p = tile_payload(&tile);
        assert_eq!((p.h, p.w), (2, 3));
        assert_eq!(p.attrs, vec!["a", "b"]);
        assert_eq!(p.present, vec![1, 0, 0, 0, 0, 1]);
        assert_eq!(p.data[0][0], 1.5);
        assert_eq!(p.data[1][5], 4.5);
    }
}
