//! The threaded middleware server: one TCP connection = one user session
//! with its own prediction engine over a served pyramid. One process
//! serves one or many datasets ([`Server::bind_datasets`]): the Hello
//! handshake names the dataset, and in multi-user mode
//! ([`ServerConfig::multi_user`]) each dataset gets its own cache
//! **namespace** from a [`fc_core::DatasetRegistry`] partitioning one
//! global tile budget — sessions of a dataset share that namespace's
//! lock-striped tile cache (prefetches are communal; the per-session
//! budget re-partitions as sessions come and go), a cross-session
//! predict scheduler that coalesces concurrent sessions' SB rankings
//! into one batched sweep per tick, and (opt-in) the namespace's
//! cross-session hotspot model.

use crate::protocol::{
    read_frame, write_frame, ClientMsg, ErrorCode, FrameBuf, ServerMsg, TilePayload,
};
use fc_core::{
    BatchConfig, DatasetNamespace, DatasetRegistry, FaultPlan, HotspotConfig, LatencyProfile,
    Middleware, MultiUserCache, PredictScheduler, PredictionEngine, RegistryConfig, RetryPolicy,
    SharedCacheStats, SharedSessionHandle,
};
use fc_tiles::{Pyramid, Tile};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds a fresh prediction engine per session (sessions never share
/// history/ROI state; what *is* shared in multi-user mode — the tile
/// cache and the predict batch — carries no per-session model state).
pub type EngineFactory = Arc<dyn Fn() -> PredictionEngine + Send + Sync>;

/// One dataset a server process serves: its pyramid plus the factory
/// building each session's prediction engine over it.
#[derive(Clone)]
pub struct DatasetSpec {
    /// Name clients select in the Hello handshake (must be unique per
    /// server; the first spec is the default for an empty name).
    pub name: String,
    /// The served pyramid.
    pub pyramid: Arc<Pyramid>,
    /// Per-session engine factory for this pyramid.
    pub engines: EngineFactory,
}

impl std::fmt::Debug for DatasetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetSpec")
            .field("name", &self.name)
            .field("geometry", &self.pyramid.geometry())
            .finish()
    }
}

/// Multi-user serving parameters (see `fc_core::multiuser` for the
/// sharding invariants and `fc_core::batch` for the rendezvous).
#[derive(Debug, Clone)]
pub struct MultiUserServing {
    /// **Global** tile budget: partitioned exactly across dataset
    /// namespaces by the registry, then across shards within each
    /// namespace, and fairly across a namespace's sessions.
    pub cache_capacity: usize,
    /// Shard count per namespace (power of two); 0 picks the default
    /// striping.
    pub shards: usize,
    /// Whether concurrent sessions' predicts coalesce into batched SB
    /// sweeps (one scheduler per dataset).
    pub batch_predicts: bool,
    /// Extra fan-in time a batch leader waits for the other sessions;
    /// zero (default) is pure group commit — see `fc_core::batch`.
    pub batch_window: Duration,
    /// Opt-in cross-session hotspot model: when set, every session's
    /// handle carries its namespace's `SharedHotspotModel` at this
    /// cadence. The prior only takes effect for engines whose
    /// `EngineConfig::hotspot` also opts in — the factory controls
    /// blending, the server only feeds the model.
    pub hotspots: Option<HotspotConfig>,
}

impl Default for MultiUserServing {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            shards: 0,
            batch_predicts: true,
            batch_window: Duration::ZERO,
            hotspots: None,
        }
    }
}

/// Session admission and socket-liveness limits. The all-off
/// [`Default`] keeps the server's historical accept-everything,
/// block-forever behaviour; production configs should set all four.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionLimits {
    /// Maximum concurrently active sessions; connections beyond it are
    /// shed at accept time with [`ErrorCode::Overloaded`] instead of
    /// accepted-then-wedged (0 = unlimited).
    pub max_sessions: usize,
    /// Overload watermark on shared-cache pressure (multi-user mode):
    /// a Hello is shed with [`ErrorCode::Overloaded`] when admitting
    /// it would drop its namespace's fair per-session tile budget
    /// below this floor (0 = no watermark).
    pub min_session_budget: usize,
    /// Per-session socket read timeout: a client idle past it (a
    /// slow-client or dead peer) gets a clean server-side teardown
    /// instead of pinning a session thread forever (`None` = block).
    /// In reactor mode this is the idle-session timeout, enforced on
    /// the event loop's clock rather than the socket.
    pub read_timeout: Option<Duration>,
    /// Per-session socket write timeout (`None` = block). In reactor
    /// mode this is the write-stall timeout: a session whose socket
    /// stays unwritable this long with output pending is torn down.
    pub write_timeout: Option<Duration>,
    /// Reactor mode only: bound on a session's pending write queue,
    /// in frames. A reply that would queue past it sheds the session
    /// with [`ErrorCode::Overloaded`] — a slow reader's backlog is
    /// bounded memory, never unbounded (0 = unbounded, the historical
    /// behaviour). The threaded path needs no bound: its blocking
    /// writes hold at most one frame.
    pub max_write_queue: usize,
}

/// Deterministic backend fault injection applied to every session's
/// middleware (chaos testing; see `fc_core::fault`). The plan is
/// shared, but fault decisions key on (tile, per-session request
/// index), so each session draws its own reproducible fault stream.
#[derive(Debug, Clone)]
pub struct FaultSetup {
    /// The seeded fault plan.
    pub plan: Arc<FaultPlan>,
    /// Retry/backoff/deadline budget for faulted fetches.
    pub retry: RetryPolicy,
}

/// Server-push serving parameters (reactor mode, multi-user only —
/// pushes ship tiles already resident in the shared cache).
#[derive(Debug, Clone, Copy)]
pub struct PushServing {
    /// The planner's policy and queue bounds.
    pub planner: fc_core::PushConfig,
    /// Pushes the planner may hand to the wire per reactor tick — the
    /// global drain budget the utility (or round-robin) schedule
    /// allocates across writable sessions.
    pub tick_budget: usize,
}

impl Default for PushServing {
    fn default() -> Self {
        Self {
            planner: fc_core::PushConfig::default(),
            tick_budget: 4,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Latency profile reported to clients.
    pub profile: LatencyProfile,
    /// Recently-requested tiles kept per session cache.
    pub history_cache: usize,
    /// Default prefetch budget when the client's Hello doesn't set one.
    pub default_k: usize,
    /// Multi-user serving core; `None` keeps the fully-isolated
    /// per-session caches of the paper's single-analyst architecture.
    pub multi_user: Option<MultiUserServing>,
    /// Admission control and socket timeouts (default: all off).
    pub limits: SessionLimits,
    /// Backend fault injection (default: none — the fault layer is
    /// zero-cost when absent).
    pub faults: Option<FaultSetup>,
    /// Burst-aware prefetch scheduling applied to every session's
    /// middleware (default: `None` — the uniform per-request budget,
    /// bit-identical to the unscheduled server).
    pub burst: Option<fc_core::BurstConfig>,
    /// Serve sessions on the single-threaded poll reactor instead of
    /// one thread per connection (default: `false`, the threaded
    /// path). Same codec, same `handle_msg`, same admission control —
    /// replies are bit-identical; only the concurrency substrate
    /// changes.
    pub reactor: bool,
    /// Utility-scheduled server push (reactor + multi-user mode only;
    /// ignored elsewhere). Default: `None` — no unsolicited frames,
    /// bit-identical to the pre-push wire stream.
    pub push: Option<PushServing>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            profile: LatencyProfile::paper(),
            history_cache: 4,
            default_k: 5,
            multi_user: None,
            limits: SessionLimits::default(),
            faults: None,
            burst: None,
            reactor: false,
            push: None,
        }
    }
}

/// One dataset's serving state: spec + (in multi-user mode) its cache
/// namespace and predict scheduler.
pub(crate) struct ServedDataset {
    pub(crate) spec: DatasetSpec,
    pub(crate) shared: Option<DatasetShared>,
}

/// A dataset's slice of the multi-user serving core.
pub(crate) struct DatasetShared {
    pub(crate) namespace: Arc<DatasetNamespace>,
    pub(crate) scheduler: Option<Arc<PredictScheduler>>,
    /// Whether sessions' handles carry the namespace's hotspot model.
    pub(crate) hotspots_on: bool,
}

/// Everything the accept loop shares with session threads.
pub(crate) struct ServedDatasets {
    pub(crate) datasets: Vec<ServedDataset>,
    /// The registry partitioning the global budget (multi-user mode).
    /// Held so the namespaces stay attached for the server's lifetime.
    #[allow(dead_code)]
    registry: Option<Arc<DatasetRegistry>>,
}

impl ServedDatasets {
    /// Resolves a Hello's dataset name: empty picks the default
    /// (first) dataset.
    pub(crate) fn resolve(&self, name: &str) -> Option<&ServedDataset> {
        if name.is_empty() {
            self.datasets.first()
        } else {
            self.datasets.iter().find(|d| d.spec.name == name)
        }
    }
}

/// Cumulative push accounting mirrored out of the reactor's planner
/// (the reactor thread owns the planner; these atomics are the
/// observable copy).
#[derive(Debug, Default)]
pub(crate) struct PushCounters {
    pub(crate) pushed: AtomicU64,
    pub(crate) used: AtomicU64,
}

/// A running ForeCache server.
pub struct Server {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    active_sessions: Arc<AtomicUsize>,
    served: Arc<ServedDatasets>,
    push_counters: Arc<PushCounters>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) serving one
    /// dataset, and starts the accept loop on a background thread.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        pyramid: Arc<Pyramid>,
        engines: EngineFactory,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::bind_datasets(
            addr,
            vec![DatasetSpec {
                name: String::new(),
                pyramid,
                engines,
            }],
            config,
        )
    }

    /// Binds to `addr` serving several datasets from one process: the
    /// Hello handshake picks the dataset by name (empty = the first
    /// spec). In multi-user mode a [`DatasetRegistry`] partitions
    /// `cache_capacity` exactly across one cache namespace per
    /// dataset.
    ///
    /// # Errors
    /// Propagates socket errors; `InvalidInput` when `datasets` is
    /// empty or contains duplicate names.
    ///
    /// # Panics
    /// Panics (from the registry) when the per-namespace budget slice
    /// cannot cover the configured shard count.
    pub fn bind_datasets<A: ToSocketAddrs>(
        addr: A,
        datasets: Vec<DatasetSpec>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        if datasets.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server needs at least one dataset",
            ));
        }
        for (i, d) in datasets.iter().enumerate() {
            if datasets[..i].iter().any(|e| e.name == d.name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate dataset name: {:?}", d.name),
                ));
            }
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active_sessions = Arc::new(AtomicUsize::new(0));
        let registry = config.multi_user.as_ref().map(|mu| {
            Arc::new(DatasetRegistry::new(RegistryConfig {
                budget: mu.cache_capacity,
                shards: mu.shards,
                hotspots: mu.hotspots.unwrap_or_default(),
            }))
        });
        let datasets: Vec<ServedDataset> = datasets
            .into_iter()
            .map(|spec| {
                let shared = config.multi_user.as_ref().map(|mu| {
                    // fc-check: allow(handler-unwrap) -- registry is built above whenever multi_user config is set
                    let registry = registry.as_ref().expect("registry exists in mu mode");
                    let namespace = registry.attach(&spec.name);
                    // The scheduler's SB model must match the
                    // sessions': probe the factory once and clone its
                    // model.
                    let scheduler = mu.batch_predicts.then(|| {
                        let probe = (spec.engines)();
                        Arc::new(PredictScheduler::new(
                            probe.sb_model().clone(),
                            spec.pyramid.clone(),
                            BatchConfig {
                                window: mu.batch_window,
                                ..BatchConfig::default()
                            },
                        ))
                    });
                    DatasetShared {
                        namespace,
                        scheduler,
                        hotspots_on: mu.hotspots.is_some(),
                    }
                });
                ServedDataset { spec, shared }
            })
            .collect();
        let served = Arc::new(ServedDatasets { datasets, registry });
        let push_counters = Arc::new(PushCounters::default());
        let accept_shutdown = shutdown.clone();
        let accept_sessions = active_sessions.clone();
        let accept_served = served.clone();
        let accept_push = push_counters.clone();
        let accept_config = config;
        let accept_thread = std::thread::spawn(move || {
            if accept_config.reactor {
                crate::reactor::reactor_loop(
                    listener,
                    accept_served,
                    accept_config,
                    accept_shutdown,
                    accept_sessions,
                    accept_push,
                );
            } else {
                accept_loop(
                    listener,
                    accept_served,
                    accept_config,
                    accept_shutdown,
                    accept_sessions,
                );
            }
        });
        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            active_sessions,
            served,
            push_counters,
        })
    }

    /// Shared-cache statistics of the default dataset's namespace when
    /// running in multi-user mode.
    pub fn shared_cache_stats(&self) -> Option<SharedCacheStats> {
        self.served
            .datasets
            .first()
            .and_then(|d| d.shared.as_ref())
            .map(|s| s.namespace.cache().stats())
    }

    /// Per-namespace shared-cache statistics, one entry per served
    /// dataset (multi-user mode; empty otherwise).
    pub fn namespace_stats(&self) -> Vec<(String, SharedCacheStats)> {
        self.served
            .datasets
            .iter()
            .filter_map(|d| {
                d.shared
                    .as_ref()
                    .map(|s| (d.spec.name.clone(), s.namespace.cache().stats()))
            })
            .collect()
    }

    /// Per-namespace cache capacities after the registry's partition
    /// (multi-user mode; empty otherwise) — Σ equals the configured
    /// global `cache_capacity`.
    pub fn namespace_capacities(&self) -> Vec<(String, usize)> {
        self.served
            .datasets
            .iter()
            .filter_map(|d| {
                d.shared
                    .as_ref()
                    .map(|s| (d.spec.name.clone(), s.namespace.cache().capacity()))
            })
            .collect()
    }

    /// Cross-session predict-scheduler statistics of the default
    /// dataset when batching is on.
    pub fn scheduler_stats(&self) -> Option<fc_core::SchedulerStats> {
        self.served
            .datasets
            .first()
            .and_then(|d| d.shared.as_ref())
            .and_then(|s| s.scheduler.as_ref())
            .map(|s| s.stats())
    }

    /// Cumulative server-push accounting `(pushed, used)` across all
    /// reactor sessions: frames handed to the wire unsolicited, and
    /// how many of them the session then requested. Both zero outside
    /// reactor mode or with push off.
    pub fn push_stats(&self) -> (u64, u64) {
        (
            self.push_counters.pushed.load(Ordering::Relaxed),
            self.push_counters.used.load(Ordering::Relaxed),
        )
    }

    /// The bound address (for clients).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Number of sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the accept thread. Existing session
    /// threads finish on their own when clients disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    served: Arc<ServedDatasets>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // Admission control: shed with a structured error at
                // accept time rather than accept-then-wedge. The reply
                // is best-effort — a peer that already hung up just
                // loses the courtesy note.
                let max = config.limits.max_sessions;
                if max > 0 && sessions.load(Ordering::Relaxed) >= max {
                    let reply = ServerMsg::Error {
                        code: ErrorCode::Overloaded,
                        reason: format!("server at capacity ({max} sessions)"),
                    };
                    let _ = stream.set_nodelay(true);
                    let _ = write_frame(&mut stream, &reply.encode());
                    continue;
                }
                let served = served.clone();
                let config = config.clone();
                let sessions = sessions.clone();
                sessions.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || {
                    // Last-resort containment: `serve_session` already
                    // converts per-message panics into error replies,
                    // but whatever escapes (I/O layer, teardown) must
                    // still decrement the session count, or admission
                    // control would leak capacity on every incident.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_session(stream, served, config)
                    }));
                    sessions.fetch_sub(1, Ordering::Relaxed);
                    drop(outcome); // contained; the session is gone either way
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// What the session loop does after handling one message. Shared by
/// the threaded loop and the reactor — the two substrates interpret
/// the same verdicts, which is what keeps their wire streams
/// bit-identical.
pub(crate) enum Flow {
    /// Send the reply, keep serving.
    Reply(ServerMsg),
    /// Send the reply (best-effort), then tear the session down.
    ReplyClose(ServerMsg),
    /// Tear the session down silently (client said Bye).
    Close,
}

fn serve_session(
    mut stream: TcpStream,
    served: Arc<ServedDatasets>,
    config: ServerConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.limits.read_timeout)?;
    stream.set_write_timeout(config.limits.write_timeout)?;
    // Dropping the middleware (on return, including error and panic
    // paths, or when a new Hello rebinds the session to another
    // dataset) closes its shared session: holds release and the
    // prefetch budget repartitions across the namespace's surviving
    // sessions.
    let mut middleware: Option<Middleware> = None;
    // One reusable frame buffer per session: steady-state replies encode
    // with zero allocations (see protocol.rs, "FrameBuf reuse contract").
    let mut frame = FrameBuf::new();
    // Wall-clock arrival of the previous tile request: live serving
    // drives the session's burst timeline with real inter-request
    // gaps (the analyst's think time), where the replay harnesses
    // charge simulated think time via the same `note_idle`.
    let mut last_request: Option<Instant> = None;
    loop {
        let body = match read_frame(&mut stream) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            // A read timeout is a slow or dead client, not a server
            // fault: tear down cleanly so the thread and any shared
            // holds are reclaimed.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        let msg = match ClientMsg::decode(body) {
            Ok(m) => m,
            // Tell the client why before hanging up — a silent close
            // is indistinguishable from a server crash.
            Err(e) => {
                let reply = ServerMsg::Error {
                    code: ErrorCode::Malformed,
                    reason: format!("malformed message: {e}"),
                };
                let _ = write_frame(&mut stream, reply.encode_into(&mut frame));
                return Err(e);
            }
        };
        if matches!(msg, ClientMsg::RequestTile { .. }) {
            let now = Instant::now();
            if let (Some(mw), Some(prev)) = (middleware.as_mut(), last_request) {
                mw.note_idle(now.duration_since(prev));
            }
            last_request = Some(now);
        }
        // Contain per-message panics (middleware bugs, poisoned tile
        // data): the client gets a structured Internal error and the
        // session tears down cleanly — dropping `middleware` releases
        // its shared holds — instead of the thread evaporating with
        // the socket left dangling.
        let flow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_msg(msg, &mut middleware, &served, &config)
        }))
        .unwrap_or_else(|_panic| {
            middleware = None;
            Flow::ReplyClose(ServerMsg::Error {
                code: ErrorCode::Internal,
                reason: "internal error; closing session".into(),
            })
        });
        match flow {
            Flow::Reply(reply) => write_frame(&mut stream, reply.encode_into(&mut frame))?,
            Flow::ReplyClose(reply) => {
                let _ = write_frame(&mut stream, reply.encode_into(&mut frame));
                return Ok(());
            }
            Flow::Close => return Ok(()),
        }
    }
}

/// Handles one decoded client message. Runs under the session loop's
/// `catch_unwind`; must not write to the socket (the loop owns it).
pub(crate) fn handle_msg(
    msg: ClientMsg,
    middleware: &mut Option<Middleware>,
    served: &ServedDatasets,
    config: &ServerConfig,
) -> Flow {
    match msg {
        ClientMsg::Hello {
            prefetch_k,
            dataset,
        } => {
            let k = if prefetch_k == 0 {
                config.default_k
            } else {
                prefetch_k as usize
            };
            // Bound the name before echoing it anywhere: wire strings
            // are u16-length, so an unbounded (up to 64 KiB) name
            // folded into an Error reason would otherwise dominate the
            // reply (the codec truncates oversized strings).
            let resolved = if dataset.len() > crate::protocol::MAX_DATASET_NAME {
                Err((
                    ErrorCode::Malformed,
                    format!(
                        "dataset name too long: {} bytes (max {})",
                        dataset.len(),
                        crate::protocol::MAX_DATASET_NAME
                    ),
                ))
            } else {
                served.resolve(&dataset).ok_or((
                    ErrorCode::UnknownDataset,
                    format!("unknown dataset: {dataset:?}"),
                ))
            };
            let reply = match resolved {
                Err((code, reason)) => ServerMsg::Error { code, reason },
                Ok(d) => {
                    // Overload watermark: admitting another session
                    // into this namespace must not starve everyone's
                    // fair tile budget below the configured floor.
                    let floor = config.limits.min_session_budget;
                    if let (true, Some(s)) = (floor > 0, &d.shared) {
                        let cache = s.namespace.cache();
                        let budget_after = cache.capacity() / (cache.session_count() + 1);
                        if budget_after < floor {
                            return Flow::ReplyClose(ServerMsg::Error {
                                code: ErrorCode::Overloaded,
                                reason: format!(
                                    "namespace under pressure: per-session budget \
                                     {budget_after} would fall below {floor}"
                                ),
                            });
                        }
                    }
                    let pyramid = d.spec.pyramid.clone();
                    let mut mw = match &d.shared {
                        Some(s) => {
                            let mut handle = SharedSessionHandle::open(
                                s.namespace.cache().clone() as Arc<dyn MultiUserCache>,
                                s.scheduler.clone(),
                            );
                            if s.hotspots_on {
                                handle = handle.with_hotspots(s.namespace.hotspots().clone());
                            }
                            Middleware::new_shared(
                                (d.spec.engines)(),
                                pyramid.clone(),
                                config.profile,
                                config.history_cache,
                                k,
                                handle,
                            )
                        }
                        None => Middleware::new(
                            (d.spec.engines)(),
                            pyramid.clone(),
                            config.profile,
                            config.history_cache,
                            k,
                        ),
                    };
                    if let Some(fs) = &config.faults {
                        mw.set_faults(fs.plan.clone(), fs.retry);
                    }
                    mw.set_burst(config.burst);
                    *middleware = Some(mw);
                    let g = pyramid.geometry();
                    ServerMsg::Welcome {
                        levels: g.levels,
                        deepest_tiles: g.tiles_at(g.levels - 1),
                    }
                }
            };
            Flow::Reply(reply)
        }
        ClientMsg::RequestTile { tile, mv } => {
            let reply = match middleware.as_mut() {
                None => ServerMsg::Error {
                    code: ErrorCode::General,
                    reason: "session not opened: send Hello first".into(),
                },
                Some(mw) => match mw.try_request(tile, mv) {
                    Ok(Some(resp)) => ServerMsg::Tile {
                        payload: tile_payload(&resp.tile),
                        latency_ns: u64::try_from(resp.latency.as_nanos()).unwrap_or(u64::MAX),
                        cache_hit: resp.cache_hit,
                        // fc-check: allow(handler-unwrap) -- phase index is 0..3 by construction, always fits u8
                        phase: u8::try_from(resp.phase.index()).expect("phase id"),
                        degraded: resp.degraded,
                    },
                    Ok(None) => ServerMsg::Error {
                        code: ErrorCode::NoSuchTile,
                        reason: format!("no such tile: {tile}"),
                    },
                    // The fetch exhausted its retry/deadline budget
                    // with nothing resident to degrade to. The session
                    // stays up: the fault may be transient and the
                    // client decides whether to retry or re-navigate.
                    Err(e) => ServerMsg::Error {
                        code: ErrorCode::Unavailable,
                        reason: format!("tile {tile} unavailable: {e}"),
                    },
                },
            };
            Flow::Reply(reply)
        }
        ClientMsg::GetStats => {
            let reply = match middleware.as_ref() {
                None => ServerMsg::Error {
                    code: ErrorCode::General,
                    reason: "session not opened".into(),
                },
                Some(mw) => {
                    let s = mw.stats();
                    ServerMsg::Stats {
                        requests: s.requests as u64,
                        hits: s.hits as u64,
                        avg_latency_ns: u64::try_from(s.avg_latency().as_nanos())
                            .unwrap_or(u64::MAX),
                        prefetch_issued: s.prefetch_issued as u64,
                        prefetch_used: s.prefetch_used as u64,
                    }
                }
            };
            Flow::Reply(reply)
        }
        ClientMsg::Bye => Flow::Close,
    }
}

/// Converts a tile into its wire payload.
pub fn tile_payload(tile: &Tile) -> TilePayload {
    let (h, w) = tile.shape();
    let schema = tile.array.schema();
    let attrs: Vec<String> = schema.attrs.iter().map(|a| a.name.clone()).collect();
    let data: Vec<Vec<f64>> = attrs
        .iter()
        // fc-check: allow(handler-unwrap) -- attr names are read from this same array's schema two lines up
        .map(|a| tile.array.attr_values(a).expect("attr exists").to_vec())
        .collect();
    let present: Vec<u8> = tile.array.validity().iter().map(u8::from).collect();
    TilePayload {
        tile: tile.id,
        // fc-check: allow(handler-unwrap) -- tile dimensions are server-configured and far below u32::MAX
        h: u32::try_from(h).expect("tile height"),
        // fc-check: allow(handler-unwrap) -- tile dimensions are server-configured and far below u32::MAX
        w: u32::try_from(w).expect("tile width"),
        attrs,
        data,
        present,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_array::{DenseArray, Schema};
    use fc_tiles::TileId;

    #[test]
    fn tile_payload_reflects_tile() {
        let schema = Schema::grid2d("T", 2, 3, &["a", "b"]).unwrap();
        let mut arr = DenseArray::empty(schema);
        arr.set("a", &[0, 0], 1.5).unwrap();
        arr.set("b", &[0, 0], 2.5).unwrap();
        arr.set("a", &[1, 2], 3.5).unwrap();
        arr.set("b", &[1, 2], 4.5).unwrap();
        let tile = Tile::new(TileId::new(1, 0, 0), arr);
        let p = tile_payload(&tile);
        assert_eq!((p.h, p.w), (2, 3));
        assert_eq!(p.attrs, vec!["a", "b"]);
        assert_eq!(p.present, vec![1, 0, 0, 0, 0, 1]);
        assert_eq!(p.data[0][0], 1.5);
        assert_eq!(p.data[1][5], 4.5);
    }
}
