//! A minimal `poll(2)` shim over std — the readiness primitive the
//! session reactor multiplexes on.
//!
//! The container is offline, so the usual ecosystem answer (mio /
//! tokio) is out of reach; std itself links libc, which means the one
//! syscall we need is available through a plain `extern "C"`
//! declaration with the kernel's own ABI types. The shim is
//! deliberately tiny: an FFI-faithful [`PollFd`], the event-bit
//! constants the reactor uses, and [`poll_fds`] with EINTR retry.
//! `poll` (unlike `select`) has no FD_SETSIZE ceiling, so one flat
//! descriptor table scales to the thousands of sessions the reactor
//! targets.

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable data (or a peer close, which reads as EOF).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hangup (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness result — ABI-identical
/// to the kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor (negative entries are ignored by the kernel,
    /// which is how slots are parked without compacting the table).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events; also carries `POLLERR`/`POLLHUP`/`POLLNVAL`
    /// regardless of what was requested.
    pub revents: i16,
}

impl PollFd {
    /// An interest entry for `fd` watching `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the descriptor is readable (or at EOF / errored —
    /// conditions a read will surface, so the read path must run).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the descriptor is writable without blocking.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Whether the kernel flagged an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry is ready or `timeout` elapses;
/// returns how many entries have nonzero `revents`. `None` blocks
/// indefinitely; sub-millisecond timeouts round up to 1 ms so a short
/// positive timeout can never spin as a busy-wait. Interrupted calls
/// (EINTR) retry with the full timeout — callers use bounded tick
/// timeouts, so the drift is capped at one tick.
///
/// # Errors
/// The raw OS error for anything other than EINTR.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        }
    };
    loop {
        // SAFETY: the pointer and length describe exactly the caller's
        // `fds` slice, mutably borrowed for the whole call; the kernel
        // only rewrites the `revents` fields in place.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn connected_socket_is_writable_and_quiet() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable(), "fresh socket has send-buffer room");
        assert!(
            fds[0].revents & POLLIN == 0,
            "nothing to read yet: {:#x}",
            fds[0].revents
        );
    }

    #[test]
    fn data_arrival_flags_readable() {
        let (mut a, b) = socket_pair();
        a.write_all(b"ping").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 4];
        let mut b = b;
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn idle_descriptor_times_out_with_zero_ready() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "no data, no hangup — poll must time out clean");
        assert!(!fds[0].readable());
    }

    #[test]
    fn peer_close_reads_as_ready() {
        let (a, b) = socket_pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "EOF must wake the read path");
    }

    #[test]
    fn parked_negative_fd_is_ignored() {
        let (a, _b) = socket_pair();
        let mut fds = [
            PollFd::new(-1, POLLIN | POLLOUT),
            PollFd::new(a.as_raw_fd(), POLLOUT),
        ];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(fds[0].revents, 0, "parked slot stays silent");
        assert!(fds[1].writable());
    }
}
