//! The wire protocol: length-prefixed frames, hand-rolled binary codec.
//!
//! Frame layout: `u32 LE payload length | u8 message tag | payload`.
//! All integers little-endian; strings are `u16 LE length + UTF-8`.
//!
//! # Zero-copy tile codec and frame reuse
//!
//! `ServerMsg::Tile` carries `attrs × h·w` f64 columns; the codec moves
//! them in bulk instead of value-at-a-time:
//!
//! * **encode** stages `f64::to_le_bytes` through a fixed 512-byte
//!   chunk buffer, appending one contiguous copy per chunk — no
//!   per-value writer calls, no per-value capacity checks. Frames are
//!   pre-sized to their exact encoded length (each message's
//!   `encoded_body_len`), so a frame is built in a single pass with at
//!   most one buffer growth; the length prefix is patched afterwards
//!   from the bytes actually written, so it can never disagree with
//!   the body.
//! * **decode** takes one zero-copy sub-view of the frame per attribute
//!   column (`copy_to_bytes` shares the frame allocation) and converts
//!   with `f64::from_le_bytes` over `chunks_exact(8)` — the only copy
//!   is into the destination `Vec<f64>` itself.
//!
//! ## The [`FrameBuf`] reuse contract
//!
//! [`ClientMsg::encode`]/[`ServerMsg::encode`] allocate a fresh buffer
//! per call. Steady-state senders (the per-session server loop, bulk
//! benchmarks) should hold one [`FrameBuf`] and call
//! `encode_into(&mut buf)` instead: the returned `&[u8]` is the framed
//! message, valid until the next `encode_into` on the same buffer, and
//! after warm-up encoding allocates nothing — the buffer retains the
//! high-water capacity of the largest frame it has carried. A
//! `FrameBuf` is plain reusable memory: it may be moved across
//! messages, sessions, and threads freely.

use bytes::{Buf, Bytes};
use fc_tiles::{Move, TileId};
use std::io::{self, Read, Write};

/// Maximum accepted frame size (guards against corrupt length prefixes).
pub const MAX_FRAME: usize = 64 << 20;

/// Maximum dataset-name length accepted in a Hello. Wire strings carry
/// a u16 length, so an unbounded name echoed into an Error reason
/// (`"unknown dataset: …"`) could overflow the reply's own string
/// field; both ends enforce this far smaller bound instead.
pub const MAX_DATASET_NAME: usize = 256;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Open a session (returns `ServerMsg::Welcome`).
    Hello {
        /// Prefetch budget k requested for this session.
        prefetch_k: u32,
        /// Dataset to browse: a server can serve several pyramids,
        /// each under its own cache namespace. Empty selects the
        /// server's default (first) dataset.
        dataset: String,
    },
    /// Request a tile; `mv` is the interface move that produced the
    /// request (`None` for the first request).
    RequestTile {
        /// The tile.
        tile: TileId,
        /// The move, if any.
        mv: Option<Move>,
    },
    /// Ask for session statistics.
    GetStats,
    /// Close the session.
    Bye,
}

/// The tile payload of a [`ServerMsg::Tile`].
#[derive(Debug, Clone, PartialEq)]
pub struct TilePayload {
    /// Which tile this is.
    pub tile: TileId,
    /// Tile height in cells.
    pub h: u32,
    /// Tile width in cells.
    pub w: u32,
    /// Attribute names, in storage order.
    pub attrs: Vec<String>,
    /// Row-major values per attribute (`attrs.len() × h·w`).
    pub data: Vec<Vec<f64>>,
    /// Cell presence mask, row-major (1 = present).
    pub present: Vec<u8>,
}

/// Structured category carried by [`ServerMsg::Error`]. The u8 wire
/// value is stable; unknown values decode as [`ErrorCode::General`], so
/// an older client keeps working when the server grows new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Unclassified failure.
    General = 0,
    /// The client's message could not be decoded.
    Malformed = 1,
    /// The Hello named a dataset this server does not serve.
    UnknownDataset = 2,
    /// The requested tile is outside the dataset's geometry.
    NoSuchTile = 3,
    /// Admission control shed the session; retry against another
    /// server (or later) rather than immediately.
    Overloaded = 4,
    /// The backend could not produce the tile within the retry and
    /// deadline budget, and nothing was resident to degrade to.
    Unavailable = 5,
    /// An internal failure (e.g. a panic) was contained; the server
    /// closes the session after sending this.
    Internal = 6,
}

impl ErrorCode {
    /// Decodes a wire byte (total: unknown values map to `General`).
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownDataset,
            3 => ErrorCode::NoSuchTile,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::Unavailable,
            6 => ErrorCode::Internal,
            _ => ErrorCode::General,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::General => "general",
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownDataset => "unknown-dataset",
            ErrorCode::NoSuchTile => "no-such-tile",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session accepted.
    Welcome {
        /// Zoom levels in the dataset.
        levels: u8,
        /// Tile grid rows/cols at the deepest level.
        deepest_tiles: (u32, u32),
    },
    /// A requested tile.
    Tile {
        /// The payload.
        payload: TilePayload,
        /// Server-side latency for this request, nanoseconds.
        latency_ns: u64,
        /// Whether the middleware cache answered.
        cache_hit: bool,
        /// The engine's phase estimate (by `Phase::index`).
        phase: u8,
        /// Whether this is a degraded reply: the requested tile's fetch
        /// exhausted its retry/deadline budget and a resident ancestor
        /// answered in its place (`payload.tile` names the ancestor).
        degraded: bool,
    },
    /// Session statistics.
    Stats {
        /// Requests served.
        requests: u64,
        /// Cache hits among them.
        hits: u64,
        /// Average latency, nanoseconds.
        avg_latency_ns: u64,
        /// Speculative tiles fetched on this session's behalf.
        prefetch_issued: u64,
        /// Speculative tiles later served as cache hits.
        prefetch_used: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable category (drives client retry/shed logic).
        code: ErrorCode,
        /// Human-readable reason.
        reason: String,
    },
    /// A server-initiated speculative tile: the push planner decided
    /// this session is likely to request it soon and its socket had
    /// write headroom. Unsolicited — the client caches or drops it; it
    /// is never an answer to an outstanding request.
    Push {
        /// The payload.
        payload: TilePayload,
    },
}

/// A reusable frame-encoding buffer; see the module docs for the reuse
/// contract. `encode_into` clears it, writes one exact-length frame, and
/// returns the framed bytes; the allocation is retained across calls.
#[derive(Debug, Default, Clone)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty buffer (first encode sizes it exactly).
    pub fn new() -> Self {
        Self::default()
    }

    /// Retained capacity in bytes (the high-water frame size).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Clears and reserves for one frame of exactly `body_len` payload
    /// bytes, writes a placeholder length prefix, and hands out the Vec.
    fn start_frame(&mut self, body_len: usize) -> &mut Vec<u8> {
        self.buf.clear();
        self.buf.reserve(4 + body_len);
        self.buf.extend_from_slice(&[0u8; 4]);
        &mut self.buf
    }

    /// Patches the length prefix from the bytes actually encoded and
    /// returns the frame. Deriving the prefix from reality (rather than
    /// the predicted size) means an inconsistent payload — say `data`
    /// columns shorter than `h·w` — still yields a self-consistent
    /// frame the receiver rejects cleanly, never a desynced stream.
    fn finish_frame(&mut self) -> &[u8] {
        // fc-check: allow(handler-unwrap) -- encoder-built frame; length is capped far below u32::MAX by MAX_FRAME
        let body_len = u32::try_from(self.buf.len() - 4).expect("frame fits u32");
        self.buf[..4].copy_from_slice(&body_len.to_le_bytes());
        &self.buf
    }

    /// Consumes the buffer into an immutable [`Bytes`] (used by the
    /// allocating `encode` wrappers; no copy).
    fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Clamps a string to the u16 wire-length limit on a char boundary.
/// Error reasons can embed backend messages of arbitrary length; an
/// oversized one must truncate on the wire, not panic the encoder
/// mid-session (used by both `put_string` and the exact-size
/// `encoded_body_len` computations so the two always agree).
fn wire_str(s: &str) -> &str {
    const MAX: usize = u16::MAX as usize;
    if s.len() <= MAX {
        return s;
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    let bytes = wire_str(s).as_bytes();
    let len = bytes.len() as u16;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(bytes);
}

fn get_string(buf: &mut Bytes) -> io::Result<String> {
    if buf.remaining() < 2 {
        return Err(bad("truncated string length"));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(bad("truncated string body"));
    }
    // `copy_to_bytes` is a shared sub-view; decode the UTF-8 straight
    // from it so the only copy is into the returned String.
    let raw = buf.copy_to_bytes(len);
    std::str::from_utf8(&raw)
        .map(str::to_owned)
        .map_err(|_| bad("invalid UTF-8"))
}

fn put_tile_id(buf: &mut Vec<u8>, t: TileId) {
    buf.push(t.level);
    buf.extend_from_slice(&t.y.to_le_bytes());
    buf.extend_from_slice(&t.x.to_le_bytes());
}

/// Bulk-appends a f64 column as little-endian bytes, staging
/// `to_le_bytes` conversions through a fixed 64-value chunk so the copy
/// into `out` is one `extend_from_slice` per 512 bytes instead of one
/// writer call per value.
fn put_f64_column(out: &mut Vec<u8>, values: &[f64]) {
    let mut stage = [0u8; 512];
    for chunk in values.chunks(64) {
        for (slot, v) in stage.chunks_exact_mut(8).zip(chunk) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&stage[..chunk.len() * 8]);
    }
}

/// Bulk-reads `n` little-endian f64s from the front of `buf` via a
/// zero-copy sub-view; the destination `Vec` is the only copy made.
fn get_f64_column(buf: &mut Bytes, n: usize) -> Vec<f64> {
    debug_assert!(buf.remaining() >= n * 8);
    let raw = buf.copy_to_bytes(n * 8);
    let mut values = vec![0.0f64; n];
    for (v, b) in values.iter_mut().zip(raw.chunks_exact(8)) {
        // fc-check: allow(handler-unwrap) -- chunks_exact(8) yields exactly 8-byte slices
        *v = f64::from_le_bytes(b.try_into().expect("8-byte chunk"));
    }
    values
}

fn get_tile_id(buf: &mut Bytes) -> io::Result<TileId> {
    if buf.remaining() < 9 {
        return Err(bad("truncated tile id"));
    }
    Ok(TileId::new(
        buf.get_u8(),
        buf.get_u32_le(),
        buf.get_u32_le(),
    ))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl ClientMsg {
    /// Encodes into a framed byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = FrameBuf::new();
        self.encode_into(&mut buf);
        buf.into_bytes()
    }

    /// Exact encoded payload size (without the 4-byte length prefix).
    fn encoded_body_len(&self) -> usize {
        match self {
            ClientMsg::Hello { dataset, .. } => 1 + 4 + 2 + wire_str(dataset).len(),
            ClientMsg::RequestTile { .. } => 1 + 9 + 1,
            ClientMsg::GetStats | ClientMsg::Bye => 1,
        }
    }

    /// Encodes into a reusable [`FrameBuf`], returning the framed bytes
    /// (valid until the next encode on the same buffer). Allocation-free
    /// once the buffer has warmed to the largest frame it carries.
    pub fn encode_into<'a>(&self, frame: &'a mut FrameBuf) -> &'a [u8] {
        let body = frame.start_frame(self.encoded_body_len());
        match self {
            ClientMsg::Hello {
                prefetch_k,
                dataset,
            } => {
                body.push(0);
                body.extend_from_slice(&prefetch_k.to_le_bytes());
                put_string(body, dataset);
            }
            ClientMsg::RequestTile { tile, mv } => {
                body.push(1);
                put_tile_id(body, *tile);
                match mv {
                    // fc-check: allow(handler-unwrap) -- Move::index() is 0..8 by construction, always fits u8
                    Some(m) => body.push(u8::try_from(m.index() + 1).expect("move id fits")),
                    None => body.push(0),
                }
            }
            ClientMsg::GetStats => body.push(2),
            ClientMsg::Bye => body.push(3),
        }
        frame.finish_frame()
    }

    /// Decodes one unframed message body.
    ///
    /// # Errors
    /// `InvalidData` on malformed bodies.
    pub fn decode(mut body: Bytes) -> io::Result<Self> {
        if body.is_empty() {
            return Err(bad("empty message"));
        }
        match body.get_u8() {
            0 => {
                if body.remaining() < 4 {
                    return Err(bad("truncated Hello"));
                }
                let prefetch_k = body.get_u32_le();
                let dataset = get_string(&mut body)?;
                Ok(ClientMsg::Hello {
                    prefetch_k,
                    dataset,
                })
            }
            1 => {
                let tile = get_tile_id(&mut body)?;
                if body.remaining() < 1 {
                    return Err(bad("truncated RequestTile"));
                }
                let raw = body.get_u8();
                let mv = match raw {
                    0 => None,
                    n if (n as usize) <= fc_tiles::MOVES.len() => {
                        Some(Move::from_index(n as usize - 1))
                    }
                    _ => return Err(bad("bad move id")),
                };
                Ok(ClientMsg::RequestTile { tile, mv })
            }
            2 => Ok(ClientMsg::GetStats),
            3 => Ok(ClientMsg::Bye),
            t => Err(bad(&format!("unknown client tag {t}"))),
        }
    }
}

impl ServerMsg {
    /// Encodes into a framed byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = FrameBuf::new();
        self.encode_into(&mut buf);
        buf.into_bytes()
    }

    /// Exact encoded payload size (without the 4-byte length prefix).
    fn encoded_body_len(&self) -> usize {
        match self {
            ServerMsg::Welcome { .. } => 1 + 1 + 4 + 4,
            ServerMsg::Tile { payload, .. } => {
                let ncells = payload.h as usize * payload.w as usize;
                let columns: usize = payload
                    .attrs
                    .iter()
                    .map(|name| 2 + wire_str(name).len() + ncells * 8)
                    .sum();
                1 + 9 + 4 + 4 + 8 + 1 + 1 + 1 + 2 + columns + payload.present.len()
            }
            ServerMsg::Stats { .. } => 1 + 8 + 8 + 8 + 8 + 8,
            ServerMsg::Error { reason, .. } => 1 + 1 + 2 + wire_str(reason).len(),
            ServerMsg::Push { payload } => {
                let ncells = payload.h as usize * payload.w as usize;
                let columns: usize = payload
                    .attrs
                    .iter()
                    .map(|name| 2 + wire_str(name).len() + ncells * 8)
                    .sum();
                1 + 9 + 4 + 4 + 2 + columns + payload.present.len()
            }
        }
    }

    /// Encodes into a reusable [`FrameBuf`], returning the framed bytes
    /// (valid until the next encode on the same buffer). The frame is
    /// pre-sized to its exact length and f64 columns are appended with
    /// bulk chunk copies, so steady-state encoding allocates nothing.
    pub fn encode_into<'a>(&self, frame: &'a mut FrameBuf) -> &'a [u8] {
        let body = frame.start_frame(self.encoded_body_len());
        match self {
            ServerMsg::Welcome {
                levels,
                deepest_tiles,
            } => {
                body.push(0);
                body.push(*levels);
                body.extend_from_slice(&deepest_tiles.0.to_le_bytes());
                body.extend_from_slice(&deepest_tiles.1.to_le_bytes());
            }
            ServerMsg::Tile {
                payload,
                latency_ns,
                cache_hit,
                phase,
                degraded,
            } => {
                body.push(1);
                put_tile_id(body, payload.tile);
                body.extend_from_slice(&payload.h.to_le_bytes());
                body.extend_from_slice(&payload.w.to_le_bytes());
                body.extend_from_slice(&latency_ns.to_le_bytes());
                body.push(u8::from(*cache_hit));
                body.push(*phase);
                body.push(u8::from(*degraded));
                // fc-check: allow(handler-unwrap) -- attr count comes from the served dataset schema, far below u16::MAX
                let nattrs = u16::try_from(payload.attrs.len()).expect("attr count");
                body.extend_from_slice(&nattrs.to_le_bytes());
                for (name, values) in payload.attrs.iter().zip(&payload.data) {
                    put_string(body, name);
                    put_f64_column(body, values);
                }
                body.extend_from_slice(&payload.present);
            }
            ServerMsg::Stats {
                requests,
                hits,
                avg_latency_ns,
                prefetch_issued,
                prefetch_used,
            } => {
                body.push(2);
                body.extend_from_slice(&requests.to_le_bytes());
                body.extend_from_slice(&hits.to_le_bytes());
                body.extend_from_slice(&avg_latency_ns.to_le_bytes());
                body.extend_from_slice(&prefetch_issued.to_le_bytes());
                body.extend_from_slice(&prefetch_used.to_le_bytes());
            }
            ServerMsg::Error { code, reason } => {
                body.push(3);
                body.push(*code as u8);
                put_string(body, reason);
            }
            ServerMsg::Push { payload } => {
                body.push(4);
                put_tile_id(body, payload.tile);
                body.extend_from_slice(&payload.h.to_le_bytes());
                body.extend_from_slice(&payload.w.to_le_bytes());
                // fc-check: allow(handler-unwrap) -- attr count comes from the served dataset schema, far below u16::MAX
                let nattrs = u16::try_from(payload.attrs.len()).expect("attr count");
                body.extend_from_slice(&nattrs.to_le_bytes());
                for (name, values) in payload.attrs.iter().zip(&payload.data) {
                    put_string(body, name);
                    put_f64_column(body, values);
                }
                body.extend_from_slice(&payload.present);
            }
        }
        frame.finish_frame()
    }

    /// Decodes one unframed message body.
    ///
    /// # Errors
    /// `InvalidData` on malformed bodies.
    pub fn decode(mut body: Bytes) -> io::Result<Self> {
        if body.is_empty() {
            return Err(bad("empty message"));
        }
        match body.get_u8() {
            0 => {
                if body.remaining() < 9 {
                    return Err(bad("truncated Welcome"));
                }
                Ok(ServerMsg::Welcome {
                    levels: body.get_u8(),
                    deepest_tiles: (body.get_u32_le(), body.get_u32_le()),
                })
            }
            1 => {
                let tile = get_tile_id(&mut body)?;
                if body.remaining() < 4 + 4 + 8 + 1 + 1 + 1 + 2 {
                    return Err(bad("truncated Tile header"));
                }
                let h = body.get_u32_le();
                let w = body.get_u32_le();
                let latency_ns = body.get_u64_le();
                let cache_hit = body.get_u8() != 0;
                let phase = body.get_u8();
                let degraded = body.get_u8() != 0;
                let nattrs = body.get_u16_le() as usize;
                // Bound the cell count before any size arithmetic: a
                // crafted h×w near usize::MAX would wrap `ncells * 8`
                // below and slip past the truncation checks. No valid
                // frame can carry more than MAX_FRAME bytes anyway.
                let ncells = (h as usize)
                    .checked_mul(w as usize)
                    .filter(|&n| n <= MAX_FRAME)
                    .ok_or_else(|| bad("tile dimensions too large"))?;
                let mut attrs = Vec::with_capacity(nattrs);
                let mut data = Vec::with_capacity(nattrs);
                for _ in 0..nattrs {
                    let name = get_string(&mut body)?;
                    if body.remaining() < ncells * 8 {
                        return Err(bad("truncated attribute data"));
                    }
                    attrs.push(name);
                    data.push(get_f64_column(&mut body, ncells));
                }
                if body.remaining() < ncells {
                    return Err(bad("truncated presence mask"));
                }
                let present = body.copy_to_bytes(ncells).to_vec();
                Ok(ServerMsg::Tile {
                    payload: TilePayload {
                        tile,
                        h,
                        w,
                        attrs,
                        data,
                        present,
                    },
                    latency_ns,
                    cache_hit,
                    phase,
                    degraded,
                })
            }
            2 => {
                if body.remaining() < 40 {
                    return Err(bad("truncated Stats"));
                }
                Ok(ServerMsg::Stats {
                    requests: body.get_u64_le(),
                    hits: body.get_u64_le(),
                    avg_latency_ns: body.get_u64_le(),
                    prefetch_issued: body.get_u64_le(),
                    prefetch_used: body.get_u64_le(),
                })
            }
            3 => {
                if body.remaining() < 1 {
                    return Err(bad("truncated Error"));
                }
                let code = ErrorCode::from_u8(body.get_u8());
                Ok(ServerMsg::Error {
                    code,
                    reason: get_string(&mut body)?,
                })
            }
            4 => {
                let tile = get_tile_id(&mut body)?;
                if body.remaining() < 4 + 4 + 2 {
                    return Err(bad("truncated Push header"));
                }
                let h = body.get_u32_le();
                let w = body.get_u32_le();
                let nattrs = body.get_u16_le() as usize;
                let ncells = (h as usize)
                    .checked_mul(w as usize)
                    .filter(|&n| n <= MAX_FRAME)
                    .ok_or_else(|| bad("tile dimensions too large"))?;
                let mut attrs = Vec::with_capacity(nattrs);
                let mut data = Vec::with_capacity(nattrs);
                for _ in 0..nattrs {
                    let name = get_string(&mut body)?;
                    if body.remaining() < ncells * 8 {
                        return Err(bad("truncated attribute data"));
                    }
                    attrs.push(name);
                    data.push(get_f64_column(&mut body, ncells));
                }
                if body.remaining() < ncells {
                    return Err(bad("truncated presence mask"));
                }
                let present = body.copy_to_bytes(ncells).to_vec();
                Ok(ServerMsg::Push {
                    payload: TilePayload {
                        tile,
                        h,
                        w,
                        attrs,
                        data,
                        present,
                    },
                })
            }
            t => Err(bad(&format!("unknown server tag {t}"))),
        }
    }
}

/// Writes one framed message (as produced by `encode`/`encode_into`) to
/// a stream.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_frame<W: Write>(w: &mut W, framed: &[u8]) -> io::Result<()> {
    w.write_all(framed)?;
    w.flush()
}

/// Reads one frame body from a stream (without the length prefix).
///
/// # Errors
/// Propagates I/O errors; `InvalidData` for oversized frames;
/// `UnexpectedEof` at clean stream end.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Bytes> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(bad("frame too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Bytes::from(body))
}

/// Strips the 4-byte length prefix from an encoded message (test helper
/// and internal plumbing for decode-after-encode).
pub fn unframe(framed: &Bytes) -> Bytes {
    framed.slice(4..)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};
    use fc_tiles::Quadrant;

    #[test]
    fn client_msgs_roundtrip() {
        let msgs = vec![
            ClientMsg::Hello {
                prefetch_k: 5,
                dataset: String::new(),
            },
            ClientMsg::Hello {
                prefetch_k: 3,
                dataset: "ndsi_west".into(),
            },
            ClientMsg::RequestTile {
                tile: TileId::new(3, 7, 9),
                mv: Some(Move::ZoomIn(Quadrant::Se)),
            },
            ClientMsg::RequestTile {
                tile: TileId::ROOT,
                mv: None,
            },
            ClientMsg::GetStats,
            ClientMsg::Bye,
        ];
        for m in msgs {
            let enc = m.encode();
            let dec = ClientMsg::decode(unframe(&enc)).unwrap();
            assert_eq!(dec, m);
        }
    }

    #[test]
    fn server_msgs_roundtrip() {
        let payload = TilePayload {
            tile: TileId::new(2, 1, 3),
            h: 2,
            w: 2,
            attrs: vec!["ndsi_avg".into(), "land".into()],
            data: vec![vec![0.1, 0.2, 0.3, 0.4], vec![1.0, 1.0, 0.0, 1.0]],
            present: vec![1, 1, 0, 1],
        };
        let msgs = vec![
            ServerMsg::Welcome {
                levels: 6,
                deepest_tiles: (32, 32),
            },
            ServerMsg::Tile {
                payload: payload.clone(),
                latency_ns: 19_500_000,
                cache_hit: true,
                phase: 2,
                degraded: false,
            },
            ServerMsg::Tile {
                payload,
                latency_ns: 984_000_000,
                cache_hit: false,
                phase: 0,
                degraded: true,
            },
            ServerMsg::Stats {
                requests: 10,
                hits: 8,
                avg_latency_ns: 123,
                prefetch_issued: 6,
                prefetch_used: 4,
            },
            ServerMsg::Error {
                code: ErrorCode::NoSuchTile,
                reason: "no such tile".into(),
            },
            ServerMsg::Error {
                code: ErrorCode::Overloaded,
                reason: String::new(),
            },
            ServerMsg::Push {
                payload: TilePayload {
                    tile: TileId::new(3, 4, 5),
                    h: 2,
                    w: 2,
                    attrs: vec!["ndsi_avg".into()],
                    data: vec![vec![0.5, 0.25, 0.75, 1.0]],
                    present: vec![1, 1, 1, 0],
                },
            },
        ];
        for m in msgs {
            let enc = m.encode();
            let dec = ServerMsg::decode(unframe(&enc)).unwrap();
            assert_eq!(dec, m);
        }
    }

    #[test]
    fn truncated_push_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(4); // Push tag
        b.put_u8(0); // tile id
        b.put_u32_le(0);
        b.put_u32_le(0);
        b.put_u32_le(4); // h — header then ends early
        assert!(ServerMsg::decode(b.freeze()).is_err());
    }

    #[test]
    fn unknown_error_code_decodes_as_general() {
        let mut b = BytesMut::new();
        b.put_u8(3); // Error tag
        b.put_u8(200); // unassigned code
        b.put_u16_le(2);
        b.put_slice(b"hm");
        let dec = ServerMsg::decode(b.freeze()).unwrap();
        assert_eq!(
            dec,
            ServerMsg::Error {
                code: ErrorCode::General,
                reason: "hm".into()
            }
        );
    }

    #[test]
    fn oversized_reason_truncates_on_a_char_boundary() {
        // 'é' is two bytes; an odd cap would split it. The encoder must
        // clamp to the u16 limit without panicking or emitting invalid
        // UTF-8, and the frame prefix must match the truncated body.
        let reason = "é".repeat(40_000); // 80 000 bytes
        let msg = ServerMsg::Error {
            code: ErrorCode::Internal,
            reason,
        };
        let framed = msg.encode();
        let prefix = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
        assert_eq!(prefix, framed.len() - 4);
        match ServerMsg::decode(unframe(&framed)).unwrap() {
            ServerMsg::Error { code, reason } => {
                assert_eq!(code, ErrorCode::Internal);
                assert_eq!(reason.len(), u16::MAX as usize - 1, "65534 = 32767 'é'");
                assert!(reason.chars().all(|c| c == 'é'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ClientMsg::decode(Bytes::from_static(&[])).is_err());
        assert!(ClientMsg::decode(Bytes::from_static(&[9])).is_err());
        assert!(ServerMsg::decode(Bytes::from_static(&[9])).is_err());
        assert!(ClientMsg::decode(Bytes::from_static(&[1, 0])).is_err());
        // Bad move id.
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u8(0);
        b.put_u32_le(0);
        b.put_u32_le(0);
        b.put_u8(200);
        assert!(ClientMsg::decode(b.freeze()).is_err());
    }

    #[test]
    fn oversized_tile_dimensions_rejected_without_allocating() {
        // h=2^31, w=2^30 makes ncells*8 wrap on 64-bit; the decoder
        // must return InvalidData, not attempt a huge allocation.
        let mut b = BytesMut::new();
        b.put_u8(1); // Tile tag
        b.put_u8(0); // tile id
        b.put_u32_le(0);
        b.put_u32_le(0);
        b.put_u32_le(0x8000_0000); // h
        b.put_u32_le(0x4000_0000); // w
        b.put_u64_le(0); // latency
        b.put_u8(0); // cache_hit
        b.put_u8(0); // phase
        b.put_u8(0); // degraded
        b.put_u16_le(1); // nattrs
        b.put_u16_le(1); // attr name len
        b.put_u8(b'v');
        assert!(ServerMsg::decode(b.freeze()).is_err());
    }

    #[test]
    fn inconsistent_payload_still_frames_consistently() {
        // A payload whose data column is shorter than h·w is a caller
        // bug, but the frame must still be self-consistent (prefix ==
        // actual body) so the receiver rejects one message instead of
        // desyncing the stream.
        let msg = ServerMsg::Tile {
            payload: TilePayload {
                tile: TileId::ROOT,
                h: 4,
                w: 4,
                attrs: vec!["v".into()],
                data: vec![vec![1.0, 2.0]], // 2 values, not 16
                present: vec![1; 16],
            },
            latency_ns: 1,
            cache_hit: false,
            phase: 0,
            degraded: false,
        };
        let framed = msg.encode();
        let prefix = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
        assert_eq!(prefix, framed.len() - 4, "prefix matches actual body");
        assert!(ServerMsg::decode(unframe(&framed)).is_err(), "rejected");
    }

    #[test]
    fn frame_stream_roundtrip() {
        let m = ClientMsg::Hello {
            prefetch_k: 3,
            dataset: "d".into(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &m.encode()).unwrap();
        write_frame(&mut buf, &ClientMsg::Bye.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let f1 = read_frame(&mut cursor).unwrap();
        assert_eq!(ClientMsg::decode(f1).unwrap(), m);
        let f2 = read_frame(&mut cursor).unwrap();
        assert_eq!(ClientMsg::decode(f2).unwrap(), ClientMsg::Bye);
        assert!(read_frame(&mut cursor).is_err(), "EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
